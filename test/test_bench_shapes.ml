(* Bench-shape regression tests: the harness's headline claims,
   asserted over the machine-readable BENCH_*.json round trip so a
   regression in either the structures or the report plumbing fails
   [dune runtest].

   - fig7 shape: at high load (workload 0, many processors) the
     elimination tree out-throughputs the original diffracting tree
     (the paper's central claim, Figure 7).
   - adapt shape (EXPERIMENTS.md A1): the reactive tree stays within
     5% of the best hand-tuned static schedule at saturation AND beats
     every static schedule's latency at the lowest load point.

   The points are generated in-process at a reduced scale (the same
   sweep code the bench harness calls), serialized with the harness's
   field names through Report.write_json, re-read with the hand-rolled
   Etrace.Json parser, and the claims are evaluated on the re-parsed
   values — the same path CI consumers of BENCH_adapt.json take. *)

module W = Workloads
module R = W.Report
module J = Etrace.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let procs = 256
let horizon = 20_000

let write_and_parse_report ?meta ~experiment points =
  let file = Filename.temp_file ("bench_" ^ experiment) ".json" in
  R.write_json ~file
    (R.Obj
       ([ ("experiment", R.Str experiment) ]
       @ (match meta with Some m -> [ ("meta", m) ] | None -> [])
       @ [ ("points", R.Arr points) ]));
  let v =
    match J.parse_file file with
    | Ok v -> v
    | Error e -> Alcotest.failf "re-parsing %s: %s" file e
  in
  Sys.remove file;
  check_bool "experiment tag round-trips" true
    (Option.bind (J.member "experiment" v) J.to_str = Some experiment);
  v

let write_and_parse ~experiment points =
  let v = write_and_parse_report ~experiment points in
  Option.get (Option.bind (J.member "points" v) J.to_list)

let field_int p name = Option.get (Option.bind (J.member name p) J.to_int)
let field_num p name = Option.get (Option.bind (J.member name p) J.to_num)
let field_str p name = Option.get (Option.bind (J.member name p) J.to_str)

(* ------------------------------------------------------------------ *)
(* Figure 7: elimination >= diffraction at high load                   *)
(* ------------------------------------------------------------------ *)

let test_fig7_shape () =
  let point make =
    let p = W.Produce_consume.run ~seed:3 ~horizon ~workload:0 ~procs make in
    R.Obj
      [
        ("method", R.Str (make ~procs).W.Pool_obj.name);
        ("workload", R.Int 0);
        ("procs", R.Int p.W.Produce_consume.procs);
        ("throughput_per_m", R.Int p.W.Produce_consume.throughput_per_m);
        ("latency", R.Float p.W.Produce_consume.latency);
      ]
  in
  let points =
    write_and_parse ~experiment:"fig7"
      [
        point (fun ~procs -> W.Methods.etree_pool ~procs ());
        point (fun ~procs -> W.Methods.dtree_pool ~procs ());
      ]
  in
  check_int "two points" 2 (List.length points);
  let tput prefix =
    match
      List.find_opt
        (fun p ->
          String.length (field_str p "method") >= String.length prefix
          && String.sub (field_str p "method") 0 (String.length prefix)
             = prefix)
        points
    with
    | Some p -> field_int p "throughput_per_m"
    | None -> Alcotest.failf "no %s point in the re-parsed report" prefix
  in
  let etree = tput "Etree" and dtree = tput "Dtree" in
  check_bool
    (Printf.sprintf
       "elimination (%d) >= diffraction (%d) at workload 0, %d procs" etree
       dtree procs)
    true (etree >= dtree)

(* ------------------------------------------------------------------ *)
(* A1: the adaptive crossover                                          *)
(* ------------------------------------------------------------------ *)

let test_adapt_shape () =
  let specs = W.Adapt_sweep.methods () in
  let series =
    W.Adapt_sweep.sweep ~seed:3 ~horizon ~workloads:[ 0; 16_000 ] ~procs specs
  in
  let flat = List.concat series in
  (* Serialize with the bench harness's field names... *)
  let points =
    write_and_parse ~experiment:"adapt"
      (List.map
         (fun (p : W.Adapt_sweep.point) ->
           R.Obj
             [
               ("method", R.Str p.method_name);
               ("reactive", R.Bool p.reactive);
               ("workload", R.Int p.workload);
               ("procs", R.Int p.procs);
               ("throughput_per_m", R.Int p.throughput_per_m);
               ("latency", R.Float p.latency);
             ])
         flat)
  in
  check_int "every sweep point round-trips" (List.length flat)
    (List.length points);
  (* ...and evaluate the shape claims on the RE-PARSED values only. *)
  let dummy_lat = Etrace.Histogram.(summary (create ())) in
  let reparsed =
    List.map
      (fun p ->
        {
          W.Adapt_sweep.method_name = field_str p "method";
          reactive =
            Option.get (Option.bind (J.member "reactive" p) J.to_bool);
          workload = field_int p "workload";
          procs = field_int p "procs";
          throughput_per_m = field_int p "throughput_per_m";
          latency = field_num p "latency";
          lat = dummy_lat;
          elim_rate = None;
          final_adapt = None;
        })
      points
  in
  check_bool
    "reactive within 5% of the best static schedule at saturation (W=0)" true
    (W.Adapt_sweep.saturation_ok reparsed);
  check_bool
    "reactive latency strictly below every static schedule at lowest load"
    true
    (W.Adapt_sweep.low_load_ok reparsed)

(* ------------------------------------------------------------------ *)
(* S1: the sharded service frontend                                    *)
(* ------------------------------------------------------------------ *)

let test_service_shape () =
  (* The same operating point the bench harness sweeps, at test scale:
     near saturation, one shard collapses while eight keep up. *)
  let point shards =
    let p =
      W.Service.run ~seed:3 ~shards ~sessions:4_000
        ~regime:(W.Arrivals.Poisson { mean_gap = 800 })
        ()
    in
    R.Obj
      [
        ("regime", R.Str p.W.Service.regime_name);
        ("shards", R.Int p.W.Service.shards);
        ("throughput_per_m", R.Int p.W.Service.throughput_per_m);
        ("sojourn", R.histogram_json p.W.Service.sojourn);
        ("steal_hits", R.Int p.W.Service.steal_hits);
        ( "conservation_ok",
          R.Bool p.W.Service.conservation.Analysis.Conservation.ok );
      ]
  in
  let points = write_and_parse ~experiment:"service" [ point 1; point 8 ] in
  check_int "two points" 2 (List.length points);
  let at shards =
    match
      List.find_opt (fun p -> field_int p "shards" = shards) points
    with
    | Some p -> p
    | None -> Alcotest.failf "no %d-shard point in the re-parsed report" shards
  in
  List.iter
    (fun p ->
      check_bool "conservation round-trips as ok" true
        (Option.bind (J.member "conservation_ok" p) J.to_bool = Some true);
      let sojourn = Option.get (J.member "sojourn" p) in
      let pct name = field_int sojourn name in
      check_bool
        (Printf.sprintf "percentiles ordered (%d/%d/%d)" (pct "p50")
           (pct "p90") (pct "p99"))
        true
        (pct "p50" <= pct "p90" && pct "p90" <= pct "p99"))
    points;
  check_int "single tree never steals" 0 (field_int (at 1) "steal_hits");
  let t1 = field_int (at 1) "throughput_per_m"
  and t8 = field_int (at 8) "throughput_per_m" in
  check_bool
    (Printf.sprintf "sharding scales the saturated frontend (%d -> %d)" t1 t8)
    true (t8 > t1)

(* ------------------------------------------------------------------ *)
(* Meta blocks: the BENCH_<exp>.json provenance/cost header            *)
(* ------------------------------------------------------------------ *)

(* The exact path bench/main.ml takes: a Report.Meta probe around the
   workload, its json block embedded in the report, the file re-read
   with Etrace.Json and held against the benchdb schema — the contract
   `etrees_run perf append` enforces before a row enters the DB. *)
let meta_shape ~experiment ~reparsed meta_value =
  check_bool
    (Printf.sprintf "BENCH_%s.json meta validates against the schema"
       experiment)
    true
    (match Benchdb.Db.validate_meta meta_value with
    | Ok () -> true
    | Error e -> Alcotest.failf "meta schema: %s" e);
  let int_f name =
    Option.get (Option.bind (J.member name meta_value) J.to_int)
  in
  let num_f name =
    Option.get (Option.bind (J.member name meta_value) J.to_num)
  in
  let str_f name =
    Option.get (Option.bind (J.member name meta_value) J.to_str)
  in
  check_bool "meta experiment tag matches" true
    (str_f "experiment" = experiment);
  check_bool "toolchain carries the compiler version" true
    (String.length (str_f "toolchain") >= 6
    && String.sub (str_f "toolchain") 0 6 = "ocaml-");
  check_bool "the probe saw the run's simulated events" true
    (int_f "events" > 0);
  check_bool "ops split into reads/writes/rmws" true
    (int_f "reads" > 0 && int_f "writes" > 0 && int_f "rmws" >= 0);
  (* Derived columns are consistent with their inputs after the float
     round trip (write_json prints %.6g). *)
  let close a b = Float.abs (a -. b) <= 0.01 *. Float.abs b +. 1e-6 in
  check_bool "minor_words_per_event = minor_words / events" true
    (close (num_f "minor_words_per_event")
       (num_f "minor_words" /. float_of_int (int_f "events")));
  check_bool "events_per_sec consistent with cpu_s" true
    (num_f "cpu_s" = 0.0
    || close (num_f "events_per_sec")
         (float_of_int (int_f "events") /. num_f "cpu_s"));
  (* The whole report, meta included, folds into one DB row. *)
  match Benchdb.Db.of_bench_json ~exp:experiment reparsed with
  | Ok row ->
      check_bool "DB row keeps the point count" true (row.Benchdb.Db.points > 0)
  | Error e -> Alcotest.failf "of_bench_json: %s" e

let test_chaos_meta_shape () =
  let probe = R.Meta.start () in
  let p =
    W.Chaos.run ~seed:3 ~horizon:5_000 ~plan:Faults.Fault_plan.none ~procs:16
      (fun ~procs -> W.Methods.etree_pool ~procs ())
  in
  let meta = R.Meta.json (R.Meta.stop probe ~experiment:"chaos" ~seed:3) in
  let point =
    R.Obj
      [
        ("method", R.Str p.W.Chaos.method_name);
        ("procs", R.Int p.W.Chaos.procs);
        ("throughput_per_m", R.Int p.W.Chaos.throughput_per_m);
        ( "conservation_ok",
          R.Bool p.W.Chaos.conservation.Analysis.Conservation.ok );
      ]
  in
  let reparsed = write_and_parse_report ~meta ~experiment:"chaos" [ point ] in
  check_bool "fault-free chaos point conserves tokens" true
    p.W.Chaos.conservation.Analysis.Conservation.ok;
  meta_shape ~experiment:"chaos" ~reparsed
    (Option.get (J.member "meta" reparsed))

let test_adapt_meta_shape () =
  let probe = R.Meta.start () in
  let specs = W.Adapt_sweep.methods () in
  let series =
    W.Adapt_sweep.sweep ~seed:3 ~horizon:5_000 ~workloads:[ 0 ] ~procs:16
      specs
  in
  let meta = R.Meta.json (R.Meta.stop probe ~experiment:"adapt" ~seed:3) in
  let points =
    List.map
      (fun (p : W.Adapt_sweep.point) ->
        R.Obj
          [
            ("method", R.Str p.method_name);
            ("workload", R.Int p.workload);
            ("throughput_per_m", R.Int p.throughput_per_m);
          ])
      (List.concat series)
  in
  let reparsed = write_and_parse_report ~meta ~experiment:"adapt" points in
  meta_shape ~experiment:"adapt" ~reparsed
    (Option.get (J.member "meta" reparsed))

let () =
  Alcotest.run "bench_shapes"
    [
      ( "shapes",
        [
          Alcotest.test_case "fig7: elimination >= diffraction" `Quick
            test_fig7_shape;
          Alcotest.test_case "A1: adaptive crossover" `Quick test_adapt_shape;
          Alcotest.test_case "S1: service frontend scales with shards" `Quick
            test_service_shape;
        ] );
      ( "meta",
        [
          Alcotest.test_case "chaos: meta block shape" `Quick
            test_chaos_meta_shape;
          Alcotest.test_case "adapt: meta block shape" `Quick
            test_adapt_meta_shape;
        ] );
    ]
