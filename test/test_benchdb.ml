(* lib/benchdb unit tests (docs/BENCHDB.md):

   - the JSONL database round-trips through append/load, and the
     reference-entry rule (newest reference=true, else oldest) holds;
   - the regression gate trips on a synthetic 10% events regression at
     the tight tolerance, passes an unmodified re-run, applies the
     loose tolerance and the direction rules to events/sec and
     allocation, and exits 3 with no baseline;
   - the trend page renders byte-identically to the committed golden
     fixture (set BENCHDB_GOLDEN_OUT=path to regenerate it).

   Synthetic meta blocks only — no simulator runs, so the suite stays
   in the sub-second tier. *)

module Db = Benchdb.Db
module Gate = Benchdb.Gate
module Page = Benchdb.Page
module J = Etrace.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* A schema-complete meta block with overridable interesting fields. *)
let meta ?(commit = "abc1234") ?(events = 1_000_000) ?(reads = 400_000)
    ?(writes = 200_000) ?(rmws = 100_000) ?(minor_words_per_event = 60.0)
    ?(events_per_sec = 2.5e6) () =
  J.Obj
    [
      ("experiment", J.Str "fig7");
      ("seed", J.Num 1.0);
      ("date", J.Str "2026-08-08");
      ("commit", J.Str commit);
      ("dirty", J.Bool false);
      ("toolchain", J.Str "ocaml-5.1.1/64-bit");
      ("events", J.Num (float_of_int events));
      ("reads", J.Num (float_of_int reads));
      ("writes", J.Num (float_of_int writes));
      ("rmws", J.Num (float_of_int rmws));
      ("cpu_s", J.Num 0.4);
      ("minor_words", J.Num 6.0e7);
      ("major_words", J.Num 5.0e6);
      ("major_collections", J.Num 4.0);
      ("events_per_sec", J.Num events_per_sec);
      ("minor_words_per_event", J.Num minor_words_per_event);
    ]

let run ?(reference = false) ?(points = 16) ?commit ?events ?events_per_sec
    ?minor_words_per_event () =
  {
    Db.exp = "fig7";
    reference;
    points;
    meta = meta ?commit ?events ?events_per_sec ?minor_words_per_event ();
  }

let temp_db () =
  let dir = Filename.temp_file "benchdb" "" in
  Sys.remove dir;
  dir

(* ------------------------------------------------------------------ *)
(* DB round trip                                                       *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let db_dir = temp_db () in
  check_bool "missing file loads as empty" true
    (Db.load ~db_dir "fig7" = Ok []);
  let r1 = run ~commit:"aaaaaaa" ~events:1_000_000 () in
  let r2 = run ~commit:"bbbbbbb" ~events:1_001_000 ~points:17 () in
  Db.append ~db_dir r1;
  Db.append ~db_dir r2;
  let rows =
    match Db.load ~db_dir "fig7" with
    | Ok rows -> rows
    | Error e -> Alcotest.failf "load: %s" e
  in
  check_int "two rows, oldest first" 2 (List.length rows);
  let first = List.nth rows 0 and second = List.nth rows 1 in
  check_string "row 0 commit" "aaaaaaa"
    (Option.get (Db.str_field first "commit"));
  check_int "row 1 points" 17 second.Db.points;
  check_bool "metric round-trips" true
    (Db.metric second "events" = Some 1_001_000.0);
  (* Reference rule: no flagged row -> the oldest seeds the baseline. *)
  check_string "default reference is the oldest row" "aaaaaaa"
    (Option.get (Db.str_field (Option.get (Db.reference rows)) "commit"));
  check_string "latest is the newest row" "bbbbbbb"
    (Option.get (Db.str_field (Option.get (Db.latest rows)) "commit"));
  (* A newer flagged row takes over as reference. *)
  Db.append ~db_dir (run ~commit:"ccccccc" ~reference:true ());
  let rows = Result.get_ok (Db.load ~db_dir "fig7") in
  check_string "flagged row wins the reference" "ccccccc"
    (Option.get (Db.str_field (Option.get (Db.reference rows)) "commit"));
  (* Malformed rows fail loudly with a location. *)
  let oc = open_out_gen [ Open_append ] 0o644 (Db.path ~db_dir "fig7") in
  output_string oc "{\"exp\": \"fig7\"}\n";
  close_out oc;
  (match Db.load ~db_dir "fig7" with
  | Error e ->
      check_bool "error names the offending line" true
        (String.contains e ':' && contains ~sub:"4" e)
  | Ok _ -> Alcotest.fail "malformed row accepted")

(* ------------------------------------------------------------------ *)
(* The regression gate                                                 *)
(* ------------------------------------------------------------------ *)

let regressed = function
  | Gate.Pass _ | Gate.No_baseline -> []
  | Gate.Regression deltas ->
      List.filter_map
        (fun (d : Gate.delta) ->
          if d.Gate.d_regressed then Some d.Gate.d_metric else None)
        deltas

let test_gate_verdicts () =
  let reference = Some (run ()) in
  (* Unmodified re-run: byte-identical metrics pass at exit 0. *)
  let v = Gate.check ~reference ~current:(run ()) () in
  check_bool "identical re-run passes" true
    (match v with Gate.Pass _ -> true | _ -> false);
  check_int "pass exits 0" 0 (Gate.exit_code v);
  (* A synthetic 10% events regression trips the 5% tight gate
     (the ISSUE acceptance scenario). *)
  let v10 = Gate.check ~reference ~current:(run ~events:900_000 ()) () in
  check_bool "10% fewer events regresses" true
    (regressed v10 = [ "events" ]);
  check_int "regression exits 1" 1 (Gate.exit_code v10);
  (* ...and a 10% rise regresses too: deterministic metrics gate in
     BOTH directions (drift = the replay is no longer the baseline's). *)
  check_bool "10% more events regresses too" true
    (regressed (Gate.check ~reference ~current:(run ~events:1_100_000 ()) ())
    = [ "events" ]);
  (* Inside the tight band nothing trips. *)
  check_bool "2% drift passes the 5% tight gate" true
    (match Gate.check ~reference ~current:(run ~events:1_020_000 ()) () with
    | Gate.Pass _ -> true
    | _ -> false);
  (* Allocation gates upward only: a drop is an improvement. *)
  check_bool "allocation drop passes" true
    (match
       Gate.check ~reference ~current:(run ~minor_words_per_event:50.0 ()) ()
     with
    | Gate.Pass _ -> true
    | _ -> false);
  check_bool "allocation rise regresses" true
    (regressed
       (Gate.check ~reference ~current:(run ~minor_words_per_event:70.0 ()) ())
    = [ "minor_words_per_event" ]);
  (* events/sec gates at the loose tolerance, downward only. *)
  check_bool "40% throughput drop passes the 50% loose gate" true
    (match
       Gate.check ~reference ~current:(run ~events_per_sec:1.5e6 ()) ()
     with
    | Gate.Pass _ -> true
    | _ -> false);
  check_bool "60% throughput drop regresses" true
    (regressed
       (Gate.check ~reference ~current:(run ~events_per_sec:1.0e6 ()) ())
    = [ "events_per_sec" ]);
  check_bool "a throughput RISE never regresses" true
    (match
       Gate.check ~reference ~current:(run ~events_per_sec:9.9e6 ()) ()
     with
    | Gate.Pass _ -> true
    | _ -> false);
  (* Tolerances are parameters: the same 10% delta passes at 15%. *)
  check_bool "10% delta passes a 15% tight gate" true
    (match
       Gate.check ~tight_pct:15.0 ~reference
         ~current:(run ~events:900_000 ())
         ()
     with
    | Gate.Pass _ -> true
    | _ -> false)

let test_gate_no_baseline () =
  let v = Gate.check ~reference:None ~current:(run ()) () in
  check_bool "no reference -> No_baseline" true (v = Gate.No_baseline);
  check_int "no baseline exits 3" 3 (Gate.exit_code v);
  (* Worst-verdict precedence across experiments: 1 > 3 > 0. *)
  let pass = Gate.check ~reference:(Some (run ())) ~current:(run ()) () in
  let fail =
    Gate.check ~reference:(Some (run ())) ~current:(run ~events:1 ()) ()
  in
  check_int "all pass -> 0" 0 (Gate.combined_exit_code [ pass; pass ]);
  check_int "pass + no-baseline -> 3" 3
    (Gate.combined_exit_code [ pass; Gate.No_baseline ]);
  check_int "regression dominates no-baseline" 1
    (Gate.combined_exit_code [ Gate.No_baseline; fail; pass ])

(* ------------------------------------------------------------------ *)
(* The trend page                                                      *)
(* ------------------------------------------------------------------ *)

let golden_runs =
  [
    ( "fig7",
      [
        run ~commit:"aaaaaaa" ~events:1_000_000 ~reference:true ();
        run ~commit:"bbbbbbb" ~events:1_010_000 ~events_per_sec:2.6e6 ();
        run ~commit:"ccccccc" ~events:1_005_000 ~minor_words_per_event:59.0 ();
      ] );
    ("empty_exp", []);
  ]

let test_page_golden () =
  (* No ?generated stamp: the render is a pure function of the rows,
     so the fixture pins it byte for byte. *)
  let html = Page.render golden_runs in
  (match Sys.getenv_opt "BENCHDB_GOLDEN_OUT" with
  | Some path ->
      let oc = open_out path in
      output_string oc html;
      close_out oc
  | None -> ());
  let golden = In_channel.with_open_bin "fixtures/trends_golden.html"
      In_channel.input_all in
  check_string "trend page matches the committed golden fixture" golden html

let test_page_shape () =
  let html = Page.render ~generated:"2026-08-08 @ abc1234" golden_runs in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "page contains %S" needle) true
        (contains ~sub:needle html))
    [
      "<svg";
      "polyline";
      "fig7";
      "Generated 2026-08-08 @ abc1234";
      (* the delta table compares latest vs reference *)
      "vs reference";
      (* single-series sparklines carry no legend, values live in the
         adjacent table (dataviz: identity never by color alone) *)
      "<table";
    ];
  check_bool "no external assets" true (not (contains ~sub:"http" html))

let () =
  Alcotest.run "benchdb"
    [
      ( "db",
        [ Alcotest.test_case "JSONL append/load round trip" `Quick
            test_roundtrip ] );
      ( "gate",
        [
          Alcotest.test_case "verdicts on synthetic regressions" `Quick
            test_gate_verdicts;
          Alcotest.test_case "no baseline exits 3" `Quick
            test_gate_no_baseline;
        ] );
      ( "page",
        [
          Alcotest.test_case "golden fixture" `Quick test_page_golden;
          Alcotest.test_case "structural shape" `Quick test_page_shape;
        ] );
    ]
