(* Tests for etrees.faults: fault-plan determinism, scheduler fault
   semantics (stall / crash / hotspot / jitter), the conservation audit
   and termination-bound checker, and the chaos workload's determinism
   regression. *)

module E = Sim.Engine
module FP = Faults.Fault_plan
module W = Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let uniform = Sim.Memory.uniform_config

(* ------------------------------------------------------------------ *)
(* Scheduler fault semantics                                           *)
(* ------------------------------------------------------------------ *)

(* A stall window defers events landing inside it to the window end:
   delays of 100+100 with a stall of [150, 250) land the second
   checkpoint at exactly 250. *)
let test_stall_defers () =
  let plan = { FP.seed = 0; events = [ FP.Stall { pid = 0; at = 150; cycles = 100 } ] } in
  let x = ref 0 and y = ref 0 in
  let stats =
    Faults.Inject.run ~plan ~procs:1 (fun _ ->
        E.delay 100;
        x := E.now ();
        E.delay 100;
        y := E.now ())
  in
  check_int "before the window" 100 !x;
  check_int "deferred to window end" 250 !y;
  check_int "one defer counted" 1 stats.Sim.fault_defers;
  check_int "nobody crashed" 0 stats.Sim.crashed_procs

(* A crashed processor never runs again (its continuation is dropped,
   not unwound), while its peers are unaffected. *)
let test_crash_stops () =
  let plan = { FP.seed = 0; events = [ FP.Crash { pid = 1; at = 200 } ] } in
  let last = [| 0; 0 |] in
  let cleanup_ran = ref false in
  let stats =
    Faults.Inject.run ~plan ~procs:2 (fun p ->
        Fun.protect
          ~finally:(fun () -> if p = 1 then cleanup_ran := true)
          (fun () ->
            while E.now () < 500 do
              E.delay 10;
              last.(p) <- E.now ()
            done))
  in
  check_int "survivor ran to the horizon" 500 last.(0);
  check_bool "victim stopped before the crash time" true (last.(1) < 200);
  check_int "one crash counted" 1 stats.Sim.crashed_procs;
  check_int "crash is not an abort" 0 stats.Sim.aborted_procs;
  (* Crash-stop, not exception: cleanup handlers must NOT run. *)
  check_bool "no unwinding on crash" false !cleanup_ran

(* A hotspot covering every location scales serialized memory latency
   by exactly its factor. *)
let test_hotspot_scales () =
  let writes = 10 in
  let body c _ = for _ = 1 to writes do E.set c 1 done in
  let base =
    let c = ref None in
    Sim.run ~config:uniform ~procs:1 (fun p ->
        let cell = E.cell 0 in
        c := Some cell;
        body cell p)
  in
  let plan =
    FP.hotspot ~num:1 ~den:1 ~from_:0 ~until_:1_000_000 ~factor:5 ()
  in
  let faulted =
    Faults.Inject.run ~config:uniform ~plan ~procs:1 (fun p ->
        body (E.cell 0) p)
  in
  check_int "faulted run is exactly factor x slower"
    (5 * base.Sim.end_clock) faulted.Sim.end_clock

(* Jitter lengthens delays deterministically: two runs agree, and both
   are no faster than the jitter-free run. *)
let test_jitter_deterministic () =
  let plan = FP.jitter ~from_:0 ~until_:10_000 ~amp:64 in
  let body _ = for _ = 1 to 50 do E.delay 10 done in
  let base = Sim.run ~procs:4 body in
  let a = Faults.Inject.run ~plan ~procs:4 body in
  let b = Faults.Inject.run ~plan ~procs:4 body in
  check_int "jittered runs identical" a.Sim.end_clock b.Sim.end_clock;
  check_bool "jitter never speeds things up" true
    (a.Sim.end_clock >= base.Sim.end_clock)

(* The none-plan fast path is byte-for-byte the plain simulator. *)
let test_none_plan_neutral () =
  let body p = for _ = 1 to 20 do E.delay (10 + p) done in
  let a = Sim.run ~procs:8 body in
  let b = Faults.Inject.run ~plan:FP.none ~procs:8 body in
  check_bool "no-fault injection is the identity" true (a = b)

(* ------------------------------------------------------------------ *)
(* Fault-plan construction                                             *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let mk () = FP.ladder ~seed:7 ~procs:64 ~horizon:50_000 ~level:3 in
  check_string "ladder plans replay" (FP.describe (mk ())) (FP.describe (mk ()));
  let other = FP.ladder ~seed:8 ~procs:64 ~horizon:50_000 ~level:3 in
  check_bool "different seed, different plan" true
    (FP.describe (mk ()) <> FP.describe other)

let test_crashes_clamped () =
  (* At least one processor always survives. *)
  let plan = FP.crashes ~seed:3 ~procs:4 ~horizon:1_000 ~count:100 in
  check_int "count clamped to procs - 1" 3 (FP.crash_count plan);
  let pids = FP.faulty_pids plan in
  check_bool "distinct pids in range" true
    (List.sort_uniq compare pids = pids
    && List.for_all (fun p -> p >= 0 && p < 4) pids)

let test_parse_pair () =
  check_bool "8x2000" true (FP.parse_pair "8x2000" = Ok (8, 2000));
  check_bool "rejects zero" true (Result.is_error (FP.parse_pair "0x5"));
  check_bool "rejects junk" true (Result.is_error (FP.parse_pair "8"));
  check_bool "rejects empty" true (Result.is_error (FP.parse_pair "x"))

(* ------------------------------------------------------------------ *)
(* Conservation audit and termination checker units                    *)
(* ------------------------------------------------------------------ *)

let test_conservation_exact () =
  let open Analysis.Conservation in
  let r =
    audit
      {
        enq_started = 10;
        enq_completed = 10;
        dequeued = 8;
        duplicates = 0;
        phantoms = 0;
        residue = Some 2;
        in_flight = 0;
      }
  in
  check_bool "balanced books pass" true r.ok;
  let r =
    audit
      {
        enq_started = 10;
        enq_completed = 10;
        dequeued = 8;
        duplicates = 0;
        phantoms = 0;
        residue = Some 1;
        in_flight = 0;
      }
  in
  check_bool "a lost element fails a fault-free audit" false r.ok;
  let r =
    audit
      {
        enq_started = 10;
        enq_completed = 9;
        dequeued = 8;
        duplicates = 0;
        phantoms = 0;
        residue = Some 0;
        in_flight = 1;
      }
  in
  check_bool "one crash excuses one stranded element" true r.ok;
  let r =
    audit
      {
        enq_started = 10;
        enq_completed = 10;
        dequeued = 10;
        duplicates = 1;
        phantoms = 0;
        residue = Some 0;
        in_flight = 5;
      }
  in
  check_bool "duplicates never pass" false r.ok

let test_check_values () =
  let dups, phantoms =
    Analysis.Conservation.check_values
      ~enq_started:(fun v -> v < 100)
      [ 1; 2; 3; 2; 666 ]
  in
  check_int "one duplicate" 1 dups;
  check_int "one phantom" 1 phantoms

let test_termination_bound () =
  let open Faults.Termination in
  let v = check ~levels:5 ~entries:40 ~started:10 ~stuck:0 () in
  check_bool "entries within started*depth" true v.ok;
  let v = check ~levels:5 ~entries:51 ~started:10 ~stuck:0 () in
  check_bool "excess entries fail" false v.ok;
  let v = check ~started:10 ~stuck:2 () in
  check_bool "stuck processors fail liveness" false v.ok;
  check_bool "no-tree verdict is liveness only" true v.visits_ok

(* ------------------------------------------------------------------ *)
(* Chaos workload: determinism regression                              *)
(* ------------------------------------------------------------------ *)

let chaos_line ~plan name =
  W.Chaos.format_point
    (W.Chaos.run ~seed:1 ~horizon:5_000 ~grace:2_000 ~plan ~procs:8
       (Option.get (W.Methods.pool_method name)))

(* Same (seed, scale, fault plan) => byte-identical report line, for a
   faulty and a fault-free configuration. *)
let test_chaos_deterministic () =
  let faulty = FP.ladder ~seed:7 ~procs:8 ~horizon:5_000 ~level:3 in
  List.iter
    (fun plan ->
      List.iter
        (fun name ->
          check_string
            (Printf.sprintf "%s under %S replays" name (FP.describe plan))
            (chaos_line ~plan name) (chaos_line ~plan name))
        [ "etree"; "mcs" ])
    [ FP.none; faulty ]

(* The full simulation under faults stays clean under the race
   detector. *)
let test_chaos_race_free () =
  let plan = FP.ladder ~seed:7 ~procs:8 ~horizon:4_000 ~level:2 in
  let p =
    W.Chaos.run ~seed:1 ~horizon:4_000 ~grace:2_000 ~races:true ~plan ~procs:8
      (Option.get (W.Methods.pool_method "etree"))
  in
  check_int "no races under faults" 0 (Option.get p.W.Chaos.races)

(* ------------------------------------------------------------------ *)
(* Registries (satellite: single source of method names)               *)
(* ------------------------------------------------------------------ *)

let test_registries () =
  List.iter
    (fun name ->
      check_bool (name ^ " resolves") true
        (W.Methods.pool_method name <> None))
    W.Chaos.default_methods;
  check_bool "etree listed" true (List.mem "etree" W.Methods.pool_method_names);
  check_bool "unknown pool rejected" true (W.Methods.pool_method "nope" = None);
  check_bool "faa counter resolves" true
    (W.Methods.counter_method "faa" <> None);
  check_bool "counter names non-empty" true
    (W.Methods.counter_method_names <> [])

(* ------------------------------------------------------------------ *)
(* Properties: conservation and the balancer-step bound under random   *)
(* fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let plan_gen ~procs ~horizon =
  QCheck.Gen.(
    let* seed = int_bound 10_000 in
    let* stalls = int_bound 4 in
    let* crash = int_bound 2 in
    let* hot = int_bound 1 in
    let plans =
      [ FP.stalls ~seed ~procs ~horizon ~count:stalls ~cycles:(horizon / 10) ]
      @ (if crash > 0 then [ FP.crashes ~seed ~procs ~horizon ~count:crash ]
         else [])
      @
      if hot > 0 then
        [ FP.hotspot ~from_:(horizon / 4) ~until_:(horizon / 2) ~factor:6 () ]
      else []
    in
    return (FP.union ~seed plans))

let plan_arb ~procs ~horizon =
  QCheck.make ~print:FP.describe (plan_gen ~procs ~horizon)

let prop_conservation_and_bound ~procs ~count =
  let horizon = 3_000 in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "conservation + termination bound, %d procs" procs)
    ~count
    (plan_arb ~procs ~horizon)
    (fun plan ->
      let p =
        W.Chaos.run ~seed:1 ~horizon ~grace:2_000 ~plan ~procs
          (Option.get (W.Methods.pool_method "etree"))
      in
      p.W.Chaos.conservation.Analysis.Conservation.ok
      && p.W.Chaos.termination.Faults.Termination.visits_ok)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "scheduler",
        [
          Alcotest.test_case "stall defers to window end" `Quick
            test_stall_defers;
          Alcotest.test_case "crash stops a processor for good" `Quick
            test_crash_stops;
          Alcotest.test_case "hotspot scales memory latency" `Quick
            test_hotspot_scales;
          Alcotest.test_case "jitter is deterministic" `Quick
            test_jitter_deterministic;
          Alcotest.test_case "none-plan is the identity" `Quick
            test_none_plan_neutral;
        ] );
      ( "plans",
        [
          Alcotest.test_case "seed-derived plans replay" `Quick
            test_plan_deterministic;
          Alcotest.test_case "crashes leave a survivor" `Quick
            test_crashes_clamped;
          Alcotest.test_case "parse_pair" `Quick test_parse_pair;
        ] );
      ( "audits",
        [
          Alcotest.test_case "conservation accounting" `Quick
            test_conservation_exact;
          Alcotest.test_case "duplicate/phantom detection" `Quick
            test_check_values;
          Alcotest.test_case "termination bound" `Quick test_termination_bound;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "report is deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "race-free under faults" `Quick
            test_chaos_race_free;
          Alcotest.test_case "method registries" `Quick test_registries;
          qcheck (prop_conservation_and_bound ~procs:8 ~count:12);
          qcheck (prop_conservation_and_bound ~procs:32 ~count:6);
        ] );
    ]
