(* Tests for etrees.trace: histogram arithmetic, the determinism
   contract (tracing never perturbs a simulation; tracing off is
   byte-identical), the Chrome/Perfetto exporter (golden fixture,
   validator), the cycle-attribution books balancing under random fault
   plans, and per-level Elim_stats.merge provenance. *)

module E = Sim.Engine
module W = Workloads
module T = Etrace
module FP = Faults.Fault_plan
module Tree = Core.Elim_tree.Make (E)
module Stats = Core.Elim_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let read_file path =
  (* dune runtest runs in test/; a direct `dune exec` runs from the
     project root. *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_basic () =
  let h = T.Histogram.create () in
  for v = 1 to 1000 do
    T.Histogram.add h v
  done;
  check_int "count" 1000 (T.Histogram.count h);
  check_int "total" 500_500 (T.Histogram.total h);
  (* Buckets keep two significant bits, so any percentile is within
     25% of the exact order statistic. *)
  let near name exact got =
    check_bool
      (Printf.sprintf "%s: %d within 25%% of %d" name got exact)
      true
      (abs (got - exact) * 4 <= exact)
  in
  near "p50" 500 (T.Histogram.percentile h 0.50);
  near "p90" 900 (T.Histogram.percentile h 0.90);
  near "p99" 990 (T.Histogram.percentile h 0.99);
  let s = T.Histogram.summary h in
  check_int "min is exact for small values" 1 s.T.Histogram.min;
  check_bool "max bracket" true (s.T.Histogram.max >= 1000)

let test_histogram_buckets () =
  (* index_of is monotone and every value lands inside its bucket's
     [lo, hi] bounds. *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let i = T.Histogram.index_of v in
      check_bool (Printf.sprintf "index monotone at %d" v) true (i >= !prev);
      prev := i;
      let lo, hi = T.Histogram.bounds i in
      check_bool
        (Printf.sprintf "%d inside bucket [%d,%d]" v lo hi)
        true
        (lo <= v && v <= hi))
    [ 0; 1; 2; 3; 4; 5; 7; 8; 13; 64; 100; 1_000; 65_537; 1_000_000 ]

let test_histogram_merge () =
  let a = T.Histogram.create () and b = T.Histogram.create () in
  for v = 1 to 50 do
    T.Histogram.add a v
  done;
  for v = 51 to 100 do
    T.Histogram.add b v
  done;
  let m = T.Histogram.merge a b in
  check_int "merged count" 100 (T.Histogram.count m);
  check_int "merged total" 5050 (T.Histogram.total m);
  check_bool "merged median is near the seam" true
    (let p = T.Histogram.percentile m 0.50 in
     abs (p - 50) * 4 <= 50)

(* ------------------------------------------------------------------ *)
(* Determinism: tracing never perturbs the simulation                  *)
(* ------------------------------------------------------------------ *)

let pc_line () =
  let p =
    W.Produce_consume.run ~seed:3 ~horizon:5_000 ~workload:50 ~procs:8
      (fun ~procs -> W.Methods.etree_pool ~procs ())
  in
  Printf.sprintf "%d ops %d/M %.3f cyc/op lat %s mem %s"
    p.W.Produce_consume.ops p.W.Produce_consume.throughput_per_m
    p.W.Produce_consume.latency
    (W.Report.latency_cell p.W.Produce_consume.lat)
    (W.Report.ops p.W.Produce_consume.mem)

(* The same run is byte-identical with tracing off (the default), with
   tracing off again (replay), and under a live consuming sink: the
   sinks observe the machine but never advance it. *)
let test_tracing_off_byte_identical () =
  check_bool "tracing starts off" false (T.installed ());
  let base = pc_line () in
  check_string "tracing-off replay" base (pc_line ());
  let seen = ref 0 in
  let traced = T.with_tracing (fun _ -> incr seen) pc_line in
  check_string "traced run is byte-identical" base traced;
  check_bool "the sink actually saw events" true (!seen > 1_000);
  check_bool "trace state restored" false (T.installed ());
  (* Attribution + Chrome sinks via the Traced wrapper, same contract. *)
  let tr = W.Traced.run ~chrome_level:T.Level.Full ~procs:8 pc_line in
  check_string "fully traced run is byte-identical" base tr.W.Traced.value

(* ------------------------------------------------------------------ *)
(* Chrome/Perfetto export                                              *)
(* ------------------------------------------------------------------ *)

(* A tiny deterministic scenario: 2 processors push one token each
   through a width-4 tree.  Its full-detail timeline is the golden
   fixture (regenerate by dumping [T.Chrome.contents c] after a
   deliberate change to the exporter or the instrumentation). *)
let shared_tree_trace () =
  let tree = ref None in
  W.Traced.run ~chrome_level:T.Level.Full ~procs:2 (fun () ->
      ignore
        (Sim.run ~seed:42 ~procs:2 (fun p ->
             (if p = 0 then
                tree :=
                  Some
                    (Tree.create ~capacity:2 (Core.Tree_config.etree 4)));
             E.delay (10 * (p + 1));
             let t : unit Tree.t =
               match !tree with Some t -> t | None -> assert false
             in
             match Tree.traverse t ~kind:Core.Location.Token ~value:None with
             | Tree.Leaf _ | Tree.Eliminated _ -> ())))

(* Location ids come from a process-global counter, so their absolute
   values depend on what allocated before this test: rewrite each
   distinct id to its first-appearance index before comparing. *)
let normalize_locs s =
  let buf = Buffer.create (String.length s) in
  let fresh = Hashtbl.create 16 in
  let n = String.length s in
  let key = {|"loc":|} in
  let rec copy i =
    if i < n then
      if i + 6 <= n && String.sub s i 6 = key then begin
        Buffer.add_string buf key;
        let j = ref (i + 6) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        let id = String.sub s (i + 6) (!j - (i + 6)) in
        let canon =
          match Hashtbl.find_opt fresh id with
          | Some c -> c
          | None ->
              let c = string_of_int (Hashtbl.length fresh) in
              Hashtbl.add fresh id c;
              c
        in
        Buffer.add_string buf canon;
        copy !j
      end
      else begin
        Buffer.add_char buf s.[i];
        copy (i + 1)
      end
  in
  copy 0;
  Buffer.contents buf

let test_chrome_golden () =
  let tr = shared_tree_trace () in
  let c = match tr.W.Traced.chrome with Some c -> c | None -> assert false in
  let got = normalize_locs (T.Chrome.contents c) in
  match Sys.getenv_opt "ETREES_REGEN_FIXTURES" with
  | Some path ->
      (* Regeneration mode: ETREES_REGEN_FIXTURES names the destination
         (normally test/fixtures/trace_small.json); the comparison is
         skipped. *)
      let oc = open_out_bin path in
      output_string oc got;
      close_out oc
  | None ->
      let expected = read_file "fixtures/trace_small.json" in
      check_string "golden Chrome trace" expected got

let test_chrome_validates () =
  let tr = shared_tree_trace () in
  let c = match tr.W.Traced.chrome with Some c -> c | None -> assert false in
  (match T.Chrome.validate (T.Chrome.contents c) with
  | Ok st ->
      check_bool "some events" true (st.T.Chrome.events > 0);
      check_int "one track per processor (+ counters)" 2
        (min 2 st.T.Chrome.tracks)
  | Error e -> Alcotest.failf "valid trace rejected: %s" e);
  (* The validator rejects out-of-order timestamps within a track. *)
  let bad =
    {|{"traceEvents":[{"ph":"B","pid":0,"tid":1,"ts":5,"name":"a"},{"ph":"E","pid":0,"tid":1,"ts":3,"name":"a"}]}|}
  in
  (match T.Chrome.validate bad with
  | Ok _ -> Alcotest.fail "non-monotone track accepted"
  | Error _ -> ());
  match T.Chrome.validate "{not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_json_parser () =
  match T.Json.parse {| {"a": [1, 2.5, null, true, "x\n"], "b": {}} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      let a =
        Option.get (Option.bind (T.Json.member "a" v) T.Json.to_list)
      in
      check_int "array length" 5 (List.length a);
      check_int "int element" 1 (Option.get (T.Json.to_int (List.nth a 0)));
      check_bool "parse error surfaces" true
        (match T.Json.parse "[1," with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Cycle attribution: the books balance                                *)
(* ------------------------------------------------------------------ *)

let test_attribution_exact () =
  let tr = W.Traced.run ~procs:8 pc_line in
  let s = tr.W.Traced.attribution in
  (* Crash-free runs balance exactly, not just within the 1% contract. *)
  check_int "attributed = total"
    s.T.Attribution.total_cycles s.T.Attribution.attributed_cycles;
  check_bool "check agrees" true (T.Attribution.check s);
  check_bool "cycles were observed" true (s.T.Attribution.total_cycles > 0);
  (* The scheduler's own queue-wait counter and the attribution's Queue
     category are two independent accountings of the same cycles. *)
  let tr2 =
    W.Traced.run ~procs:8 (fun () ->
        W.Produce_consume.run ~seed:3 ~horizon:5_000 ~workload:50 ~procs:8
          (fun ~procs -> W.Methods.etree_pool ~procs ()))
  in
  let queue_attr =
    List.assoc T.Attribution.Queue
      tr2.W.Traced.attribution.T.Attribution.by_category
  in
  check_int "queue category = scheduler queue_wait_cycles"
    tr2.W.Traced.value.W.Produce_consume.mem.Sim.queue_wait_cycles queue_attr

let plan_gen ~procs ~horizon =
  QCheck.Gen.(
    let* seed = int_bound 10_000 in
    let* stalls = int_bound 4 in
    let* crash = int_bound 2 in
    let plans =
      [ FP.stalls ~seed ~procs ~horizon ~count:stalls ~cycles:(horizon / 10) ]
      @
      if crash > 0 then [ FP.crashes ~seed ~procs ~horizon ~count:crash ]
      else []
    in
    return (FP.union ~seed plans))

let prop_attribution_balances =
  let procs = 8 and horizon = 3_000 in
  QCheck.Test.make ~name:"attributed cycles = total (±1%) under faults"
    ~count:30
    (QCheck.make ~print:FP.describe (plan_gen ~procs ~horizon))
    (fun plan ->
      let tr =
        W.Traced.run ~procs (fun () ->
            W.Chaos.run ~seed:1 ~horizon ~grace:2_000 ~plan ~procs
              (Option.get (W.Methods.pool_method "etree")))
      in
      T.Attribution.check tr.W.Traced.attribution)

(* ------------------------------------------------------------------ *)
(* Elim_stats.merge provenance (per-layer views of live records)       *)
(* ------------------------------------------------------------------ *)

let drive ?(policy = `Static) procs =
  let tree = ref None in
  ignore
    (Sim.run ~seed:9 ~procs ~abort_after:100_000_000 (fun p ->
         (if p = 0 then
            tree :=
              Some
                (Tree.create ~capacity:procs
                   (Core.Tree_config.etree ~policy 8)));
         E.delay (E.random_int 60);
         let t : unit Tree.t = Option.get !tree in
         let kind : Core.Location.kind =
           if p land 1 = 0 then Token else Anti
         in
         ignore (Tree.traverse t ~kind ~value:None)));
  Option.get !tree

let test_merge_provenance () =
  List.iter
    (fun procs ->
      let tree = drive procs in
      let per_level = Tree.balancer_stats_by_level tree in
      let all = List.concat per_level in
      let whole = Stats.merge all in
      (* Duplicated inputs must not double-count: merge is keyed on the
         physical records, not their values. *)
      let doubled = Stats.merge (all @ all) in
      check_int
        (Printf.sprintf "%d procs: doubled entries" procs)
        (Stats.entries whole) (Stats.entries doubled);
      check_int
        (Printf.sprintf "%d procs: doubled eliminated" procs)
        whole.Stats.eliminated doubled.Stats.eliminated;
      (* Per-layer merges partition the whole-tree merge. *)
      let layer_sum =
        List.fold_left
          (fun acc level -> acc + Stats.entries (Stats.merge level))
          0 per_level
      in
      check_int
        (Printf.sprintf "%d procs: layers partition the tree" procs)
        (Stats.entries whole) layer_sum;
      (* stats_by_level is exactly the per-level merge. *)
      List.iter2
        (fun merged level ->
          check_int
            (Printf.sprintf "%d procs: stats_by_level agrees" procs)
            (Stats.entries (Stats.merge level))
            (Stats.entries merged))
        (Tree.stats_by_level tree) per_level;
      (* Every request entered the root level. *)
      check_int
        (Printf.sprintf "%d procs: root saw every request" procs)
        procs
        (Stats.entries (Stats.merge (List.hd per_level))))
    [ 2; 8; 32 ]

(* The windowed read path (Elim_stats.take_window, consumed by the
   adaptive controllers mid-run) is cursor-based over the same monotone
   counters merge reads — so concurrent traversals interleaved with
   window reads must never double-count: cumulative merges are
   identical before and after draining every pending window, windows
   are bounded by the cumulative counters, and a drained record yields
   an all-zero window. *)
let test_windowed_reads_no_double_count () =
  let policy =
    `Reactive { Adapt.default with Adapt.period = 4 }
  in
  List.iter
    (fun procs ->
      let tree = drive ~policy procs in
      let per_level = Tree.balancer_stats_by_level tree in
      let all = List.concat per_level in
      let before = Stats.merge all in
      check_int
        (Printf.sprintf "%d procs: root saw every request" procs)
        procs
        (Stats.entries (Stats.merge (List.hd per_level)));
      let windows = List.map Stats.take_window all in
      List.iter2
        (fun (s : Stats.t) (w : Stats.window) ->
          check_bool
            (Printf.sprintf "%d procs: window bounded by counters" procs)
            true
            (w.Stats.w_entries <= Stats.entries s
            && w.Stats.w_hits <= s.Stats.eliminated + s.Stats.diffracted
            && w.Stats.w_misses <= s.Stats.misses
            && w.Stats.w_toggled <= s.Stats.toggled))
        all windows;
      let after = Stats.merge all in
      check_int
        (Printf.sprintf "%d procs: merge entries unchanged by drain" procs)
        (Stats.entries before) (Stats.entries after);
      check_int
        (Printf.sprintf "%d procs: merge eliminated unchanged" procs)
        before.Stats.eliminated after.Stats.eliminated;
      check_int
        (Printf.sprintf "%d procs: merge misses unchanged" procs)
        before.Stats.misses after.Stats.misses;
      check_int
        (Printf.sprintf "%d procs: merge toggled unchanged" procs)
        before.Stats.toggled after.Stats.toggled;
      List.iter
        (fun s ->
          let w = Stats.take_window s in
          check_int
            (Printf.sprintf "%d procs: drained record reads zero" procs)
            0
            (w.Stats.w_entries + w.Stats.w_hits + w.Stats.w_misses
           + w.Stats.w_toggled))
        all)
    [ 2; 8; 32 ]

(* ------------------------------------------------------------------ *)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "trace"
    [
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_basic;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tracing off is byte-identical" `Quick
            test_tracing_off_byte_identical;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "golden fixture" `Quick test_chrome_golden;
          Alcotest.test_case "validator" `Quick test_chrome_validates;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "books balance exactly" `Quick
            test_attribution_exact;
          qcheck prop_attribution_balances;
        ] );
      ( "elim_stats",
        [
          Alcotest.test_case "merge provenance at 2/8/32 procs" `Quick
            test_merge_provenance;
          Alcotest.test_case "windowed reads never double-count" `Quick
            test_windowed_reads_no_double_count;
        ] );
    ]
