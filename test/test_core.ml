(* Tests for elimination balancers, trees, pools and stacks: the
   paper's correctness properties checked over deterministic simulated
   schedules. *)

module E = Sim.Engine
module Balancer = Core.Elim_balancer.Make (E)
module Tree = Core.Elim_tree.Make (E)
module Pool = Core.Elim_pool.Make (E)
module Stack = Core.Elim_stack.Make (E)
module Idc = Core.Inc_dec_counter.Make (E)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every simulated test gets a generous cut-off so a bug cannot hang the
   suite; a correct run never reaches it. *)
let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.aborted_procs;
  stats

(* ------------------------------------------------------------------ *)
(* Single balancer                                                     *)
(* ------------------------------------------------------------------ *)

let mk_balancer ?(mode = `Pool) ?(eliminate = true) ~capacity () =
  let location = Balancer.make_location ~capacity in
  Balancer.create ~mode ~eliminate ~id:0 ~prism_widths:[ 4; 2 ] ~spin:8
    ~location ()

let test_balancer_sequential_tokens () =
  (* A lone token never collides; successive tokens alternate wires
     starting at 0. *)
  let b = mk_balancer ~capacity:1 () in
  let wires = ref [] in
  let _ =
    run ~procs:1 (fun _ ->
        for _ = 1 to 4 do
          match Balancer.traverse b ~kind:Token ~value:(Some ()) with
          | Core.Location.Exit w -> wires := w :: !wires
          | Core.Location.Eliminated _ -> Alcotest.fail "sequential elimination"
        done)
  in
  Alcotest.(check (list int)) "toggle alternation" [ 0; 1; 0; 1 ]
    (List.rev !wires)

let test_balancer_pool_anti_separate_toggle () =
  (* Pool mode: anti-tokens have their own toggle, so the first anti
     goes to wire 0 even after a token toggled the token bit. *)
  let b = mk_balancer ~mode:`Pool ~capacity:1 () in
  let out = ref [] in
  let _ =
    run ~procs:1 (fun _ ->
        let record kind =
          match Balancer.traverse b ~kind ~value:None with
          | Core.Location.Exit w -> out := w :: !out
          | Core.Location.Eliminated _ -> Alcotest.fail "elimination"
        in
        record Token;
        record Anti;
        record Anti)
  in
  Alcotest.(check (list int)) "anti toggle independent" [ 0; 0; 1 ]
    (List.rev !out)

let test_balancer_stack_anti_follows_token () =
  (* Stack mode: one bit; a token leaves by the old value, an anti by
     the new value, so token-then-anti always meet on the same wire. *)
  let b = mk_balancer ~mode:`Stack ~capacity:1 () in
  let out = ref [] in
  let _ =
    run ~procs:1 (fun _ ->
        let record kind =
          match Balancer.traverse b ~kind ~value:None with
          | Core.Location.Exit w -> out := w :: !out
          | Core.Location.Eliminated _ -> Alcotest.fail "elimination"
        in
        record Token; (* bit 0->1, exits 0 *)
        record Anti;  (* bit 1->0, exits new = 0 *)
        record Token; (* 0->1, exits 0 *)
        record Token; (* 1->0, exits 1 *)
        record Anti;  (* 0->1, exits 1 *)
        record Anti   (* 1->0, exits 0 *))
  in
  Alcotest.(check (list int)) "anti retraces token" [ 0; 0; 0; 1; 1; 0 ]
    (List.rev !out)

(* Drive [tokens] and [antis] concurrent traversals of one balancer and
   collect outcomes per kind. *)
let drive_balancer ?seed ?(mode = `Pool) ~tokens ~antis () =
  let procs = tokens + antis in
  let b = mk_balancer ~mode ~capacity:procs () in
  let outcomes = Array.make procs (`Pending) in
  let _ =
    run ?seed ~procs (fun p ->
        let kind : Core.Location.kind = if p < tokens then Token else Anti in
        let value = if kind = Token then Some p else None in
        E.delay (E.random_int 40);
        outcomes.(p) <-
          (match Balancer.traverse b ~kind ~value with
          | Core.Location.Exit w -> `Exit w
          | Core.Location.Eliminated v -> `Eliminated v))
  in
  (b, outcomes)

let count_outcomes outcomes ~kind_of =
  (* returns (y0, y1, eliminated) per kind *)
  let y = [| [| 0; 0 |]; [| 0; 0 |] |] and e = [| 0; 0 |] in
  Array.iteri
    (fun p o ->
      let k = kind_of p in
      match o with
      | `Exit w -> y.(k).(w) <- y.(k).(w) + 1
      | `Eliminated _ -> e.(k) <- e.(k) + 1
      | `Pending -> Alcotest.fail "traversal did not complete")
    outcomes;
  (y, e)

let test_balancer_quiescence_and_pairing () =
  let tokens = 20 and antis = 14 in
  let _, outcomes = drive_balancer ~tokens ~antis () in
  let _, e = count_outcomes outcomes ~kind_of:(fun p -> if p < tokens then 0 else 1) in
  check_int "eliminated tokens = eliminated antis" e.(0) e.(1)

let test_balancer_pool_balancing_property () =
  (* Thm 2.6: with x >= x-bar, each output wire carries at least as many
     tokens as anti-tokens in the quiescent state. *)
  List.iter
    (fun seed ->
      let tokens = 24 and antis = 16 in
      let _, outcomes = drive_balancer ~seed ~tokens ~antis () in
      let y, _ =
        count_outcomes outcomes ~kind_of:(fun p -> if p < tokens then 0 else 1)
      in
      check_bool "y0 >= y0-bar" true (y.(0).(0) >= y.(1).(0));
      check_bool "y1 >= y1-bar" true (y.(0).(1) >= y.(1).(1)))
    [ 1; 2; 3; 4; 5 ]

let test_balancer_elimination_exchanges_values () =
  (* Every eliminated anti-token returns the value of a distinct token
     (Lemma 2.8). *)
  let tokens = 16 and antis = 16 in
  let _, outcomes = drive_balancer ~tokens ~antis () in
  let got = ref [] in
  Array.iteri
    (fun p o ->
      if p >= tokens then
        match o with
        | `Eliminated (Some v) -> got := v :: !got
        | `Eliminated None -> Alcotest.fail "anti eliminated without a value"
        | _ -> ())
    outcomes;
  let sorted = List.sort_uniq compare !got in
  check_int "values are distinct token payloads" (List.length !got)
    (List.length sorted);
  List.iter
    (fun v -> check_bool "value came from a token" true (v >= 0 && v < tokens))
    !got

let test_balancer_eliminations_happen_under_load () =
  let b, _ = drive_balancer ~tokens:32 ~antis:32 () in
  check_bool "some eliminating collisions occurred" true
    ((Balancer.stats b).Core.Elim_stats.eliminated > 0)

let test_balancer_stats_conservation () =
  (* Every traversal ends in exactly one of three ways, so in any
     quiescent state: entries = eliminated + diffracted + toggled, and
     the collision counts are even (they count individuals, two per
     pair). *)
  List.iter
    (fun (tokens, antis, seed) ->
      let b, _ = drive_balancer ~seed ~tokens ~antis () in
      let s = Balancer.stats b in
      check_int "conservation"
        (Core.Elim_stats.entries s)
        (s.Core.Elim_stats.eliminated + s.Core.Elim_stats.diffracted
       + s.Core.Elim_stats.toggled);
      check_int "eliminations pair up" 0 (s.Core.Elim_stats.eliminated mod 2);
      check_int "diffractions pair up" 0 (s.Core.Elim_stats.diffracted mod 2))
    [ (20, 20, 1); (31, 7, 2); (3, 40, 3); (1, 1, 4); (50, 50, 5) ]

let test_balancer_no_elimination_when_disabled () =
  let tokens = 16 and antis = 16 in
  let procs = tokens + antis in
  let b = mk_balancer ~eliminate:false ~capacity:procs () in
  let _ =
    run ~procs (fun p ->
        let kind : Core.Location.kind = if p < tokens then Token else Anti in
        match Balancer.traverse b ~kind ~value:None with
        | Core.Location.Eliminated _ ->
            Alcotest.fail "elimination disabled but occurred"
        | Core.Location.Exit _ -> ())
  in
  check_int "stats agree" 0 (Balancer.stats b).Core.Elim_stats.eliminated

(* ------------------------------------------------------------------ *)
(* Trees: balance, step and gap-step properties                        *)
(* ------------------------------------------------------------------ *)

let drive_tree ?seed ?(mode = `Pool) ?(eliminate = true) ?(leaf_order = `Natural)
    ~width ~tokens ~antis () =
  let procs = max 1 (tokens + antis) in
  let tree =
    Tree.create ~mode ~eliminate ~leaf_order ~capacity:procs
      (Core.Tree_config.etree width)
  in
  let y = Array.make width 0 and ybar = Array.make width 0 in
  let elim_tokens = ref 0 and elim_antis = ref 0 in
  let _ =
    run ?seed ~procs (fun p ->
        let kind : Core.Location.kind = if p < tokens then Token else Anti in
        if p < tokens + antis then begin
          E.delay (E.random_int 60);
          match Tree.traverse tree ~kind ~value:None with
          | Tree.Leaf i -> (
              match kind with
              | Token -> y.(i) <- y.(i) + 1
              | Anti -> ybar.(i) <- ybar.(i) + 1)
          | Tree.Eliminated _ -> (
              match kind with
              | Token -> incr elim_tokens
              | Anti -> incr elim_antis)
        end)
  in
  (tree, y, ybar, !elim_tokens, !elim_antis)

let test_tree_level_flow_conservation () =
  (* Tokens that are not eliminated at level d all enter level d+1:
     entries(d+1) = entries(d) - eliminated(d). *)
  let tree, _, _, _, _ = drive_tree ~seed:13 ~width:8 ~tokens:40 ~antis:40 () in
  let levels = Tree.stats_by_level tree in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        check_int "level flow"
          (Core.Elim_stats.entries a - a.Core.Elim_stats.eliminated)
          (Core.Elim_stats.entries b);
        walk rest
    | _ -> ()
  in
  walk levels

let test_tree_tokens_only_step_property () =
  (* A stack-mode (counting) tree with tokens only must produce the step
     property of counting trees: leaf i receives ceil((n - i) / w). *)
  List.iter
    (fun (width, n, seed) ->
      let _, y, _, _, _ =
        drive_tree ~seed ~mode:`Stack ~leaf_order:`Interleaved ~width ~tokens:n
          ~antis:0 ()
      in
      Array.iteri
        (fun i yi ->
          let expected = (n - i + width - 1) / width in
          check_int (Printf.sprintf "leaf %d (w=%d n=%d)" i width n) expected yi)
        y)
    [ (2, 9, 1); (4, 17, 2); (8, 40, 3); (8, 5, 4); (16, 33, 5) ]

let test_tree_pool_balancing_at_leaves () =
  (* Lemma 2.1: in quiescent states with x >= x-bar, every leaf has
     y_i >= ybar_i. *)
  List.iter
    (fun seed ->
      let _, y, ybar, et, ea =
        drive_tree ~seed ~width:8 ~tokens:30 ~antis:22 ()
      in
      check_int "pairing" et ea;
      Array.iteri
        (fun i yi ->
          check_bool
            (Printf.sprintf "leaf %d: %d tokens >= %d antis" i yi ybar.(i))
            true (yi >= ybar.(i)))
        y)
    [ 7; 8; 9; 10 ]

let prop_gap_step_property =
  (* Lemma 3.2: quiescent IncDecCounter[w] satisfies
     0 <= (y_i - ybar_i) - (y_j - ybar_j) <= 1 for all i < j. *)
  QCheck.Test.make ~name:"gap step property (stack tree)" ~count:40
    QCheck.(triple (int_range 0 3) (int_range 0 40) (int_range 0 40))
    (fun (wexp, tokens, antis) ->
      let width = 1 lsl (wexp + 1) in
      let _, y, ybar, _, _ =
        drive_tree
          ~seed:(tokens + (antis * 100) + wexp)
          ~mode:`Stack ~leaf_order:`Interleaved ~width ~tokens ~antis ()
      in
      let ok = ref true in
      for i = 0 to width - 1 do
        for j = i + 1 to width - 1 do
          let gap = y.(i) - ybar.(i) - (y.(j) - ybar.(j)) in
          if gap < 0 || gap > 1 then ok := false
        done
      done;
      !ok)

let prop_pool_balancing_random =
  QCheck.Test.make ~name:"pool balancing at leaves (random loads)" ~count:40
    QCheck.(triple (int_range 0 3) (int_range 0 40) (int_range 0 40))
    (fun (wexp, a, b) ->
      let tokens = max a b and antis = min a b in
      let width = 1 lsl (wexp + 1) in
      let _, y, ybar, et, ea =
        drive_tree
          ~seed:(a + (b * 97) + wexp)
          ~width ~tokens ~antis ()
      in
      et = ea
      && Array.for_all Fun.id (Array.mapi (fun i yi -> yi >= ybar.(i)) y))

(* ------------------------------------------------------------------ *)
(* Figure 1: the worked stack example                                  *)
(* ------------------------------------------------------------------ *)

let test_figure_1_example () =
  (* Width-4 stack tree, sequential E0 E1 E2 D3; the paper's Figure 1
     says the enqueues land on y0, y1, y2, D3 pops E2, then a further
     token would land on y2 and a further anti-token on y1. *)
  let tree =
    Tree.create ~mode:`Stack ~leaf_order:`Interleaved ~capacity:1
      (Core.Tree_config.etree 4)
  in
  let leaf kind =
    match Tree.traverse tree ~kind ~value:None with
    | Tree.Leaf i -> i
    | Tree.Eliminated _ -> Alcotest.fail "sequential elimination"
  in
  let _ =
    run ~procs:1 (fun _ ->
        check_int "E0 -> y0" 0 (leaf Token);
        check_int "E1 -> y1" 1 (leaf Token);
        check_int "E2 -> y2" 2 (leaf Token);
        check_int "D3 -> y2 (pops E2)" 2 (leaf Anti);
        check_int "next token -> y2" 2 (leaf Token);
        (* undo the probe token with a probe anti (pops it), then the
           paper's claim: the next anti lands on y1. *)
        check_int "probe anti -> y2" 2 (leaf Anti);
        check_int "next anti -> y1" 1 (leaf Anti))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Elimination pool: P1/P2 and conservation                            *)
(* ------------------------------------------------------------------ *)

let test_pool_sequential () =
  let pool = Pool.create ~capacity:1 ~width:4 () in
  let _ =
    run ~procs:1 (fun _ ->
        Pool.enqueue pool 1;
        Pool.enqueue pool 2;
        Pool.enqueue pool 3;
        let take () =
          match Pool.dequeue pool with
          | Some v -> v
          | None -> Alcotest.fail "dequeue failed on non-empty pool"
        in
        let got = List.sort compare [ take (); take (); take () ] in
        Alcotest.(check (list int)) "all values dequeued" [ 1; 2; 3 ] got)
  in
  ()

(* Each of [procs] processors enqueues [per_proc] unique values and
   dequeues [per_proc] values; P2 says every dequeue succeeds, and
   conservation says the dequeued multiset equals the enqueued one. *)
let pool_conservation ?seed ~procs ~per_proc ~width () =
  let pool = Pool.create ~capacity:procs ~width () in
  let dequeued = Array.make (procs * per_proc) (-1) in
  let slot = ref 0 in
  let _ =
    run ?seed ~procs (fun p ->
        for i = 0 to per_proc - 1 do
          Pool.enqueue pool ((p * per_proc) + i);
          E.delay (E.random_int 30);
          match Pool.dequeue pool with
          | Some v ->
              let s = !slot in
              incr slot;
              dequeued.(s) <- v
          | None -> Alcotest.fail "P2 violated: dequeue failed"
        done)
  in
  let residue = ref (-1) in
  let _ = run ~procs:1 (fun _ -> residue := Pool.residue pool) in
  check_int "pool drained" 0 !residue;
  Array.to_list dequeued |> List.sort compare

let test_pool_conservation () =
  let got = pool_conservation ~procs:16 ~per_proc:6 ~width:8 () in
  Alcotest.(check (list int))
    "dequeued = enqueued" (List.init (16 * 6) Fun.id) got

let test_pool_heavy_elimination_still_conserves () =
  let pool = Pool.create ~capacity:64 ~width:4 () in
  let got = ref [] in
  let _ =
    run ~procs:64 (fun p ->
        if p land 1 = 0 then Pool.enqueue pool p
        else
          match Pool.dequeue pool with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "dequeue failed")
  in
  let got = List.sort compare !got in
  let expected = List.init 32 (fun i -> 2 * i) in
  Alcotest.(check (list int)) "32 producers matched 32 consumers" expected got

let test_pool_residue_counts_surplus () =
  (* Unbalanced load: residue equals enqueues minus dequeues once
     quiescent. *)
  let pool = Pool.create ~capacity:24 ~width:4 () in
  let residue = ref (-1) in
  let _ =
    run ~procs:24 (fun p ->
        if p < 16 then Pool.enqueue pool p
        else ignore (Pool.dequeue pool))
  in
  let _ = run ~procs:1 (fun _ -> residue := Pool.residue pool) in
  check_int "residue = 16 - 8" 8 !residue

let test_pool_reusable_after_quiescence () =
  (* A pool that went through a heavy concurrent phase keeps working
     sequentially afterwards: all locks free, prisms harmless. *)
  let pool = Pool.create ~capacity:32 ~width:4 () in
  let _ =
    run ~procs:32 (fun p ->
        Pool.enqueue pool p;
        ignore (Pool.dequeue pool))
  in
  let ok = ref false in
  let _ =
    run ~procs:1 (fun _ ->
        Pool.enqueue pool 12345;
        ok := Pool.dequeue pool = Some 12345)
  in
  check_bool "sequential reuse after heavy phase" true !ok

let test_pool_dequeue_waits_for_enqueue () =
  (* A dequeuer that arrives before any enqueue must wait and then
     succeed (deterministic termination, the paper's headline property
     vs. the randomized methods). *)
  let pool = Pool.create ~capacity:2 ~width:2 () in
  let got = ref None in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then got := Pool.dequeue pool
        else begin
          E.delay 5_000;
          Pool.enqueue pool 99
        end)
  in
  Alcotest.(check (option int)) "late enqueue satisfied dequeue" (Some 99) !got

let test_pool_stop_drains () =
  (* With more dequeuers than values, [stop] bounds the wait. *)
  let pool = Pool.create ~capacity:4 ~width:2 () in
  let stop_flag = ref false in
  let successes = ref 0 and gave_up = ref 0 in
  let _ =
    run ~procs:4 (fun p ->
        if p = 0 then begin
          Pool.enqueue pool 7;
          E.delay 2_000;
          stop_flag := true
        end
        else
          match Pool.dequeue ~stop:(fun () -> !stop_flag) pool with
          | Some _ -> incr successes
          | None -> incr gave_up)
  in
  check_int "one dequeue got the value" 1 !successes;
  check_int "the others gave up at stop" 2 !gave_up

let prop_pool_conservation_random =
  QCheck.Test.make ~name:"pool conservation (random sizes/seeds)" ~count:15
    QCheck.(triple (int_range 1 24) (int_range 1 4) (int_range 0 2))
    (fun (procs, per_proc, wexp) ->
      let width = 1 lsl (wexp + 1) in
      let got =
        pool_conservation ~seed:(procs + (per_proc * 31)) ~procs ~per_proc
          ~width ()
      in
      got = List.init (procs * per_proc) Fun.id)

let prop_pool_sequential_bag_model =
  (* Sequential pool executions against a bag model: a dequeue must
     return some not-yet-dequeued enqueued value (the pool imposes no
     order), and never fail while the bag is non-empty. *)
  QCheck.Test.make ~name:"pool matches sequential bag model" ~count:60
    QCheck.(list (int_range 0 9))
    (fun program ->
      let pool = Pool.create ~capacity:1 ~width:4 () in
      let bag = Hashtbl.create 16 in
      let counter = ref 0 in
      let ok = ref true in
      let _ =
        Sim.run ~procs:1 ~abort_after:50_000_000 (fun _ ->
            List.iter
              (fun cmd ->
                if cmd = 0 then begin
                  if Hashtbl.length bag > 0 then
                    match Pool.dequeue pool with
                    | Some v ->
                        if Hashtbl.mem bag v then Hashtbl.remove bag v
                        else ok := false
                    | None -> ok := false
                end
                else begin
                  incr counter;
                  Hashtbl.replace bag !counter ();
                  Pool.enqueue pool !counter
                end)
              program)
      in
      !ok)

(* ------------------------------------------------------------------ *)
(* Stack-like pool                                                     *)
(* ------------------------------------------------------------------ *)

let test_stack_sequential_lifo () =
  (* Thm 3.5: sequential executions are exactly LIFO. *)
  let stack = Stack.create ~capacity:1 ~width:4 () in
  let _ =
    run ~procs:1 (fun _ ->
        let pop () =
          match Stack.pop stack with
          | Some v -> v
          | None -> Alcotest.fail "pop failed"
        in
        Stack.push stack 1;
        Stack.push stack 2;
        Stack.push stack 3;
        check_int "pop 3" 3 (pop ());
        Stack.push stack 4;
        check_int "pop 4" 4 (pop ());
        check_int "pop 2" 2 (pop ());
        check_int "pop 1" 1 (pop ()))
  in
  ()

let prop_stack_sequential_model =
  (* Random sequential push/pop programs against a reference stack. *)
  let gen = QCheck.(list (int_range 0 9)) in
  QCheck.Test.make ~name:"stack-like pool is LIFO sequentially" ~count:60 gen
    (fun program ->
      (* value > 0: push that many times; 0: pop if non-empty *)
      let stack = Stack.create ~capacity:1 ~width:4 () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      let _ =
        Sim.run ~procs:1 ~abort_after:50_000_000 (fun _ ->
            List.iter
              (fun cmd ->
                if cmd = 0 then (
                  match !model with
                  | [] -> ()
                  | top :: rest -> (
                      match Stack.pop stack with
                      | Some v ->
                          if v <> top then ok := false;
                          model := rest
                      | None -> ok := false))
                else begin
                  incr counter;
                  Stack.push stack !counter;
                  model := !counter :: !model
                end)
              program)
      in
      !ok)

let test_stack_concurrent_conservation () =
  let stack = Stack.create ~capacity:32 ~width:4 () in
  let got = ref [] in
  let _ =
    run ~procs:32 (fun p ->
        if p < 16 then Stack.push stack p
        else
          match Stack.pop stack with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "pop failed")
  in
  Alcotest.(check (list int))
    "popped multiset = pushed multiset" (List.init 16 Fun.id)
    (List.sort compare !got)

(* ------------------------------------------------------------------ *)
(* Randomized stress: mixed concurrent programs                        *)
(* ------------------------------------------------------------------ *)

(* Each processor runs a random enqueue/dequeue program whose every
   prefix has #enq >= #deq (so no processor can block forever waiting
   on its own future enqueues).  Conservation must hold for the whole
   run, across widths, processor counts and seeds. *)
let stress_programs ~rng ~procs ~len =
  List.init procs (fun _ ->
      let credit = ref 0 in
      List.init len (fun _ ->
          if !credit > 0 && Random.State.bool rng then begin
            decr credit;
            `Dequeue
          end
          else begin
            incr credit;
            `Enqueue
          end))

let run_stress ~seed ~procs ~len ~put ~take =
  let rng = Random.State.make [| seed |] in
  let programs = Array.of_list (stress_programs ~rng ~procs ~len) in
  let enqueued = ref [] and dequeued = ref [] in
  let fresh = ref 0 in
  let _ =
    run ~seed ~procs (fun p ->
        List.iter
          (fun op ->
            E.delay (E.random_int 25);
            match op with
            | `Enqueue ->
                let v = !fresh in
                incr fresh;
                enqueued := v :: !enqueued;
                put v
            | `Dequeue -> (
                match take () with
                | Some v -> dequeued := v :: !dequeued
                | None -> Alcotest.fail "stress dequeue failed"))
          programs.(p))
  in
  (List.sort compare !enqueued, List.sort compare !dequeued)

let test_pool_stress () =
  List.iter
    (fun (procs, width, seed) ->
      let pool = Pool.create ~capacity:procs ~width () in
      let enq, deq =
        run_stress ~seed ~procs ~len:30
          ~put:(fun v -> Pool.enqueue pool v)
          ~take:(fun () -> Pool.dequeue pool)
      in
      check_bool "dequeued is a sub-multiset of enqueued" true
        (List.for_all (fun v -> List.mem v enq) deq);
      check_int "no duplicates"
        (List.length deq)
        (List.length (List.sort_uniq compare deq));
      (* Drain the surplus and check full conservation. *)
      let surplus = List.length enq - List.length deq in
      let rest = ref [] in
      let _ =
        run ~procs:1 (fun _ ->
            for _ = 1 to surplus do
              match Pool.dequeue pool with
              | Some v -> rest := v :: !rest
              | None -> Alcotest.fail "drain failed"
            done)
      in
      Alcotest.(check (list int))
        "conservation after drain" enq
        (List.sort compare (deq @ !rest)))
    [ (8, 2, 1); (24, 8, 2); (48, 32, 3); (33, 4, 4) ]

let test_stack_stress () =
  List.iter
    (fun (procs, width, seed) ->
      let stack = Stack.create ~capacity:procs ~width () in
      let enq, deq =
        run_stress ~seed ~procs ~len:30
          ~put:(fun v -> Stack.push stack v)
          ~take:(fun () -> Stack.pop stack)
      in
      let surplus = List.length enq - List.length deq in
      let rest = ref [] in
      let _ =
        run ~procs:1 (fun _ ->
            for _ = 1 to surplus do
              match Stack.pop stack with
              | Some v -> rest := v :: !rest
              | None -> Alcotest.fail "drain failed"
            done)
      in
      Alcotest.(check (list int))
        "conservation after drain" enq
        (List.sort compare (deq @ !rest)))
    [ (8, 2, 5); (24, 8, 6); (48, 32, 7) ]

(* ------------------------------------------------------------------ *)
(* IncDecCounter                                                       *)
(* ------------------------------------------------------------------ *)

let test_idc_increment_only_dense () =
  (* With elimination off and tokens only this is a counting tree:
     n increments receive exactly 0..n-1. *)
  let procs = 24 in
  let c = Idc.create ~eliminate:false ~capacity:procs ~width:4 () in
  let got = Array.make procs (-1) in
  let _ =
    run ~procs (fun p ->
        match Idc.increment c with
        | Idc.Slot v -> got.(p) <- v
        | Idc.Paired -> Alcotest.fail "paired with elimination disabled")
  in
  Alcotest.(check (list int))
    "dense values" (List.init procs Fun.id)
    (List.sort compare (Array.to_list got))

let test_idc_inc_dec_net () =
  (* Phased: increments first, then decrements — decrements receive the
     most recently handed out values (stack-pointer behaviour) and the
     net count is zero. *)
  let c = Idc.create ~eliminate:false ~capacity:8 ~width:2 () in
  let incs = ref [] and decs = ref [] in
  let _ =
    run ~procs:8 (fun p ->
        if p < 6 then begin
          match Idc.increment c with
          | Idc.Slot v -> incs := v :: !incs
          | Idc.Paired -> assert false
        end
        else begin
          (* Let all increments finish first. *)
          E.delay 50_000;
          match Idc.decrement c with
          | Idc.Slot v -> decs := v :: !decs
          | Idc.Paired -> assert false
        end)
  in
  Alcotest.(check (list int))
    "increments dense" (List.init 6 Fun.id)
    (List.sort compare !incs);
  Alcotest.(check (list int))
    "decrements return the top two" [ 4; 5 ]
    (List.sort compare !decs)

let test_idc_elimination_pairs () =
  let procs = 32 in
  let c = Idc.create ~capacity:procs ~width:4 () in
  let paired_inc = ref 0 and paired_dec = ref 0 in
  let _ =
    run ~procs (fun p ->
        if p land 1 = 0 then (
          match Idc.increment c with
          | Idc.Paired -> incr paired_inc
          | Idc.Slot _ -> ())
        else
          match Idc.decrement c with
          | Idc.Paired -> incr paired_dec
          | Idc.Slot _ -> ())
  in
  check_int "pairings match" !paired_inc !paired_dec

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let test_tree_diagnostics_sequential () =
  (* Sequential tokens never collide, so every request visits exactly
     depth balancers plus its leaf, and all of them reach leaves. *)
  let tree = Tree.create ~capacity:1 (Core.Tree_config.etree 8) in
  let _ =
    run ~procs:1 (fun _ ->
        for _ = 1 to 10 do
          match Tree.traverse tree ~kind:Token ~value:None with
          | Tree.Leaf _ -> ()
          | Tree.Eliminated _ -> Alcotest.fail "sequential elimination"
        done)
  in
  Alcotest.(check (float 0.001))
    "expected nodes = depth + 1" 4.0
    (Tree.expected_nodes_traversed tree);
  Alcotest.(check (float 0.001))
    "all requests reach leaves" 1.0
    (Tree.leaf_access_fraction tree);
  Tree.reset_stats tree;
  Alcotest.(check (float 0.001))
    "reset clears" 0.0
    (Tree.expected_nodes_traversed tree)

let test_kind_utilities () =
  check_bool "opposite Token" true (Core.Location.opposite Token = Anti);
  check_bool "opposite is an involution" true
    (Core.Location.opposite (Core.Location.opposite Anti) = Anti)

let test_spin_base_override () =
  let fast = Core.Tree_config.etree ~spin_base:8 32 in
  check_int "root spin" 8 fast.levels.(0).spin;
  check_int "floor at 2" 2 fast.levels.(4).spin

let test_config_validation () =
  Alcotest.check_raises "width not a power of two"
    (Invalid_argument "Tree_config: width must be a power of two") (fun () ->
      ignore (Core.Tree_config.etree 12));
  let c = Core.Tree_config.etree 32 in
  check_int "five levels for width 32" 5 (Array.length c.levels);
  Alcotest.(check (list int))
    "root prisms per the paper" [ 32; 8 ]
    c.levels.(0).prism_widths;
  Alcotest.(check (list int))
    "depth-1 prisms per the paper" [ 16; 4 ]
    c.levels.(1).prism_widths;
  check_int "root spin" 64 c.levels.(0).spin;
  let d = Core.Tree_config.dtree 32 in
  Alcotest.(check (list int)) "dtree single prism" [ 8 ] d.levels.(0).prism_widths

let test_tree_width_one () =
  let tree =
    Tree.create ~capacity:2 (Core.Tree_config.etree 1)
  in
  let _ =
    run ~procs:2 (fun _ ->
        match Tree.traverse tree ~kind:Token ~value:None with
        | Tree.Leaf 0 -> ()
        | _ -> Alcotest.fail "width-1 tree must route to leaf 0")
  in
  ()

(* ------------------------------------------------------------------ *)
(* Capacity validation                                                 *)
(* ------------------------------------------------------------------ *)

let expect_invalid_arg ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument mentioning %S" substring
  | exception Invalid_argument msg ->
      check_bool
        (Printf.sprintf "message %S mentions %S" msg substring)
        true
        (let sub_len = String.length substring in
         let rec scan i =
           i + sub_len <= String.length msg
           && (String.sub msg i sub_len = substring || scan (i + 1))
         in
         scan 0)

let test_capacity_nonpositive_rejected () =
  expect_invalid_arg ~substring:"capacity" (fun () ->
      Pool.create ~capacity:0 ~width:4 ());
  expect_invalid_arg ~substring:"capacity" (fun () ->
      Stack.create ~capacity:(-1) ~width:4 ())

let test_capacity_below_procs_rejected_at_create () =
  (* Created inside a run, the structure knows how many processors may
     traverse it and must refuse an announcement array they overflow. *)
  let _ =
    run ~procs:6 (fun p ->
        if p = 0 then
          expect_invalid_arg ~substring:"capacity" (fun () ->
              Pool.create ~capacity:4 ~width:4 ()))
  in
  ()

let test_capacity_exceeded_at_traverse () =
  (* Created outside any run, the check falls to the first traversal by
     an out-of-range processor. *)
  let tree = Tree.create ~capacity:2 (Core.Tree_config.etree 4) in
  let oob = Sim.Engine.cell 0 in
  let _ =
    run ~procs:4 (fun p ->
        if p < 2 then
          match Tree.traverse tree ~kind:Token ~value:None with
          | Tree.Leaf _ | Tree.Eliminated _ -> ()
        else
          expect_invalid_arg ~substring:"capacity" (fun () ->
              ignore (Tree.traverse tree ~kind:Token ~value:None));
        if p >= 2 then ignore (Sim.Engine.fetch_and_add oob 1))
  in
  check_int "both out-of-range processors were refused" 2 oob.Sim.Memory.v

let () =
  Alcotest.run "core"
    [
      ( "balancer",
        [
          Alcotest.test_case "sequential token toggling" `Quick
            test_balancer_sequential_tokens;
          Alcotest.test_case "pool anti toggle independent" `Quick
            test_balancer_pool_anti_separate_toggle;
          Alcotest.test_case "stack anti follows token" `Quick
            test_balancer_stack_anti_follows_token;
          Alcotest.test_case "quiescence and pairing" `Quick
            test_balancer_quiescence_and_pairing;
          Alcotest.test_case "pool balancing property" `Quick
            test_balancer_pool_balancing_property;
          Alcotest.test_case "elimination exchanges values" `Quick
            test_balancer_elimination_exchanges_values;
          Alcotest.test_case "eliminations happen under load" `Quick
            test_balancer_eliminations_happen_under_load;
          Alcotest.test_case "eliminate:false honoured" `Quick
            test_balancer_no_elimination_when_disabled;
          Alcotest.test_case "stats conservation" `Quick
            test_balancer_stats_conservation;
        ] );
      ( "tree",
        [
          Alcotest.test_case "tokens-only step property" `Quick
            test_tree_tokens_only_step_property;
          Alcotest.test_case "pool balancing at leaves" `Quick
            test_tree_pool_balancing_at_leaves;
          Alcotest.test_case "figure 1 worked example" `Quick
            test_figure_1_example;
          Alcotest.test_case "width-1 tree" `Quick test_tree_width_one;
          Alcotest.test_case "level flow conservation" `Quick
            test_tree_level_flow_conservation;
          QCheck_alcotest.to_alcotest prop_gap_step_property;
          QCheck_alcotest.to_alcotest prop_pool_balancing_random;
        ] );
      ( "pool",
        [
          Alcotest.test_case "sequential" `Quick test_pool_sequential;
          Alcotest.test_case "conservation" `Quick test_pool_conservation;
          Alcotest.test_case "heavy elimination conserves" `Quick
            test_pool_heavy_elimination_still_conserves;
          Alcotest.test_case "dequeue waits for enqueue" `Quick
            test_pool_dequeue_waits_for_enqueue;
          Alcotest.test_case "residue counts surplus" `Quick
            test_pool_residue_counts_surplus;
          Alcotest.test_case "reusable after quiescence" `Quick
            test_pool_reusable_after_quiescence;
          Alcotest.test_case "stop drains waiting dequeues" `Quick
            test_pool_stop_drains;
          QCheck_alcotest.to_alcotest prop_pool_conservation_random;
          QCheck_alcotest.to_alcotest prop_pool_sequential_bag_model;
        ] );
      ( "stack",
        [
          Alcotest.test_case "sequential LIFO" `Quick test_stack_sequential_lifo;
          Alcotest.test_case "concurrent conservation" `Quick
            test_stack_concurrent_conservation;
          QCheck_alcotest.to_alcotest prop_stack_sequential_model;
        ] );
      ( "stress",
        [
          Alcotest.test_case "pool mixed programs" `Slow test_pool_stress;
          Alcotest.test_case "stack mixed programs" `Slow test_stack_stress;
        ] );
      ( "inc_dec_counter",
        [
          Alcotest.test_case "increment-only dense" `Quick
            test_idc_increment_only_dense;
          Alcotest.test_case "inc/dec net" `Quick test_idc_inc_dec_net;
          Alcotest.test_case "elimination pairs" `Quick
            test_idc_elimination_pairs;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation and defaults" `Quick
            test_config_validation;
          Alcotest.test_case "spin_base override" `Quick
            test_spin_base_override;
          Alcotest.test_case "kind utilities" `Quick test_kind_utilities;
          Alcotest.test_case "tree diagnostics (sequential)" `Quick
            test_tree_diagnostics_sequential;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "non-positive rejected" `Quick
            test_capacity_nonpositive_rejected;
          Alcotest.test_case "below procs rejected at create" `Quick
            test_capacity_below_procs_rejected_at_create;
          Alcotest.test_case "exceeded at traverse" `Quick
            test_capacity_exceeded_at_traverse;
        ] );
    ]
