(* Direct property tests for Sim.Event_heap — the per-event hot-path
   structure the @allocheck census certifies as zero-alloc beyond the
   entry record.  The properties pin the behavioral contract that the
   allocation-driven rewrite (top-level sifts, min_time/pop_min) must
   preserve: exact (time, seq) ordering, duplicate-key insertion-order
   tie-break, and agreement between the allocating [pop] and the
   zero-alloc [min_time]/[pop_min] pair, each checked against a
   sorted-list model under interleaved pushes and pops. *)

module H = Sim.Event_heap

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Model: an association list kept sorted by (time, seq)               *)
(* ------------------------------------------------------------------ *)

let model_push model ~time ~seq payload = (time, seq, payload) :: model

let model_pop model =
  match
    List.sort
      (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
      model
  with
  | [] -> (None, model)
  | ((t, s, _) as hd) :: _ ->
      (Some (t, s), List.filter (fun e -> e <> hd) model)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_pop_sorted =
  QCheck.Test.make ~name:"pop drains in sorted (time, seq) order" ~count:300
    QCheck.(list (int_bound 100))
    (fun times ->
      let h = H.create () in
      List.iteri (fun seq time -> H.push h ~time ~seq seq) times;
      let rec drain acc =
        match H.pop h with
        | None -> List.rev acc
        | Some (t, s, _) -> drain ((t, s) :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare popped
      && List.length popped = List.length times
      && H.is_empty h)

(* Many events at the SAME instant must come back in insertion order —
   the seq tie-break is what makes whole simulations deterministic. *)
let prop_duplicate_keys =
  QCheck.Test.make ~name:"duplicate times pop in insertion (seq) order"
    ~count:300
    QCheck.(pair (int_bound 5) (list (int_bound 3)))
    (fun (base, times) ->
      let h = H.create () in
      (* Map every time into a tiny range so collisions are the norm. *)
      List.iteri (fun seq t -> H.push h ~time:(base + t) ~seq seq) times;
      let rec drain acc =
        match H.pop h with
        | None -> List.rev acc
        | Some (t, s, p) -> drain ((t, s, p) :: acc)
      in
      let popped = drain [] in
      (* Within each time bucket, seqs strictly increase. *)
      let rec buckets_ok = function
        | (t1, s1, _) :: ((t2, s2, _) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && s1 < s2)) && buckets_ok rest
        | _ -> true
      in
      buckets_ok popped
      (* And every payload equals its seq: nothing lost or duplicated. *)
      && List.for_all (fun (_, s, p) -> s = p) popped)

(* Interleaved pushes and pops against the sorted-list model.  The
   generator emits a script of operations; seq numbers increase
   monotonically across the whole script, as in the scheduler. *)
let prop_interleaved_model =
  QCheck.Test.make ~name:"interleaved push/pop agrees with sorted-list model"
    ~count:300
    QCheck.(list (option (int_bound 50)))
    (fun script ->
      let h = H.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some time ->
              H.push h ~time ~seq:!seq !seq;
              model := model_push !model ~time ~seq:!seq !seq;
              incr seq
          | None -> (
              let expected, model' = model_pop !model in
              model := model';
              match (H.pop h, expected) with
              | None, None -> ()
              | Some (t, s, _), Some (t', s') ->
                  if (t, s) <> (t', s') then ok := false
              | Some _, None | None, Some _ -> ok := false))
        script;
      !ok && H.length h = List.length !model)

(* The zero-alloc pair (min_time + pop_min) must agree with pop exactly:
   run the same script against two heaps, reading one through each
   interface. *)
let prop_pop_min_equiv =
  QCheck.Test.make ~name:"min_time/pop_min agree with pop" ~count:300
    QCheck.(list (option (int_bound 50)))
    (fun script ->
      let h1 = H.create () and h2 = H.create () in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some time ->
              H.push h1 ~time ~seq:!seq !seq;
              H.push h2 ~time ~seq:!seq !seq;
              incr seq
          | None -> (
              match H.pop h1 with
              | None -> if not (H.is_empty h2) then ok := false
              | Some (t, _, p) ->
                  if H.is_empty h2 then ok := false
                  else begin
                    let t' = H.min_time h2 in
                    let p' = H.pop_min h2 in
                    if t <> t' || p <> p' then ok := false
                  end))
        script;
      !ok && H.length h1 = H.length h2)

(* ------------------------------------------------------------------ *)
(* Unit edges                                                          *)
(* ------------------------------------------------------------------ *)

let test_empty_raises () =
  let h : int H.t = H.create () in
  Alcotest.check_raises "min_time on empty"
    (Invalid_argument "Event_heap.min_time: empty heap") (fun () ->
      ignore (H.min_time h));
  Alcotest.check_raises "pop_min on empty"
    (Invalid_argument "Event_heap.pop_min: empty heap") (fun () ->
      ignore (H.pop_min h))

let test_pop_min_then_empty () =
  let h = H.create () in
  H.push h ~time:7 ~seq:0 "only";
  check_int "min_time" 7 (H.min_time h);
  Alcotest.(check string) "pop_min" "only" (H.pop_min h);
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check (option (triple int int string))) "pop on empty" None
    (H.pop h)

let test_grow_across_doubling () =
  (* Push past the initial capacity (64) and one doubling beyond. *)
  let h = H.create () in
  for i = 0 to 299 do
    H.push h ~time:(299 - i) ~seq:i i
  done;
  check_int "length" 300 (H.length h);
  let last = ref (-1) in
  for _ = 0 to 299 do
    let t = H.min_time h in
    ignore (H.pop_min h);
    Alcotest.(check bool) "nondecreasing" true (t >= !last);
    last := t
  done;
  Alcotest.(check bool) "drained" true (H.is_empty h)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "event_heap"
    [
      ( "properties",
        [
          qcheck prop_pop_sorted;
          qcheck prop_duplicate_keys;
          qcheck prop_interleaved_model;
          qcheck prop_pop_min_equiv;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty accessors raise" `Quick test_empty_raises;
          Alcotest.test_case "single entry via pop_min" `Quick
            test_pop_min_then_empty;
          Alcotest.test_case "growth across doublings" `Quick
            test_grow_across_doubling;
        ] );
    ]
