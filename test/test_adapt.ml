(* Tests for the reactive elimination layer (lib/adapt,
   docs/ADAPTIVE.md): windowed stats reads, controller MIMD semantics,
   clamp invariants under random configurations and window streams,
   the paper's safety properties (step property, pairing, conservation
   — Lemmas 3.1/3.2) for reactive trees under generated fault plans at
   2/8/32 processors, and the differential guarantee that a reactive
   controller clamped to the static tuning is byte-identical to
   [`Static]. *)

module E = Sim.Engine
module Tree = Core.Elim_tree.Make (E)
module Pool = Core.Elim_pool.Make (E)
module Stats = Core.Elim_stats
module FP = Faults.Fault_plan
module W = Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.Sim.aborted_procs;
  stats

(* ------------------------------------------------------------------ *)
(* Windowed stats reads (Elim_stats.take_window)                       *)
(* ------------------------------------------------------------------ *)

let test_take_window_deltas () =
  let s = Stats.create () in
  Stats.entered s Core.Location.Token;
  Stats.entered s Core.Location.Token;
  Stats.entered s Core.Location.Anti;
  Stats.note_eliminated s 2;
  Stats.note_miss s;
  Stats.note_toggled s;
  let w = Stats.take_window s in
  check_int "w1 entries" 3 w.Stats.w_entries;
  check_int "w1 hits" 2 w.Stats.w_hits;
  check_int "w1 misses" 1 w.Stats.w_misses;
  check_int "w1 toggled" 1 w.Stats.w_toggled;
  (* The next window sees only activity since the previous read. *)
  Stats.entered s Core.Location.Anti;
  Stats.note_diffracted s 2;
  let w = Stats.take_window s in
  check_int "w2 entries" 1 w.Stats.w_entries;
  check_int "w2 hits (diffraction counts)" 2 w.Stats.w_hits;
  check_int "w2 misses" 0 w.Stats.w_misses;
  check_int "w2 toggled" 0 w.Stats.w_toggled;
  (* A quiet period yields an all-zero window, not a re-read. *)
  let w = Stats.take_window s in
  check_int "empty window" 0 (w.Stats.w_entries + w.Stats.w_hits
                              + w.Stats.w_misses + w.Stats.w_toggled);
  (* Cumulative reads are unaffected by windowing: merge still sees the
     full counts exactly once (no double-counting through cursors). *)
  check_int "cumulative entries intact" 4 (Stats.entries s);
  let m = Stats.merge [ s; Stats.create () ] in
  check_int "merge sees full eliminations" 2 m.Stats.eliminated;
  check_int "merge sees full misses" 1 m.Stats.misses;
  check_int "merge sees full entries" 4 (Stats.entries m)

(* ------------------------------------------------------------------ *)
(* Controller unit semantics                                           *)
(* ------------------------------------------------------------------ *)

(* Down factor 1/2 makes every randomized rounding exact, so the test
   can assert precise values. *)
let unit_cfg =
  Adapt.validate_config
    {
      Adapt.default with
      Adapt.period = 4;
      hi_pct = 90;
      lo_pct = 10;
      up_num = 2;
      up_den = 1;
      down_num = 1;
      down_den = 2;
      min_pct = 25;
      max_pct = 200;
    }

let window ~entries ~hits ~toggled =
  { Adapt.entries; hits; misses = 0; toggled }

let test_controller_mimd () =
  let c = Adapt.Controller.create ~config:unit_cfg ~id:0 ~spin0:16
      ~widths0:[ 8; 2 ] in
  check_int "initial spin = static" 16 (Adapt.Controller.spin c);
  Alcotest.(check (pair int int)) "spin clamp band" (4, 32)
    (Adapt.Controller.spin_bounds c);
  Alcotest.(check (pair int int)) "outer width band" (2, 16)
    (Adapt.Controller.width_bounds c ~layer:0);
  Alcotest.(check (list int)) "allocation at the ceiling" [ 16; 4 ]
    (Adapt.Controller.alloc_widths c);
  (* Epochs close every [period] entries. *)
  for _ = 1 to 3 do
    check_bool "mid-epoch tick" false (Adapt.Controller.tick c)
  done;
  check_bool "period-th tick closes the epoch" true (Adapt.Controller.tick c);
  (* All-toggle window: shrink by exactly 1/2. *)
  let d = Adapt.Controller.decide c (window ~entries:4 ~hits:0 ~toggled:4) in
  check_bool "shrink changed something" true (Adapt.Controller.changed d);
  check_int "spin halved" 8 (Adapt.Controller.spin c);
  Alcotest.(check (list int)) "widths halved (floor 1)" [ 4; 1 ]
    (Adapt.Controller.widths c);
  (* All-hit window: grow by x2, back to the static values. *)
  let d = Adapt.Controller.decide c (window ~entries:4 ~hits:4 ~toggled:0) in
  check_bool "grow changed something" true (Adapt.Controller.changed d);
  check_int "spin doubled back" 16 (Adapt.Controller.spin c);
  Alcotest.(check (list int)) "widths doubled back" [ 8; 2 ]
    (Adapt.Controller.widths c);
  (* Dead-band window: hold, nothing changes. *)
  let d = Adapt.Controller.decide c (window ~entries:4 ~hits:2 ~toggled:2) in
  check_bool "hold changes nothing" false (Adapt.Controller.changed d);
  check_int "spin held" 16 (Adapt.Controller.spin c);
  check_int "three epochs" 3 (Adapt.Controller.epochs c);
  check_int "one grow" 1 (Adapt.Controller.grows c);
  check_int "one shrink" 1 (Adapt.Controller.shrinks c)

let test_controller_deterministic () =
  let mk () =
    Adapt.Controller.create ~config:Adapt.default ~id:3 ~spin0:64
      ~widths0:[ 32; 8 ]
  in
  let a = mk () and b = mk () in
  let windows =
    List.init 40 (fun i ->
        window ~entries:64 ~hits:(i * 7 mod 65) ~toggled:(64 - (i * 7 mod 65)))
  in
  List.iter
    (fun w ->
      let (_ : Adapt.Controller.decision) = Adapt.Controller.decide a w in
      let (_ : Adapt.Controller.decision) = Adapt.Controller.decide b w in
      check_bool "same windows, same state" true
        (Adapt.Controller.snapshot a = Adapt.Controller.snapshot b))
    windows

let prop_controller_clamped =
  (* Any clamp band, any window stream: spin and every width stay inside
     the configured band, always >= 1. *)
  QCheck.Test.make ~name:"controller stays inside its clamp band" ~count:200
    QCheck.(
      pair
        (pair (int_range 1 400) (int_range 1 400))
        (small_list (pair (int_range 0 128) (int_range 0 128))))
    (fun ((a, b), stream) ->
      let config =
        Adapt.validate_config
          { Adapt.default with Adapt.min_pct = min a b; max_pct = max a b }
      in
      let c =
        Adapt.Controller.create ~config ~id:2 ~spin0:64 ~widths0:[ 32; 8 ]
      in
      let slo, shi = Adapt.Controller.spin_bounds c in
      List.for_all
        (fun (busy, toggled) ->
          let hits = min busy 128 in
          let w =
            { Adapt.entries = hits + toggled; hits; misses = busy - hits;
              toggled }
          in
          let (_ : Adapt.Controller.decision) = Adapt.Controller.decide c w in
          let spin = Adapt.Controller.spin c in
          slo <= spin && spin <= shi && spin >= 1
          && List.for_all2
               (fun layer width ->
                 let lo, hi = Adapt.Controller.width_bounds c ~layer in
                 lo <= width && width <= hi && width >= 1)
               [ 0; 1 ]
               (Adapt.Controller.widths c))
        stream)

(* ------------------------------------------------------------------ *)
(* Reactive trees keep the paper's guarantees under faults and load    *)
(* ------------------------------------------------------------------ *)

let reactive_cfg =
  (* A short epoch so adaptation fires many times even in small runs. *)
  Adapt.validate_config { Adapt.default with Adapt.period = 8 }

(* Non-crash fault plans only: a crash-stopped processor abandons its
   traversal mid-tree, which legitimately breaks quiescent counting —
   robustness under crashes is the chaos harness's subject, not this
   layer's. *)
let fault_plan ~level ~procs ~horizon =
  if level = 0 then FP.none
  else
    FP.union ~seed:level
      [
        FP.stalls ~seed:level ~procs ~horizon ~count:(min procs (2 * level))
          ~cycles:(300 * level);
        FP.jitter ~from_:0 ~until_:horizon ~amp:(8 * level);
      ]

let drive_reactive_tree ?(mode = `Pool) ~seed ~fault_level ~width ~tokens
    ~antis () =
  let procs = max 1 (tokens + antis) in
  let config = Core.Tree_config.etree ~policy:(`Reactive reactive_cfg) width in
  let leaf_order = match mode with `Pool -> `Natural | `Stack -> `Interleaved in
  let tree = Tree.create ~mode ~leaf_order ~capacity:procs config in
  let y = Array.make width 0 and ybar = Array.make width 0 in
  let elim_tokens = ref 0 and elim_antis = ref 0 in
  let horizon = 200_000 in
  let plan = fault_plan ~level:fault_level ~procs ~horizon in
  let stats =
    Faults.Inject.run ~seed ~plan ~procs ~abort_after:100_000_000 (fun p ->
        let kind : Core.Location.kind = if p < tokens then Token else Anti in
        if p < tokens + antis then begin
          E.delay (E.random_int 60);
          match Tree.traverse tree ~kind ~value:None with
          | Tree.Leaf i -> (
              match kind with
              | Token -> y.(i) <- y.(i) + 1
              | Anti -> ybar.(i) <- ybar.(i) + 1)
          | Tree.Eliminated _ -> (
              match kind with
              | Token -> incr elim_tokens
              | Anti -> incr elim_antis)
        end)
  in
  check_int "nobody aborted" 0 stats.Sim.aborted_procs;
  check_int "nobody crashed" 0 stats.Sim.crashed_procs;
  (tree, y, ybar, !elim_tokens, !elim_antis)

(* The adapted state, wherever the run left it, stays within the outer
   static bounds (root spin base 64, widest prism = tree width): with
   the default max_pct = 100 nothing may exceed its static value. *)
let check_adapted_in_bounds ~width tree =
  List.iter
    (fun level ->
      List.iter
        (fun (spin, widths) ->
          check_bool "spin within [1, base]" true (1 <= spin && spin <= 64);
          List.iter
            (fun w ->
              check_bool "width within [1, tree width]" true
                (1 <= w && w <= width))
            widths)
        level)
    (Tree.adapt_by_level tree)

let procs_axis = [| 2; 8; 32 |]

let prop_reactive_pool_safety =
  QCheck.Test.make
    ~name:"reactive pool tree: pairing + leaf balancing under faults"
    ~count:24
    QCheck.(triple (int_range 0 2) (int_range 0 100) (int_range 0 3))
    (fun (pi, tshare, fault_level) ->
      let procs = procs_axis.(pi) in
      let tokens = max 1 (min (procs - 1) (procs * tshare / 100)) in
      let antis = procs - tokens in
      let width = if procs <= 2 then 2 else 8 in
      let tree, y, ybar, et, ea =
        drive_reactive_tree
          ~seed:(tshare + (100 * fault_level) + pi)
          ~fault_level ~width ~tokens ~antis ()
      in
      check_adapted_in_bounds ~width tree;
      (* Lemma 2.1 at quiescence: eliminations pair exactly, and with
         x >= x-bar every leaf keeps y_i >= ybar_i. *)
      et = ea
      && (tokens < antis
          || Array.for_all Fun.id (Array.mapi (fun i yi -> yi >= ybar.(i)) y)))

let prop_reactive_gap_step =
  QCheck.Test.make
    ~name:"reactive stack tree: gap step property under faults" ~count:24
    QCheck.(triple (int_range 0 2) (int_range 0 100) (int_range 0 3))
    (fun (pi, tshare, fault_level) ->
      let procs = procs_axis.(pi) in
      let tokens = max 1 (min (procs - 1) (procs * tshare / 100)) in
      let antis = procs - tokens in
      let width = if procs <= 2 then 2 else 8 in
      let tree, y, ybar, _, _ =
        drive_reactive_tree ~mode:`Stack
          ~seed:(tshare + (100 * fault_level) + (7 * pi))
          ~fault_level ~width ~tokens ~antis ()
      in
      check_adapted_in_bounds ~width tree;
      (* Lemma 3.2: 0 <= (y_i - ybar_i) - (y_j - ybar_j) <= 1, i < j. *)
      let ok = ref true in
      for i = 0 to width - 1 do
        for j = i + 1 to width - 1 do
          let gap = y.(i) - ybar.(i) - (y.(j) - ybar.(j)) in
          if gap < 0 || gap > 1 then ok := false
        done
      done;
      !ok)

let prop_reactive_pool_conservation =
  QCheck.Test.make ~name:"reactive pool: conservation under faults" ~count:16
    QCheck.(triple (int_range 0 2) (int_range 1 4) (int_range 0 3))
    (fun (pi, per_proc, fault_level) ->
      let procs = procs_axis.(pi) in
      let width = if procs <= 2 then 2 else 8 in
      let pool : int Pool.t =
        Pool.create ~policy:(`Reactive reactive_cfg) ~capacity:procs ~width ()
      in
      let dequeued = Array.make (procs * per_proc) (-1) in
      let slot = ref 0 in
      let horizon = 200_000 in
      let plan = fault_plan ~level:fault_level ~procs ~horizon in
      let stats =
        Faults.Inject.run ~seed:(per_proc + fault_level) ~plan ~procs
          ~abort_after:100_000_000 (fun p ->
            for i = 0 to per_proc - 1 do
              Pool.enqueue pool ((p * per_proc) + i);
              E.delay (E.random_int 30);
              match Pool.dequeue pool with
              | Some v ->
                  let s = !slot in
                  incr slot;
                  dequeued.(s) <- v
              | None -> Alcotest.fail "P2 violated: dequeue failed"
            done)
      in
      check_int "nobody aborted" 0 stats.Sim.aborted_procs;
      let residue = ref (-1) in
      let _ = run ~procs:1 (fun _ -> residue := Pool.residue pool) in
      !residue = 0
      && List.sort compare (Array.to_list dequeued)
         = List.init (procs * per_proc) Fun.id)

(* ------------------------------------------------------------------ *)
(* Differential: clamped reactive is byte-identical to `Static         *)
(* ------------------------------------------------------------------ *)

let clamped_cfg =
  Adapt.validate_config
    { Adapt.default with Adapt.min_pct = 100; max_pct = 100 }

let traced_pc make =
  W.Traced.run ~chrome_level:Etrace.Level.Events ~procs:32 (fun () ->
      W.Produce_consume.run ~seed:5 ~horizon:30_000 ~workload:300 ~procs:32
        make)

let test_clamped_reactive_byte_identical () =
  (* With min_pct = max_pct = 100 every controller decision lands back
     on the static tuning, the controller performs no engine-visible
     operation and emits no trace event — so the whole simulated run,
     down to engine op counts and the rendered Chrome timeline, must be
     byte-identical to the static pool's. *)
  let s = traced_pc (fun ~procs -> W.Methods.etree_pool ~procs ()) in
  let r =
    traced_pc (fun ~procs ->
        W.Methods.etree_pool_reactive ~config:clamped_cfg ~procs ())
  in
  let ps = s.W.Traced.value and pr = r.W.Traced.value in
  check_int "ops identical" ps.W.Produce_consume.ops pr.W.Produce_consume.ops;
  check_int "throughput identical" ps.W.Produce_consume.throughput_per_m
    pr.W.Produce_consume.throughput_per_m;
  Alcotest.(check (float 0.0)) "latency identical"
    ps.W.Produce_consume.latency pr.W.Produce_consume.latency;
  check_bool "engine op counters identical" true
    (ps.W.Produce_consume.mem = pr.W.Produce_consume.mem);
  check_string "chrome timelines byte-identical"
    (Etrace.Chrome.contents (Option.get s.W.Traced.chrome))
    (Etrace.Chrome.contents (Option.get r.W.Traced.chrome))

let test_reactive_replay_deterministic () =
  (* Same seed, same config: a reactive run replays byte-for-byte,
     including the controllers' final adapted state. *)
  let go () =
    let captured = ref None in
    let p =
      W.Produce_consume.run ~seed:11 ~horizon:30_000 ~workload:2_000 ~procs:32
        (fun ~procs ->
          let pool = W.Methods.etree_pool_reactive ~procs () in
          captured := Some pool;
          pool)
    in
    let pool = Option.get !captured in
    (p, (Option.get pool.W.Pool_obj.adapt_by_level) ())
  in
  let pa, sa = go () and pb, sb = go () in
  check_int "ops replay" pa.W.Produce_consume.ops pb.W.Produce_consume.ops;
  check_bool "engine op counters replay" true
    (pa.W.Produce_consume.mem = pb.W.Produce_consume.mem);
  check_bool "adapted state replays" true (sa = sb);
  (* The adaptation must actually have moved something at this load —
     otherwise the differential test above is vacuous. *)
  check_bool "controller moved off the static tuning" true
    (List.exists
       (List.exists (fun (spin, _) -> spin <> 64 && spin <> 32 && spin <> 16
                                      && spin <> 8 && spin <> 4))
       sa)

let () =
  Alcotest.run "adapt"
    [
      ( "windows",
        [
          Alcotest.test_case "take_window deltas" `Quick
            test_take_window_deltas;
        ] );
      ( "controller",
        [
          Alcotest.test_case "MIMD rule + hysteresis" `Quick
            test_controller_mimd;
          Alcotest.test_case "deterministic decisions" `Quick
            test_controller_deterministic;
          QCheck_alcotest.to_alcotest prop_controller_clamped;
        ] );
      ( "safety",
        [
          QCheck_alcotest.to_alcotest prop_reactive_pool_safety;
          QCheck_alcotest.to_alcotest prop_reactive_gap_step;
          QCheck_alcotest.to_alcotest prop_reactive_pool_conservation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clamped reactive == static (byte-identical)"
            `Quick test_clamped_reactive_byte_identical;
          Alcotest.test_case "reactive replay is deterministic" `Quick
            test_reactive_replay_deterministic;
        ] );
    ]
