(* Tests for the static balancing-network certifier
   (docs/NETVERIFY.md): every shipped shape certifies clean, the IR
   plans agree with the constructions' documented numbering, the
   seeded skip-toggle-on-miss defect is rejected with the canonical
   3-token counterexample (golden fixture + dynamic replay through the
   model checker), and random IR mutations — miswired shapes — are
   rejected with the right error class. *)

module Ir = Netverify.Ir
module Passes = Netverify.Passes
module Certify = Netverify.Certify
module NB = Check.Netverify_bridge

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let etree_ir ?bug ?(mode = `Pool) ?(leaf_order = `Natural) width =
  Core.Elim_tree.ir ~mode ~leaf_order ?bug (Core.Tree_config.etree width)

(* ------------------------------------------------------------------ *)
(* Shipped shapes                                                      *)
(* ------------------------------------------------------------------ *)

let test_shipped_shapes_certify () =
  List.iter
    (fun (s : NB.shape) ->
      let report = Certify.verify (s.build ()) in
      if not (Certify.ok report) then
        Alcotest.failf "shape %s rejected:\n%s" s.shape_name
          (Certify.format_report report))
    NB.shapes;
  check_int "manifest covers every family" 25 (List.length NB.shapes)

let test_depth_bounds () =
  let depth net =
    Array.fold_left (fun m (n : Ir.node) -> max m (n.layer + 1)) 0
      net.Ir.nodes
  in
  check_int "etree-64 depth log w" 6 (depth (etree_ir 64));
  check_int "bitonic-32 depth log w (log w + 1)/2" 15
    (depth (Ir.bitonic ~width:32));
  check_int "periodic-32 depth (log w)^2" 25 (depth (Ir.periodic ~width:32))

let test_leaf_index_bit_reversal () =
  (* The interleaved (counting-tree) numbering is the bit-reversal of
     the natural leaf position, reconstructed from the wires alone. *)
  let _, interleaved = Ir.tree_plan (etree_ir ~leaf_order:`Interleaved 8) in
  Alcotest.(check (array int))
    "w=8 interleaved leaf_index = bitrev"
    [| 0; 4; 2; 6; 1; 5; 3; 7 |]
    interleaved;
  let _, natural = Ir.tree_plan (etree_ir ~leaf_order:`Natural 8) in
  Alcotest.(check (array int))
    "w=8 natural leaf_index = identity"
    [| 0; 1; 2; 3; 4; 5; 6; 7 |]
    natural

(* ------------------------------------------------------------------ *)
(* The seeded defect: static detection, golden report, dynamic replay  *)
(* ------------------------------------------------------------------ *)

let seeded_report () = Certify.verify (NB.seeded_defect ())

let test_seeded_defect_detected () =
  let report = seeded_report () in
  check_bool "seeded tree rejected" false (Certify.ok report);
  let cex =
    List.find_map
      (fun (f : Certify.failure) ->
        if f.pass = "step-certify" then f.cex else None)
      report.failures
  in
  match cex with
  | None -> Alcotest.fail "no step-certify counterexample"
  | Some cex ->
      check_string "canonical minimal counterexample" "Token Token Token"
        (Certify.format_ops cex.ops)

let test_seeded_defect_golden () =
  (* The whole rejection report (plus the replay command) is stable —
     certification is deterministic. *)
  let report = seeded_report () in
  let cex =
    List.find_map
      (fun (f : Certify.failure) ->
        if f.pass = "step-certify" then f.cex else None)
      report.failures
    |> Option.get
  in
  let got =
    Certify.format_report report
    ^ "  replay: "
    ^ NB.replay_command ~width:NB.seeded_defect_width cex
    ^ "\n"
  in
  let ic = open_in "fixtures/netverify_bug.expected" in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  check_string "golden rejection report" expected got

let test_seeded_defect_replays () =
  let report = seeded_report () in
  let cex =
    List.find_map
      (fun (f : Certify.failure) ->
        if f.pass = "step-certify" then f.cex else None)
      report.failures
    |> Option.get
  in
  match NB.confirm_replay ~width:NB.seeded_defect_width cex with
  | None -> Alcotest.fail "replay did not reproduce the static counterexample"
  | Some v ->
      check_string "replay violates the step property" "step-property"
        v.Check.Monitor.property

(* ------------------------------------------------------------------ *)
(* Mutation tests: miswired IRs must be rejected, with the right error *)
(* ------------------------------------------------------------------ *)

let failure_codes report =
  List.map (fun (f : Certify.failure) -> f.code) report.Certify.failures

let has_code code report = List.mem code (failure_codes report)

let tree_widths = QCheck.Gen.oneofl [ 2; 4; 8; 16 ]

(* Drop one balancer: its input wire loses its reader and its output
   wires their writer. *)
let prop_drop_node =
  QCheck.Test.make ~name:"mutation: dropped balancer -> wire census errors"
    ~count:30
    QCheck.(make Gen.(pair tree_widths (int_bound 1000)))
    (fun (width, salt) ->
      let net = etree_ir width in
      let victim = salt mod Array.length net.Ir.nodes in
      let mutated =
        {
          net with
          Ir.nodes =
            Array.of_list
              (List.filteri
                 (fun i _ -> i <> victim)
                 (Array.to_list net.Ir.nodes));
        }
      in
      let report = Certify.verify mutated in
      (not (Certify.ok report))
      && (has_code "wire-unread" report || has_code "wire-unwritten" report))

(* Swap a balancer's two output wires: still perfectly well-formed,
   but the tree no longer counts in the documented order. *)
let prop_swap_outs_tree =
  QCheck.Test.make
    ~name:"mutation: swapped balancer outputs -> tree numbering error"
    ~count:30
    QCheck.(make Gen.(pair tree_widths (int_bound 1000)))
    (fun (width, salt) ->
      let net = etree_ir ~leaf_order:`Interleaved ~mode:`Stack width in
      let victim = salt mod Array.length net.Ir.nodes in
      let mutated =
        {
          net with
          Ir.nodes =
            Array.map
              (fun (n : Ir.node) ->
                if n.id = victim then
                  { n with Ir.outs = [| n.outs.(1); n.outs.(0) |] }
                else n)
              net.Ir.nodes;
        }
      in
      let report = Certify.verify mutated in
      (not (Certify.ok report)) && has_code "numbering" report)

(* The same rewiring on a counting network: caught as a departure from
   the regenerated canonical structure (and by numbering). *)
let prop_swap_outs_counting =
  QCheck.Test.make
    ~name:"mutation: swapped counting-balancer outputs -> structure mismatch"
    ~count:30
    QCheck.(make Gen.(pair (oneofl [ 4; 8; 16 ]) (int_bound 1000)))
    (fun (width, salt) ->
      let net = Ir.bitonic ~width in
      let victim = salt mod Array.length net.Ir.nodes in
      let mutated =
        {
          net with
          Ir.nodes =
            Array.map
              (fun (n : Ir.node) ->
                if n.id = victim then
                  { n with Ir.outs = [| n.outs.(1); n.outs.(0) |] }
                else n)
              net.Ir.nodes;
        }
      in
      let report = Certify.verify mutated in
      (not (Certify.ok report)) && has_code "structure-mismatch" report)

(* Duplicate one leaf: some output wire gains a second reader and
   another loses its only one. *)
let prop_duplicate_leaf =
  QCheck.Test.make ~name:"mutation: duplicated leaf -> multi-reader error"
    ~count:30
    QCheck.(make Gen.(pair tree_widths (int_bound 1000)))
    (fun (width, salt) ->
      let net = etree_ir width in
      let i = salt mod width and j = (salt / width) mod width in
      QCheck.assume (i <> j);
      let outputs = Array.copy net.Ir.outputs in
      let () = outputs.(j) <- outputs.(i) in
      let report = Certify.verify { net with Ir.outputs } in
      (not (Certify.ok report))
      && has_code "wire-multi-reader" report
      && has_code "wire-unread" report)

(* Permute two logical outputs: well-formed, wrong counting order. *)
let prop_permute_outputs =
  QCheck.Test.make
    ~name:"mutation: permuted interleaved outputs -> numbering error"
    ~count:30
    QCheck.(make Gen.(pair (oneofl [ 4; 8; 16 ]) (int_bound 1000)))
    (fun (width, salt) ->
      let net = etree_ir ~leaf_order:`Interleaved width in
      let i = salt mod width and j = (salt / width) mod width in
      QCheck.assume (i <> j);
      let outputs = Array.copy net.Ir.outputs in
      let () = outputs.(i) <- net.Ir.outputs.(j) in
      let () = outputs.(j) <- net.Ir.outputs.(i) in
      let report = Certify.verify { net with Ir.outputs } in
      (not (Certify.ok report)) && has_code "numbering" report)

(* Seed the balancer defect at any width: always a step violation with
   a concrete counterexample. *)
let prop_seeded_bug_any_width =
  QCheck.Test.make
    ~name:"mutation: seeded skip-toggle-on-miss -> step violation + cex"
    ~count:20
    QCheck.(make tree_widths)
    (fun width ->
      let report = Certify.verify (etree_ir ~bug:`Skip_toggle_on_miss width) in
      (not (Certify.ok report))
      && has_code "step-violation" report
      && List.exists
           (fun (f : Certify.failure) ->
             f.pass = "step-certify" && f.cex <> None)
           report.Certify.failures)

(* Construction-time diagnostics: the runtime constructors surface the
   first well-formedness error as a coded Invalid_argument. *)
let test_assert_well_formed_diagnostic () =
  let net = etree_ir 4 in
  let broken =
    { net with Ir.outputs = Array.map (fun _ -> net.Ir.outputs.(0)) net.Ir.outputs }
  in
  match Passes.assert_well_formed ~what:"test" broken with
  | () -> Alcotest.fail "malformed network accepted"
  | exception Invalid_argument msg ->
      check_bool "diagnostic carries the rule code" true
        (String.length msg > 0
        && String.sub msg 0 5 = "test:"
        &&
        let has_code =
          let re = "[wire-multi-reader]" in
          let n = String.length msg and m = String.length re in
          let rec scan i =
            i + m <= n && (String.sub msg i m = re || scan (i + 1))
          in
          scan 0
        in
        has_code)

let () =
  Alcotest.run "netverify"
    [
      ( "shapes",
        [
          Alcotest.test_case "every shipped shape certifies" `Quick
            test_shipped_shapes_certify;
          Alcotest.test_case "depth bounds" `Quick test_depth_bounds;
          Alcotest.test_case "leaf numbering is bit-reversal" `Quick
            test_leaf_index_bit_reversal;
        ] );
      ( "seeded-defect",
        [
          Alcotest.test_case "detected statically with minimal cex" `Quick
            test_seeded_defect_detected;
          Alcotest.test_case "golden rejection report" `Quick
            test_seeded_defect_golden;
          Alcotest.test_case "counterexample replays through the checker"
            `Quick test_seeded_defect_replays;
        ] );
      ( "mutations",
        [
          QCheck_alcotest.to_alcotest prop_drop_node;
          QCheck_alcotest.to_alcotest prop_swap_outs_tree;
          QCheck_alcotest.to_alcotest prop_swap_outs_counting;
          QCheck_alcotest.to_alcotest prop_duplicate_leaf;
          QCheck_alcotest.to_alcotest prop_permute_outputs;
          QCheck_alcotest.to_alcotest prop_seeded_bug_any_width;
          Alcotest.test_case "constructor diagnostics are coded" `Quick
            test_assert_well_formed_diagnostic;
        ] );
    ]
