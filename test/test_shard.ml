(* Tests for the sharded frontend (lib/shard, docs/SHARDING.md) and
   the service workload's arrival generators (lib/workloads/arrivals):

   - the session hash spreads sessions over every shard without gross
     skew, and routing is pure (same session, same shard);
   - the steal path moves dequeuers, not elements: a dequeue homed on
     an empty shard finds values enqueued on another shard, every such
     success is counted as a steal, and [steal_probes = 0] disables
     the path entirely;
   - per-shard reactive reseeding: shard controllers get distinct
     streams, and [adapt_by_level] aggregates every shard's entries;
   - [Analysis.Conservation.combine] composes per-shard ledgers
     field-wise (the whole-frontend audit of Service);
   - the service workload conserves values end to end and replays
     byte-identically for a fixed seed;
   - arrival generators (qcheck over seeds): deterministic replay is
     byte-identical, and empirical mean inter-arrival gaps sit within
     tolerance of the regime's nominal mean. *)

module E = Sim.Engine
module Spool = Shard.Shard_pool.Make (E)
module Sstack = Shard.Shard_stack.Make (E)
module W = Workloads
module A = W.Arrivals
module C = Analysis.Conservation

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.Sim.aborted_procs;
  stats

(* Find a session id homed on [shard] (mirrors the check scenario). *)
let session_on pool shard =
  let rec find s =
    if s > 4096 then Alcotest.failf "no session homes on shard %d" shard
    else if Spool.shard_of pool ~session:s = shard then s
    else find (s + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let test_hash_spread () =
  let shards = 8 in
  let p : int Spool.t =
    Spool.create ~capacity:4 ~width:2 ~shards ()
  in
  check_int "shard_count" shards (Spool.shard_count p);
  let counts = Array.make shards 0 in
  let sessions = 8_000 in
  for s = 0 to sessions - 1 do
    let h = Spool.shard_of p ~session:s in
    check_bool "shard in range" true (h >= 0 && h < shards);
    check_int "routing is pure" h (Spool.shard_of p ~session:s);
    counts.(h) <- counts.(h) + 1
  done;
  (* Expected 1000 per shard; a fair hash stays well inside 2x. *)
  Array.iteri
    (fun i n ->
      check_bool
        (Printf.sprintf "shard %d gets %d of %d sessions" i n sessions)
        true
        (n > sessions / shards / 2 && n < sessions * 2 / shards))
    counts

let test_hash_seed_changes_routing () =
  let p0 : int Spool.t =
    Spool.create ~hash_seed:0 ~capacity:4 ~width:2 ~shards:8 ()
  in
  let p1 : int Spool.t =
    Spool.create ~hash_seed:1 ~capacity:4 ~width:2 ~shards:8 ()
  in
  let differs = ref false in
  for s = 0 to 63 do
    if Spool.shard_of p0 ~session:s <> Spool.shard_of p1 ~session:s then
      differs := true
  done;
  check_bool "hash_seed permutes the session map" true !differs

(* ------------------------------------------------------------------ *)
(* Stealing                                                            *)
(* ------------------------------------------------------------------ *)

let test_steal_moves_dequeuer () =
  let p : int Spool.t = Spool.create ~capacity:2 ~width:2 ~shards:2 () in
  let producer = session_on p 0 in
  let consumer = session_on p 1 in
  let n = 16 in
  let got = ref [] in
  let (_ : Sim.stats) =
    run ~procs:1 (fun _ ->
        for v = 1 to n do
          Spool.enqueue p ~session:producer v
        done;
        for _ = 1 to n do
          match Spool.dequeue p ~session:consumer with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "dequeue starved with residue present"
        done)
  in
  check_int "all values surfaced" n (List.length !got);
  check_int "no residue" 0
    (let r = ref 0 in
     ignore (Sim.run ~procs:1 (fun _ -> r := Spool.residue p));
     !r);
  let s = Spool.steal_stats p in
  check_int "every success was a steal" n s.Spool.steals;
  check_int "every round saw an empty home" n s.Spool.empty_homes;
  check_bool "probes counted" true (s.Spool.probes >= n)

let test_steal_probes_zero_disables () =
  let p : int Spool.t =
    Spool.create ~steal_probes:0 ~capacity:2 ~width:2 ~shards:2 ()
  in
  let producer = session_on p 0 in
  let consumer = session_on p 1 in
  let (_ : Sim.stats) =
    run ~procs:1 (fun _ ->
        Spool.enqueue p ~session:producer 7;
        (match Spool.dequeue ~stop:(fun () -> true) p ~session:consumer with
        | Some _ -> Alcotest.fail "stole with steal_probes = 0"
        | None -> ());
        (* The value is still reachable from its home shard. *)
        match Spool.dequeue ~stop:(fun () -> true) p ~session:producer with
        | Some v -> check_int "home dequeue finds it" 7 v
        | None -> Alcotest.fail "home dequeue missed the residue")
  in
  let s = Spool.steal_stats p in
  check_int "no steals" 0 s.Spool.steals;
  check_int "no probes" 0 s.Spool.probes

let test_stack_steals_too () =
  let p : int Sstack.t = Sstack.create ~capacity:2 ~width:2 ~shards:2 () in
  let rec session_on shard s =
    if Sstack.shard_of p ~session:s = shard then s
    else session_on shard (s + 1)
  in
  let producer = session_on 0 0 in
  let consumer = session_on 1 0 in
  let (_ : Sim.stats) =
    run ~procs:1 (fun _ ->
        Sstack.push p ~session:producer 42;
        match Sstack.pop p ~session:consumer with
        | Some v -> check_int "stolen pop" 42 v
        | None -> Alcotest.fail "pop starved")
  in
  check_int "one steal" 1 (Sstack.steal_stats p).Sstack.steals

(* ------------------------------------------------------------------ *)
(* Per-shard reactive reseeding                                        *)
(* ------------------------------------------------------------------ *)

let test_reactive_reseed_distinct () =
  (* The per-shard controller seeds are hash3(seed, shard, 0): distinct
     across shards for any base seed. *)
  for seed = 0 to 99 do
    check_bool "shard 0 and 1 reseed apart" true
      (Engine.Splitmix.hash3 seed 0 0 <> Engine.Splitmix.hash3 seed 1 0)
  done

let test_adapt_by_level_aggregates () =
  let shards = 2 and width = 4 in
  let p : int Spool.t =
    Spool.create
      ~policy:(`Reactive Adapt.default)
      ~capacity:4 ~width ~shards ()
  in
  let levels = Spool.adapt_by_level p in
  (* width 4 = 2 balancer levels; each level concatenates every shard's
     controllers. *)
  check_int "levels" 2 (List.length levels);
  List.iteri
    (fun depth level ->
      check_int
        (Printf.sprintf "depth %d controllers across %d shards" depth shards)
        (shards * (1 lsl depth))
        (List.length level))
    levels

(* ------------------------------------------------------------------ *)
(* Conservation.combine                                                *)
(* ------------------------------------------------------------------ *)

let input ~enq ~deq ~residue =
  {
    C.enq_started = enq;
    enq_completed = enq;
    dequeued = deq;
    duplicates = 0;
    phantoms = 0;
    residue;
    in_flight = 0;
  }

let test_combine_sums_fields () =
  let c =
    C.combine
      [
        input ~enq:10 ~deq:7 ~residue:(Some 3);
        input ~enq:5 ~deq:5 ~residue:(Some 0);
      ]
  in
  check_int "enq_started" 15 c.C.enq_started;
  check_int "dequeued" 12 c.C.dequeued;
  check_bool "residue sums" true (c.C.residue = Some 3);
  check_bool "combined audit balances" true (C.audit c).C.ok

let test_combine_unknown_residue_poisons () =
  let c =
    C.combine
      [ input ~enq:1 ~deq:1 ~residue:(Some 0); input ~enq:1 ~deq:1 ~residue:None ]
  in
  check_bool "any unknown residue makes the sum unknown" true
    (c.C.residue = None)

let test_combine_empty_is_zero () =
  let c = C.combine [] in
  check_int "zero ledger" 0 c.C.enq_started;
  check_bool "empty combine audits clean" true (C.audit c).C.ok

(* ------------------------------------------------------------------ *)
(* The service workload: conservation + deterministic replay           *)
(* ------------------------------------------------------------------ *)

let small_service ~shards ~regime () =
  W.Service.run ~seed:5 ~procs:16 ~width:2 ~shards ~sessions:400 ~regime ()

let test_service_conserves () =
  List.iter
    (fun regime ->
      List.iter
        (fun shards ->
          let p = small_service ~shards ~regime () in
          check_bool
            (Printf.sprintf "%s x%d whole-frontend conservation"
               (A.name regime) shards)
            true p.W.Service.conservation.C.ok;
          List.iter
            (fun (r : C.report) ->
              check_bool "per-shard conservation" true r.C.ok)
            p.W.Service.conservation_by_shard;
          check_int "every request completed" p.W.Service.requests
            p.W.Service.completed;
          check_int "nothing left behind" 0 p.W.Service.residue)
        [ 1; 4 ])
    (W.Service.default_regimes ~mean_gap:200)

let test_service_replays_byte_identically () =
  let regime = A.Bursty { mean_gap = 200; burst = 8; hot_factor = 4 } in
  let a = W.Service.format_point (small_service ~shards:4 ~regime ()) in
  let b = W.Service.format_point (small_service ~shards:4 ~regime ()) in
  check_string "same seed, same rendering" a b

(* ------------------------------------------------------------------ *)
(* Arrival generators (qcheck over seeds)                              *)
(* ------------------------------------------------------------------ *)

let regimes ~mean_gap =
  [
    A.Poisson { mean_gap };
    A.Bursty { mean_gap; burst = 32; hot_factor = 8 };
    A.Diurnal { mean_gap; amplitude_pct = 80; period = 100_000 };
  ]

let gaps ~seed ~stream ~count regime =
  let g = A.create ~seed ~stream regime in
  let now = ref 0 in
  List.init count (fun _ ->
      let gap = A.next_gap g ~now:!now in
      now := !now + gap;
      gap)

let prop_arrivals_replay =
  QCheck.Test.make ~count:30 ~name:"arrivals: same seed, same gap sequence"
    QCheck.(pair small_nat small_nat)
    (fun (seed, stream) ->
      List.for_all
        (fun regime ->
          gaps ~seed ~stream ~count:500 regime
          = gaps ~seed ~stream ~count:500 regime)
        (regimes ~mean_gap:800))

let prop_arrivals_mean_rate =
  (* 5000 draws: the poisson standard error is ~1.4% of the mean and
     the bursty one (dominated by the long exponential off-gaps) ~8%,
     so 25% is a safe deterministic bound; the diurnal draw count
     spans ~40 full periods, averaging the rate modulation out. *)
  QCheck.Test.make ~count:12 ~name:"arrivals: empirical mean near nominal"
    QCheck.(small_nat)
    (fun seed ->
      List.for_all
        (fun regime ->
          let count = 5_000 in
          let total =
            List.fold_left ( + ) 0 (gaps ~seed ~stream:0 ~count regime)
          in
          let mean = float_of_int total /. float_of_int count in
          let nominal = A.mean_gap regime in
          let err = Float.abs (mean -. nominal) /. nominal in
          if err > 0.25 then
            QCheck.Test.fail_reportf "%s: mean %.1f vs nominal %.1f (%.0f%%)"
              (A.describe regime) mean nominal (100.0 *. err)
          else true)
        (regimes ~mean_gap:800))

let rejects regime =
  match A.create ~seed:1 ~stream:0 regime with
  | exception Invalid_argument _ -> true
  | (_ : A.t) -> false

let test_arrivals_validate () =
  check_bool "zero gap rejected" true (rejects (A.Poisson { mean_gap = 0 }));
  check_bool "amplitude of 100% or more rejected" true
    (rejects (A.Diurnal { mean_gap = 10; amplitude_pct = 150; period = 10 }));
  check_bool "zero burst rejected" true
    (rejects (A.Bursty { mean_gap = 10; burst = 0; hot_factor = 2 }));
  List.iter
    (fun r -> check_bool "defaults construct" true (not (rejects r)))
    (regimes ~mean_gap:800)

let test_arrivals_of_name () =
  List.iter
    (fun name ->
      match A.of_name name ~mean_gap:700 with
      | Some r ->
          check_string "name round-trips" name (A.name r);
          check_bool "nominal mean respected" true
            (Float.abs (A.mean_gap r -. 700.0) < 1e-6)
      | None -> Alcotest.failf "known name %s not constructible" name)
    A.known_names;
  check_bool "unknown name rejected" true
    (A.of_name "lumpy" ~mean_gap:700 = None)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "hash spread" `Quick test_hash_spread;
          Alcotest.test_case "hash seed" `Quick test_hash_seed_changes_routing;
        ] );
      ( "stealing",
        [
          Alcotest.test_case "steal moves the dequeuer" `Quick
            test_steal_moves_dequeuer;
          Alcotest.test_case "steal_probes 0 disables" `Quick
            test_steal_probes_zero_disables;
          Alcotest.test_case "stack frontend steals" `Quick
            test_stack_steals_too;
        ] );
      ( "reactive",
        [
          Alcotest.test_case "reseeds are distinct" `Quick
            test_reactive_reseed_distinct;
          Alcotest.test_case "adapt_by_level aggregates shards" `Quick
            test_adapt_by_level_aggregates;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "combine sums fields" `Quick
            test_combine_sums_fields;
          Alcotest.test_case "combine poisons unknown residue" `Quick
            test_combine_unknown_residue_poisons;
          Alcotest.test_case "combine of nothing" `Quick
            test_combine_empty_is_zero;
        ] );
      ( "service",
        [
          Alcotest.test_case "conserves across regimes and shard counts"
            `Quick test_service_conserves;
          Alcotest.test_case "byte-identical replay" `Quick
            test_service_replays_byte_identically;
        ] );
      ( "arrivals",
        [
          qcheck prop_arrivals_replay;
          qcheck prop_arrivals_mean_rate;
          Alcotest.test_case "validation" `Quick test_arrivals_validate;
          Alcotest.test_case "of_name" `Quick test_arrivals_of_name;
        ] );
    ]
