(* Tests for etrees.analysis: the static effect-discipline lint (golden
   fixture, allowlist semantics) and the dynamic race detector (seeded
   raw writes, strict-read promotion, clean-structure audits over the
   paper's data structures). *)

module E = Sim.Engine
module M = Sim.Memory
module Rd = Analysis.Race_detector
module Lint = Analysis.Lint_rules
module Ac = Analysis.Allocheck
module Pool = Core.Elim_pool.Make (E)
module Stack = Core.Elim_stack.Make (E)
module Idc = Core.Inc_dec_counter.Make (E)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.Sim.aborted_procs;
  stats

let kinds (report : Rd.report) = List.map (fun r -> r.Rd.kind) report.Rd.races

let no_races name (report : Rd.report) =
  if report.Rd.races <> [] then
    Alcotest.failf "%s: unexpected races:\n%s" name (Rd.format_report report)

(* ------------------------------------------------------------------ *)
(* Race detector: seeded violations                                    *)
(* ------------------------------------------------------------------ *)

let test_raw_write_seen_by_readers () =
  (* A deliberately racy module: processor 0 bumps the shared cell with
     a raw [c.v <- ...] while the others read it through the engine.
     The readers' shadow checks must flag the bypass. *)
  let (), report =
    Rd.run (fun () ->
        let c = M.cell 0 in
        ignore
          (run ~procs:4 (fun p ->
               for _ = 1 to 10 do
                 if p = 0 then c.M.v <- c.M.v + 1 (* raw: no E.set *)
                 else ignore (E.get c);
                 E.delay 3
               done)))
  in
  check_bool "raw write detected" true (List.mem Rd.Raw_write (kinds report));
  check_bool "reads were audited" true (report.Rd.reads_checked > 0)

let test_raw_write_seen_at_commit () =
  (* The commit-side check: a raw mutation followed by an engine write
     on the same cell is caught when the engine write commits, even
     with no concurrent reader. *)
  let (), report =
    Rd.run (fun () ->
        ignore
          (run ~procs:1 (fun _ ->
               let c = M.cell 0 in
               ignore (E.get c);
               c.M.v <- 41;
               E.set c 42)))
  in
  check_bool "raw write detected at commit" true
    (List.mem Rd.Raw_write (kinds report))

let test_raw_write_dedup_per_location () =
  (* Many raw writes to one location produce one deduplicated race. *)
  let (), report =
    Rd.run (fun () ->
        let c = M.cell 0 in
        ignore
          (run ~procs:2 (fun p ->
               for _ = 1 to 20 do
                 if p = 0 then c.M.v <- c.M.v + 1 else ignore (E.get c);
                 E.delay 2
               done)))
  in
  check_int "one race per dirty location"
    1
    (List.length (List.filter (fun k -> k = Rd.Raw_write) (kinds report)))

let test_strict_reads_promotion () =
  (* Unserialized reads landing inside another processor's in-flight
     write window are benign under the cached-read model: counted as
     diagnostics by default, promoted to races only under
     [~strict_reads:true]. *)
  let racy () =
    let c = M.cell 0 in
    ignore
      (run ~procs:2 (fun p ->
           for i = 1 to 5 do
             if p = 0 then E.set c i else ignore (E.get c)
           done))
  in
  let (), relaxed = Rd.run racy in
  no_races "relaxed mode" relaxed;
  check_bool "overlaps counted" true (relaxed.Rd.overlapping_reads > 0);
  let (), strict = Rd.run ~strict_reads:true racy in
  check_bool "strict mode promotes overlaps" true
    (List.mem Rd.Read_write_overlap (kinds strict))

let test_nested_runs_restore_tracer () =
  let (), inner = Rd.run (fun () -> ignore (run ~procs:1 (fun _ -> ()))) in
  no_races "inner" inner;
  check_bool "tracer uninstalled after run" true (!M.tracer = None)

(* ------------------------------------------------------------------ *)
(* Race detector: clean structures stay clean                          *)
(* ------------------------------------------------------------------ *)

let audit name f =
  let (), report = Rd.run f in
  no_races name report;
  check_bool (name ^ ": engine traffic audited") true
    (report.Rd.commits_checked > 0)

let proc_counts = [ 2; 8; 32 ]

let test_clean_elim_pool () =
  List.iter
    (fun procs ->
      audit
        (Printf.sprintf "Elim_pool procs=%d" procs)
        (fun () ->
          let pool = Pool.create ~capacity:procs ~width:4 () in
          ignore
            (run ~procs (fun p ->
                 for i = 1 to 20 do
                   Pool.enqueue pool ((p * 100) + i);
                   match Pool.dequeue ~stop:(fun () -> false) pool with
                   | Some _ -> ()
                   | None -> Alcotest.fail "dequeue failed under P2"
                 done))))
    proc_counts

let test_clean_elim_stack () =
  List.iter
    (fun procs ->
      audit
        (Printf.sprintf "Elim_stack procs=%d" procs)
        (fun () ->
          let stack = Stack.create ~capacity:procs ~width:4 () in
          ignore
            (run ~procs (fun p ->
                 for i = 1 to 20 do
                   Stack.push stack ((p * 100) + i);
                   match Stack.pop ~stop:(fun () -> false) stack with
                   | Some _ -> ()
                   | None -> Alcotest.fail "pop failed under P2"
                 done))))
    proc_counts

let test_clean_inc_dec_counter () =
  List.iter
    (fun procs ->
      audit
        (Printf.sprintf "IncDecCounter procs=%d" procs)
        (fun () ->
          let idc = Idc.create ~capacity:procs ~width:4 () in
          ignore
            (run ~procs (fun _ ->
                 for _ = 1 to 20 do
                   ignore (Idc.increment idc);
                   ignore (Idc.decrement idc)
                 done))))
    proc_counts

let test_clean_contended_faa () =
  (* Scheduler self-check: heavy RMW contention on one location must
     produce back-to-back, never overlapping, service windows. *)
  audit "contended fetch&add" (fun () ->
      let c = M.cell 0 in
      ignore
        (run ~procs:16 (fun _ ->
             for _ = 1 to 50 do
               ignore (E.fetch_and_add c 1)
             done));
      check_int "counter total" (16 * 50) c.M.v)

(* ------------------------------------------------------------------ *)
(* Lint: golden fixture                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_lint_golden () =
  let got = Lint.report (Lint.scan_file "fixtures/bad_discipline.ml") in
  let expected = read_file "fixtures/bad_discipline.expected" in
  Alcotest.(check string) "golden lint report" expected got

let test_lint_clean_file_parses_clean () =
  (* The fixture aside, a pure module must produce no violations; use
     this very test's pure sibling data as the subject. *)
  let path = Filename.temp_file "clean" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\n\
         let xs = List.map fib [ 1; 2; 3 ]\n";
      close_out oc;
      check_int "no violations" 0 (List.length (Lint.scan_file path)))

(* ------------------------------------------------------------------ *)
(* Lint: allowlist semantics                                           *)
(* ------------------------------------------------------------------ *)

let violation file rule =
  { Lint.file; line = 1; col = 0; rule; message = "m" }

let test_allowlist_apply () =
  let allows =
    [
      { Lint.path = "lib/core/foo.ml"; allowed = Lint.Ref_cell };
      { Lint.path = "lib/core/bar.ml"; allowed = Lint.Setfield };
    ]
  in
  let vs =
    [
      violation "lib/core/foo.ml" Lint.Ref_cell;    (* suppressed *)
      violation "lib/core/foo.ml" Lint.Setfield;    (* kept: rule differs *)
      violation "lib/core/baz.ml" Lint.Ref_cell;    (* kept: path differs *)
    ]
  in
  let kept, suppressed, unused = Lint.apply_allowlist allows vs in
  check_int "kept" 2 (List.length kept);
  check_int "suppressed" 1 (List.length suppressed);
  check_int "unused entries" 1 (List.length unused)

let test_allowlist_suffix_matching () =
  let allows = [ { Lint.path = "core/foo.ml"; allowed = Lint.Ref_cell } ] in
  let hit, _, _ =
    Lint.apply_allowlist allows [ violation "lib/core/foo.ml" Lint.Ref_cell ]
  in
  check_int "suffix with / boundary matches" 0 (List.length hit);
  let miss, _, _ =
    Lint.apply_allowlist allows [ violation "lib/score/foo.ml" Lint.Ref_cell ]
  in
  check_int "non-boundary suffix does not match" 1 (List.length miss)

let test_allowlist_load () =
  let path = Filename.temp_file "allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# a comment\n\nlib/core/foo.ml ref\nlib/sync/bar.ml mutable-field\n";
      close_out oc;
      let allows = Lint.load_allowlist path in
      check_int "entries parsed" 2 (List.length allows))

let test_allowlist_load_rejects_junk () =
  let path = Filename.temp_file "allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "lib/core/foo.ml not-a-rule\n";
      close_out oc;
      match Lint.load_allowlist path with
      | _ -> Alcotest.fail "malformed allowlist accepted"
      | exception Lint.Parse_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Allocheck: seeded hot-loop regression + budget semantics            *)
(* ------------------------------------------------------------------ *)

(* Compile the seeded fixture at test time with [ocamlc -bin-annot]
   from inside a scratch directory, so the .cmt records the bare
   relative path and the golden diagnostics are host-independent. *)
let compiled_fixture =
  lazy
    (let dir = Filename.concat (Filename.get_temp_dir_name ()) "acfixture" in
     let sh c =
       if Sys.command c <> 0 then Alcotest.failf "command failed: %s" c
     in
     sh (Printf.sprintf "rm -rf %s && mkdir -p %s" dir dir);
     sh (Printf.sprintf "cp fixtures/alloc_hot_loop.ml %s/" dir);
     sh (Printf.sprintf "cd %s && ocamlc -bin-annot -c alloc_hot_loop.ml" dir);
     Ac.census_of_paths [ dir ])

let fixture_roots = [ "Alloc_hot_loop.run" ]

let test_allocheck_seeded_regression () =
  (* The teeth check: a closure (and a per-event record) seeded into a
     scheduler-shaped step loop must be rejected against an empty
     budget, with diagnostics naming the root -> site call chain. *)
  let census = Lazy.force compiled_fixture in
  let verdict = Ac.check census ~roots:fixture_roots ~budget:[] in
  let got =
    String.concat ""
      (List.map (fun v -> Ac.format_violation v ^ "\n") verdict.Ac.violations)
  in
  let expected = read_file "fixtures/allocheck_bug.expected" in
  Alcotest.(check string) "golden allocheck report" expected got;
  check_int "no stale entries against an empty budget" 0
    (List.length verdict.Ac.stale)

let test_allocheck_chain_interprocedural () =
  (* The closure lives in make_thunk, reached from run: its chain must
     span both functions, root first. *)
  let census = Lazy.force compiled_fixture in
  let verdict = Ac.check census ~roots:fixture_roots ~budget:[] in
  let thunk_violation =
    List.find
      (fun (v : Ac.violation) -> v.v_site.Ac.s_fn = "Alloc_hot_loop.make_thunk")
      verdict.Ac.violations
  in
  Alcotest.(check (list string))
    "root-first chain"
    [ "Alloc_hot_loop.run"; "Alloc_hot_loop.make_thunk" ]
    thunk_violation.Ac.v_chain

let fixture_budget =
  [
    { Ac.b_fn = "Alloc_hot_loop.make_thunk"; b_kind = Ac.K_closure; b_count = 1 };
    { Ac.b_fn = "Alloc_hot_loop.run"; b_kind = Ac.K_record; b_count = 2 };
    { Ac.b_fn = "Alloc_hot_loop.run"; b_kind = Ac.K_closure; b_count = 1 };
  ]

let test_allocheck_budget_satisfied () =
  let census = Lazy.force compiled_fixture in
  let verdict = Ac.check census ~roots:fixture_roots ~budget:fixture_budget in
  check_int "no violations under the exact budget" 0
    (List.length verdict.Ac.violations);
  check_int "no stale entries" 0 (List.length verdict.Ac.stale)

let test_allocheck_budget_stale () =
  (* The ratchet's other jaw: a budget looser than reality (or naming a
     cold function) is stale and must fail, so removing an allocation
     forces the committed budget to record the win. *)
  let census = Lazy.force compiled_fixture in
  let loose =
    { Ac.b_fn = "Alloc_hot_loop.run"; b_kind = Ac.K_closure; b_count = 5 }
  in
  let cold =
    { Ac.b_fn = "Alloc_hot_loop.process"; b_kind = Ac.K_tuple; b_count = 1 }
  in
  let verdict =
    Ac.check census ~roots:fixture_roots ~budget:(loose :: cold :: fixture_budget)
  in
  check_int "both bad entries reported stale" 2 (List.length verdict.Ac.stale)

let test_allocheck_unknown_root_rejected () =
  let census = Lazy.force compiled_fixture in
  match Ac.check census ~roots:[ "Alloc_hot_loop.no_such_fn" ] ~budget:[] with
  | _ -> Alcotest.fail "unknown root accepted"
  | exception Ac.Error _ -> ()

let test_budget_load () =
  let path = Filename.temp_file "budget" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# a comment\n\n\
         Scheduler.run closure 14  # setup only\n\
         Event_heap.push record 1\n";
      close_out oc;
      match Ac.load_budget path with
      | [ a; b ] ->
          Alcotest.(check string) "fn" "Scheduler.run" a.Ac.b_fn;
          check_bool "kind" true (a.Ac.b_kind = Ac.K_closure);
          check_int "count" 14 a.Ac.b_count;
          Alcotest.(check string) "fn 2" "Event_heap.push" b.Ac.b_fn;
          check_int "count 2" 1 b.Ac.b_count
      | entries -> Alcotest.failf "expected 2 entries, got %d" (List.length entries))

let test_budget_load_rejects_junk () =
  let bad contents =
    let path = Filename.temp_file "budget" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        match Ac.load_budget path with
        | _ -> Alcotest.failf "malformed budget accepted: %S" contents
        | exception Ac.Error _ -> ())
  in
  bad "Scheduler.run not-a-kind 3\n";
  bad "Scheduler.run closure\n";
  bad "Scheduler.run closure many\n"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "race-detector",
        [
          Alcotest.test_case "raw write seen by readers" `Quick
            test_raw_write_seen_by_readers;
          Alcotest.test_case "raw write seen at commit" `Quick
            test_raw_write_seen_at_commit;
          Alcotest.test_case "raw writes dedup per location" `Quick
            test_raw_write_dedup_per_location;
          Alcotest.test_case "strict-read promotion" `Quick
            test_strict_reads_promotion;
          Alcotest.test_case "tracer restored after run" `Quick
            test_nested_runs_restore_tracer;
        ] );
      ( "clean-structures",
        [
          Alcotest.test_case "elimination pool" `Quick test_clean_elim_pool;
          Alcotest.test_case "elimination stack" `Quick test_clean_elim_stack;
          Alcotest.test_case "inc-dec counter" `Quick
            test_clean_inc_dec_counter;
          Alcotest.test_case "contended fetch&add" `Quick
            test_clean_contended_faa;
        ] );
      ( "lint",
        [
          Alcotest.test_case "golden fixture" `Quick test_lint_golden;
          Alcotest.test_case "clean file" `Quick
            test_lint_clean_file_parses_clean;
          Alcotest.test_case "allowlist apply" `Quick test_allowlist_apply;
          Alcotest.test_case "allowlist suffix matching" `Quick
            test_allowlist_suffix_matching;
          Alcotest.test_case "allowlist load" `Quick test_allowlist_load;
          Alcotest.test_case "allowlist rejects junk" `Quick
            test_allowlist_load_rejects_junk;
        ] );
      ( "allocheck",
        [
          Alcotest.test_case "seeded hot-loop regression caught" `Quick
            test_allocheck_seeded_regression;
          Alcotest.test_case "interprocedural chain" `Quick
            test_allocheck_chain_interprocedural;
          Alcotest.test_case "exact budget passes" `Quick
            test_allocheck_budget_satisfied;
          Alcotest.test_case "loose or cold budget is stale" `Quick
            test_allocheck_budget_stale;
          Alcotest.test_case "unknown root rejected" `Quick
            test_allocheck_unknown_root_rejected;
          Alcotest.test_case "budget load" `Quick test_budget_load;
          Alcotest.test_case "budget rejects junk" `Quick
            test_budget_load_rejects_junk;
        ] );
    ]
