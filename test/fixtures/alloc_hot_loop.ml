(* Seeded @allocheck regression fixture: a scheduler-shaped step loop
   that allocates a fresh event record and a capturing closure on every
   iteration — the exact regression class the hot-path allocation gate
   exists to catch.  Compiled at test time with [ocamlc -bin-annot];
   the census run with root [Alloc_hot_loop.run] and an empty budget
   must reject it with the golden diagnostics in
   allocheck_bug.expected (which pin the root -> site call chains). *)

type event = { time : int; payload : int }

let process ev = ev.time + ev.payload

(* A per-event thunk factory: the let-bound [k] is a nested closure
   capturing [ev], allocated anew on every call. *)
let make_thunk ev =
  let k () = process ev in
  k

let run n =
  let total = ref 0 in
  let rec step i =
    if i < n then begin
      let ev = { time = i; payload = i * 2 } in
      let t = make_thunk ev in
      total := !total + t ();
      step (i + 1)
    end
  in
  step 0;
  !total
