(* A deliberately discipline-violating module: the lint's known-bad
   fixture.  Never compiled — the lint runs on parsetrees — but kept
   compile-plausible.  Each block below must keep tripping exactly the
   rule named in its comment; the golden expectations live in
   bad_discipline.expected. *)

(* [mutable-field]: engine-invisible shared state. *)
type shared_counter = { mutable count : int; name : string }

(* [ref]: an unserialized shared cell. *)
let hits = ref 0

(* [ref] (:=, !), [setfield]: zero-simulated-cost mutation. *)
let bump c =
  hits := !hits + 1;
  c.count <- c.count + 1

(* [ref] (incr) via first-class mention. *)
let bump_all cells = List.iter incr cells

(* [array-set]: both the sugar and the explicit call. *)
let clear slots i =
  slots.(i) <- 0;
  Array.fill slots 0 (Array.length slots) 0

(* [atomic]: real atomics bypass the simulated memory model entirely. *)
let cas_flag (f : bool Atomic.t) = Atomic.compare_and_set f false true

(* [sim-bypass]: reaching simulator internals instead of the Engine.S
   functor parameter — the model checker's controlled scheduler never
   sees such accesses. *)
let sneaky_cell v = Sim.Memory.cell v
let peek_epoch (l : Memory.loc) = Memory.read_epoch l

(* [nondet]: host clock, OS randomness, unseeded hashing — a run must
   stay a deterministic function of its seed, so time comes from E.now
   and randomness from the engine's seeded Splitmix streams. *)
let stamp () = Sys.time ()
let jitter n = Random.int n
let fingerprint v = Hashtbl.hash v
