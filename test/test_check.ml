(* Tests for etrees.check: the exhaustive-interleaving model checker.

   Covers the schedule codec, exact interleaving counts on toy
   programs (DPOR strictly below naive enumeration on independent
   accesses), determinism of exploration, clean verdicts on the
   paper's structures at small sizes, the seeded balancer bug
   (step-property counterexample found well under the 10k budget and
   byte-identically replayable), the centralized pool's deadlock under
   a starved dequeuer, and the quiescent-consistency monitor. *)

module E = Sim.Engine
module Ex = Check.Explore
module Mon = Check.Monitor
module Sc = Check.Scenario

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Schedule codec                                                      *)
(* ------------------------------------------------------------------ *)

let test_schedule_codec () =
  let rt a = Ex.parse_schedule (Ex.format_schedule a) in
  List.iter
    (fun a -> Alcotest.(check (array int)) "round trip" a (rt a))
    [ [| 0 |]; [| 0; 0; 0; 1; 1; 0 |]; [| 2; 1; 0 |]; Array.make 40 1 ];
  check_string "run-length rendering" "0x5,1x3"
    (Ex.format_schedule [| 0; 0; 0; 0; 0; 1; 1; 1 |]);
  Alcotest.(check (array int))
    "bare pids accepted" [| 0; 1; 0 |]
    (Ex.parse_schedule "0,1,0");
  check_int "switches" 2 (Ex.switches [| 0; 0; 1; 0 |]);
  check_int "no switches" 0 (Ex.switches [| 1; 1; 1 |]);
  (match Ex.parse_schedule "0xnope" with
  | exception (Invalid_argument _ | Failure _) -> ()
  | _ -> Alcotest.fail "malformed schedule parsed")

(* ------------------------------------------------------------------ *)
(* Toy programs: exact interleaving counts                             *)
(* ------------------------------------------------------------------ *)

(* Two processors, one engine write each.  With [shared] both write the
   same cell (dependent: both orders matter); otherwise each writes its
   own cell (independent: one order suffices). *)
let toy ~shared =
  {
    Ex.name = "toy";
    procs = 2;
    prepare =
      (fun () ->
        let a = E.cell 0 and b = E.cell 0 in
        let body pid =
          E.set (if shared || pid = 0 then a else b) (pid + 1)
        in
        { Ex.body; at_quiescence = (fun () -> []) });
  }

let test_toy_counts () =
  let naive_ind = Ex.explore ~dpor:false (toy ~shared:false) in
  let dpor_ind = Ex.explore ~dpor:true (toy ~shared:false) in
  let naive_dep = Ex.explore ~dpor:false (toy ~shared:true) in
  let dpor_dep = Ex.explore ~dpor:true (toy ~shared:true) in
  List.iter
    (fun (o : Ex.outcome) ->
      check_bool "uncapped" false o.Ex.capped;
      check_bool "no violation" true (o.Ex.counterexample = None))
    [ naive_ind; dpor_ind; naive_dep; dpor_dep ];
  check_int "naive explores both orders" 2 naive_ind.Ex.runs;
  check_int "independent writes need one order" 1 dpor_ind.Ex.runs;
  check_bool "dpor < naive on independent accesses" true
    (dpor_ind.Ex.runs < naive_ind.Ex.runs);
  check_int "dependent writes need both orders" 2
    (dpor_dep.Ex.complete + dpor_dep.Ex.sleep_blocked);
  check_int "naive agrees on the dependent case" 2 naive_dep.Ex.runs

let test_explore_deterministic () =
  let prog = Sc.elim_pool.Sc.make ~procs:2 ~width:2 ~ops:1 in
  let a = Ex.explore prog and b = Ex.explore prog in
  check_int "runs" a.Ex.runs b.Ex.runs;
  check_int "complete" a.Ex.complete b.Ex.complete;
  check_int "sleep-blocked" a.Ex.sleep_blocked b.Ex.sleep_blocked;
  check_int "max depth" a.Ex.max_depth b.Ex.max_depth

(* ------------------------------------------------------------------ *)
(* Clean structures verify; DPOR prunes                                *)
(* ------------------------------------------------------------------ *)

let verified name (o : Ex.outcome) =
  check_bool (name ^ ": exhausted the space") false o.Ex.capped;
  (match o.Ex.counterexample with
  | None -> ()
  | Some (v, r) ->
      Alcotest.failf "%s: unexpected %s violation (%s): %s" name
        v.Mon.property
        (Ex.format_schedule r.Ex.schedule)
        v.Mon.detail);
  check_bool (name ^ ": did some work") true (o.Ex.complete > 0)

let test_clean_scenarios () =
  List.iter
    (fun (scenario, procs, ops) ->
      let prog = scenario.Sc.make ~procs ~width:2 ~ops in
      verified scenario.Sc.name (Ex.explore prog))
    [ (Sc.elim_pool, 2, 1); (Sc.tree, 2, 1); (Sc.counter, 2, 1);
      (Sc.counter_mixed, 2, 1); (Sc.central_pool, 2, 1) ]

let test_dpor_prunes_tree () =
  let prog = Sc.tree.Sc.make ~procs:2 ~width:2 ~ops:1 in
  let dpor = Ex.explore ~dpor:true prog in
  let naive = Ex.explore ~dpor:false ~max_interleavings:2_000 prog in
  verified "tree (dpor)" dpor;
  check_bool "naive blows past DPOR's count" true
    (naive.Ex.capped || naive.Ex.runs > dpor.Ex.runs)

(* ------------------------------------------------------------------ *)
(* Seeded bug: counterexample + byte-identical replay                  *)
(* ------------------------------------------------------------------ *)

let test_seeded_bug_found () =
  let prog = Sc.tree_buggy.Sc.make ~procs:2 ~width:2 ~ops:2 in
  let o = Ex.explore ~max_interleavings:10_000 prog in
  match o.Ex.counterexample with
  | None -> Alcotest.fail "seeded balancer bug not found within 10k runs"
  | Some (v, r) ->
      check_string "violated property" "step-property" v.Mon.property;
      check_bool "found within the 10k budget" true (o.Ex.runs < 10_000);
      let small = Ex.minimize prog v r.Ex.schedule in
      check_bool "minimization never grows the schedule" true
        (Array.length small <= Array.length r.Ex.schedule);
      check_bool "minimization never adds switches" true
        (Ex.switches small <= Ex.switches r.Ex.schedule);
      (* Byte-identical replay: the minimized schedule re-executes to
         the same violation, twice over. *)
      let r1 = Ex.replay prog small and r2 = Ex.replay prog small in
      check_string "replayed schedule is stable"
        (Ex.format_schedule r1.Ex.schedule)
        (Ex.format_schedule r2.Ex.schedule);
      let violated (run : Ex.run) =
        List.exists
          (fun (x : Mon.violation) -> x.Mon.property = v.Mon.property)
          run.Ex.violations
      in
      check_bool "replay 1 reproduces the violation" true (violated r1);
      check_bool "replay 2 reproduces the violation" true (violated r2);
      check_string "violation detail is byte-identical across replays"
        (String.concat "|"
           (List.map (fun (x : Mon.violation) -> x.Mon.detail)
              r1.Ex.violations))
        (String.concat "|"
           (List.map (fun (x : Mon.violation) -> x.Mon.detail)
              r2.Ex.violations))

let test_unseeded_tree_clean () =
  (* Same shape, bug absent: the checker must verify it. *)
  let prog = Sc.tree.Sc.make ~procs:2 ~width:2 ~ops:2 in
  verified "tree ops=2" (Ex.explore prog)

(* ------------------------------------------------------------------ *)
(* Deadlock detection                                                  *)
(* ------------------------------------------------------------------ *)

let test_starved_central_pool_deadlocks () =
  let prog = Sc.central_pool_starved.Sc.make ~procs:2 ~width:2 ~ops:1 in
  let o = Ex.explore prog in
  match o.Ex.counterexample with
  | None -> Alcotest.fail "starved centralized pool never deadlocked"
  | Some (v, r) ->
      check_string "violated property" "deadlock" v.Mon.property;
      check_bool "deadlocking schedule is non-trivial" true
        (Array.length r.Ex.schedule > 0);
      check_bool "counted" true (o.Ex.deadlocks > 0)

(* ------------------------------------------------------------------ *)
(* Quiescent-consistency monitor                                       *)
(* ------------------------------------------------------------------ *)

let op is_inc result = { Mon.is_inc; result = Some result }
let paired is_inc = { Mon.is_inc; result = None }

let qc_ok ops = (Mon.quiescent_consistency ops).Mon.ok

let test_quiescent_consistency_monitor () =
  check_bool "empty history" true (qc_ok []);
  check_bool "inc burst returning 0..n-1" true
    (qc_ok [ op true 0; op true 1; op true 2 ]);
  check_bool "order of the multiset is irrelevant" true
    (qc_ok [ op true 2; op true 0; op true 1 ]);
  check_bool "inc skipping a value" false (qc_ok [ op true 0; op true 2 ]);
  check_bool "single inc returning 5" false (qc_ok [ op true 5 ]);
  check_bool "inc then dec" true (qc_ok [ op true 0; op false 0 ]);
  check_bool "dec first goes negative" true (qc_ok [ op false (-1) ]);
  check_bool "pairs cancel" true (qc_ok [ paired true; paired false ]);
  check_bool "unbalanced pairs" false (qc_ok [ paired true ]);
  check_bool "pairs plus a realizable tail" true
    (qc_ok [ paired true; paired false; op true 0 ]);
  check_bool "undershoot is not realizable" false
    (qc_ok [ op true (-2); op false (-2) ]);
  check_bool "paired balance accepts the undershoot history" true
    (Mon.paired_balance [ op true (-2); op false (-2) ]).Mon.ok

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "explore",
        [
          Alcotest.test_case "schedule codec" `Quick test_schedule_codec;
          Alcotest.test_case "toy interleaving counts" `Quick test_toy_counts;
          Alcotest.test_case "deterministic" `Quick test_explore_deterministic;
          Alcotest.test_case "clean scenarios verify" `Slow
            test_clean_scenarios;
          Alcotest.test_case "dpor prunes the tree" `Slow test_dpor_prunes_tree;
        ] );
      ( "counterexample",
        [
          Alcotest.test_case "seeded bug found + replayed" `Quick
            test_seeded_bug_found;
          Alcotest.test_case "unseeded tree is clean" `Slow
            test_unseeded_tree_clean;
          Alcotest.test_case "starved central pool deadlocks" `Quick
            test_starved_central_pool_deadlocks;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "quiescent consistency" `Quick
            test_quiescent_consistency_monitor;
        ] );
    ]
