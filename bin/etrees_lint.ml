(* CLI driver for the effect-discipline lint.

     dune build @lint
     dune exec bin/etrees_lint.exe -- [--allowlist FILE] [--json FILE] PATH...

   Each PATH is an .ml file or a directory scanned recursively for .ml
   files.  Output is one machine-readable line per violation
   (file:line:col: [rule] message), globally sorted by (file, line,
   col, rule) and deduplicated — overlapping PATH arguments and
   repeated files cannot change the report, so diffs against a golden
   run are stable.  [--json FILE] additionally writes the whole run as
   one JSON object ([-] for stdout) for the CI artifact.

   Stale allowlist entries — ones matching no current violation — are
   hard errors: an exception that outlives its violation is a hole the
   next regression walks through unnoticed, so the allowlist must
   shrink in the same change that fixes the code.  Exit status 1 if
   any violation survives the allowlist or any entry is stale, 2 on
   parse/usage errors. *)

let usage = "etrees_lint [--only RULE] [--allowlist FILE] [--json FILE] PATH..."

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun name -> ml_files_under (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let allowlist_file = ref None in
  let json_file = ref None in
  let only = ref None in
  let paths = ref [] in
  Arg.parse
    [
      ( "--only",
        Arg.String
          (fun r ->
            match Analysis.Lint_rules.rule_of_name r with
            | Some rule -> only := Some rule
            | None ->
                Printf.eprintf "etrees_lint: unknown rule %S\n" r;
                exit 2),
        "RULE Restrict the run to one rule (e.g. nondet); allowlist \
         stale-entry checking applies to that rule alone" );
      ( "--allowlist",
        Arg.String (fun f -> allowlist_file := Some f),
        "FILE Allowlist of deliberate exceptions (path rule pairs)" );
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE Also write the report as one JSON object (- for stdout)" );
    ]
    (fun p -> paths := p :: !paths)
    usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  try
    let allows =
      match !allowlist_file with
      | Some f -> Analysis.Lint_rules.load_allowlist f
      | None -> []
    in
    let files =
      List.concat_map ml_files_under (List.rev !paths)
      |> List.sort_uniq compare
    in
    let violations =
      List.concat_map Analysis.Lint_rules.scan_file files
      |> List.filter (fun (v : Analysis.Lint_rules.violation) ->
             match !only with None -> true | Some r -> v.rule = r)
      |> List.sort_uniq
           (fun (a : Analysis.Lint_rules.violation)
                (b : Analysis.Lint_rules.violation) ->
             compare
               (a.file, a.line, a.col, Analysis.Lint_rules.rule_name a.rule)
               (b.file, b.line, b.col, Analysis.Lint_rules.rule_name b.rule))
    in
    let kept, suppressed, unused =
      Analysis.Lint_rules.apply_allowlist allows violations
    in
    List.iter
      (fun v -> print_endline (Analysis.Lint_rules.format_violation v))
      kept;
    List.iter
      (fun (a : Analysis.Lint_rules.allow) ->
        Printf.eprintf "error: stale allowlist entry: %s %s\n" a.path
          (Analysis.Lint_rules.rule_name a.allowed))
      unused;
    (match !json_file with
    | None -> ()
    | Some f ->
        let json =
          Analysis.Lint_rules.report_json ~files:(List.length files) ~kept
            ~suppressed ~unused
        in
        if f = "-" then print_string json
        else begin
          let oc = open_out f in
          output_string oc json;
          close_out oc
        end);
    Printf.eprintf
      "etrees_lint: %d file(s), %d violation(s), %d allowlisted, %d stale \
       allowlist entr%s\n"
      (List.length files) (List.length kept) (List.length suppressed)
      (List.length unused)
      (if List.length unused = 1 then "y" else "ies");
    exit (if kept = [] && unused = [] then 0 else 1)
  with
  | Analysis.Lint_rules.Parse_error msg ->
      prerr_endline msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "etrees_lint: %s\n" msg;
      exit 2
