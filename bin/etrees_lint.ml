(* CLI driver for the effect-discipline lint.

     dune build @lint
     dune exec bin/etrees_lint.exe -- [--allowlist FILE] PATH...

   Each PATH is an .ml file or a directory scanned recursively for .ml
   files.  Output is one machine-readable line per violation
   (file:line:col: [rule] message), globally sorted by (file, line,
   col, rule) and deduplicated — overlapping PATH arguments and
   repeated files cannot change the report, so diffs against a golden
   run are stable.  Exit status 1 if any violation survives the
   allowlist, 2 on parse/usage errors. *)

let usage = "etrees_lint [--allowlist FILE] PATH..."

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun name -> ml_files_under (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let allowlist_file = ref None in
  let paths = ref [] in
  Arg.parse
    [
      ( "--allowlist",
        Arg.String (fun f -> allowlist_file := Some f),
        "FILE Allowlist of deliberate exceptions (path rule pairs)" );
    ]
    (fun p -> paths := p :: !paths)
    usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  try
    let allows =
      match !allowlist_file with
      | Some f -> Analysis.Lint_rules.load_allowlist f
      | None -> []
    in
    let files =
      List.concat_map ml_files_under (List.rev !paths)
      |> List.sort_uniq compare
    in
    let violations =
      List.concat_map Analysis.Lint_rules.scan_file files
      |> List.sort_uniq
           (fun (a : Analysis.Lint_rules.violation)
                (b : Analysis.Lint_rules.violation) ->
             compare
               (a.file, a.line, a.col, Analysis.Lint_rules.rule_name a.rule)
               (b.file, b.line, b.col, Analysis.Lint_rules.rule_name b.rule))
    in
    let kept, suppressed, unused =
      Analysis.Lint_rules.apply_allowlist allows violations
    in
    List.iter
      (fun v -> print_endline (Analysis.Lint_rules.format_violation v))
      kept;
    List.iter
      (fun (a : Analysis.Lint_rules.allow) ->
        Printf.eprintf "note: unused allowlist entry: %s %s\n" a.path
          (Analysis.Lint_rules.rule_name a.allowed))
      unused;
    Printf.eprintf
      "etrees_lint: %d file(s), %d violation(s), %d allowlisted\n"
      (List.length files) (List.length kept) (List.length suppressed);
    exit (if kept = [] then 0 else 1)
  with
  | Analysis.Lint_rules.Parse_error msg ->
      prerr_endline msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "etrees_lint: %s\n" msg;
      exit 2
