(* CLI driver for the hot-path allocation certifier.

     dune build @allocheck
     dune exec bin/etrees_allocheck.exe -- [--roots R1,R2,...]
       [--budget FILE] [--json FILE] [--list-hot] [--print-budget] PATH...

   Each PATH is a .cmt file or a directory scanned recursively for .cmt
   files (dune keeps them under <lib>/.<name>.objs/byte/).  The census
   classifies every allocation site in the scanned modules, computes
   the set of functions reachable from the hot roots, and holds the
   reachable sites against the committed per-(function, kind) budget.

   Output is one machine-readable line per budget violation
   (file:line:col: [alloc-<kind>] ... chain: root -> ... -> fn), plus
   stale-budget errors on stderr; --json writes the whole census as
   one JSON object ([-] for stdout) for the CI artifact.  --list-hot
   prints the hot set with call chains; --print-budget prints the hot
   census in budget-file syntax (the ratchet helper).  Exit status 1
   if any violation or stale entry survives, 2 on usage/read errors. *)

let usage =
  "etrees_allocheck [--roots R1,R2,..] [--budget FILE] [--json FILE] \
   [--list-hot] [--print-budget] PATH..."

(* The simulator core's hot roots: the scheduler step loop, the engine
   dispatch ops, the event heap, and the memory stamps the scheduler
   calls per serialized operation.  Override with --roots. *)
let default_roots =
  [
    "Scheduler.run";
    "Engine_impl.get";
    "Engine_impl.set";
    "Engine_impl.exchange";
    "Engine_impl.compare_and_set";
    "Engine_impl.fetch_and_add";
    "Engine_impl.delay";
    "Engine_impl.cpu_relax";
    "Engine_impl.random_int";
    "Engine_impl.random_bernoulli";
    "Engine_impl.now";
    "Event_heap.push";
    "Event_heap.pop";
    "Memory.issue_stamp";
    "Memory.commit_stamp";
    "Memory.shadow_clean";
  ]

let () =
  let module A = Analysis.Allocheck in
  let roots = ref default_roots in
  let budget_file = ref None in
  let json_file = ref None in
  let list_hot = ref false in
  let print_budget = ref false in
  let paths = ref [] in
  Arg.parse
    [
      ( "--roots",
        Arg.String
          (fun s ->
            roots :=
              String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun s -> s <> "")),
        "R1,R2 Hot roots as Module.fn names (default: the simulator core)" );
      ( "--budget",
        Arg.String (fun f -> budget_file := Some f),
        "FILE Committed per-(function, kind) allocation budget" );
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE Write the census as one JSON object (- for stdout)" );
      ( "--list-hot",
        Arg.Set list_hot,
        " List hot functions with their root call chains" );
      ( "--print-budget",
        Arg.Set print_budget,
        " Print the hot census in budget-file syntax (ratchet helper)" );
    ]
    (fun p -> paths := p :: !paths)
    usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  try
    let census = A.census_of_paths (List.rev !paths) in
    let budget =
      match !budget_file with Some f -> A.load_budget f | None -> []
    in
    let verdict = A.check census ~roots:!roots ~budget in
    if !list_hot then
      List.iter
        (fun (fn, chain) ->
          Printf.printf "%s  (chain: %s)\n" fn (String.concat " -> " chain))
        verdict.A.hot_fns;
    if !print_budget then print_string (A.print_budget verdict);
    List.iter
      (fun v -> print_endline (A.format_violation v))
      verdict.A.violations;
    List.iter
      (fun s -> Printf.eprintf "error: %s\n" (A.format_stale s))
      verdict.A.stale;
    (match !json_file with
    | None -> ()
    | Some f ->
        let json = A.census_json census ~verdict ~roots:!roots in
        if f = "-" then print_string json
        else begin
          let oc = open_out f in
          output_string oc json;
          close_out oc
        end);
    Printf.eprintf
      "etrees_allocheck: %d module(s), %d hot function(s), %d hot site(s), \
       %d violation(s), %d stale budget entr%s\n"
      (List.length census.A.c_modules)
      (List.length verdict.A.hot_fns)
      (List.length verdict.A.hot_sites)
      (List.length verdict.A.violations)
      (List.length verdict.A.stale)
      (if List.length verdict.A.stale = 1 then "y" else "ies");
    exit
      (if verdict.A.violations = [] && verdict.A.stale = [] then 0 else 1)
  with
  | A.Error msg ->
      Printf.eprintf "etrees_allocheck: %s\n" msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "etrees_allocheck: %s\n" msg;
      exit 2
