(* A command-line driver for running individual experiments with custom
   parameters (processor counts, workload, horizon, seed, method).

     dune exec bin/etrees_run.exe -- pc --workload 1000 --procs 64
     dune exec bin/etrees_run.exe -- count --procs 256 --method dtree32
     dune exec bin/etrees_run.exe -- queens --procs 32 --method rsu
     dune exec bin/etrees_run.exe -- response --procs 16 --total 640
     dune exec bin/etrees_run.exe -- table1 --procs 256 *)

open Cmdliner
module W = Workloads

let pool_methods =
  [
    ("etree", fun ~procs -> W.Methods.etree_pool ~procs ());
    ("etree64", fun ~procs -> W.Methods.etree_pool ~width:64 ~procs ());
    ("estack", fun ~procs -> W.Methods.estack_pool ~procs ());
    ("mcs", fun ~procs -> W.Methods.mcs_pool ~procs ());
    ("ctree", fun ~procs -> W.Methods.ctree_pool ~procs ());
    ("ctree256", fun ~procs -> W.Methods.ctree_pool ~tree_procs:256 ~procs ());
    ("dtree32", fun ~procs -> W.Methods.dtree_pool ~procs ());
    ("rsu", fun ~procs -> W.Methods.rsu_pool ~procs ());
    ("worksteal", fun ~procs -> W.Methods.ws_pool ~procs ());
    ("ebstack", fun ~procs -> W.Methods.eb_stack_pool ~procs ());
    ("treiber", fun ~procs -> W.Methods.treiber_pool ~procs ());
    ("etree-noelim", fun ~procs -> W.Methods.etree_pool_no_elim ~procs ());
    ("etree-1prism", fun ~procs -> W.Methods.etree_pool_single_prism ~procs ());
  ]

let counter_methods =
  let open W.Methods in
  [
    ("mcs", List.nth counting_methods 1);
    ("ctree", List.nth counting_methods 2);
    ("dtree32", List.nth counting_methods 3);
    ("dtree64", List.nth counting_methods 4);
    ("dtree32multi", List.nth counting_methods 0);
    ("faa", naive_counter);
    ("bitonic", fun ~procs -> bitonic_counter ~procs ());
  ]

(* Common options *)
let procs_t =
  Arg.(value & opt int 64 & info [ "p"; "procs" ] ~doc:"Simulated processors.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let horizon_t =
  Arg.(
    value
    & opt int 200_000
    & info [ "horizon" ] ~doc:"Simulated cycles to run (paper: 1000000).")

let method_conv names =
  let parse s =
    match List.assoc_opt s names with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown method %S (expected one of: %s)" s
               (String.concat ", " (List.map fst names))))
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<method>")

let pool_method_t =
  Arg.(
    value
    & opt (method_conv pool_methods) (List.assoc "etree" pool_methods)
    & info [ "m"; "method" ]
        ~doc:
          (Printf.sprintf "Pool method: %s."
             (String.concat ", " (List.map fst pool_methods))))

let counter_method_t =
  Arg.(
    value
    & opt (method_conv counter_methods) (List.assoc "dtree32multi" counter_methods)
    & info [ "m"; "method" ]
        ~doc:
          (Printf.sprintf "Counter method: %s."
             (String.concat ", " (List.map fst counter_methods))))

(* pc: produce-consume *)
let pc_cmd =
  let workload_t =
    Arg.(
      value & opt int 0
      & info [ "w"; "workload" ] ~doc:"Max think time between operations.")
  in
  let run procs seed horizon workload make =
    let p = W.Produce_consume.run ~seed ~horizon ~workload ~procs make in
    Printf.printf
      "%s procs=%d workload=%d: %d ops, %d ops/Mcycle, %.1f cycles/op, mem %s\n"
      (make ~procs).W.Pool_obj.name procs workload p.W.Produce_consume.ops
      p.W.Produce_consume.throughput_per_m p.W.Produce_consume.latency
      (W.Report.ops p.W.Produce_consume.mem)
  in
  Cmd.v
    (Cmd.info "pc" ~doc:"Produce-consume benchmark (Figures 7/8).")
    Term.(const run $ procs_t $ seed_t $ horizon_t $ workload_t $ pool_method_t)

(* count: counting benchmark *)
let count_cmd =
  let run procs seed horizon make =
    let p = W.Counting.run ~seed ~horizon ~procs make in
    Printf.printf "%s procs=%d: %d ops, %d ops/Mcycle, mem %s\n"
      (make ~procs).W.Pool_obj.cname procs p.W.Counting.ops
      p.W.Counting.throughput_per_m
      (W.Report.ops p.W.Counting.mem)
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Counting benchmark (Figure 9).")
    Term.(const run $ procs_t $ seed_t $ horizon_t $ counter_method_t)

(* queens *)
let queens_cmd =
  let run procs seed make =
    let p = W.Queens.run ~seed ~procs make in
    Printf.printf "%s procs=%d: %d tasks in %d cycles\n"
      (make ~procs).W.Pool_obj.name procs p.W.Queens.consumed
      p.W.Queens.elapsed
  in
  Cmd.v
    (Cmd.info "queens" ~doc:"10-queens job distribution (Figure 10 left).")
    Term.(const run $ procs_t $ seed_t $ pool_method_t)

(* response *)
let response_cmd =
  let total_t =
    Arg.(
      value & opt int 2_560
      & info [ "total" ] ~doc:"Elements to hand off (paper: 2560).")
  in
  let run procs seed total make =
    let p = W.Response_time.run ~seed ~total ~procs make in
    Printf.printf "%s procs=%d: %d elements in %d cycles (%.1f normalized)\n"
      (make ~procs).W.Pool_obj.name procs p.W.Response_time.consumed
      p.W.Response_time.elapsed p.W.Response_time.normalized
  in
  Cmd.v
    (Cmd.info "response" ~doc:"Response-time benchmark (Figure 10 right).")
    Term.(const run $ procs_t $ seed_t $ total_t $ pool_method_t)

(* table1 *)
let table1_cmd =
  let run procs seed horizon =
    let r = W.Table1.run ~seed ~horizon ~procs () in
    Printf.printf "Etree-32, %d procs:\n" procs;
    List.iter
      (fun (row : W.Table1.level_row) ->
        Printf.printf "  level %d: %.1f%% eliminated\n" row.W.Table1.level
          (100.0 *. row.W.Table1.fraction))
      r.W.Table1.rows;
    Printf.printf "  expected nodes traversed: %.2f\n" r.W.Table1.expected_nodes;
    Printf.printf "  requests reaching leaves: %.1f%%\n"
      (100.0 *. r.W.Table1.leaf_fraction)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Per-level elimination fractions (Table 1).")
    Term.(const run $ procs_t $ seed_t $ horizon_t)

let () =
  let doc = "Elimination-tree experiments on the multiprocessor simulator." in
  let info = Cmd.info "etrees_run" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ pc_cmd; count_cmd; queens_cmd; response_cmd; table1_cmd ]))
