(* A command-line driver for running individual experiments with custom
   parameters (processor counts, workload, horizon, seed, method).

     dune exec bin/etrees_run.exe -- pc --workload 1000 --procs 64
     dune exec bin/etrees_run.exe -- count --procs 256 --method dtree32
     dune exec bin/etrees_run.exe -- queens --procs 32 --method rsu
     dune exec bin/etrees_run.exe -- response --procs 16 --total 640
     dune exec bin/etrees_run.exe -- table1 --procs 256
     dune exec bin/etrees_run.exe -- chaos --procs 64 --stall 8x2000 \
       --fault-seed 7 *)

open Cmdliner
module W = Workloads

(* The method name -> constructor maps live in W.Methods so the bench
   harness and this driver agree on them. *)
let pool_methods = W.Methods.pool_registry
let counter_methods = W.Methods.counter_registry

(* Common options *)
let procs_t =
  Arg.(value & opt int 64 & info [ "p"; "procs" ] ~doc:"Simulated processors.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let horizon_t =
  Arg.(
    value
    & opt int 200_000
    & info [ "horizon" ] ~doc:"Simulated cycles to run (paper: 1000000).")

let method_conv names =
  let parse s =
    match List.assoc_opt s names with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown method %S (expected one of: %s)" s
               (String.concat ", " (List.map fst names))))
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<method>")

let pool_method_t =
  Arg.(
    value
    & opt (method_conv pool_methods) (List.assoc "etree" pool_methods)
    & info [ "m"; "method" ]
        ~doc:
          (Printf.sprintf "Pool method: %s."
             (String.concat ", " (List.map fst pool_methods))))

let counter_method_t =
  Arg.(
    value
    & opt (method_conv counter_methods) (List.assoc "dtree32multi" counter_methods)
    & info [ "m"; "method" ]
        ~doc:
          (Printf.sprintf "Counter method: %s."
             (String.concat ", " (List.map fst counter_methods))))

(* pc: produce-consume *)
let pc_cmd =
  let workload_t =
    Arg.(
      value & opt int 0
      & info [ "w"; "workload" ] ~doc:"Max think time between operations.")
  in
  let adapt_t =
    Arg.(
      value & flag
      & info [ "adapt" ]
          ~doc:
            "Run the elimination tree under the reactive controller \
             (docs/ADAPTIVE.md) instead of the static tuning; the \
             $(b,--adapt-*) options refine its configuration.  Overrides \
             $(b,--method) with the reactive etree pool.")
  in
  let adapt_period_t =
    Arg.(
      value & opt int Adapt.default.Adapt.period
      & info [ "adapt-period" ]
          ~doc:"Reactive: balancer entries per adaptation epoch.")
  in
  let adapt_hi_t =
    Arg.(
      value & opt int Adapt.default.Adapt.hi_pct
      & info [ "adapt-hi" ]
          ~doc:"Reactive: grow when the window hit rate is >= this percent.")
  in
  let adapt_lo_t =
    Arg.(
      value & opt int Adapt.default.Adapt.lo_pct
      & info [ "adapt-lo" ]
          ~doc:"Reactive: shrink when the window hit rate is <= this percent.")
  in
  let adapt_min_pct_t =
    Arg.(
      value & opt int Adapt.default.Adapt.min_pct
      & info [ "adapt-min-pct" ]
          ~doc:"Reactive: clamp floor, percent of the static value.")
  in
  let adapt_max_pct_t =
    Arg.(
      value & opt int Adapt.default.Adapt.max_pct
      & info [ "adapt-max-pct" ]
          ~doc:"Reactive: clamp ceiling, percent of the static value.")
  in
  let adapt_seed_t =
    Arg.(
      value & opt int Adapt.default.Adapt.seed
      & info [ "adapt-seed" ]
          ~doc:"Reactive: seed for the controllers' private streams.")
  in
  let run procs seed horizon workload make adapt period hi_pct lo_pct min_pct
      max_pct adapt_seed =
    let make =
      if not adapt then make
      else
        let config =
          Adapt.validate_config
            {
              Adapt.default with
              Adapt.period;
              hi_pct;
              lo_pct;
              min_pct;
              max_pct;
              seed = adapt_seed;
            }
        in
        fun ~procs -> W.Methods.etree_pool_reactive ~config ~procs ()
    in
    (* Capture the pool the workload builds so the reactive state can be
       read back after the run. *)
    let captured = ref None in
    let make ~procs =
      let pool = make ~procs in
      captured := Some pool;
      pool
    in
    let p = W.Produce_consume.run ~seed ~horizon ~workload ~procs make in
    let pool = Option.get !captured in
    Printf.printf
      "%s procs=%d workload=%d: %d ops, %d ops/Mcycle, %.1f cycles/op, mem %s\n"
      pool.W.Pool_obj.name procs workload p.W.Produce_consume.ops
      p.W.Produce_consume.throughput_per_m p.W.Produce_consume.latency
      (W.Report.ops p.W.Produce_consume.mem);
    match pool.W.Pool_obj.adapt_by_level with
    | None -> ()
    | Some f ->
        let fmt_level level =
          String.concat ","
            (List.map
               (fun (spin, widths) ->
                 Printf.sprintf "%d:[%s]" spin
                   (String.concat ";" (List.map string_of_int widths)))
               level)
        in
        Printf.printf "adapted spin:[widths] by depth: %s\n"
          (String.concat " | " (List.map fmt_level (f ())))
  in
  Cmd.v
    (Cmd.info "pc" ~doc:"Produce-consume benchmark (Figures 7/8).")
    Term.(
      const run $ procs_t $ seed_t $ horizon_t $ workload_t $ pool_method_t
      $ adapt_t $ adapt_period_t $ adapt_hi_t $ adapt_lo_t $ adapt_min_pct_t
      $ adapt_max_pct_t $ adapt_seed_t)

(* count: counting benchmark *)
let count_cmd =
  let run procs seed horizon make =
    let p = W.Counting.run ~seed ~horizon ~procs make in
    Printf.printf "%s procs=%d: %d ops, %d ops/Mcycle, mem %s\n"
      (make ~procs).W.Pool_obj.cname procs p.W.Counting.ops
      p.W.Counting.throughput_per_m
      (W.Report.ops p.W.Counting.mem)
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Counting benchmark (Figure 9).")
    Term.(const run $ procs_t $ seed_t $ horizon_t $ counter_method_t)

(* queens *)
let queens_cmd =
  let run procs seed make =
    let p = W.Queens.run ~seed ~procs make in
    Printf.printf "%s procs=%d: %d tasks in %d cycles\n"
      (make ~procs).W.Pool_obj.name procs p.W.Queens.consumed
      p.W.Queens.elapsed
  in
  Cmd.v
    (Cmd.info "queens" ~doc:"10-queens job distribution (Figure 10 left).")
    Term.(const run $ procs_t $ seed_t $ pool_method_t)

(* response *)
let response_cmd =
  let total_t =
    Arg.(
      value & opt int 2_560
      & info [ "total" ] ~doc:"Elements to hand off (paper: 2560).")
  in
  let run procs seed total make =
    let p = W.Response_time.run ~seed ~total ~procs make in
    Printf.printf "%s procs=%d: %d elements in %d cycles (%.1f normalized)\n"
      (make ~procs).W.Pool_obj.name procs p.W.Response_time.consumed
      p.W.Response_time.elapsed p.W.Response_time.normalized
  in
  Cmd.v
    (Cmd.info "response" ~doc:"Response-time benchmark (Figure 10 right).")
    Term.(const run $ procs_t $ seed_t $ total_t $ pool_method_t)

(* table1 *)
let table1_cmd =
  let run procs seed horizon =
    let r = W.Table1.run ~seed ~horizon ~procs () in
    Printf.printf "Etree-32, %d procs:\n" procs;
    List.iter
      (fun (row : W.Table1.level_row) ->
        Printf.printf "  level %d: %.1f%% eliminated\n" row.W.Table1.level
          (100.0 *. row.W.Table1.fraction))
      r.W.Table1.rows;
    Printf.printf "  expected nodes traversed: %.2f\n" r.W.Table1.expected_nodes;
    Printf.printf "  requests reaching leaves: %.1f%%\n"
      (100.0 *. r.W.Table1.leaf_fraction)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Per-level elimination fractions (Table 1).")
    Term.(const run $ procs_t $ seed_t $ horizon_t)

(* chaos: robustness under deterministic fault plans (etrees.faults) *)
let chaos_cmd =
  let pair_conv what =
    let parse s =
      match Faults.Fault_plan.parse_pair s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg (Printf.sprintf "%s: %s" what e))
    in
    Arg.conv
      ( parse,
        fun fmt (a, b) -> Format.fprintf fmt "%dx%d" a b )
  in
  let fault_seed_t =
    Arg.(
      value & opt int 7
      & info [ "fault-seed" ]
          ~doc:"Seed deriving fault placement (independent of --seed).")
  in
  let stall_t =
    Arg.(
      value
      & opt (some (pair_conv "--stall")) None
      & info [ "stall" ] ~docv:"NxCYCLES"
          ~doc:"Inject $(docv): N processor stalls of CYCLES cycles each.")
  in
  let crash_t =
    Arg.(
      value & opt int 0
      & info [ "crash" ] ~docv:"N" ~doc:"Crash-stop $(docv) processors.")
  in
  let hotspot_t =
    Arg.(
      value
      & opt (some (pair_conv "--hotspot")) None
      & info [ "hotspot" ] ~docv:"FACTORxDEN"
          ~doc:
            "Slow 1/DEN of all memory locations by FACTOR for the middle \
             half of the run.")
  in
  let jitter_t =
    Arg.(
      value & opt int 0
      & info [ "jitter" ] ~docv:"AMP"
          ~doc:"Lengthen local delays by a hash-derived amount in [0,AMP].")
  in
  let method_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "method" ]
          ~doc:
            (Printf.sprintf "Single pool method to test (default: %s)."
               (String.concat ", " W.Chaos.default_methods)))
  in
  let run procs seed horizon fault_seed stall crash hotspot jitter meth =
    let methods =
      match meth with
      | None -> W.Chaos.default_methods
      | Some m when List.mem_assoc m pool_methods -> [ m ]
      | Some m ->
          Printf.eprintf "unknown method %S (expected one of: %s)\n" m
            (String.concat ", " (List.map fst pool_methods));
          exit 2
    in
    let plan =
      Faults.Fault_plan.of_flags ~fault_seed ~procs ~horizon ~stall ~crash
        ~hotspot ~jitter
    in
    if Faults.Fault_plan.is_none plan then begin
      (* No fault flags: run the full degradation ladder. *)
      Printf.printf
        "chaos ladder: procs=%d seed=%d horizon=%d fault-seed=%d\n\n" procs
        seed horizon fault_seed;
      List.iter
        (fun (level, label, points) ->
          Printf.printf "-- fault level %d (%s) --\n" level label;
          (match points with
          | p :: _ -> Printf.printf "plan: %s\n" p.W.Chaos.plan
          | [] -> ());
          List.iter (fun p -> print_endline (W.Chaos.format_point p)) points;
          print_newline ())
        (W.Chaos.sweep ~seed ~fault_seed ~horizon ~methods ~procs ())
    end
    else begin
      Printf.printf "chaos: procs=%d seed=%d horizon=%d\nplan: %s\n\n" procs
        seed horizon
        (Faults.Fault_plan.describe plan);
      List.iter
        (fun name ->
          let make = List.assoc name pool_methods in
          let base =
            W.Chaos.run ~seed ~horizon ~plan:Faults.Fault_plan.none ~procs
              make
          in
          let faulted = W.Chaos.run ~seed ~horizon ~plan ~procs make in
          let delta =
            if base.W.Chaos.throughput_per_m = 0 then 0.0
            else
              100.0
              *. float_of_int
                   (faulted.W.Chaos.throughput_per_m
                   - base.W.Chaos.throughput_per_m)
              /. float_of_int base.W.Chaos.throughput_per_m
          in
          Printf.printf "baseline %s\nfaulted  %s\ndegradation %+.1f%%\n\n"
            (W.Chaos.format_point base)
            (W.Chaos.format_point faulted)
            delta)
        methods
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Robustness under deterministic fault plans (stalls, crashes, hot \
          spots, jitter); reports per-method degradation plus conservation \
          and termination-bound verdicts.  Without fault flags, runs the \
          fault-intensity ladder.")
    Term.(
      const run $ procs_t $ seed_t $ horizon_t $ fault_seed_t $ stall_t
      $ crash_t $ hotspot_t $ jitter_t $ method_t)

(* service: the sharded service frontend under closed-loop sessions
   (etrees.shard, docs/SHARDING.md) *)
let service_cmd =
  let shards_t =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~doc:"Independent elimination trees behind the hash.")
  in
  let sessions_t =
    Arg.(
      value & opt int 10_000
      & info [ "sessions" ]
          ~doc:"Client sessions (rounded to a multiple of --procs).")
  in
  let arrival_t =
    let regime_conv =
      let parse s =
        if List.mem s W.Arrivals.known_names then Ok s
        else
          Error
            (`Msg
              (Printf.sprintf "unknown arrival regime %S (expected one of: %s)"
                 s
                 (String.concat ", " W.Arrivals.known_names)))
      in
      Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s)
    in
    Arg.(
      value & opt regime_conv "poisson"
      & info [ "arrival" ]
          ~doc:
            (Printf.sprintf "Arrival regime: %s."
               (String.concat ", " W.Arrivals.known_names)))
  in
  let mean_gap_t =
    Arg.(
      value & opt int 800
      & info [ "mean-gap" ]
          ~doc:"Mean cycles between a worker's request arrivals.")
  in
  let width_t =
    Arg.(
      value & opt int 4
      & info [ "width" ] ~doc:"Per-shard elimination-tree width.")
  in
  let steal_t =
    Arg.(
      value & opt (some int) None
      & info [ "steal" ] ~docv:"N"
          ~doc:
            "Foreign shards probed when the home shard runs dry (default \
             shards - 1; 0 disables stealing).")
  in
  let adapt_t =
    Arg.(
      value & flag
      & info [ "adapt" ]
          ~doc:
            "Run each shard under the reactive controller \
             (docs/ADAPTIVE.md), reseeded per shard, instead of the static \
             tuning.")
  in
  let run procs seed shards sessions arrival mean_gap width steal adapt =
    let regime =
      match W.Arrivals.of_name arrival ~mean_gap with
      | Some r -> r
      | None -> assert false (* conv validated the name *)
    in
    let policy = if adapt then `Reactive Adapt.default else `Static in
    let p =
      W.Service.run ~seed ~procs ~width ~shards ?steal_probes:steal ~policy
        ~sessions ~regime ()
    in
    print_endline (W.Service.format_point p);
    Printf.printf
      "  completed %d/%d requests, end clock %d, empty homes %d\n"
      p.W.Service.completed p.W.Service.requests p.W.Service.end_clock
      p.W.Service.steal_empty_homes;
    Printf.printf "  residue by shard: [%s]\n"
      (String.concat "; "
         (List.map string_of_int p.W.Service.residue_by_shard))
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Sharded service frontend (docs/SHARDING.md): closed-loop sessions \
          against N elimination trees behind a session hash, with overflow \
          stealing; reports SLO sojourn percentiles and the whole-frontend \
          conservation audit.")
    Term.(
      const run $ procs_t $ seed_t $ shards_t $ sessions_t $ arrival_t
      $ mean_gap_t $ width_t $ steal_t $ adapt_t)

(* trace: deterministic tracing, cycle attribution, Perfetto export
   (etrees.trace) *)
let trace_cmd =
  let level_conv =
    let parse s =
      match Etrace.Level.of_string s with
      | Some l -> Ok l
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown trace level %S (expected one of: %s)" s
                 (String.concat ", "
                    (List.map Etrace.Level.to_string Etrace.Level.all))))
    in
    Arg.conv
      (parse, fun fmt l -> Format.pp_print_string fmt (Etrace.Level.to_string l))
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON timeline to $(docv); load it in \
             ui.perfetto.dev or chrome://tracing.")
  in
  let level_t =
    Arg.(
      value
      & opt level_conv Etrace.Level.Events
      & info [ "trace-level" ] ~docv:"LEVEL"
          ~doc:
            "Detail rendered into the timeline: off, ops (processor/op \
             lifecycle), events (plus balancer traversal), full (plus raw \
             scheduler intervals).  Cycle attribution always sees the full \
             stream.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the written trace file (phases, timestamp presence, \
             per-track monotonicity); exit nonzero on failure.")
  in
  let workload_t =
    Arg.(
      value & opt int 0
      & info [ "w"; "workload" ] ~doc:"Max think time between operations.")
  in
  let run procs seed horizon workload make out level check =
    let chrome_level = match out with Some _ -> Some level | None -> None in
    let tr =
      W.Traced.run ?chrome_level ~procs (fun () ->
          W.Produce_consume.run ~seed ~horizon ~workload ~procs make)
    in
    let p = tr.W.Traced.value in
    let name = (make ~procs).W.Pool_obj.name in
    Printf.printf "%s procs=%d workload=%d: %d ops, %d ops/Mcycle\n\n" name
      procs workload p.W.Produce_consume.ops
      p.W.Produce_consume.throughput_per_m;
    print_string
      (W.Report.attribution_table
         ~title:
           (Printf.sprintf "Cycle attribution: %s, W=%d, %d procs" name
              workload procs)
         tr.W.Traced.attribution);
    print_newline ();
    if not (Etrace.Attribution.check tr.W.Traced.attribution) then begin
      Printf.eprintf
        "trace: attribution books do not balance (attributed %d, total %d)\n"
        tr.W.Traced.attribution.Etrace.Attribution.attributed_cycles
        tr.W.Traced.attribution.Etrace.Attribution.total_cycles;
      exit 1
    end;
    match (tr.W.Traced.chrome, out) with
    | Some c, Some file ->
        Etrace.Chrome.write ~file c;
        Printf.printf "wrote %s (level %s)\n" file
          (Etrace.Level.to_string level);
        if check then begin
          match Etrace.Chrome.validate_file file with
          | Ok st ->
              Printf.printf "validated: %d events on %d tracks\n"
                st.Etrace.Chrome.events st.Etrace.Chrome.tracks
          | Error e ->
              Printf.eprintf "trace: %s fails validation: %s\n" file e;
              exit 1
        end
    | _ ->
        if check then begin
          Printf.eprintf "trace: --check requires --trace-out FILE\n";
          exit 2
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the produce-consume workload under the tracing sinks: print \
          the per-layer cycle-attribution table and optionally export a \
          Chrome/Perfetto timeline.")
    Term.(
      const run $ procs_t $ seed_t $ horizon_t $ workload_t $ pool_method_t
      $ out_t $ level_t $ check_t)

(* check: exhaustive-interleaving model checking (etrees.check). *)
let check_cmd =
  let module Ex = Check.Explore in
  let scenario_conv =
    let parse s =
      match Check.Scenario.find s with
      | Some sc -> Ok sc
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown scenario %S (expected one of: %s)" s
                 (String.concat ", " Check.Scenario.names)))
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s.Check.Scenario.name)
  in
  let scenario_t =
    Arg.(
      value
      & opt scenario_conv Check.Scenario.elim_pool
      & info [ "m"; "method" ]
          ~doc:
            (Printf.sprintf "Scenario: %s."
               (String.concat ", " Check.Scenario.names)))
  in
  let procs_t =
    Arg.(
      value & opt int 2
      & info [ "p"; "procs" ] ~doc:"Simulated processors (keep small: 2-3).")
  in
  let width_t =
    Arg.(
      value & opt int 2
      & info [ "width" ] ~doc:"Tree output wires (power of two).")
  in
  let ops_t =
    Arg.(
      value & opt int 1
      & info [ "ops" ] ~doc:"Operations per processor role.")
  in
  let max_interleavings_t =
    Arg.(
      value & opt int 200_000
      & info [ "max-interleavings" ]
          ~doc:"Exploration budget: executions before giving up.")
  in
  let max_steps_t =
    Arg.(
      value & opt int 20_000
      & info [ "max-steps" ] ~doc:"Shared-memory accesses per execution.")
  in
  let dpor_t =
    Arg.(
      value
      & opt (enum [ ("both", `Both); ("only", `Only); ("naive", `Naive) ]) `Both
      & info [ "dpor" ]
          ~doc:
            "$(b,both) explores with sleep-set DPOR, then re-explores \
             naively and prints both execution counts; $(b,only) / \
             $(b,naive) run a single mode.")
  in
  let expect_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit status: succeed only if a violation of this \
             property (e.g. $(b,step-property), $(b,deadlock)) is found.")
  in
  let schedule_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ]
          ~doc:
            "Replay one schedule instead of exploring (run-length pid \
             string as printed in counterexamples, e.g. $(b,0x5,1x3)).")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Write a Chrome/Perfetto timeline of the minimized \
             counterexample replay (or of the replayed schedule).")
  in
  let run scenario procs width ops max_interleavings max_steps dpor expect
      schedule trace_out seed =
    let program = scenario.Check.Scenario.make ~procs ~width ~ops in
    let traced_replay sched =
      match trace_out with
      | None -> Ex.replay ~seed ~max_steps program sched
      | Some file ->
          let c = Etrace.Chrome.create ~level:Etrace.Level.Events () in
          let r =
            Etrace.with_tracing
              (Etrace.Chrome.on_event c)
              (fun () -> Ex.replay ~seed ~max_steps program sched)
          in
          Etrace.Chrome.write ~file c;
          Printf.printf "wrote counterexample trace to %s\n" file;
          r
    in
    let finish_with_violation (v : Check.Monitor.violation) sched =
      Printf.printf "counterexample (%s): %s\n" v.property v.detail;
      Printf.printf "  schedule (%d steps, %d switches): %s\n"
        (Array.length sched) (Ex.switches sched) (Ex.format_schedule sched);
      let min_sched = Ex.minimize ~seed ~max_steps program v sched in
      Printf.printf "  minimized (%d steps, %d switches): %s\n"
        (Array.length min_sched) (Ex.switches min_sched)
        (Ex.format_schedule min_sched);
      Printf.printf
        "  replay: etrees_run check --method %s --procs %d --width %d --ops \
         %d --seed %d --schedule %s\n"
        scenario.Check.Scenario.name procs width ops seed
        (Ex.format_schedule min_sched);
      let (_ : Ex.run) = traced_replay min_sched in
      match expect with
      | Some p when p = v.property ->
          Printf.printf "expected violation of %s: found\n" p;
          exit 0
      | Some p ->
          Printf.eprintf
            "check: found a %s violation while expecting one of %s\n"
            v.property p;
          exit 1
      | None -> exit 1
    in
    match schedule with
    | Some s ->
        let sched =
          try Ex.parse_schedule s
          with _ ->
            Printf.eprintf "check: malformed schedule %S\n" s;
            exit 2
        in
        let r = traced_replay sched in
        Printf.printf "replayed %d steps: %s\n"
          (Array.length r.schedule)
          (Ex.format_schedule r.schedule);
        (match r.violations with
        | [] ->
            Printf.printf "no violation\n";
            if expect = None then exit 0
            else begin
              Printf.eprintf "check: expected violation not reproduced\n";
              exit 1
            end
        | v :: _ ->
            Printf.printf "violation (%s): %s\n" v.Check.Monitor.property
              v.Check.Monitor.detail;
            (match expect with
            | Some p when p = v.Check.Monitor.property -> exit 0
            | Some p ->
                Printf.eprintf "check: found %s, expected %s\n"
                  v.Check.Monitor.property p;
                exit 1
            | None -> exit 1))
    | None ->
        let summary label (o : Ex.outcome) =
          Printf.printf
            "%s: %s%d executions (%d complete, %d deadlocked, %d \
             sleep-set-pruned, %d over step budget), max depth %d\n"
            label
            (if o.Ex.capped then ">= " else "")
            o.Ex.runs o.Ex.complete o.Ex.deadlocks o.Ex.sleep_blocked
            o.Ex.budget_hits o.Ex.max_depth;
          o
        in
        Printf.printf "check %s: procs=%d width=%d ops=%d\n"
          scenario.Check.Scenario.name procs width ops;
        let explore ~dpor =
          Ex.explore ~dpor ~max_interleavings ~max_steps ~seed program
        in
        let first =
          summary
            (if dpor = `Naive then "naive" else "dpor")
            (explore ~dpor:(dpor <> `Naive))
        in
        (match first.Ex.counterexample with
        | Some (v, r) -> finish_with_violation v r.Ex.schedule
        | None ->
            (* The naive pass is informational — a schedule count to set
               the DPOR reduction against; the verification verdict is
               the first (DPOR) pass's, unless naive stumbles on a
               violation the DPOR budget hid. *)
            (if dpor = `Both then
               let o = summary "naive" (explore ~dpor:false) in
               match o.Ex.counterexample with
               | Some (v, r) -> finish_with_violation v r.Ex.schedule
               | None ->
                   Printf.printf
                     "reduction: DPOR explored %d executions vs %s%d naive \
                      (%s%.1fx)\n"
                     first.Ex.runs
                     (if o.Ex.capped then ">= " else "")
                     o.Ex.runs
                     (if o.Ex.capped then ">= " else "")
                     (float_of_int o.Ex.runs
                     /. float_of_int (max 1 first.Ex.runs));
                   if first.Ex.runs >= o.Ex.runs && not o.Ex.capped then
                     Printf.printf
                       "warning: DPOR did not reduce the execution count\n");
            (match expect with
            | Some p ->
                Printf.eprintf "check: expected violation of %s not found\n" p;
                exit 1
            | None ->
                if first.Ex.capped then begin
                  Printf.printf
                    "inconclusive: interleaving budget exhausted before the \
                     space was covered\n";
                  exit 3
                end
                else begin
                  Printf.printf
                    "verified: no violation in the full interleaving space\n";
                  exit 0
                end))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check a scenario over every interleaving of \
          its shared-memory accesses (sleep-set DPOR), verifying \
          conservation, the balancer step property, quiescent consistency \
          and deadlock-freedom; print a minimized replayable schedule on \
          violation.")
    Term.(
      const run $ scenario_t $ procs_t $ width_t $ ops_t
      $ max_interleavings_t $ max_steps_t $ dpor_t $ expect_t $ schedule_t
      $ trace_out_t $ seed_t)

(* netverify: static certification of every shipped network shape
   (docs/NETVERIFY.md). *)
let netverify_cmd =
  let module NB = Check.Netverify_bridge in
  let module Certify = Netverify.Certify in
  let list_t =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the shipped shapes and exit.")
  in
  let shape_t =
    Arg.(
      value & opt_all string []
      & info [ "shape" ]
          ~doc:"Certify only this shape (repeatable; see $(b,--list)).")
  in
  let seeded_t =
    Arg.(
      value & flag
      & info [ "seeded-defect" ]
          ~doc:
            "Teeth check: certify the deliberately broken tree (the \
             skip-toggle-on-miss defect of the tree_buggy model-checking \
             scenario), succeed only if the certifier rejects it with a \
             counterexample that the model checker's replay reproduces.")
  in
  let verbose_t =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print the full pass-by-pass report for every shape.")
  in
  let cex_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "counterexample-out" ]
          ~doc:
            "Write the reports of rejected shapes (with replay commands \
             where available) to this file.")
  in
  let run list shapes seeded verbose cex_out =
    if list then begin
      List.iter print_endline NB.names;
      exit 0
    end;
    let out = Buffer.create 256 in
    let finish code =
      (match cex_out with
      | Some file when Buffer.length out > 0 ->
          let oc = open_out file in
          output_string oc (Buffer.contents out);
          close_out oc;
          Printf.printf "wrote counterexample report to %s\n" file
      | _ -> ());
      exit code
    in
    if seeded then begin
      let net = NB.seeded_defect () in
      let report = Certify.verify net in
      print_string (Certify.format_report report);
      let cex =
        List.find_map
          (fun (f : Certify.failure) ->
            if f.pass = "step-certify" then f.cex else None)
          report.failures
      in
      match cex with
      | None ->
          Printf.eprintf
            "netverify: seeded defect NOT detected — the gate has no teeth\n";
          finish 1
      | Some cex -> begin
          let cmd = NB.replay_command ~width:NB.seeded_defect_width cex in
          Printf.printf "  replay: %s\n" cmd;
          Buffer.add_string out (Certify.format_report report);
          Buffer.add_string out (Printf.sprintf "  replay: %s\n" cmd);
          match NB.confirm_replay ~width:NB.seeded_defect_width cex with
          | Some v ->
              Printf.printf
                "  replay confirmed dynamically (%s): %s\n" v.Check.Monitor.property
                v.Check.Monitor.detail;
              Printf.printf
                "seeded defect detected statically and confirmed by replay\n";
              finish 0
          | None ->
              Printf.eprintf
                "netverify: static counterexample not reproduced by replay\n";
              finish 1
        end
    end
    else begin
      let selected =
        match shapes with
        | [] -> NB.shapes
        | names ->
            List.map
              (fun n ->
                match NB.find n with
                | Some s -> s
                | None ->
                    Printf.eprintf
                      "netverify: unknown shape %S (try --list)\n" n;
                    exit 2)
              names
      in
      let failed =
        List.filter
          (fun (s : NB.shape) ->
            let report = Certify.verify (s.build ()) in
            if Certify.ok report then begin
              if verbose then print_string (Certify.format_report report)
              else
                Printf.printf "ok %s: %d passes\n" s.shape_name
                  (List.length report.passed);
              false
            end
            else begin
              print_string (Certify.format_report report);
              Buffer.add_string out (Certify.format_report report);
              true
            end)
          selected
      in
      if failed = [] then begin
        Printf.printf "netverify: %d shape(s) certified\n" (List.length selected);
        finish 0
      end
      else begin
        Printf.eprintf "netverify: %d of %d shape(s) rejected\n"
          (List.length failed) (List.length selected);
        finish 1
      end
    end
  in
  Cmd.v
    (Cmd.info "netverify"
       ~doc:
         "Statically certify every shipped network shape over the wiring \
          IR: well-formedness, conservation accounting, depth bounds, \
          output numbering, and the quiescent step property by exhaustive \
          toggle-state enumeration; counterexamples replay through \
          $(b,etrees_run check).")
    Term.(const run $ list_t $ shape_t $ seeded_t $ verbose_t $ cex_out_t)

(* perf: the benchmark trajectory database (lib/benchdb,
   docs/BENCHDB.md).  `append` folds fresh BENCH_<exp>.json reports
   into bench/db/<exp>.jsonl; `check` is the CI regression gate;
   `page` and `baseline` render the committed history. *)
let perf_cmd =
  let module Db = Benchdb.Db in
  let module Gate = Benchdb.Gate in
  (* The gated set: the experiments `dune build @perf` runs with
     --quick --json.  fig8/9/10 also carry meta blocks but cost too
     much wall clock for the per-commit gate. *)
  let tracked = [ "fig7"; "chaos"; "adapt"; "service" ] in
  let db_t =
    Arg.(
      value & opt string "bench/db"
      & info [ "db" ] ~docv:"DIR"
          ~doc:"Database directory: one JSONL file per experiment.")
  in
  let bench_dir_t =
    Arg.(
      value & opt string "."
      & info [ "bench-dir" ] ~docv:"DIR"
          ~doc:"Directory holding fresh $(b,BENCH_<exp>.json) reports.")
  in
  let exp_t =
    Arg.(
      value & opt_all string []
      & info [ "e"; "exp" ] ~docv:"EXP"
          ~doc:
            (Printf.sprintf "Experiment (repeatable; default: %s)."
               (String.concat ", " tracked)))
  in
  let pick_exps = function [] -> tracked | exps -> exps in
  let load_report ~bench_dir exp =
    let file = Filename.concat bench_dir (Printf.sprintf "BENCH_%s.json" exp) in
    match Etrace.Json.parse_file file with
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
    | Ok v ->
        Result.map_error
          (fun e -> Printf.sprintf "%s: %s" file e)
          (Db.of_bench_json ~exp v)
  in
  let load_db ~db exp =
    match Db.load ~db_dir:db exp with
    | Ok runs -> runs
    | Error e ->
        Printf.eprintf "perf: %s\n" e;
        exit 2
  in
  let append_cmd =
    let reference_t =
      Arg.(
        value & flag
        & info [ "reference" ]
            ~doc:
              "Mark the appended rows as the gate's reference entries \
               (refreshing the committed baseline).")
    in
    let run db bench_dir exps reference =
      List.iter
        (fun exp ->
          match load_report ~bench_dir exp with
          | Error e ->
              Printf.eprintf "perf append: %s\n" e;
              exit 2
          | Ok r ->
              let r = { r with Db.reference } in
              Db.append ~db_dir:db r;
              Printf.printf "appended %s (%s, %d points)%s -> %s\n" exp
                (Db.label r) r.Db.points
                (if reference then " [reference]" else "")
                (Db.path ~db_dir:db exp))
        (pick_exps exps)
    in
    Cmd.v
      (Cmd.info "append"
         ~doc:
           "Fold fresh $(b,BENCH_<exp>.json) reports into the append-only \
            database (one JSONL row per run, newest last).")
      Term.(const run $ db_t $ bench_dir_t $ exp_t $ reference_t)
  in
  let check_cmd =
    let tight_t =
      Arg.(
        value & opt float Gate.default_tight_pct
        & info [ "threshold-pct" ] ~docv:"PCT"
            ~doc:
              "Tight tolerance for the deterministic metrics (events, \
               reads/writes/rmws, points, minor words/event).")
    in
    let loose_t =
      Arg.(
        value & opt float Gate.default_loose_pct
        & info [ "loose-pct" ] ~docv:"PCT"
            ~doc:"Loose tolerance for host-dependent events/sec.")
    in
    let run db bench_dir exps tight_pct loose_pct =
      let verdicts =
        List.map
          (fun exp ->
            match load_report ~bench_dir exp with
            | Error e ->
                Printf.eprintf "perf check: %s\n" e;
                exit 2
            | Ok current ->
                let reference = Db.reference (load_db ~db exp) in
                let v =
                  Gate.check ~tight_pct ~loose_pct ~reference ~current ()
                in
                print_string (Gate.format ~exp ~tight_pct ~loose_pct v);
                v)
          (pick_exps exps)
      in
      exit (Gate.combined_exit_code verdicts)
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Regression gate: compare fresh $(b,BENCH_<exp>.json) reports \
            against the database's reference entries.  Exits 0 on pass, 1 \
            on regression, 3 when an experiment has no baseline yet.")
      Term.(const run $ db_t $ bench_dir_t $ exp_t $ tight_t $ loose_t)
  in
  (* Provenance stamp for the rendered page, from the same probe the
     meta blocks use. *)
  let stamp () =
    let m = W.Report.Meta.stop (W.Report.Meta.start ()) ~experiment:"" ~seed:0 in
    Printf.sprintf "%s @ %s%s" m.W.Report.Meta.date m.W.Report.Meta.commit
      (if m.W.Report.Meta.dirty then "+" else "")
  in
  let page_cmd =
    let out_t =
      Arg.(
        value & opt string "trends.html"
        & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output HTML file.")
    in
    let run db exps out =
      let sections =
        List.map (fun exp -> (exp, load_db ~db exp)) (pick_exps exps)
      in
      Benchdb.Page.write ~file:out ~generated:(stamp ()) sections;
      Printf.printf "wrote %s (%d experiments)\n" out (List.length sections)
    in
    Cmd.v
      (Cmd.info "page"
         ~doc:
           "Render the database as a self-contained HTML trend page: SVG \
            sparklines per metric per experiment plus a latest-vs-baseline \
            delta table.  No scripts, no external assets.")
      Term.(const run $ db_t $ exp_t $ out_t)
  in
  let baseline_cmd =
    let out_t =
      Arg.(
        value & opt string "BENCH_BASELINE.md"
        & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output markdown file.")
    in
    let run db exps out =
      let sections =
        List.map (fun exp -> (exp, load_db ~db exp)) (pick_exps exps)
      in
      Benchdb.Baseline.write ~file:out ~db_dir:db sections;
      Printf.printf "wrote %s (%d experiments)\n" out (List.length sections)
    in
    Cmd.v
      (Cmd.info "baseline"
         ~doc:
           "Regenerate $(b,BENCH_BASELINE.md) from the database's reference \
            entries, so the committed baseline is the gate's baseline.")
      Term.(const run $ db_t $ exp_t $ out_t)
  in
  Cmd.group
    (Cmd.info "perf"
       ~doc:
         "The benchmark trajectory database (docs/BENCHDB.md): append runs, \
          gate regressions, render trends and the committed baseline.")
    [ append_cmd; check_cmd; page_cmd; baseline_cmd ]

let () =
  let doc = "Elimination-tree experiments on the multiprocessor simulator." in
  let info = Cmd.info "etrees_run" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            pc_cmd;
            count_cmd;
            queens_cmd;
            response_cmd;
            table1_cmd;
            chaos_cmd;
            service_cmd;
            trace_cmd;
            check_cmd;
            netverify_cmd;
            perf_cmd;
          ]))
