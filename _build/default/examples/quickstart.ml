(* Quickstart: the native elimination-tree structures with real OCaml 5
   domains.

     dune exec examples/quickstart.exe

   Four domains hammer a width-4 stack-like pool with pushes and pops;
   we then verify conservation (every popped value was pushed, no
   duplicates) and drain the remainder.  On a many-core machine the
   prisms absorb contention; on a small machine it is simply a correct
   concurrent stack-like pool. *)

let domains = 4
let per_domain = 5_000

let () =
  (* Size the engine before building any structure.  The main domain
     also participates (it performs the final drain check), so it needs
     a processor slot of its own. *)
  let capacity = domains + 1 in
  Engine.Native.set_capacity capacity;
  let stack = Native.Elim_stack.create ~capacity ~width:4 () in
  let popped = Array.make domains [] in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            for i = 0 to per_domain - 1 do
              Native.Elim_stack.push stack ((d * per_domain) + i);
              (* Pop with a bounded wait: under pathological scheduling
                 the matching element may briefly be in flight. *)
              match Native.Elim_stack.pop stack with
              | Some v -> mine := v :: !mine
              | None -> assert false (* no stop function: waits *)
            done;
            popped.(d) <- !mine))
  in
  List.iter Domain.join workers;
  let all = Array.to_list popped |> List.concat |> List.sort_uniq compare in
  let total = domains * per_domain in
  Printf.printf "pushed %d values from %d domains\n" total domains;
  Printf.printf "popped %d distinct values -- %s\n" (List.length all)
    (if List.length all = total then "conservation holds" else "BUG");
  (* The pool must now be empty. *)
  match Native.Elim_stack.pop ~stop:(fun () -> true) stack with
  | None -> print_endline "pool drained: final pop (with stop) found nothing"
  | Some v -> Printf.printf "BUG: unexpected leftover %d\n" v
