(* IncDecCounter[w] as a high-bandwidth resource gauge (paper §3.1).

     dune exec examples/counter.exe

   A connection-pool-style scenario on the simulator: 64 processors
   grab (increment) and release (decrement) resource tickets.  The
   increment/decrement counting tree serves both directions
   concurrently; an increment that meets a decrement inside the tree
   cancels against it without reaching any leaf ("Paired"), which is
   where its bandwidth comes from.  We report how much of the traffic
   was absorbed by elimination, and check the quiescent net count. *)

module E = Sim.Engine
module Idc = Core.Inc_dec_counter.Make (E)

let procs = 64
let rounds = 40

let () =
  let counter = Idc.create ~capacity:procs ~width:8 () in
  let incs = ref 0 and decs = ref 0 in
  let paired = ref 0 and slots = ref 0 in
  let _ =
    Sim.run ~seed:11 ~procs ~abort_after:200_000_000 (fun _ ->
        for _ = 1 to rounds do
          (* grab *)
          incr incs;
          (match Idc.increment counter with
          | Idc.Paired -> incr paired
          | Idc.Slot _ -> incr slots);
          E.delay (E.random_int 500);
          (* release *)
          incr decs;
          match Idc.decrement counter with
          | Idc.Paired -> incr paired
          | Idc.Slot _ -> incr slots
        done)
  in
  Printf.printf "operations:        %d increments + %d decrements\n" !incs !decs;
  Printf.printf "paired in-tree:    %d (%.1f%% of all operations)\n" !paired
    (100.0 *. float !paired /. float (!incs + !decs));
  Printf.printf "reached leaves:    %d\n" !slots;
  (* Per-level elimination profile. *)
  List.iteri
    (fun level s ->
      Printf.printf "  level %d: %.1f%% of entering tokens eliminated\n" level
        (100.0 *. Core.Elim_stats.elimination_fraction s))
    (Idc.stats_by_level counter);
  let net = !incs - !decs in
  Printf.printf "net count: %d (grabs and releases balance)\n" net
