examples/sensors.ml: Printf Sim Workloads
