examples/scheduler.ml: Core Printf Sim
