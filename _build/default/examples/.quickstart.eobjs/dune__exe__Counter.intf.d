examples/counter.mli:
