examples/quickstart.ml: Array Domain Engine List Native Printf
