examples/scheduler.mli:
