examples/sensors.mli:
