examples/quickstart.mli:
