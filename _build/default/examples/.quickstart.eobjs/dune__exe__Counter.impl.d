examples/counter.ml: Core List Printf Sim
