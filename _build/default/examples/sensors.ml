(* Sensors and actuators: the paper's motivating real-time scenario
   ("a radar tracking system or a traffic flow controller" needing fast
   response under both sparse and intense activity).

     dune exec examples/sensors.exe

   A 64-processor simulated machine runs 32 sensors producing readings
   and 32 actuators consuming them, through two alternating phases:

   - QUIET: each sensor fires rarely (large random think time) — the
     regime where randomized local piles are terrible because a reading
     sits in one pile out of 256 and actuators must find it;
   - STORM: every sensor fires continuously — the regime where a
     central queue melts down and elimination shines.

   We measure the average reading-to-actuation handoff latency per
   phase for the elimination-tree pool, the MCS central pool and RSU. *)

module E = Sim.Engine
module W = Workloads

let sensors = 32
let actuators = 32
let procs = sensors + actuators
let quiet_think = 8_000
let phase_cycles = 150_000

type phase_stats = { mutable handoffs : int; mutable latency : int }

let run_scenario name (make : procs:int -> int W.Pool_obj.pool) =
  let pool = make ~procs in
  let quiet = { handoffs = 0; latency = 0 } in
  let storm = { handoffs = 0; latency = 0 } in
  (* A reading is its emission timestamp; phase 0 = quiet, 1 = storm. *)
  let stats_for t = if t < phase_cycles then quiet else storm in
  let horizon = 2 * phase_cycles in
  let stop () = E.now () >= horizon in
  let sim_stats =
    Sim.run ~seed:7 ~procs ~abort_after:(horizon * 10) (fun p ->
        if p < sensors then begin
          (* Sensor: think, then emit a timestamped reading. *)
          while not (stop ()) do
            let think =
              if E.now () < phase_cycles then 1 + E.random_int quiet_think
              else 1 + E.random_int 64
            in
            E.delay think;
            if not (stop ()) then pool.W.Pool_obj.enqueue (E.now ())
          done
        end
        else
          (* Actuator: wait for a reading, account its handoff latency
             against the phase it was emitted in. *)
          while not (stop ()) do
            match pool.W.Pool_obj.dequeue ~stop with
            | Some emitted ->
                let s = stats_for emitted in
                s.handoffs <- s.handoffs + 1;
                s.latency <- s.latency + (E.now () - emitted)
            | None -> ()
          done)
  in
  ignore sim_stats;
  let avg s = if s.handoffs = 0 then 0.0 else float s.latency /. float s.handoffs in
  Printf.printf "%-10s quiet: %5d handoffs, avg latency %8.0f cycles\n"
    name quiet.handoffs (avg quiet);
  Printf.printf "%-10s storm: %5d handoffs, avg latency %8.0f cycles\n\n"
    name storm.handoffs (avg storm)

let () =
  Printf.printf
    "Sensor/actuator coordination on a %d-processor simulated machine\n\
     (quiet phase: sparse readings; storm phase: continuous readings)\n\n"
    procs;
  run_scenario "Etree-32" (fun ~procs -> W.Methods.etree_pool ~procs ());
  run_scenario "MCS" (fun ~procs -> W.Methods.mcs_pool ~procs ());
  run_scenario "RSU" (fun ~procs -> W.Methods.rsu_pool ~procs ());
  print_endline
    "Expected: the elimination tree is the only method fast in BOTH\n\
     phases.  MCS has the best quiet-phase latency but its central\n\
     queue backs up in the storm; RSU pays for hunting readings across\n\
     256 mostly-empty piles when quiet, and its consumers fall behind\n\
     the producers in the storm."
