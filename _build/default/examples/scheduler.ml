(* LIFO job scheduling with the stack-like pool (paper §3).

     dune exec examples/scheduler.exe

   "LIFO-based scheduling will not only eliminate in many cases
   excessive task creation, but it will also prevent processors from
   attempting to dequeue and execute a task which depends on the
   results of other tasks."  We make that concrete: a divide-and-
   conquer computation spawns two subtasks per node down to a fixed
   depth.  Executing it depth-first (stack-like pool) keeps the pool
   small; executing it breadth-first (FIFO-ish plain pool) materializes
   whole levels of the task tree.

   We run both on a 32-processor simulated machine and report the peak
   number of buffered tasks and the completion time. *)

module E = Sim.Engine
module Epool = Core.Elim_pool.Make (E)
module Estack = Core.Elim_stack.Make (E)

let procs = 32
let tree_depth = 10 (* 2^11 - 1 = 2047 tasks *)
let task_work = 200

type pool_like = {
  name : string;
  put : int -> unit;
  take : stop:(unit -> bool) -> int option;
  residue : unit -> int;
}

let run_scheduler pl =
  let total_tasks = (1 lsl (tree_depth + 1)) - 1 in
  let done_count = ref 0 in
  let peak = ref 0 in
  let finish = ref 0 in
  let stop () = !done_count >= total_tasks in
  let stats =
    Sim.run ~seed:3 ~procs ~abort_after:500_000_000 (fun p ->
        if p = 0 then pl.put 0 (* the root task, depth 0 *);
        let rec work () =
          if not (stop ()) then begin
            (match pl.take ~stop with
            | Some depth ->
                E.delay task_work;
                incr done_count;
                if stop () then finish := E.now ()
                else if depth < tree_depth then begin
                  pl.put (depth + 1);
                  pl.put (depth + 1);
                  (* Track the high-water mark of buffered tasks. *)
                  let r = pl.residue () in
                  if r > !peak then peak := r
                end
            | None -> ());
            work ()
          end
        in
        work ())
  in
  ignore stats;
  Printf.printf "%-22s %7d tasks, peak backlog %5d, finished at %7d cycles\n"
    pl.name !done_count !peak !finish

let () =
  Printf.printf
    "Divide-and-conquer scheduling of a depth-%d binary task tree on %d\n\
     simulated processors (%d tasks)\n\n"
    tree_depth procs
    ((1 lsl (tree_depth + 1)) - 1);
  let stack = Estack.create ~capacity:procs ~width:8 ~leaf_size:65536 () in
  run_scheduler
    {
      name = "stack-like pool (LIFO)";
      put = (fun d -> Estack.push stack d);
      take = (fun ~stop -> Estack.pop ~stop stack);
      residue = (fun () -> Estack.residue stack);
    };
  let pool = Epool.create ~capacity:procs ~width:8 ~leaf_size:65536 () in
  run_scheduler
    {
      name = "plain pool (FIFO)";
      put = (fun d -> Epool.enqueue pool d);
      take = (fun ~stop -> Epool.dequeue ~stop pool);
      residue = (fun () -> Epool.residue pool);
    };
  print_endline
    "\nExpected: the LIFO discipline explores depth-first, so the backlog\n\
     stays near procs * depth, while FIFO materializes entire levels\n\
     (backlog approaching half the task count)."
