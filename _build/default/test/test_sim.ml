(* Tests for the simulator substrate: event heap ordering, PRNG
   determinism, clock semantics, per-location serialization, abort. *)

module E = Sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Event heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Sim.Event_heap.create () in
  Alcotest.(check bool) "empty" true (Sim.Event_heap.is_empty h);
  Sim.Event_heap.push h ~time:5 ~seq:0 "a";
  Sim.Event_heap.push h ~time:3 ~seq:1 "b";
  Sim.Event_heap.push h ~time:5 ~seq:2 "c";
  Sim.Event_heap.push h ~time:1 ~seq:3 "d";
  check_int "length" 4 (Sim.Event_heap.length h);
  let pop () =
    match Sim.Event_heap.pop h with
    | Some (_, _, x) -> x
    | None -> Alcotest.fail "unexpected empty heap"
  in
  Alcotest.(check string) "first" "d" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third (same time, lower seq)" "a" (pop ());
  Alcotest.(check string) "fourth" "c" (pop ());
  Alcotest.(check bool) "empty again" true (Sim.Event_heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Sim.Event_heap.create () in
      List.iteri (fun seq time -> Sim.Event_heap.push h ~time ~seq seq) times;
      let rec drain acc =
        match Sim.Event_heap.pop h with
        | None -> List.rev acc
        | Some (time, seq, _) -> drain ((time, seq) :: acc)
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted && List.length popped = List.length times)

(* ------------------------------------------------------------------ *)
(* Splitmix PRNG                                                       *)
(* ------------------------------------------------------------------ *)

module Splitmix = Engine.Splitmix

let test_splitmix_deterministic () =
  let a = Splitmix.of_int 42 and b = Splitmix.of_int 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true
      (Splitmix.next_int64 a = Splitmix.next_int64 b)
  done

let test_splitmix_bounds () =
  let r = Splitmix.of_int 7 in
  for _ = 1 to 10_000 do
    let x = Splitmix.int r 13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_splitmix_split_independent () =
  let base = Splitmix.of_int 99 in
  let s0 = Splitmix.split base ~index:0
  and s1 = Splitmix.split base ~index:1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Splitmix.next_int64 s0 = Splitmix.next_int64 s1 then incr same
  done;
  check_int "streams differ" 0 !same

let test_splitmix_uniformish () =
  let r = Splitmix.of_int 123 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Splitmix.int r 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      check_bool
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 5))
    buckets

let test_bernoulli () =
  let r = Splitmix.of_int 5 in
  let hits = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    if Splitmix.bernoulli r ~num:1 ~den:4 then incr hits
  done;
  let expected = n / 4 in
  check_bool "p=1/4" true (abs (!hits - expected) < expected / 5);
  check_bool "p=0" false (Splitmix.bernoulli r ~num:0 ~den:5);
  check_bool "p=1" true (Splitmix.bernoulli r ~num:5 ~den:5)

(* ------------------------------------------------------------------ *)
(* Scheduler semantics                                                 *)
(* ------------------------------------------------------------------ *)

let cfg = Sim.Memory.default_config

let test_delay_advances_clock () =
  let stats = Sim.run ~procs:1 (fun _ -> E.delay 100; E.delay 23) in
  check_int "clock = total delay" 123 stats.end_clock

let test_now () =
  let seen = ref (-1) in
  let _ = Sim.run ~procs:1 (fun _ ->
      E.delay 50;
      seen := E.now ())
  in
  check_int "now reflects delays" 50 !seen

let test_pid_and_nprocs () =
  let pids = ref [] in
  let _ =
    Sim.run ~procs:5 (fun p ->
        check_int "pid matches body arg" p (E.pid ());
        check_int "nprocs" 5 (E.nprocs ());
        pids := p :: !pids)
  in
  Alcotest.(check (list int)) "all pids ran" [ 0; 1; 2; 3; 4 ]
    (List.sort compare !pids)

let test_rmw_serializes () =
  (* n processors all fetch&add the same cell at time 0: the location
     chain forces completion at n * rmw_latency, and each gets a distinct
     previous value. *)
  let n = 8 in
  let results = Array.make n (-1) in
  let c = E.cell 0 in
  let stats =
    Sim.run ~procs:n (fun p -> results.(p) <- E.fetch_and_add c 1)
  in
  check_int "serialized completion" (n * cfg.rmw_latency) stats.end_clock;
  let sorted = Array.to_list results |> List.sort compare in
  Alcotest.(check (list int)) "distinct previous values"
    (List.init n Fun.id) sorted

let test_reads_do_not_serialize () =
  let c = E.cell 7 in
  let stats = Sim.run ~procs:16 (fun _ -> ignore (E.get c)) in
  check_int "parallel reads" cfg.read_latency stats.end_clock

let test_writes_serialize () =
  let c = E.cell 0 in
  let stats = Sim.run ~procs:4 (fun p -> E.set c p) in
  check_int "serialized writes" (4 * cfg.write_latency) stats.end_clock

let test_exchange_chain () =
  (* Exchanges on one cell form a permutation chain: the multiset of
     {initial value} U {written values} minus one final survivor equals
     the multiset of returned values. *)
  let n = 6 in
  let c = E.cell (-1) in
  let got = Array.make n min_int in
  let _ = Sim.run ~procs:n (fun p -> got.(p) <- E.exchange c p) in
  let final = ref min_int in
  let _ = Sim.run ~procs:1 (fun _ -> final := E.get c) in
  let all = (-1) :: List.init n Fun.id in
  let returned = Array.to_list got in
  let expected = List.filter (fun x -> x <> !final) all in
  Alcotest.(check (list int)) "exchange conserves values"
    (List.sort compare expected)
    (List.sort compare returned)

let test_cas_single_winner () =
  let n = 10 in
  let c = E.cell 0 in
  let wins = ref 0 in
  let _ =
    Sim.run ~procs:n (fun p ->
        if E.compare_and_set c 0 (p + 1) then incr wins)
  in
  check_int "exactly one CAS wins" 1 !wins

let test_cas_physical_equality () =
  let _ =
    Sim.run ~procs:1 (fun _ ->
        let r = E.cell (ref 5) in
        let seen = E.get r in
        check_bool "cas against read value succeeds" true
          (E.compare_and_set r seen (ref 6));
        check_bool "cas against equal-but-distinct value fails" false
          (E.compare_and_set r (ref 6) (ref 7)))
  in
  ()

let test_determinism () =
  let trace seed =
    let log = ref [] in
    let c = E.cell 0 in
    let stats =
      Sim.run ~seed ~procs:7 (fun p ->
          for _ = 1 to 5 do
            E.delay (E.random_int 50);
            let v = E.fetch_and_add c 1 in
            log := (p, v, E.now ()) :: !log
          done)
    in
    (stats, !log)
  in
  let s1, l1 = trace 11 and s2, l2 = trace 11 in
  check_bool "stats equal" true (s1 = s2);
  check_bool "traces equal" true (l1 = l2);
  let _, l3 = trace 12 in
  check_bool "different seed, different trace" true (l1 <> l3)

let test_abort () =
  let stats =
    Sim.run ~procs:3 ~abort_after:1000 (fun _ ->
        while true do
          E.delay 10
        done)
  in
  check_int "all procs aborted" 3 stats.aborted_procs;
  check_bool "clock stopped near horizon" true (stats.end_clock <= 1000)

let test_abort_partial () =
  (* One proc finishes before the horizon, one spins forever. *)
  let stats =
    Sim.run ~procs:2 ~abort_after:500 (fun p ->
        if p = 0 then E.delay 10
        else
          while true do
            E.delay 10
          done)
  in
  check_int "one aborted" 1 stats.aborted_procs

let test_nested_runs () =
  let inner_clock = ref 0 in
  let stats =
    Sim.run ~procs:1 (fun _ ->
        E.delay 5;
        let inner = Sim.run ~procs:1 (fun _ -> E.delay 42) in
        inner_clock := inner.end_clock;
        (* Outer simulation resumes with its own clock. *)
        E.delay 5)
  in
  check_int "inner clock" 42 !inner_clock;
  check_int "outer clock" 10 stats.end_clock

let test_outside_run_raises () =
  Alcotest.check_raises "engine op outside Sim.run"
    (Failure "Sim: a simulated-engine operation was performed outside Sim.run")
    (fun () -> ignore (E.get (E.cell 0)))

let test_exception_propagates () =
  Alcotest.check_raises "proc exception escapes Sim.run" Exit (fun () ->
      ignore
        (Sim.run ~procs:2 (fun p ->
             E.delay 10;
             if p = 1 then raise Exit)))

let test_custom_config () =
  (* The cost model is configurable per run. *)
  let cfg = Sim.Memory.uniform_config in
  let c = E.cell 0 in
  let stats =
    Sim.run ~config:cfg ~procs:4 (fun _ -> ignore (E.fetch_and_add c 1))
  in
  check_int "uniform rmw latency" 4 stats.end_clock;
  let c2 = E.cell 0 in
  let stats2 = Sim.run ~config:cfg ~procs:8 (fun _ -> ignore (E.get c2)) in
  check_int "uniform read latency" 1 stats2.end_clock

let test_op_counters () =
  let c = E.cell 0 in
  let stats =
    Sim.run ~procs:2 (fun _ ->
        ignore (E.get c);
        E.set c 1;
        ignore (E.exchange c 2);
        ignore (E.compare_and_set c 2 3);
        ignore (E.fetch_and_add c 1))
  in
  check_int "reads counted" 2 stats.reads;
  check_int "writes counted" 2 stats.writes;
  check_int "rmws counted" 6 stats.rmws

let test_serialized_reads_config () =
  let cfg = Sim.Memory.serialized_reads_config in
  let c = E.cell 7 in
  let stats = Sim.run ~config:cfg ~procs:4 (fun _ -> ignore (E.get c)) in
  check_int "reads queue under the ablation model"
    (4 * cfg.read_latency) stats.end_clock

let test_rng_streams_differ () =
  let draws = Array.make 4 (-1) in
  let _ = Sim.run ~procs:4 (fun p -> draws.(p) <- E.random_int 1_000_000) in
  let distinct =
    Array.to_list draws |> List.sort_uniq compare |> List.length
  in
  check_bool "per-proc streams decorrelated" true (distinct >= 3)

let prop_serialization_chain =
  QCheck.Test.make ~name:"busy chain: k rmws on one cell take k*latency"
    ~count:50
    QCheck.(int_range 1 40)
    (fun k ->
      let c = E.cell 0 in
      let stats = Sim.run ~procs:k (fun _ -> ignore (E.fetch_and_add c 1)) in
      stats.end_clock = k * cfg.rmw_latency)

let () =
  Alcotest.run "sim"
    [
      ( "event_heap",
        [
          Alcotest.test_case "basic ordering" `Quick test_heap_basic;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
          Alcotest.test_case "split independence" `Quick
            test_splitmix_split_independent;
          Alcotest.test_case "roughly uniform" `Quick test_splitmix_uniformish;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "delay advances clock" `Quick
            test_delay_advances_clock;
          Alcotest.test_case "now" `Quick test_now;
          Alcotest.test_case "pid/nprocs" `Quick test_pid_and_nprocs;
          Alcotest.test_case "rmw serializes" `Quick test_rmw_serializes;
          Alcotest.test_case "reads parallel" `Quick
            test_reads_do_not_serialize;
          Alcotest.test_case "writes serialize" `Quick test_writes_serialize;
          Alcotest.test_case "exchange chain" `Quick test_exchange_chain;
          Alcotest.test_case "cas single winner" `Quick test_cas_single_winner;
          Alcotest.test_case "cas physical equality" `Quick
            test_cas_physical_equality;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "abort" `Quick test_abort;
          Alcotest.test_case "abort partial" `Quick test_abort_partial;
          Alcotest.test_case "nested runs" `Quick test_nested_runs;
          Alcotest.test_case "ops outside run raise" `Quick
            test_outside_run_raises;
          Alcotest.test_case "rng streams differ" `Quick
            test_rng_streams_differ;
          Alcotest.test_case "custom memory config" `Quick test_custom_config;
          Alcotest.test_case "proc exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "op counters" `Quick test_op_counters;
          Alcotest.test_case "serialized-reads model" `Quick
            test_serialized_reads_config;
          QCheck_alcotest.to_alcotest prop_serialization_chain;
        ] );
    ]
