(* Tests of the native engine and natively-instantiated structures with
   real OCaml 5 domains.  This container has a single core, so these
   are correctness tests under preemptive interleaving, not
   scalability tests. *)

module E = Engine.Native

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One generous capacity for the whole executable: every spawned domain
   claims a pid; bodies release them on exit so ids recycle. *)
let () = E.set_capacity 64

let spawn_all bodies =
  let ds =
    List.map
      (fun body ->
        Domain.spawn (fun () ->
            let r = body () in
            E.release_pid ();
            r))
      bodies
  in
  List.map Domain.join ds

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_cells () =
  let c = E.cell 1 in
  check_int "get" 1 (E.get c);
  E.set c 2;
  check_int "set" 2 (E.get c);
  check_int "exchange returns old" 2 (E.exchange c 3);
  check_bool "cas hit" true (E.compare_and_set c 3 4);
  check_bool "cas miss" false (E.compare_and_set c 3 5);
  check_int "faa" 4 (E.fetch_and_add c 10);
  check_int "after faa" 14 (E.get c)

let test_pids_distinct_and_recycled () =
  (* A barrier keeps all eight domains alive at once — otherwise, on a
     small machine, a domain can finish and release its pid before the
     next one spawns, and recycling (correctly) hands out one id. *)
  let arrived = Atomic.make 0 in
  let pids =
    spawn_all
      (List.init 8 (fun _ () ->
           let p = E.pid () in
           Atomic.incr arrived;
           while Atomic.get arrived < 8 do
             Domain.cpu_relax ()
           done;
           p))
  in
  check_int "distinct pids" 8 (List.length (List.sort_uniq compare pids));
  List.iter
    (fun p -> check_bool "pid within capacity" true (p >= 0 && p < 64))
    pids;
  (* After release, eight more domains must fit well within capacity
     even if run many times. *)
  for _ = 1 to 20 do
    let again = spawn_all (List.init 8 (fun _ () -> E.pid ())) in
    List.iter
      (fun p -> check_bool "recycled pid in range" true (p >= 0 && p < 64))
      again
  done

let test_random_bounds () =
  let ok = ref true in
  let _ =
    spawn_all
      (List.init 4 (fun _ () ->
           for _ = 1 to 1000 do
             let x = E.random_int 7 in
             if x < 0 || x >= 7 then ok := false
           done))
  in
  check_bool "random_int in range across domains" true !ok

(* ------------------------------------------------------------------ *)
(* Locks and counters under real parallelism                           *)
(* ------------------------------------------------------------------ *)

let test_native_mcs_lock () =
  let lock = Native.Mcs_lock.create ~capacity:64 () in
  let counter = ref 0 in
  let domains = 4 and iters = 2_000 in
  let _ =
    spawn_all
      (List.init domains (fun _ () ->
           for _ = 1 to iters do
             Native.Mcs_lock.with_lock lock (fun () ->
                 (* Non-atomic increment: lost updates expose any
                    mutual-exclusion failure. *)
                 let v = !counter in
                 Domain.cpu_relax ();
                 counter := v + 1)
           done))
  in
  check_int "no lost updates" (domains * iters) !counter

let test_native_mcs_counter () =
  let c = Native.Mcs_counter.create ~capacity:64 () in
  let domains = 4 and iters = 1_000 in
  let results =
    spawn_all
      (List.init domains (fun _ () ->
           List.init iters (fun _ -> Native.Mcs_counter.fetch_and_inc c)))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "dense distinct" (List.init (domains * iters) Fun.id) all

let test_native_combining_tree () =
  let c = Native.Combining_tree.create ~width:2 () in
  let domains = 4 and iters = 300 in
  let results =
    spawn_all
      (List.init domains (fun _ () ->
           List.init iters (fun _ -> Native.Combining_tree.fetch_and_inc c)))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "dense distinct" (List.init (domains * iters) Fun.id) all

let test_native_anderson_lock () =
  let lock = Native.Anderson_lock.create ~capacity:64 () in
  let counter = ref 0 in
  let domains = 4 and iters = 1_000 in
  let _ =
    spawn_all
      (List.init domains (fun _ () ->
           for _ = 1 to iters do
             Native.Anderson_lock.with_lock lock (fun () ->
                 let v = !counter in
                 Domain.cpu_relax ();
                 counter := v + 1)
           done))
  in
  check_int "no lost updates" (domains * iters) !counter

let test_native_bitonic () =
  let c = Native.Bitonic_network.create ~width:4 () in
  let domains = 4 and iters = 500 in
  let results =
    spawn_all
      (List.init domains (fun _ () ->
           List.init iters (fun _ -> Native.Bitonic_network.fetch_and_inc c)))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "dense distinct" (List.init (domains * iters) Fun.id) all

let test_native_work_stealing () =
  let t = Native.Work_stealing.create ~procs:64 () in
  let domains = 4 and iters = 500 in
  let results =
    spawn_all
      (List.init domains (fun d () ->
           let got = ref [] in
           for i = 0 to iters - 1 do
             Native.Work_stealing.enqueue t ((d * iters) + i)
           done;
           for _ = 0 to iters - 1 do
             match Native.Work_stealing.dequeue t with
             | Some v -> got := v :: !got
             | None -> assert false
           done;
           !got))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "conservation" (List.init (domains * iters) Fun.id) all

let test_native_dtree_counter () =
  let c = Native.Diff_tree.create ~capacity:64 ~width:4 () in
  let domains = 4 and iters = 500 in
  let results =
    spawn_all
      (List.init domains (fun _ () ->
           List.init iters (fun _ -> Native.Diff_tree.fetch_and_inc c)))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "dense distinct" (List.init (domains * iters) Fun.id) all

(* ------------------------------------------------------------------ *)
(* Pools and stacks under real parallelism                             *)
(* ------------------------------------------------------------------ *)

let test_native_elim_pool () =
  let pool = Native.Elim_pool.create ~capacity:64 ~width:4 () in
  let domains = 4 and iters = 1_000 in
  let results =
    spawn_all
      (List.init domains (fun d () ->
           let got = ref [] in
           for i = 0 to iters - 1 do
             Native.Elim_pool.enqueue pool ((d * iters) + i);
             match Native.Elim_pool.dequeue pool with
             | Some v -> got := v :: !got
             | None -> assert false
           done;
           !got))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "conservation" (List.init (domains * iters) Fun.id) all

let test_native_elim_stack_sequential_lifo () =
  let stack = Native.Elim_stack.create ~capacity:64 ~width:4 () in
  Native.Elim_stack.push stack 1;
  Native.Elim_stack.push stack 2;
  Native.Elim_stack.push stack 3;
  check_int "lifo" 3 (Option.get (Native.Elim_stack.pop stack));
  check_int "lifo" 2 (Option.get (Native.Elim_stack.pop stack));
  check_int "lifo" 1 (Option.get (Native.Elim_stack.pop stack))

let test_native_elim_stack_concurrent () =
  let stack = Native.Elim_stack.create ~capacity:64 ~width:4 () in
  let domains = 4 and iters = 1_000 in
  let results =
    spawn_all
      (List.init domains (fun d () ->
           let got = ref [] in
           for i = 0 to iters - 1 do
             Native.Elim_stack.push stack ((d * iters) + i);
             match Native.Elim_stack.pop stack with
             | Some v -> got := v :: !got
             | None -> assert false
           done;
           !got))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "conservation" (List.init (domains * iters) Fun.id) all

let test_native_producer_consumer_handoff () =
  (* Pure handoff: producers and consumers are distinct domains, so the
     dequeue-waits path and elimination path both get exercised. *)
  let pool = Native.Elim_pool.create ~capacity:64 ~width:4 () in
  let n = 2 and iters = 2_000 in
  let producers =
    List.init n (fun d () ->
        for i = 0 to iters - 1 do
          Native.Elim_pool.enqueue pool ((d * iters) + i)
        done;
        [])
  in
  let consumers =
    List.init n (fun _ () ->
        let got = ref [] in
        for _ = 0 to iters - 1 do
          match Native.Elim_pool.dequeue pool with
          | Some v -> got := v :: !got
          | None -> assert false
        done;
        !got)
  in
  let results = spawn_all (producers @ consumers) in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "handoff conservation" (List.init (n * iters) Fun.id) all

let test_native_central_pool () =
  let pool =
    Native.Central_pool.create ~size:8192
      ~head:(Native.Mcs_counter.as_counter (Native.Mcs_counter.create ~capacity:64 ()))
      ~tail:(Native.Mcs_counter.as_counter (Native.Mcs_counter.create ~capacity:64 ()))
      ()
  in
  let domains = 4 and iters = 500 in
  let results =
    spawn_all
      (List.init domains (fun d () ->
           let got = ref [] in
           for i = 0 to iters - 1 do
             Native.Central_pool.enqueue pool ((d * iters) + i);
             match Native.Central_pool.dequeue pool with
             | Some v -> got := v :: !got
             | None -> assert false
           done;
           !got))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "conservation" (List.init (domains * iters) Fun.id) all

let test_native_rsu () =
  let t = Native.Rsu.create ~procs:64 () in
  let domains = 4 and iters = 500 in
  let results =
    spawn_all
      (List.init domains (fun d () ->
           let got = ref [] in
           for i = 0 to iters - 1 do
             Native.Rsu.enqueue t ((d * iters) + i)
           done;
           for _ = 0 to iters - 1 do
             match Native.Rsu.dequeue t with
             | Some v -> got := v :: !got
             | None -> assert false
           done;
           !got))
  in
  let all = List.concat results |> List.sort compare in
  Alcotest.(check (list int))
    "conservation" (List.init (domains * iters) Fun.id) all

let () =
  Alcotest.run "native"
    [
      ( "engine",
        [
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "pids distinct and recycled" `Quick
            test_pids_distinct_and_recycled;
          Alcotest.test_case "random bounds" `Quick test_random_bounds;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mcs lock" `Quick test_native_mcs_lock;
          Alcotest.test_case "mcs counter" `Quick test_native_mcs_counter;
          Alcotest.test_case "combining tree" `Quick test_native_combining_tree;
          Alcotest.test_case "dtree counter" `Quick test_native_dtree_counter;
          Alcotest.test_case "anderson lock" `Quick test_native_anderson_lock;
          Alcotest.test_case "bitonic network" `Quick test_native_bitonic;
          Alcotest.test_case "work stealing" `Quick test_native_work_stealing;
        ] );
      ( "structures",
        [
          Alcotest.test_case "elim pool" `Quick test_native_elim_pool;
          Alcotest.test_case "elim stack sequential lifo" `Quick
            test_native_elim_stack_sequential_lifo;
          Alcotest.test_case "elim stack concurrent" `Quick
            test_native_elim_stack_concurrent;
          Alcotest.test_case "producer/consumer handoff" `Quick
            test_native_producer_consumer_handoff;
          Alcotest.test_case "central pool" `Quick test_native_central_pool;
          Alcotest.test_case "rsu" `Quick test_native_rsu;
        ] );
    ]
