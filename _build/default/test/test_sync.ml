(* Tests for locks and counters, run under the simulator where we can
   drive hundreds of processors deterministically. *)

module E = Sim.Engine
module Mcs = Sync.Mcs_lock.Make (E)
module Tas = Sync.Tas_lock.Make (E)
module Mcs_counter = Sync.Mcs_counter.Make (E)
module Naive_counter = Sync.Naive_counter.Make (E)
module Ctree = Sync.Combining_tree.Make (E)
module Backoff = Sync.Backoff.Make (E)
module Anderson = Sync.Anderson_lock.Make (E)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Check mutual exclusion by protecting a deliberately non-atomic
   read-modify-write (two separate shared operations): lost updates
   appear immediately if two processors ever hold the lock at once. *)
let exercise_lock ~procs ~iters ~acquire ~release =
  let shared = E.cell 0 in
  let in_cs = ref 0 in
  let max_in_cs = ref 0 in
  let _ =
    Sim.run ~procs (fun _ ->
        for _ = 1 to iters do
          acquire ();
          incr in_cs;
          if !in_cs > !max_in_cs then max_in_cs := !in_cs;
          let v = E.get shared in
          E.delay (E.random_int 5);
          E.set shared (v + 1);
          decr in_cs;
          release ()
        done)
  in
  let final = ref 0 in
  let _ = Sim.run ~procs:1 (fun _ -> final := E.get shared) in
  (!final, !max_in_cs)

let test_mcs_mutual_exclusion () =
  let lock = Mcs.create ~capacity:16 () in
  let total, max_in_cs =
    exercise_lock ~procs:16 ~iters:20
      ~acquire:(fun () -> Mcs.acquire lock)
      ~release:(fun () -> Mcs.release lock)
  in
  check_int "no lost updates" (16 * 20) total;
  check_int "never two holders" 1 max_in_cs

let test_tas_mutual_exclusion () =
  let lock = Tas.create () in
  let total, max_in_cs =
    exercise_lock ~procs:12 ~iters:15
      ~acquire:(fun () -> Tas.acquire lock)
      ~release:(fun () -> Tas.release lock)
  in
  check_int "no lost updates" (12 * 15) total;
  check_int "never two holders" 1 max_in_cs

let test_mcs_fifo_fairness () =
  (* Processors enqueue on the lock in a staggered order; MCS must grant
     the lock in exactly that order. *)
  let procs = 8 in
  let lock = Mcs.create ~capacity:procs () in
  let order = ref [] in
  let _ =
    Sim.run ~procs (fun p ->
        (* Stagger arrivals far enough apart that arrival order is
           unambiguous (one rmw latency is 12 cycles). *)
        E.delay ((p * 200) + 1);
        Mcs.acquire lock;
        order := p :: !order;
        (* Hold the lock long enough that everyone queues up. *)
        E.delay 500;
        Mcs.release lock)
  in
  Alcotest.(check (list int))
    "FIFO admission order" (List.init procs Fun.id) (List.rev !order)

let test_mcs_with_lock_exception_releases () =
  let lock = Mcs.create ~capacity:2 () in
  let acquired_after = ref false in
  let _ =
    Sim.run ~procs:1 (fun _ ->
        (try Mcs.with_lock lock (fun () -> raise Exit) with Exit -> ());
        Mcs.with_lock lock (fun () -> acquired_after := true))
  in
  check_bool "lock released after exception" true !acquired_after

let test_anderson_mutual_exclusion () =
  let lock = Anderson.create ~capacity:16 () in
  let total, max_in_cs =
    exercise_lock ~procs:16 ~iters:15
      ~acquire:(fun () -> Anderson.acquire lock)
      ~release:(fun () -> Anderson.release lock)
  in
  check_int "no lost updates" (16 * 15) total;
  check_int "never two holders" 1 max_in_cs

let test_anderson_fifo () =
  (* Tickets are handed out by fetch&add, so admission follows arrival
     order exactly, like MCS. *)
  let procs = 6 in
  let lock = Anderson.create ~capacity:procs () in
  let order = ref [] in
  let _ =
    Sim.run ~procs (fun p ->
        E.delay ((p * 200) + 1);
        Anderson.acquire lock;
        order := p :: !order;
        E.delay 500;
        Anderson.release lock)
  in
  Alcotest.(check (list int))
    "FIFO admission order" (List.init procs Fun.id) (List.rev !order)

let test_tas_try_acquire () =
  let lock = Tas.create () in
  let observed = ref [] in
  let _ =
    Sim.run ~procs:2 (fun p ->
        if p = 0 then begin
          Tas.acquire lock;
          E.delay 200;
          Tas.release lock
        end
        else begin
          E.delay 50;
          observed := Tas.try_acquire lock :: !observed;
          E.delay 400;
          observed := Tas.try_acquire lock :: !observed
        end)
  in
  Alcotest.(check (list bool))
    "fails while held, succeeds when free" [ true; false ] !observed

(* A counter must hand out each value exactly once, with no gaps. *)
let counter_distinctness ~procs ~iters make =
  let results = Array.make (procs * iters) (-1) in
  let slot = ref 0 in
  let _ =
    Sim.run ~procs (fun _ ->
        let counter = make () in
        for _ = 1 to iters do
          let v = Sync.Counter.fetch_and_inc counter in
          let s = !slot in
          incr slot;
          results.(s) <- v
        done)
  in
  let sorted = Array.to_list results |> List.sort compare in
  Alcotest.(check (list int))
    "dense distinct values"
    (List.init (procs * iters) Fun.id)
    sorted

let test_mcs_counter () =
  let c = ref None in
  counter_distinctness ~procs:16 ~iters:10 (fun () ->
      match !c with
      | Some c -> c
      | None ->
          let v = Mcs_counter.as_counter (Mcs_counter.create ~capacity:16 ()) in
          c := Some v;
          v)

let shared_counter make =
  let c = ref None in
  fun () ->
    match !c with
    | Some c -> c
    | None ->
        let v = make () in
        c := Some v;
        v

let test_naive_counter () =
  counter_distinctness ~procs:16 ~iters:10
    (shared_counter (fun () -> Naive_counter.as_counter (Naive_counter.create ())))

let test_combining_tree_small () =
  counter_distinctness ~procs:4 ~iters:8
    (shared_counter (fun () ->
         Ctree.as_counter (Ctree.create ~width:2 ())))

let test_combining_tree_wide () =
  counter_distinctness ~procs:32 ~iters:5
    (shared_counter (fun () ->
         Ctree.as_counter (Ctree.create ~width:16 ())))

let test_combining_tree_root_only () =
  counter_distinctness ~procs:2 ~iters:10
    (shared_counter (fun () ->
         Ctree.as_counter (Ctree.create ~width:1 ())))

let test_combining_tree_narrow_overload () =
  (* More than two processors per leaf: the robust precombine wait must
     still produce a correct count. *)
  counter_distinctness ~procs:12 ~iters:4
    (shared_counter (fun () ->
         Ctree.as_counter (Ctree.create ~width:2 ())))

let test_combining_tree_initial () =
  let c = Ctree.create ~initial:100 ~width:2 () in
  let seen = ref (-1) in
  let _ = Sim.run ~procs:1 (fun _ -> seen := Ctree.fetch_and_inc c) in
  check_int "initial value" 100 !seen

let test_combining_actually_combines () =
  (* Under full load, the root must receive fewer operations than the
     total number of increments: combining is happening.  We detect this
     through time: n serialized MCS increments cost more than n combined
     increments for large n. *)
  let procs = 64 in
  let iters = 8 in
  let ctree = Ctree.create ~width:32 () in
  let mcs = Mcs_counter.create ~capacity:procs () in
  let run fetch =
    let stats =
      Sim.run ~procs (fun _ ->
          for _ = 1 to iters do
            ignore (fetch ())
          done)
    in
    stats.end_clock
  in
  let t_ctree = run (fun () -> Ctree.fetch_and_inc ctree) in
  let t_mcs = run (fun () -> Mcs_counter.fetch_and_inc mcs) in
  check_bool
    (Printf.sprintf "combining tree (%d) beats MCS (%d) at high load"
       t_ctree t_mcs)
    true (t_ctree < t_mcs)

let test_backoff_grows () =
  let waited = ref [] in
  let _ =
    Sim.run ~procs:1 (fun _ ->
        let b = Backoff.create ~init:2 ~max:64 () in
        let t0 = ref (E.now ()) in
        for _ = 1 to 8 do
          Backoff.once b;
          let t1 = E.now () in
          waited := (t1 - !t0) :: !waited;
          t0 := t1
        done)
  in
  let w = List.rev !waited in
  check_int "eight waits" 8 (List.length w);
  List.iter (fun d -> check_bool "bounded by max+1" true (d <= 65)) w

let prop_mcs_counter_any_procs =
  QCheck.Test.make ~name:"mcs counter dense for random proc counts"
    ~count:20
    QCheck.(int_range 1 40)
    (fun procs ->
      let results = ref [] in
      let c = Mcs_counter.create ~capacity:procs () in
      let _ =
        Sim.run ~procs (fun _ ->
            for _ = 1 to 3 do
              (* Bind before consing: constructor arguments evaluate
                 right-to-left, so inlining the call would read !results
                 before suspending and lose concurrent appends. *)
              let v = Mcs_counter.fetch_and_inc c in
              results := v :: !results
            done)
      in
      List.sort compare !results = List.init (procs * 3) Fun.id)

let prop_ctree_any_power_width =
  QCheck.Test.make ~name:"combining tree dense for random widths"
    ~count:15
    QCheck.(pair (int_range 0 4) (int_range 1 24))
    (fun (wexp, procs) ->
      let width = 1 lsl wexp in
      let results = ref [] in
      let c = Ctree.create ~width () in
      let _ =
        Sim.run ~procs (fun _ ->
            for _ = 1 to 2 do
              let v = Ctree.fetch_and_inc c in
              results := v :: !results
            done)
      in
      List.sort compare !results = List.init (procs * 2) Fun.id)

let () =
  Alcotest.run "sync"
    [
      ( "locks",
        [
          Alcotest.test_case "mcs mutual exclusion" `Quick
            test_mcs_mutual_exclusion;
          Alcotest.test_case "tas mutual exclusion" `Quick
            test_tas_mutual_exclusion;
          Alcotest.test_case "mcs fifo fairness" `Quick test_mcs_fifo_fairness;
          Alcotest.test_case "mcs with_lock releases on exception" `Quick
            test_mcs_with_lock_exception_releases;
          Alcotest.test_case "tas try_acquire" `Quick test_tas_try_acquire;
          Alcotest.test_case "anderson mutual exclusion" `Quick
            test_anderson_mutual_exclusion;
          Alcotest.test_case "anderson fifo" `Quick test_anderson_fifo;
        ] );
      ( "counters",
        [
          Alcotest.test_case "mcs counter dense" `Quick test_mcs_counter;
          Alcotest.test_case "naive counter dense" `Quick test_naive_counter;
          Alcotest.test_case "combining tree small" `Quick
            test_combining_tree_small;
          Alcotest.test_case "combining tree wide" `Quick
            test_combining_tree_wide;
          Alcotest.test_case "combining tree root-only" `Quick
            test_combining_tree_root_only;
          Alcotest.test_case "combining tree overloaded leaves" `Quick
            test_combining_tree_narrow_overload;
          Alcotest.test_case "combining tree initial value" `Quick
            test_combining_tree_initial;
          Alcotest.test_case "combining beats MCS under load" `Slow
            test_combining_actually_combines;
          QCheck_alcotest.to_alcotest prop_mcs_counter_any_procs;
          QCheck_alcotest.to_alcotest prop_ctree_any_power_width;
        ] );
      ( "backoff",
        [ Alcotest.test_case "grows and is bounded" `Quick test_backoff_grows ] );
    ]
