(* Tests for the comparison methods: diffracting-tree counters, the
   Figure-5 centralized pool and RSU. *)

module E = Sim.Engine
module Dtree = Baselines.Diff_tree.Make (E)
module Central = Baselines.Central_pool.Make (E)
module Rsu = Baselines.Rsu.Make (E)
module Mcs_counter = Sync.Mcs_counter.Make (E)
module Ctree = Sync.Combining_tree.Make (E)
module Local = Pools.Local_pool.Make (E)
module Bitonic = Baselines.Bitonic_network.Make (E)
module Ws = Baselines.Work_stealing.Make (E)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.aborted_procs;
  stats

(* ------------------------------------------------------------------ *)
(* Local pools (ring buffers)                                          *)
(* ------------------------------------------------------------------ *)

let test_local_pool_fifo_lifo () =
  let fifo = Local.create ~discipline:`Fifo ~lock_capacity:1 () in
  let lifo = Local.create ~discipline:`Lifo ~lock_capacity:1 () in
  let _ =
    run ~procs:1 (fun _ ->
        List.iter
          (fun v ->
            Local.enqueue fifo v;
            Local.enqueue lifo v)
          [ 1; 2; 3 ];
        check_int "fifo first" 1 (Option.get (Local.try_dequeue fifo));
        check_int "lifo first" 3 (Option.get (Local.try_dequeue lifo));
        check_int "fifo second" 2 (Option.get (Local.try_dequeue fifo));
        check_int "lifo second" 2 (Option.get (Local.try_dequeue lifo)))
  in
  ()

let test_local_pool_wraparound () =
  (* Exercise ring wrap-around with a tiny buffer. *)
  let p = Local.create ~size:4 ~lock_capacity:1 () in
  let _ =
    run ~procs:1 (fun _ ->
        for round = 1 to 5 do
          Local.enqueue p (2 * round);
          Local.enqueue p ((2 * round) + 1);
          check_int "fifo order kept across wraps" (2 * round)
            (Option.get (Local.try_dequeue p));
          check_int "fifo order kept across wraps" ((2 * round) + 1)
            (Option.get (Local.try_dequeue p))
        done;
        Alcotest.(check (option int)) "drained" None (Local.try_dequeue p))
  in
  ()

let test_local_pool_overflow () =
  let p = Local.create ~size:2 ~lock_capacity:1 () in
  let overflowed = ref false in
  let _ =
    run ~procs:1 (fun _ ->
        Local.enqueue p 1;
        Local.enqueue p 2;
        match Local.enqueue p 3 with
        | () -> ()
        | exception Failure _ -> overflowed := true)
  in
  check_bool "overflow detected" true !overflowed

let test_local_pool_concurrent () =
  let p = Local.create ~size:512 ~lock_capacity:8 () in
  let got = ref [] in
  let _ =
    run ~procs:8 (fun pid ->
        if pid < 4 then
          for i = 0 to 9 do
            Local.enqueue p ((pid * 10) + i)
          done
        else
          for _ = 0 to 9 do
            match Local.dequeue_blocking p with
            | Some v -> got := v :: !got
            | None -> Alcotest.fail "dequeue gave up"
          done)
  in
  Alcotest.(check (list int))
    "all transferred" (List.init 40 Fun.id)
    (List.sort compare !got)

(* ------------------------------------------------------------------ *)
(* Diffracting-tree counters                                           *)
(* ------------------------------------------------------------------ *)

let dtree_dense ~prisms ~procs ~iters ~width =
  let c = Dtree.create ~prisms ~capacity:procs ~width () in
  let results = Array.make (procs * iters) (-1) in
  let slot = ref 0 in
  let _ =
    run ~procs (fun _ ->
        for _ = 1 to iters do
          let v = Dtree.fetch_and_inc c in
          let s = !slot in
          incr slot;
          results.(s) <- v
        done)
  in
  Alcotest.(check (list int))
    "dense distinct values"
    (List.init (procs * iters) Fun.id)
    (List.sort compare (Array.to_list results))

let test_dtree_single_prism () = dtree_dense ~prisms:`Single_prism ~procs:24 ~iters:6 ~width:8

let test_dtree_multi_prism () = dtree_dense ~prisms:`Multi_prism ~procs:24 ~iters:6 ~width:8

let test_dtree_sequential () =
  let c = Dtree.create ~capacity:1 ~width:4 () in
  let got = ref [] in
  let _ =
    run ~procs:1 (fun _ ->
        for _ = 1 to 8 do
          got := Dtree.fetch_and_inc c :: !got
        done)
  in
  Alcotest.(check (list int))
    "sequential counting" (List.init 8 Fun.id)
    (List.rev !got)

let prop_dtree_dense =
  QCheck.Test.make ~name:"dtree counter dense (random widths/procs)" ~count:15
    QCheck.(pair (int_range 1 4) (int_range 1 24))
    (fun (wexp, procs) ->
      let width = 1 lsl wexp in
      let c = Dtree.create ~capacity:procs ~width () in
      let results = ref [] in
      let _ =
        Sim.run ~procs ~abort_after:50_000_000 (fun _ ->
            for _ = 1 to 3 do
              let v = Dtree.fetch_and_inc c in
              results := v :: !results
            done)
      in
      List.sort compare !results = List.init (procs * 3) Fun.id)

(* ------------------------------------------------------------------ *)
(* Bitonic counting network                                             *)
(* ------------------------------------------------------------------ *)

let test_bitonic_depth () =
  (* Bitonic[w] has depth log w * (log w + 1) / 2. *)
  List.iter
    (fun (w, d) ->
      let n = Bitonic.create ~width:w () in
      check_int (Printf.sprintf "depth of Bitonic[%d]" w) d (Bitonic.depth n))
    [ (2, 1); (4, 3); (8, 6); (16, 10) ]

let test_bitonic_sequential () =
  let n = Bitonic.create ~width:4 () in
  let got = ref [] in
  let _ =
    run ~procs:1 (fun _ ->
        for _ = 1 to 10 do
          got := Bitonic.fetch_and_inc n :: !got
        done)
  in
  Alcotest.(check (list int))
    "sequential counting" (List.init 10 Fun.id)
    (List.rev !got)

let test_bitonic_step_property () =
  (* Quiescent state after n tokens: output i received
     ceil((n - i) / w) tokens. *)
  List.iter
    (fun (width, tokens, seed) ->
      let net = Bitonic.create ~width () in
      let y = Array.make width 0 in
      let _ =
        Sim.run ~seed ~procs:tokens ~abort_after:50_000_000 (fun p ->
            E.delay (E.random_int 40);
            let out = Bitonic.traverse net ~wire:(p mod width) in
            y.(out) <- y.(out) + 1)
      in
      Array.iteri
        (fun i yi ->
          let expected = (tokens - i + width - 1) / width in
          check_int
            (Printf.sprintf "w=%d n=%d leaf %d" width tokens i)
            expected yi)
        y)
    [ (2, 7, 1); (4, 13, 2); (8, 29, 3); (16, 40, 4) ]

let test_periodic_depth () =
  (* Periodic[w] has depth (log w)^2. *)
  List.iter
    (fun (w, d) ->
      let n = Bitonic.create ~kind:`Periodic ~width:w () in
      check_int (Printf.sprintf "depth of Periodic[%d]" w) d (Bitonic.depth n))
    [ (2, 1); (4, 4); (8, 9); (16, 16) ]

let test_periodic_step_property () =
  List.iter
    (fun (width, tokens, seed) ->
      let net = Bitonic.create ~kind:`Periodic ~width () in
      let y = Array.make width 0 in
      let _ =
        Sim.run ~seed ~procs:tokens ~abort_after:50_000_000 (fun p ->
            E.delay (E.random_int 40);
            let out = Bitonic.traverse net ~wire:(p mod width) in
            y.(out) <- y.(out) + 1)
      in
      Array.iteri
        (fun i yi ->
          let expected = (tokens - i + width - 1) / width in
          check_int
            (Printf.sprintf "periodic w=%d n=%d leaf %d" width tokens i)
            expected yi)
        y)
    [ (2, 7, 1); (4, 13, 2); (8, 29, 3); (16, 40, 4) ]

let prop_periodic_dense =
  QCheck.Test.make ~name:"periodic counter dense (random widths/procs)"
    ~count:12
    QCheck.(pair (int_range 1 4) (int_range 1 24))
    (fun (wexp, procs) ->
      let width = 1 lsl wexp in
      let c = Bitonic.create ~kind:`Periodic ~width () in
      let results = ref [] in
      let _ =
        Sim.run ~procs ~abort_after:50_000_000 (fun _ ->
            for _ = 1 to 3 do
              let v = Bitonic.fetch_and_inc c in
              results := v :: !results
            done)
      in
      List.sort compare !results = List.init (procs * 3) Fun.id)

let prop_bitonic_dense =
  QCheck.Test.make ~name:"bitonic counter dense (random widths/procs)"
    ~count:12
    QCheck.(pair (int_range 1 4) (int_range 1 24))
    (fun (wexp, procs) ->
      let width = 1 lsl wexp in
      let c = Bitonic.create ~width () in
      let results = ref [] in
      let _ =
        Sim.run ~procs ~abort_after:50_000_000 (fun _ ->
            for _ = 1 to 3 do
              let v = Bitonic.fetch_and_inc c in
              results := v :: !results
            done)
      in
      List.sort compare !results = List.init (procs * 3) Fun.id)

(* ------------------------------------------------------------------ *)
(* Work stealing                                                        *)
(* ------------------------------------------------------------------ *)

let test_ws_owner_lifo () =
  let t = Ws.create ~procs:1 () in
  let _ =
    run ~procs:1 (fun _ ->
        Ws.enqueue t 1;
        Ws.enqueue t 2;
        Ws.enqueue t 3;
        check_int "owner pops newest" 3 (Option.get (Ws.dequeue t));
        check_int "owner pops newest" 2 (Option.get (Ws.dequeue t)))
  in
  ()

let test_ws_steals_oldest () =
  let t = Ws.create ~procs:2 () in
  let stolen = ref (-1) in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then begin
          Ws.enqueue t 1;
          Ws.enqueue t 2;
          Ws.enqueue t 3;
          E.delay 10_000
        end
        else begin
          E.delay 2_000;
          (* Thief: own deque empty, must steal the victim's oldest. *)
          stolen := Option.get (Ws.dequeue t)
        end)
  in
  check_int "thief got the oldest element" 1 !stolen

let test_ws_conservation () =
  let procs = 16 in
  let t = Ws.create ~procs () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        for i = 0 to 4 do
          Ws.enqueue t ((p * 5) + i)
        done;
        for _ = 0 to 4 do
          match Ws.dequeue t with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "dequeue failed"
        done)
  in
  Alcotest.(check (list int))
    "dequeued = enqueued" (List.init 80 Fun.id)
    (List.sort compare !got)

let test_ws_stealing_distributes_work () =
  let procs = 8 in
  let t = Ws.create ~procs () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        if p = 0 then
          for i = 0 to 27 do
            Ws.enqueue t i
          done
        else
          for _ = 0 to 3 do
            match Ws.dequeue t with
            | Some v -> got := v :: !got
            | None -> Alcotest.fail "dequeue failed"
          done)
  in
  Alcotest.(check (list int))
    "thieves drained the producer" (List.init 28 Fun.id)
    (List.sort compare !got)

(* ------------------------------------------------------------------ *)
(* Centralized pool (Fig. 5)                                           *)
(* ------------------------------------------------------------------ *)

let central_with_mcs ~procs ~size =
  Central.create ~size
    ~head:(Mcs_counter.as_counter (Mcs_counter.create ~capacity:procs ()))
    ~tail:(Mcs_counter.as_counter (Mcs_counter.create ~capacity:procs ()))
    ()

let test_central_pool_conservation () =
  let procs = 16 in
  let pool = central_with_mcs ~procs ~size:1024 in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        for i = 0 to 4 do
          Central.enqueue pool ((p * 5) + i);
          E.delay (E.random_int 20);
          match Central.dequeue pool with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "dequeue failed"
        done)
  in
  Alcotest.(check (list int))
    "dequeued = enqueued" (List.init 80 Fun.id)
    (List.sort compare !got)

let test_central_pool_dequeue_waits () =
  let pool = central_with_mcs ~procs:2 ~size:64 in
  let got = ref None in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then got := Central.dequeue pool
        else begin
          E.delay 3_000;
          Central.enqueue pool 42
        end)
  in
  Alcotest.(check (option int)) "late enqueue observed" (Some 42) !got

let test_central_pool_with_ctree_counters () =
  let procs = 16 in
  let mk () = Ctree.as_counter (Ctree.create ~width:8 ()) in
  let pool = Central.create ~size:1024 ~head:(mk ()) ~tail:(mk ()) () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        Central.enqueue pool p;
        match Central.dequeue pool with
        | Some v -> got := v :: !got
        | None -> Alcotest.fail "dequeue failed")
  in
  Alcotest.(check (list int))
    "conserved with combining-tree counters" (List.init procs Fun.id)
    (List.sort compare !got)

let test_central_pool_with_dtree_counters () =
  let procs = 16 in
  let mk () = Dtree.as_counter (Dtree.create ~capacity:procs ~width:4 ()) in
  let pool = Central.create ~size:1024 ~head:(mk ()) ~tail:(mk ()) () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        Central.enqueue pool p;
        match Central.dequeue pool with
        | Some v -> got := v :: !got
        | None -> Alcotest.fail "dequeue failed")
  in
  Alcotest.(check (list int))
    "conserved with dtree counters" (List.init procs Fun.id)
    (List.sort compare !got)

let test_central_pool_stop () =
  let pool = central_with_mcs ~procs:1 ~size:16 in
  let stop = ref false in
  let got = ref (Some 0) in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then got := Central.dequeue ~stop:(fun () -> !stop) pool
        else begin
          E.delay 2_000;
          stop := true
        end)
  in
  Alcotest.(check (option int)) "gave up on stop" None !got

(* ------------------------------------------------------------------ *)
(* RSU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rsu_local_fast_path () =
  (* With a single pile there is nobody to balance with: enqueues and
     dequeues stay local and keep the pile's FIFO order. *)
  let t = Rsu.create ~procs:1 () in
  let _ =
    run ~procs:1 (fun _ ->
        Rsu.enqueue t 1;
        Rsu.enqueue t 2;
        check_int "dequeues own pile" 1
          (Option.get (Rsu.dequeue t));
        check_int "dequeues own pile" 2 (Option.get (Rsu.dequeue t)))
  in
  ()

let test_rsu_conservation () =
  let procs = 16 in
  let t = Rsu.create ~procs () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        for i = 0 to 4 do
          Rsu.enqueue t ((p * 5) + i)
        done;
        for _ = 0 to 4 do
          match Rsu.dequeue t with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "dequeue failed"
        done)
  in
  Alcotest.(check (list int))
    "dequeued = enqueued" (List.init 80 Fun.id)
    (List.sort compare !got)

let test_rsu_balancing_moves_work () =
  (* One producer fills its pile; the other processors can only make
     progress through the balancing step. *)
  let procs = 8 in
  let t = Rsu.create ~procs () in
  let got = ref [] in
  let _ =
    run ~procs (fun p ->
        if p = 0 then
          for i = 0 to 27 do
            Rsu.enqueue t i
          done
        else
          for _ = 0 to 3 do
            match Rsu.dequeue t with
            | Some v -> got := v :: !got
            | None -> Alcotest.fail "dequeue failed"
          done)
  in
  check_int "consumers stole everything" 28 (List.length !got);
  Alcotest.(check (list int))
    "distinct values" (List.init 28 Fun.id)
    (List.sort compare !got)

let test_rsu_stop () =
  let t : int Rsu.t = Rsu.create ~procs:2 () in
  let stop = ref false in
  let got = ref (Some 0) in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then got := Rsu.dequeue ~stop:(fun () -> !stop) t
        else begin
          E.delay 2_000;
          stop := true
        end)
  in
  Alcotest.(check (option int)) "empty rsu gives up on stop" None !got

let prop_rsu_conservation =
  QCheck.Test.make ~name:"rsu conservation (random shapes)" ~count:15
    QCheck.(pair (int_range 1 16) (int_range 1 5))
    (fun (procs, per_proc) ->
      let t = Rsu.create ~procs () in
      let got = ref [] in
      let _ =
        Sim.run ~procs ~abort_after:50_000_000 (fun p ->
            for i = 0 to per_proc - 1 do
              Rsu.enqueue t ((p * per_proc) + i)
            done;
            for _ = 0 to per_proc - 1 do
              match Rsu.dequeue t with
              | Some v -> got := v :: !got
              | None -> ()
            done)
      in
      List.sort compare !got = List.init (procs * per_proc) Fun.id)

let () =
  Alcotest.run "baselines"
    [
      ( "local_pool",
        [
          Alcotest.test_case "fifo vs lifo" `Quick test_local_pool_fifo_lifo;
          Alcotest.test_case "ring wraparound" `Quick test_local_pool_wraparound;
          Alcotest.test_case "overflow" `Quick test_local_pool_overflow;
          Alcotest.test_case "concurrent transfer" `Quick
            test_local_pool_concurrent;
        ] );
      ( "diff_tree",
        [
          Alcotest.test_case "single prism dense" `Quick test_dtree_single_prism;
          Alcotest.test_case "multi prism dense" `Quick test_dtree_multi_prism;
          Alcotest.test_case "sequential counting" `Quick test_dtree_sequential;
          QCheck_alcotest.to_alcotest prop_dtree_dense;
        ] );
      ( "bitonic",
        [
          Alcotest.test_case "depth" `Quick test_bitonic_depth;
          Alcotest.test_case "sequential" `Quick test_bitonic_sequential;
          Alcotest.test_case "step property" `Quick test_bitonic_step_property;
          QCheck_alcotest.to_alcotest prop_bitonic_dense;
          Alcotest.test_case "periodic depth" `Quick test_periodic_depth;
          Alcotest.test_case "periodic step property" `Quick
            test_periodic_step_property;
          QCheck_alcotest.to_alcotest prop_periodic_dense;
        ] );
      ( "work_stealing",
        [
          Alcotest.test_case "owner lifo" `Quick test_ws_owner_lifo;
          Alcotest.test_case "steals oldest" `Quick test_ws_steals_oldest;
          Alcotest.test_case "conservation" `Quick test_ws_conservation;
          Alcotest.test_case "stealing distributes" `Quick
            test_ws_stealing_distributes_work;
        ] );
      ( "central_pool",
        [
          Alcotest.test_case "conservation" `Quick test_central_pool_conservation;
          Alcotest.test_case "dequeue waits" `Quick test_central_pool_dequeue_waits;
          Alcotest.test_case "with combining-tree counters" `Quick
            test_central_pool_with_ctree_counters;
          Alcotest.test_case "with dtree counters" `Quick
            test_central_pool_with_dtree_counters;
          Alcotest.test_case "stop" `Quick test_central_pool_stop;
        ] );
      ( "rsu",
        [
          Alcotest.test_case "local fast path" `Quick test_rsu_local_fast_path;
          Alcotest.test_case "conservation" `Quick test_rsu_conservation;
          Alcotest.test_case "balancing moves work" `Quick
            test_rsu_balancing_moves_work;
          Alcotest.test_case "stop" `Quick test_rsu_stop;
          QCheck_alcotest.to_alcotest prop_rsu_conservation;
        ] );
    ]
