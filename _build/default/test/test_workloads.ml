(* Sanity tests for the benchmark harness itself: every workload runs
   every applicable method at small scale, produces self-consistent
   numbers, and is deterministic in its seed. *)

module W = Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_counts = [ 2; 8 ]

let test_produce_consume_all_methods () =
  List.iter
    (fun make ->
      let p = W.Produce_consume.run ~horizon:10_000 ~workload:0 ~procs:8 make in
      let name = (make ~procs:8).W.Pool_obj.name in
      check_bool (name ^ ": did work") true (p.W.Produce_consume.ops > 0);
      check_bool (name ^ ": latency positive") true
        (p.W.Produce_consume.latency > 0.0);
      check_bool (name ^ ": throughput consistent") true
        (abs
           (p.W.Produce_consume.throughput_per_m
           - (p.W.Produce_consume.ops * 100))
        <= 100))
    W.Methods.produce_consume_methods

let test_produce_consume_deterministic () =
  let make = List.hd W.Methods.produce_consume_methods in
  let a = W.Produce_consume.run ~seed:7 ~horizon:10_000 ~workload:100 ~procs:8 make in
  let b = W.Produce_consume.run ~seed:7 ~horizon:10_000 ~workload:100 ~procs:8 make in
  check_bool "same seed, same point" true (a = b)

let test_produce_consume_workload_reduces_load () =
  let make = fun ~procs -> W.Methods.mcs_pool ~procs () in
  let busy = W.Produce_consume.run ~horizon:20_000 ~workload:0 ~procs:8 make in
  let idle =
    W.Produce_consume.run ~horizon:20_000 ~workload:16_000 ~procs:8 make
  in
  check_bool "think time lowers throughput" true
    (idle.W.Produce_consume.ops < busy.W.Produce_consume.ops)

let test_counting_all_methods () =
  List.iter
    (fun make ->
      let p = W.Counting.run ~horizon:10_000 ~procs:8 make in
      let name = (make ~procs:8).W.Pool_obj.cname in
      check_bool (name ^ ": counted") true (p.W.Counting.ops > 0))
    (W.Methods.naive_counter :: W.Methods.counting_methods)

let test_queens_all_methods () =
  List.iter
    (fun make ->
      List.iter
        (fun procs ->
          let p = W.Queens.run ~procs make in
          let name = (make ~procs).W.Pool_obj.name in
          check_int (name ^ ": all tasks consumed") W.Queens.total_tasks
            p.W.Queens.consumed;
          check_bool (name ^ ": took time") true (p.W.Queens.elapsed > 0))
        small_counts)
    W.Methods.distribution_methods

let test_response_all_methods () =
  List.iter
    (fun make ->
      let p = W.Response_time.run ~total:64 ~procs:4 make in
      let name = (make ~procs:4).W.Pool_obj.name in
      check_bool (name ^ ": all consumed") true (p.W.Response_time.consumed >= 64);
      check_bool (name ^ ": normalized positive") true
        (p.W.Response_time.normalized > 0.0))
    W.Methods.distribution_methods

let test_response_rejects_odd_procs () =
  Alcotest.check_raises "odd procs rejected"
    (Invalid_argument "Response_time.run: procs must be even and >= 2")
    (fun () ->
      ignore
        (W.Response_time.run ~total:8 ~procs:3 (fun ~procs ->
             W.Methods.mcs_pool ~procs ())))

let test_load_sweep_monotone () =
  (* More load (smaller workload) must mean more elimination at the
     root and fewer requests reaching the leaves. *)
  let points =
    W.Load_sweep.sweep ~horizon:30_000 ~procs:64
      ~workloads:[ 0; 16_000 ] ()
  in
  match points with
  | [ busy; idle ] ->
      check_bool "busy eliminates more" true
        (busy.W.Load_sweep.root_elimination
        > idle.W.Load_sweep.root_elimination);
      check_bool "busy reaches leaves less" true
        (busy.W.Load_sweep.leaf_fraction < idle.W.Load_sweep.leaf_fraction);
      check_bool "busy has lower latency" true
        (busy.W.Load_sweep.latency < idle.W.Load_sweep.latency)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_lifo_fidelity_orders_methods () =
  (* The stack-like pool must be markedly more LIFO than the plain
     pool (lower mean recency rank). *)
  let stack =
    W.Lifo_fidelity.run ~horizon:30_000 ~procs:16 (fun ~procs ->
        W.Methods.estack_pool ~procs ())
  in
  let pool =
    W.Lifo_fidelity.run ~horizon:30_000 ~procs:16 (fun ~procs ->
        W.Methods.etree_pool ~procs ())
  in
  check_bool "ranks in [0,1]" true
    (stack.W.Lifo_fidelity.mean_rank >= 0.0
    && stack.W.Lifo_fidelity.mean_rank <= 1.0);
  check_bool "stack-like pool is more LIFO" true
    (stack.W.Lifo_fidelity.mean_rank +. 0.1
    < pool.W.Lifo_fidelity.mean_rank);
  check_bool "did work" true (stack.W.Lifo_fidelity.pops > 0)

let test_table1_shape () =
  let r = W.Table1.run ~horizon:20_000 ~procs:32 () in
  check_int "five levels for width 32" 5 (List.length r.W.Table1.rows);
  List.iter
    (fun (row : W.Table1.level_row) ->
      check_bool "fractions in [0,1]" true
        (row.W.Table1.fraction >= 0.0 && row.W.Table1.fraction <= 1.0))
    r.W.Table1.rows;
  check_bool "expected nodes within tree depth + leaf" true
    (r.W.Table1.expected_nodes >= 1.0 && r.W.Table1.expected_nodes <= 6.0);
  check_bool "root eliminates under full load" true
    ((List.hd r.W.Table1.rows).W.Table1.fraction > 0.2)

let test_etree_beats_mcs_under_high_load () =
  (* The paper's headline (Fig. 7): at 256 processors the elimination
     tree's throughput exceeds MCS by a wide margin, and its latency is
     lower. *)
  let etree =
    W.Produce_consume.run ~horizon:30_000 ~workload:0 ~procs:256 (fun ~procs ->
        W.Methods.etree_pool ~procs ())
  in
  let mcs =
    W.Produce_consume.run ~horizon:30_000 ~workload:0 ~procs:256 (fun ~procs ->
        W.Methods.mcs_pool ~procs ())
  in
  check_bool "etree throughput > 3x mcs" true
    (etree.W.Produce_consume.throughput_per_m
    > 3 * mcs.W.Produce_consume.throughput_per_m);
  check_bool "etree latency < mcs latency" true
    (etree.W.Produce_consume.latency < mcs.W.Produce_consume.latency)

let test_mcs_beats_etree_when_sparse () =
  (* And the flip side: with few processors the queue lock wins. *)
  let etree =
    W.Produce_consume.run ~horizon:30_000 ~workload:0 ~procs:2 (fun ~procs ->
        W.Methods.etree_pool ~procs ())
  in
  let mcs =
    W.Produce_consume.run ~horizon:30_000 ~workload:0 ~procs:2 (fun ~procs ->
        W.Methods.mcs_pool ~procs ())
  in
  check_bool "mcs latency lower at 2 procs" true
    (mcs.W.Produce_consume.latency < etree.W.Produce_consume.latency)

let test_rsu_sparse_response_penalty () =
  (* Fig. 10 right: RSU pays a large sparse-handoff penalty vs Etree. *)
  let etree =
    W.Response_time.run ~total:64 ~procs:4 (fun ~procs ->
        W.Methods.etree_pool ~procs ())
  in
  let rsu =
    W.Response_time.run ~total:64 ~procs:4 (fun ~procs ->
        W.Methods.rsu_pool ~procs ())
  in
  check_bool "rsu normalized response >= 5x etree" true
    (rsu.W.Response_time.normalized >= 5.0 *. etree.W.Response_time.normalized)

let () =
  Alcotest.run "workloads"
    [
      ( "produce_consume",
        [
          Alcotest.test_case "all methods run" `Quick
            test_produce_consume_all_methods;
          Alcotest.test_case "deterministic" `Quick
            test_produce_consume_deterministic;
          Alcotest.test_case "workload reduces load" `Quick
            test_produce_consume_workload_reduces_load;
        ] );
      ( "counting",
        [ Alcotest.test_case "all methods run" `Quick test_counting_all_methods ]
      );
      ( "queens",
        [ Alcotest.test_case "all methods complete" `Slow test_queens_all_methods ]
      );
      ( "response_time",
        [
          Alcotest.test_case "all methods complete" `Slow
            test_response_all_methods;
          Alcotest.test_case "odd procs rejected" `Quick
            test_response_rejects_odd_procs;
        ] );
      ( "table1",
        [ Alcotest.test_case "shape" `Quick test_table1_shape ] );
      ( "thesis",
        [
          Alcotest.test_case "load sweep monotone" `Quick
            test_load_sweep_monotone;
          Alcotest.test_case "lifo fidelity orders methods" `Quick
            test_lifo_fidelity_orders_methods;
        ] );
      ( "paper_shapes",
        [
          Alcotest.test_case "etree beats mcs at high load" `Slow
            test_etree_beats_mcs_under_high_load;
          Alcotest.test_case "mcs beats etree when sparse" `Quick
            test_mcs_beats_etree_when_sparse;
          Alcotest.test_case "rsu sparse response penalty" `Slow
            test_rsu_sparse_response_penalty;
        ] );
    ]
