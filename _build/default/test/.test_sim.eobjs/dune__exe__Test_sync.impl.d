test/test_sync.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Sim Sync
