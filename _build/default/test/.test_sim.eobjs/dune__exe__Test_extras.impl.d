test/test_extras.ml: Alcotest Domain Engine Extras Fun List Option QCheck QCheck_alcotest Sim
