test/test_native.ml: Alcotest Atomic Domain Engine Fun List Native Option
