test/test_core.ml: Alcotest Array Core Fun Hashtbl List Printf QCheck QCheck_alcotest Random Sim
