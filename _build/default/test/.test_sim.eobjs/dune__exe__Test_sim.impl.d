test/test_sim.ml: Alcotest Array Engine Fun List Printf QCheck QCheck_alcotest Sim
