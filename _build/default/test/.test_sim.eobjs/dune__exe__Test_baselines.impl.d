test/test_baselines.ml: Alcotest Array Baselines Fun List Option Pools Printf QCheck QCheck_alcotest Sim Sync
