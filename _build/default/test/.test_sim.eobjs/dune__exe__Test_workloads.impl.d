test/test_workloads.ml: Alcotest List Workloads
