(* Tests for the extension structures: Treiber stack, exchanger and the
   elimination-backoff stack, under the simulator and natively. *)

module E = Sim.Engine
module Treiber = Extras.Treiber_stack.Make (E)
module Exchanger = Extras.Exchanger.Make (E)
module Eb = Extras.Eb_stack.Make (E)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?seed ~procs body =
  let stats = Sim.run ?seed ~procs ~abort_after:100_000_000 body in
  check_int "no simulated processor was cut off" 0 stats.aborted_procs;
  stats

(* ------------------------------------------------------------------ *)
(* Treiber stack                                                       *)
(* ------------------------------------------------------------------ *)

let test_treiber_sequential_lifo () =
  let s = Treiber.create () in
  let _ =
    run ~procs:1 (fun _ ->
        check_bool "empty" true (Treiber.is_empty s);
        Treiber.push s 1;
        Treiber.push s 2;
        Treiber.push s 3;
        check_int "lifo" 3 (Option.get (Treiber.try_pop s));
        Treiber.push s 4;
        check_int "lifo" 4 (Option.get (Treiber.try_pop s));
        check_int "lifo" 2 (Option.get (Treiber.try_pop s));
        check_int "lifo" 1 (Option.get (Treiber.try_pop s));
        Alcotest.(check (option int)) "drained" None (Treiber.try_pop s))
  in
  ()

let test_treiber_concurrent_conservation () =
  let s = Treiber.create () in
  let got = ref [] in
  let _ =
    run ~procs:32 (fun p ->
        if p < 16 then Treiber.push s p
        else
          match Treiber.pop s with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "pop failed")
  in
  Alcotest.(check (list int))
    "conserved" (List.init 16 Fun.id)
    (List.sort compare !got)

let prop_treiber_sequential_model =
  QCheck.Test.make ~name:"treiber stack is LIFO sequentially" ~count:50
    QCheck.(list (int_range 0 9))
    (fun program ->
      let s = Treiber.create () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      let _ =
        Sim.run ~procs:1 ~abort_after:50_000_000 (fun _ ->
            List.iter
              (fun cmd ->
                if cmd = 0 then (
                  match (!model, Treiber.try_pop s) with
                  | [], None -> ()
                  | top :: rest, Some v ->
                      if v <> top then ok := false;
                      model := rest
                  | _ -> ok := false)
                else begin
                  incr counter;
                  Treiber.push s !counter;
                  model := !counter :: !model
                end)
              program)
      in
      !ok)

(* ------------------------------------------------------------------ *)
(* Exchanger                                                           *)
(* ------------------------------------------------------------------ *)

let test_exchanger_pairs_opposites () =
  let x = Exchanger.create () in
  let push_result = ref `Pending and pop_result = ref `Pending in
  let _ =
    run ~procs:2 (fun p ->
        if p = 0 then
          push_result :=
            match
              Exchanger.exchange x ~kind:Exchanger.Push ~value:(Some 42)
                ~patience:5_000
            with
            | Some _ -> `Matched
            | None -> `Timeout
        else begin
          E.delay 100;
          pop_result :=
            match
              Exchanger.exchange x ~kind:Exchanger.Pop ~value:None
                ~patience:5_000
            with
            | Some (Some v) -> `Got v
            | Some None -> `Bad
            | None -> `Timeout
        end)
  in
  check_bool "push matched" true (!push_result = `Matched);
  check_bool "pop got 42" true (!pop_result = `Got 42)

let test_exchanger_same_kind_never_pairs () =
  let x = Exchanger.create () in
  let matched = ref 0 in
  let _ =
    run ~procs:8 (fun _ ->
        match
          Exchanger.exchange x ~kind:Exchanger.Push ~value:(Some 1)
            ~patience:200
        with
        | Some _ -> incr matched
        | None -> ())
  in
  check_int "no push/push exchange" 0 !matched

let test_exchanger_timeout () =
  let x = Exchanger.create () in
  let out = ref (Some None) in
  let _ =
    run ~procs:1 (fun _ ->
        out :=
          Exchanger.exchange x ~kind:Exchanger.Pop ~value:None ~patience:100)
  in
  check_bool "lonely party times out" true (!out = None)

(* ------------------------------------------------------------------ *)
(* Elimination-backoff stack                                           *)
(* ------------------------------------------------------------------ *)

let test_eb_sequential_lifo () =
  let s = Eb.create () in
  let _ =
    run ~procs:1 (fun _ ->
        Eb.push s 1;
        Eb.push s 2;
        Eb.push s 3;
        check_int "lifo" 3 (Option.get (Eb.try_pop s));
        check_int "lifo" 2 (Option.get (Eb.try_pop s));
        check_int "lifo" 1 (Option.get (Eb.try_pop s)))
  in
  ()

let test_eb_concurrent_conservation () =
  let s = Eb.create ~slots:8 () in
  let got = ref [] in
  let _ =
    run ~procs:64 (fun p ->
        if p land 1 = 0 then Eb.push s p
        else
          match Eb.pop s with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "pop failed")
  in
  Alcotest.(check (list int))
    "conserved" (List.init 32 (fun i -> 2 * i))
    (List.sort compare !got)

let prop_eb_conservation =
  QCheck.Test.make ~name:"eb stack conservation (random shapes)" ~count:15
    QCheck.(pair (int_range 1 16) (int_range 1 4))
    (fun (pairs, per) ->
      let s = Eb.create ~slots:4 () in
      let got = ref [] in
      let _ =
        Sim.run ~procs:(2 * pairs) ~abort_after:50_000_000 (fun p ->
            if p < pairs then
              for i = 0 to per - 1 do
                Eb.push s ((p * per) + i)
              done
            else
              for _ = 0 to per - 1 do
                match Eb.pop s with
                | Some v -> got := v :: !got
                | None -> ()
              done)
      in
      List.sort compare !got = List.init (pairs * per) Fun.id)

(* Native (real domains) runs of the extension structures. *)
module NT = Extras.Treiber_stack.Make (Engine.Native)
module NEb = Extras.Eb_stack.Make (Engine.Native)

let test_native_treiber () =
  let s = NT.create () in
  let domains = 4 and iters = 2_000 in
  let results =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let got = ref [] in
            for i = 0 to iters - 1 do
              NT.push s ((d * iters) + i);
              match NT.pop s with
              | Some v -> got := v :: !got
              | None -> assert false
            done;
            Engine.Native.release_pid ();
            !got))
    |> List.map Domain.join
  in
  Alcotest.(check (list int))
    "conserved"
    (List.init (domains * iters) Fun.id)
    (List.concat results |> List.sort compare)

let test_native_eb_stack () =
  let s = NEb.create ~slots:4 () in
  let domains = 4 and iters = 2_000 in
  let results =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let got = ref [] in
            for i = 0 to iters - 1 do
              NEb.push s ((d * iters) + i);
              match NEb.pop s with
              | Some v -> got := v :: !got
              | None -> assert false
            done;
            Engine.Native.release_pid ();
            !got))
    |> List.map Domain.join
  in
  Alcotest.(check (list int))
    "conserved"
    (List.init (domains * iters) Fun.id)
    (List.concat results |> List.sort compare)

let () =
  Engine.Native.set_capacity 64;
  Alcotest.run "extras"
    [
      ( "treiber",
        [
          Alcotest.test_case "sequential LIFO" `Quick test_treiber_sequential_lifo;
          Alcotest.test_case "concurrent conservation" `Quick
            test_treiber_concurrent_conservation;
          QCheck_alcotest.to_alcotest prop_treiber_sequential_model;
        ] );
      ( "exchanger",
        [
          Alcotest.test_case "pairs opposites" `Quick
            test_exchanger_pairs_opposites;
          Alcotest.test_case "same kind never pairs" `Quick
            test_exchanger_same_kind_never_pairs;
          Alcotest.test_case "timeout" `Quick test_exchanger_timeout;
        ] );
      ( "eb_stack",
        [
          Alcotest.test_case "sequential LIFO" `Quick test_eb_sequential_lifo;
          Alcotest.test_case "concurrent conservation" `Quick
            test_eb_concurrent_conservation;
          QCheck_alcotest.to_alcotest prop_eb_conservation;
          Alcotest.test_case "native treiber" `Quick test_native_treiber;
          Alcotest.test_case "native eb stack" `Quick test_native_eb_stack;
        ] );
    ]
