(** The comparison methods of the paper's evaluation (§2.5), each built
    from scratch on the same engine abstraction as the elimination
    trees:

    - {!Diff_tree} — diffracting-tree counters [24] ("Dtree-32",
      "Dtree-64"), with single-prism (original) or multi-layered-prism
      (this paper's §2.5.2) balancers;
    - {!Central_pool} — the Figure-5 cyclic-array pool driven by any two
      {!Sync.Counter.t}s (yielding the "MCS", "Ctree-n" and "Dtree"
      produce/consume methods);
    - {!Rsu} — the randomized load-balanced local pools of Rudolph,
      Slivkin-Allaluf & Upfal [22], representing the job-stealing
      family [7, 13, 21]. *)

module Diff_tree = Diff_tree
module Central_pool = Central_pool
module Rsu = Rsu

(** Extra substrate/baseline (cited [4], not in the paper's figures):
    the AHS bitonic counting network as a fetch&increment counter. *)
module Bitonic_network = Bitonic_network

(** Extra baseline (cited [7]): single-steal work-stealing deques. *)
module Work_stealing = Work_stealing
