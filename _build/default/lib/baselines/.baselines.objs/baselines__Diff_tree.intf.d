lib/baselines/diff_tree.mli: Core Engine Sync
