lib/baselines/rsu.ml: Array Engine Pools
