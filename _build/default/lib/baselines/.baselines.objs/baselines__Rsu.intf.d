lib/baselines/rsu.mli: Engine
