lib/baselines/central_pool.mli: Engine Sync
