lib/baselines/central_pool.ml: Array Engine Sync
