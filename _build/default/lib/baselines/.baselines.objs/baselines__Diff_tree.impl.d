lib/baselines/diff_tree.ml: Array Core Engine Sync
