lib/baselines/baselines.ml: Bitonic_network Central_pool Diff_tree Rsu Work_stealing
