lib/baselines/work_stealing.mli: Engine
