lib/baselines/bitonic_network.ml: Array Engine Fun List Sync
