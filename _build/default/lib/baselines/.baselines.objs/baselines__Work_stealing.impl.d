lib/baselines/work_stealing.ml: Array Engine Pools
