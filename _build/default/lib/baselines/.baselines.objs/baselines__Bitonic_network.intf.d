lib/baselines/bitonic_network.mli: Engine Sync
