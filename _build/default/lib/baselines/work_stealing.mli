(** Work stealing in the style of Blumofe & Leiserson [7] (an extra
    baseline; the paper compared against RSU as the family's
    representative).  Owners push/pop the LIFO end of a private deque;
    a processor with an empty deque steals one element from the FIFO
    end of a uniformly random victim. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create : ?deque_size:int -> procs:int -> unit -> 'v t

  val enqueue : 'v t -> 'v -> unit

  val try_steal : 'v t -> 'v option

  val try_dequeue : 'v t -> 'v option
  (** Own deque first, then one steal attempt. *)

  val dequeue : ?poll:int -> ?stop:(unit -> bool) -> 'v t -> 'v option

  val total_size : 'v t -> int
end
