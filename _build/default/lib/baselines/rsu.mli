(** The randomized load-balanced pool of Rudolph, Slivkin-Allaluf &
    Upfal [22] — the paper's representative of the local-pools family
    [7, 13, 21].  Enqueues go to the caller's private pile; before a
    dequeue, with probability 1/l (certainty when empty) the caller
    equalizes its pile with a uniformly random partner's.  Excellent
    under uniform load, Θ(n) expected response when only a few piles
    are populated; no deterministic termination guarantee. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create :
    ?discipline:[ `Fifo | `Lifo ] -> ?pile_size:int -> procs:int -> unit -> 'v t
  (** [procs] is the number of piles (the machine size, not just the
      participants). *)

  val enqueue : 'v t -> 'v -> unit

  val try_dequeue : 'v t -> 'v option
  (** One coin-flip/balance/dequeue attempt. *)

  val dequeue : ?poll:int -> ?stop:(unit -> bool) -> 'v t -> 'v option
  (** Retry (and rebalance) until an element arrives or [stop] fires. *)

  val balance : 'v t -> unit
  (** One explicit balancing step with a random partner. *)

  val total_size : 'v t -> int
end
