(* Work stealing in the style of Blumofe & Leiserson [7], the other
   member of the randomized local-pool family the paper cites (RSU was
   chosen as the representative; this one is provided as an extra
   baseline for the job-distribution workloads).

   Each processor owns a deque: the owner pushes and pops at the bottom
   (LIFO — the stack-like scheduling discipline [7] argues for), and a
   processor whose deque is empty steals a single element from the
   *top* (FIFO end) of a uniformly random victim.  We reuse the locked
   ring buffer for the deques: the owner's end is the LIFO end, steals
   take the oldest element; the lock stands in for the ABP protocol,
   which is an acceptable substitution under the simulator's cost model
   (one location's serialization either way). *)

module Make (E : Engine.S) = struct
  module Local = Pools.Local_pool.Make (E)

  type 'v t = { deques : 'v Local.t array }

  let create ?(deque_size = 8192) ~procs () =
    if procs < 1 then invalid_arg "Work_stealing.create";
    {
      deques =
        Array.init procs (fun _ ->
            Local.create ~discipline:`Lifo ~size:deque_size
              ~lock_capacity:procs ());
    }

  let my_deque t = t.deques.(E.pid () mod Array.length t.deques)

  let enqueue t v = Local.enqueue (my_deque t) v

  (* Steal one element from the FIFO end of a random victim. *)
  let try_steal t =
    let n = Array.length t.deques in
    if n <= 1 then None
    else begin
      let victim = t.deques.(E.random_int n) in
      if victim == my_deque t then None
      else
        (* Oldest element: the ring's head, regardless of the owner's
           LIFO discipline. *)
        Local.steal_oldest victim
    end

  let try_dequeue t =
    match Local.try_dequeue (my_deque t) with
    | Some _ as v -> v
    | None -> try_steal t

  let dequeue ?(poll = 16) ?(stop = fun () -> false) t =
    let rec attempt () =
      match try_dequeue t with
      | Some _ as v -> v
      | None ->
          if stop () then None
          else begin
            E.delay poll;
            attempt ()
          end
    in
    attempt ()

  let total_size t =
    Array.fold_left (fun acc d -> acc + Local.size d) 0 t.deques
end
