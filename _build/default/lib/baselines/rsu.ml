(* The randomized load-balanced pool of Rudolph, Slivkin-Allaluf & Upfal
   [22] — the representative of the "load-balanced local pools" family
   the paper compares against (§2.5.3).

   Each processor owns a private work pile.  Enqueues go to the owner's
   pile.  Before dequeuing, a processor flips a coin and, with
   probability 1/l (l = its pile size; certainty when empty), picks a
   uniformly random partner and moves elements from the longer of the
   two piles to the shorter until they are equal.  This gives excellent
   expected behaviour under uniform high load and Theta(n) expected
   response when only a few piles are populated — the trade-off
   Figures 10/11 quantify. *)

module Make (E : Engine.S) = struct
  module Local = Pools.Local_pool.Make (E)

  type 'v t = { piles : 'v Local.t array }

  let create ?(discipline = `Fifo) ?(pile_size = 4096) ~procs () =
    if procs < 1 then invalid_arg "Rsu.create";
    {
      piles =
        Array.init procs (fun _ ->
            Local.create ~discipline ~size:pile_size ~lock_capacity:procs ());
    }

  let my_pile t = t.piles.(E.pid () mod Array.length t.piles)

  let enqueue t v = Local.enqueue (my_pile t) v

  (* Equalize our pile with a random partner's (both locks held, in uid
     order). *)
  let balance t =
    let n = Array.length t.piles in
    if n > 1 then begin
      let p = E.pid () mod n in
      let q = E.random_int n in
      if q <> p then begin
        let mine = t.piles.(p) and theirs = t.piles.(q) in
        Local.with_two_locks mine theirs (fun () ->
            let transfer ~source ~target k =
              for _ = 1 to k do
                match Local.raw_pop source with
                | Some v -> Local.raw_push target v
                | None -> assert false
              done
            in
            let lm = Local.raw_size mine and lt = Local.raw_size theirs in
            (* Move half the difference from the longer pile to the
               shorter.  Strict halving would never move a lone element
               ((1,0) is as equal as (0,1)) and could strand the last
               element away from the only remaining dequeuer, so an
               empty pile always receives at least one element — the
               "steal one when empty" refinement of the job-stealing
               variants [13, 7]. *)
            if lm > lt then
              let k = if lt = 0 then max 1 ((lm - lt) / 2) else (lm - lt) / 2 in
              transfer ~source:mine ~target:theirs k
            else if lt > lm then
              let k = if lm = 0 then max 1 ((lt - lm) / 2) else (lt - lm) / 2 in
              transfer ~source:theirs ~target:mine k)
      end
    end

  (* One dequeue attempt: the RSU coin flip and balancing step, then a
     try at the local pile. *)
  let try_dequeue t =
    let pile = my_pile t in
    let l = Local.size pile in
    if E.random_bernoulli ~num:1 ~den:(max 1 l) then balance t;
    Local.try_dequeue pile

  (* Dequeue, retrying (and rebalancing) until an element arrives or
     [stop] fires.  Note there is no deterministic termination
     guarantee — this is the "probabilistic pool" of the paper's §2. *)
  let dequeue ?(poll = 16) ?(stop = fun () -> false) t =
    let rec attempt () =
      match try_dequeue t with
      | Some _ as v -> v
      | None ->
          if stop () then None
          else begin
            E.delay poll;
            attempt ()
          end
    in
    attempt ()

  let total_size t =
    Array.fold_left (fun acc pile -> acc + Local.size pile) 0 t.piles
end
