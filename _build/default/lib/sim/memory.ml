(* Simulated shared memory with per-location contention.

   Every location carries a [busy_until] timestamp.  Writes and
   read-modify-writes issued at time [t] are serviced starting at
   [max t busy_until] and advance [busy_until] by their latency, so [k]
   simultaneous RMWs on one location cost Theta(k * latency) — the
   hot-spot queueing at a directory home node that the paper's toggle
   bits suffer from and its prisms avoid.

   Reads are charged a fixed latency but do not serialize: they model
   cached / read-shared lines, which is the standard assumption behind
   local-spinning locks such as MCS.  The algorithms in this repository
   only spin on locations they own or on such cached reads. *)

type loc = { mutable busy_until : int }

type 'a cell = { mutable v : 'a; loc : loc }

type config = {
  read_latency : int;  (** cycles for an atomic read *)
  write_latency : int; (** cycles for an atomic write (serializing) *)
  rmw_latency : int;   (** cycles for swap / CAS / fetch&add (serializing) *)
  reads_serialize : bool;
      (** if true, reads also queue on the location (no read sharing) *)
}

let default_config =
  { read_latency = 6; write_latency = 8; rmw_latency = 12;
    reads_serialize = false }

(* Model-sensitivity variant: reads queue like writes, as on a machine
   with no caching of shared lines.  Used by the `model` benchmark to
   show the reported shapes do not hinge on the read-sharing
   assumption. *)
let serialized_reads_config = { default_config with reads_serialize = true }

(* A near-zero-cost configuration: every operation takes one cycle
   (writes/RMWs still serialize per location).  Used by tests that care
   about ordering and algorithmic correctness rather than timing. *)
let uniform_config =
  { read_latency = 1; write_latency = 1; rmw_latency = 1;
    reads_serialize = false }

let cell v = { v; loc = { busy_until = 0 } }
