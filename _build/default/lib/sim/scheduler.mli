(** The discrete-event scheduler at the heart of the simulator.

    Each simulated processor is an effect-handler coroutine; a
    shared-memory effect parks its continuation in the event heap at
    its completion time (queueing behind earlier operations on the same
    location, see {!Memory}), and the main loop fires events in
    (time, insertion) order — making runs deterministic functions of
    the seed.  An operation's side effect runs when its event fires, so
    operations linearize in completion-time order.

    This module is the simulator's engine room; user code should go
    through [Sim.run] and [Sim.Engine]. *)

exception Aborted
(** Raised inside a simulated processor cut off by [abort_after]. *)

type _ Effect.t +=
  | Serialized : {
      loc : Memory.loc;
      latency : int;
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (** a write or RMW: queues behind [loc.busy_until] *)
  | Immediate : { latency : int; run : unit -> 'r } -> 'r Effect.t
        (** a read: fixed latency, no serialization *)
  | Delay : int -> unit Effect.t  (** local computation / spin-waiting *)

type event = { fire : unit -> unit; abort : unit -> unit }

type t = {
  nprocs : int;
  config : Memory.config;
  heap : event Event_heap.t;
  rngs : Engine.Splitmix.t array;
  mutable clock : int;
  mutable seq : int;
  mutable live : int;
  mutable current : int; (** pid of the processor now executing *)
  mutable events_fired : int;
  mutable aborted : int;
  mutable op_reads : int;  (** engine-level operation counters *)
  mutable op_writes : int;
  mutable op_rmws : int;
}

type stats = {
  end_clock : int;
  events_fired : int;
  aborted_procs : int;
  reads : int;   (** atomic reads issued *)
  writes : int;  (** atomic writes issued *)
  rmws : int;    (** swaps / CASes / fetch&adds issued *)
}

val the_sched : unit -> t
(** The running scheduler; raises [Failure] outside a run. *)

val run :
  ?seed:int ->
  ?config:Memory.config ->
  ?abort_after:int ->
  procs:int ->
  (int -> unit) ->
  stats
(** See [Sim.run]. *)
