(* The simulator's implementation of [Engine.S].

   Every primitive maps to one scheduler effect, charged according to the
   run's {!Memory.config}.  All of these must be called from inside a
   processor body passed to [Sim.run]; calling them elsewhere raises. *)

type 'a cell = 'a Memory.cell

let cell = Memory.cell

let get c =
  let t = Scheduler.the_sched () in
  t.op_reads <- t.op_reads + 1;
  if t.config.reads_serialize then
    Effect.perform
      (Scheduler.Serialized
         {
           loc = c.Memory.loc;
           latency = t.config.read_latency;
           run = (fun () -> c.Memory.v);
         })
  else
    Effect.perform
      (Scheduler.Immediate
         { latency = t.config.read_latency; run = (fun () -> c.Memory.v) })

let set c x =
  let t = Scheduler.the_sched () in
  t.op_writes <- t.op_writes + 1;
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.write_latency;
         run = (fun () -> c.Memory.v <- x);
       })

let exchange c x =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         run =
           (fun () ->
             let old = c.Memory.v in
             c.Memory.v <- x;
             old);
       })

let compare_and_set c expected desired =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         run =
           (fun () ->
             if c.Memory.v == expected then begin
               c.Memory.v <- desired;
               true
             end
             else false);
       })

let fetch_and_add c k =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         run =
           (fun () ->
             let old = c.Memory.v in
             c.Memory.v <- old + k;
             old);
       })

let pid () = (Scheduler.the_sched ()).current
let nprocs () = (Scheduler.the_sched ()).nprocs

let delay n = if n > 0 then Effect.perform (Scheduler.Delay n)
let cpu_relax () = Effect.perform (Scheduler.Delay 1)

let random_int n =
  let t = Scheduler.the_sched () in
  Engine.Splitmix.int t.rngs.(t.current) n

let random_bernoulli ~num ~den =
  let t = Scheduler.the_sched () in
  Engine.Splitmix.bernoulli t.rngs.(t.current) ~num ~den

let now () = (Scheduler.the_sched ()).clock
