(** A binary min-heap of timestamped events, keyed by [(time, seq)]
    compared lexicographically.  [seq] is a strictly increasing
    insertion counter, so same-instant events fire in insertion order —
    this tie-break is what makes whole simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert an event. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the least [(time, seq, payload)]. *)

val drain : 'a t -> (int -> int -> 'a -> unit) -> unit
(** [drain t f] pops every remaining event in key order, applying [f];
    events pushed by [f] itself are drained too. *)
