lib/sim/memory.mli:
