lib/sim/memory.ml:
