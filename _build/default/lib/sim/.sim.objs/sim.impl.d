lib/sim/sim.ml: Engine Engine_impl Event_heap Memory Scheduler
