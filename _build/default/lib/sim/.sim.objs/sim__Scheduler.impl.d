lib/sim/scheduler.ml: Array Effect Engine Event_heap Fun Memory
