lib/sim/engine_impl.ml: Array Effect Engine Memory Scheduler
