lib/sim/scheduler.mli: Effect Engine Event_heap Memory
