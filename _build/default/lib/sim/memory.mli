(** Simulated shared memory with per-location contention.

    Writes and read-modify-writes issued at time [t] are serviced
    starting at [max t busy_until] of their location and advance it by
    their latency — so k simultaneous RMWs on one location cost
    Θ(k·latency), the hot-spot queueing the paper's constructions are
    designed around.  Reads are charged a fixed latency but do not
    serialize (they model cached / read-shared lines, the assumption
    behind local-spinning locks). *)

type loc = { mutable busy_until : int }
(** Serialization state of one location. *)

type 'a cell = { mutable v : 'a; loc : loc }
(** A shared location.  Mutated only by the scheduler, at event-fire
    time. *)

type config = {
  read_latency : int;  (** cycles for an atomic read *)
  write_latency : int; (** cycles for an atomic write (serializing) *)
  rmw_latency : int;   (** cycles for swap / CAS / fetch&add (serializing) *)
  reads_serialize : bool;
      (** if true, reads also queue on the location (no read sharing) *)
}

val default_config : config
(** 6 / 8 / 12 cycles — the Alewife-like defaults of DESIGN.md §6. *)

val uniform_config : config
(** Every operation one cycle, still serialized per location: for tests
    that care about ordering rather than timing. *)

val serialized_reads_config : config
(** The defaults but with reads queueing like writes — a machine with
    no read sharing of hot lines (model-sensitivity ablation). *)

val cell : 'a -> 'a cell
(** Allocate a fresh location (free of simulated cost). *)
