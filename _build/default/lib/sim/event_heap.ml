(* A binary min-heap of timestamped events.

   Keys are [(time, seq)] pairs compared lexicographically: [seq] is a
   strictly increasing insertion counter, so events scheduled for the
   same simulated instant fire in insertion order.  That tie-break makes
   whole simulations deterministic functions of the seed. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = { mutable a : 'a entry array; mutable n : int }

let create () = { a = [||]; n = 0 }

let length t = t.n

let is_empty t = t.n = 0

let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

let grow t entry =
  let cap = Array.length t.a in
  if t.n = cap then begin
    let cap' = if cap = 0 then 64 else cap * 2 in
    let a' = Array.make cap' entry in
    Array.blit t.a 0 a' 0 t.n;
    t.a <- a'
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t entry;
  t.a.(t.n) <- entry;
  t.n <- t.n + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t.a.(i) t.a.(parent) then begin
        let tmp = t.a.(i) in
        t.a.(i) <- t.a.(parent);
        t.a.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.n - 1)

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.a.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.a.(0) <- t.a.(t.n);
      (* Sift down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.n && lt t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.n && lt t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.a.(i) in
          t.a.(i) <- t.a.(!smallest);
          t.a.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.seq, top.payload)
  end

(* Drain remaining events in key order (used when aborting a run). *)
let drain t f =
  let rec loop () =
    match pop t with
    | None -> ()
    | Some (time, seq, payload) ->
        f time seq payload;
        loop ()
  in
  loop ()
