(** A sequentially-accessed local pool: a bounded ring buffer protected
    by an MCS queue lock, in FIFO (queue) or LIFO (stack) discipline.
    One sits on every output wire of an elimination tree (§2.1); the
    LIFO variant provides the local stacks of §3; RSU piles and
    work-stealing deques reuse it.

    The [raw_*] operations assume the caller already holds the pool's
    lock (see {!Make.with_two_locks}); everything else synchronizes
    internally. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create :
    ?discipline:[ `Fifo | `Lifo ] ->
    ?size:int ->
    lock_capacity:int ->
    unit ->
    'v t
  (** [size] bounds buffered elements (default 4096; overflow raises
      [Failure]); [lock_capacity] bounds processor ids using the
      pool. *)

  val capacity : 'v t -> int

  val size : 'v t -> int
  (** Racy snapshot; exact when quiescent. *)

  val enqueue : 'v t -> 'v -> unit

  val try_dequeue : 'v t -> 'v option

  val steal_oldest : 'v t -> 'v option
  (** Remove the oldest element regardless of discipline (the thief's
      end in work-stealing schedulers). *)

  val dequeue_blocking :
    ?poll:int -> ?stop:(unit -> bool) -> 'v t -> 'v option
  (** Wait (polling every [poll] cycles under the fair lock) until an
      element arrives or [stop] fires. *)

  (** {2 Raw operations — caller holds the lock} *)

  val raw_size : 'v t -> int
  val raw_push : 'v t -> 'v -> unit
  val raw_pop : 'v t -> 'v option
  val raw_steal_oldest : 'v t -> 'v option

  val with_two_locks : 'v t -> 'v t -> (unit -> 'a) -> 'a
  (** Acquire both pools' locks in a global order (deadlock-free), run
      the function, release.  Raises [Invalid_argument] on the same
      pool twice. *)
end
