(** Sequential local pools used as building blocks: lock-protected
    bounded FIFO/LIFO buffers placed at tree leaves (elimination-tree
    pools, §2.1), used as local stacks (stack-like pools, §3) and as
    the per-processor work piles of the RSU baseline. *)

module Local_pool = Local_pool
