lib/pools/local_pool.ml: Array Engine Sync
