lib/pools/pools.ml: Local_pool
