lib/pools/local_pool.mli: Engine
