(* Types for the balancer collision protocol (paper Fig. 4 and §2.4).

   Every tree owns one [entry cell] per processor (the paper's global
   [Location: shared array[1..numprocs]]).  A processor announces its
   token at a balancer by storing an [Announced] record there; colliders
   claim it by CASing that exact record out.  Because the engines' CAS
   compares physical equality and every announcement allocates a fresh
   record, an announcement can be claimed at most once — which is the
   content of the paper's Lemmas 2.4/2.5 (no token is diffracted or
   eliminated twice, and a claimed token cannot also toggle). *)

type kind = Token | Anti
(* Token = enqueue / increment; Anti = dequeue / decrement. *)

let opposite = function Token -> Anti | Anti -> Token

type 'v entry =
  | Empty
      (* cleared by the owner before it commits to a collision or
         toggle *)
  | Announced of { balancer : int; kind : kind; value : 'v option }
      (* owner is traversing balancer [balancer]; [value] is the
         enqueued element for a Token, [None] for an Anti *)
  | Diffracted
      (* a same-kind partner claimed us: leave on output wire 0 *)
  | Eliminated_slot of 'v option
      (* an opposite-kind partner claimed us and left its value (the
         paper's <0,ELIMINATED,value>): an Anti finds the Token's element
         here, a Token finds [None] and knows its element was taken *)

(* The result of shepherding a token through one balancer. *)
type 'v outcome =
  | Exit of int (* continue on output wire 0 or 1 *)
  | Eliminated of 'v option
      (* collided with an opposite-kind token and left the tree;
         for an Anti the payload is the matched Token's element *)
