(** Types for the balancer collision protocol (paper Fig. 4, §2.4).

    Each tree owns one [entry cell] per processor (the paper's global
    [Location] array).  A processor announces its token at a balancer
    with a fresh [Announced] record; a collider claims it by CASing
    that exact record out.  Physical identity of the record is the
    claim ticket: an announcement can be claimed at most once (the
    paper's Lemmas 2.4/2.5). *)

type kind = Token | Anti
(** [Token] = enqueue / increment; [Anti] = dequeue / decrement. *)

val opposite : kind -> kind

type 'v entry =
  | Empty  (** cleared by the owner before committing to a collision or toggle *)
  | Announced of { balancer : int; kind : kind; value : 'v option }
      (** owner is traversing balancer [balancer]; [value] is the
          enqueued element for a [Token], [None] for an [Anti] *)
  | Diffracted  (** a same-kind partner claimed us: leave on wire 0 *)
  | Eliminated_slot of 'v option
      (** an opposite-kind partner claimed us and left its value *)

type 'v outcome =
  | Exit of int  (** continue on output wire 0 or 1 *)
  | Eliminated of 'v option
      (** collided with an opposite-kind token and left the tree; for
          an [Anti] the payload is the matched token's element *)
