(** Elimination trees — the paper's primary contribution.

    Shavit & Touitou, "Elimination Trees and the Construction of Pools
    and Stacks", SPAA 1995.

    - {!Location} — collision-protocol types (tokens, anti-tokens,
      announcement entries, traversal outcomes).
    - {!Elim_balancer} — the elimination balancer: prism cascade,
      diffraction, elimination with value exchange, locked toggle bits.
    - {!Elim_tree} — trees of balancers ([Pool[w]] and counting-tree
      layouts).
    - {!Elim_pool} — the pool: tree + FIFO local pools (Thm 2.2).
    - {!Elim_stack} — the stack-like pool: gap balancers + LIFO local
      stacks (Thms 3.4/3.5).
    - {!Inc_dec_counter} — IncDecCounter[w] (§3.1, gap step property).
    - {!Tree_config} — per-level prism widths and spin times (§2.5).
    - {!Elim_stats} — per-level elimination statistics (Table 1).

    Every structure is a functor over {!Engine.S}: instantiate with
    [Engine.Native] for a real OCaml 5 concurrent structure or with
    [Sim.Engine] to run under the deterministic multiprocessor
    simulator. *)

module Location = Location
module Elim_stats = Elim_stats
module Tree_config = Tree_config
module Elim_balancer = Elim_balancer
module Elim_tree = Elim_tree
module Elim_pool = Elim_pool
module Elim_stack = Elim_stack
module Inc_dec_counter = Inc_dec_counter
