(** Per-balancer traversal statistics (for the paper's Table 1 and the
    derived §2.5.1 numbers).  Plain mutable counters: exact and free
    under the single-threaded simulator; racy (hence approximate) under
    native parallelism and not used in native assertions. *)

type t = {
  mutable token_entries : int;
  mutable anti_entries : int;
  mutable eliminated : int;  (** individuals eliminated here (2/pair) *)
  mutable diffracted : int;  (** individuals diffracted here (2/pair) *)
  mutable toggled : int;
}

val create : unit -> t
val reset : t -> unit

val entered : t -> Location.kind -> unit
val note_eliminated : t -> int -> unit
val note_diffracted : t -> int -> unit
val note_toggled : t -> unit

val entries : t -> int
(** Tokens plus anti-tokens that entered. *)

val merge : t list -> t
(** Sum (e.g. all balancers of one tree level). *)

val elimination_fraction : t -> float
(** Table 1's metric: eliminated here / entered here (0 if idle). *)
