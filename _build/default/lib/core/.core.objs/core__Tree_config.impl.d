lib/core/tree_config.ml: Array List
