lib/core/elim_pool.ml: Array Elim_tree Engine Pools Tree_config
