lib/core/elim_pool.mli: Elim_stats Engine Tree_config
