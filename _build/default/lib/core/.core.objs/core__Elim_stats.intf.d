lib/core/elim_stats.mli: Location
