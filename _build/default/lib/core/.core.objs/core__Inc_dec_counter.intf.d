lib/core/inc_dec_counter.mli: Elim_stats Elim_tree Engine Location Tree_config
