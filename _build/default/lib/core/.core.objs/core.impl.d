lib/core/core.ml: Elim_balancer Elim_pool Elim_stack Elim_stats Elim_tree Inc_dec_counter Location Tree_config
