lib/core/location.ml:
