lib/core/tree_config.mli:
