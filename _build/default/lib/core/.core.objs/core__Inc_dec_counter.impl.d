lib/core/inc_dec_counter.ml: Array Elim_tree Engine Tree_config
