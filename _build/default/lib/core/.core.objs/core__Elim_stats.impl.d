lib/core/elim_stats.ml: List Location
