lib/core/elim_balancer.ml: Array Elim_stats Engine List Location Sync
