lib/core/elim_stack.ml: Array Elim_tree Engine Pools Tree_config
