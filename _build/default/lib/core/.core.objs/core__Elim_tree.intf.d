lib/core/elim_tree.mli: Elim_balancer Elim_stats Engine Location Tree_config
