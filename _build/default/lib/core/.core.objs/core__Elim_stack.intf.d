lib/core/elim_stack.mli: Elim_stats Engine Tree_config
