lib/core/elim_tree.ml: Array Elim_balancer Elim_stats Engine List Location Tree_config
