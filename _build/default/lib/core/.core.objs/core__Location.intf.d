lib/core/location.mli:
