lib/core/elim_balancer.mli: Elim_stats Engine Location
