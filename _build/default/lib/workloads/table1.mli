(** Table 1 instrumentation: per-level elimination fractions of the
    Etree-32 pool on the produce-consume benchmark, plus §2.5.1's
    derived expected-depth numbers. *)

type level_row = { level : int; fraction : float }

type result = {
  procs : int;
  rows : level_row list;      (** root first *)
  expected_nodes : float;     (** balancers (+ leaf) visited per request *)
  leaf_fraction : float;      (** requests that reached a leaf pool *)
}

val run :
  ?seed:int -> ?horizon:int -> ?width:int -> procs:int -> unit -> result
