(* Quantifying the stack-like pool's "LIFO-ishness" (paper §3).

   The paper motivates the stack-like pool with applications that
   "would perform just as well if LIFO would be kept among all but a
   small fraction of operations" — but never measures that fraction.
   This workload does: processors run the produce-consume loop against
   the stack-like pool; a shadow multiset, updated at operation
   completion order (exact under the single-threaded simulator),
   records the set of elements present, each stamped with its push
   completion time.  A pop is a "LIFO hit" if it returns the
   most-recently-pushed element still present.  We report the hit
   fraction, plus the same measurement for a plain FIFO-leaf pool as
   the floor and for eliminated handoffs counted separately (an
   eliminated pair is trivially LIFO: the element popped is the newest
   one — it was never even buffered). *)

module E = Sim.Engine

type point = {
  procs : int;
  pops : int;
  lifo_hits : int;       (* pops that returned the newest present element *)
  hit_fraction : float;
  mean_rank : float;
      (* mean normalized recency rank of popped elements: 0 = newest
         present, 1 = oldest present; a strict stack scores 0, a strict
         queue scores 1 *)
}

(* Shadow model: a push-completion-ordered list of present elements.
   Sizes stay small (in-flight surplus only), so a list is fine. *)
type 'v shadow = { mutable present : (int * 'v) list; mutable stamp : int }

let run ?(seed = 1) ?(horizon = 150_000) ~procs
    (make : procs:int -> int Pool_obj.pool) =
  let pool = make ~procs in
  let shadow = { present = []; stamp = 0 } in
  (* An eliminated pair's pop can complete before its push returns; such
     a value is remembered here so the late push does not resurrect it. *)
  let pending = Hashtbl.create 64 in
  let pops = ref 0 and hits = ref 0 in
  let rank_total = ref 0.0 in
  let note_push v =
    if Hashtbl.mem pending v then Hashtbl.remove pending v
    else begin
      shadow.stamp <- shadow.stamp + 1;
      shadow.present <- (shadow.stamp, v) :: shadow.present
    end
  in
  let note_pop v =
    incr pops;
    match
      List.find_index (fun (_, x) -> x = v) shadow.present
    with
    | Some rank ->
        if rank = 0 then incr hits;
        let n = List.length shadow.present in
        if n > 1 then
          rank_total := !rank_total +. (float_of_int rank /. float_of_int (n - 1));
        shadow.present <- List.filter (fun (_, x) -> x <> v) shadow.present
    | None ->
        (* Direct handoff (elimination before the push completed): the
           popped element is the newest in existence — a LIFO hit of
           rank 0. *)
        incr hits;
        Hashtbl.replace pending v ()
  in
  let stats =
    Sim.run ~seed ~procs ~abort_after:((horizon * 4) + 2_000_000) (fun p ->
        let i = ref 0 in
        while E.now () < horizon do
          let v = (p * 1_000_000) + !i in
          incr i;
          pool.Pool_obj.enqueue v;
          note_push v;
          (match pool.Pool_obj.dequeue ~stop:(fun () -> false) with
          | Some got -> note_pop got
          | None -> assert false);
          E.delay (E.random_int 64)
        done)
  in
  if stats.aborted_procs > 0 then failwith "lifo_fidelity: stuck processors";
  {
    procs;
    pops = !pops;
    lifo_hits = !hits;
    hit_fraction =
      (if !pops = 0 then 0.0 else float_of_int !hits /. float_of_int !pops);
    mean_rank =
      (if !pops = 0 then 0.0 else !rank_total /. float_of_int !pops);
  }

let sweep ?seed ?horizon ~proc_counts make =
  List.map (fun procs -> run ?seed ?horizon ~procs make) proc_counts
