(* The 10-queens job-distribution benchmark of §2.5.3 (Fig. 10, left).

   One processor seeds the pool with 10 tasks of depth 1.  Every
   processor repeatedly dequeues a task; if its depth is below 3 the
   processor "works" for 8000 cycles and enqueues 10 tasks of depth+1.
   The run ends when all 10 + 100 + 1000 = 1110 tasks have been
   consumed; the metric is the elapsed simulated time.  This is the
   workload family where the randomized local-pool methods shine:
   a typical processor dequeues its own latest enqueue. *)

module E = Sim.Engine

type point = { procs : int; elapsed : int; consumed : int }

let total_tasks = 1110 (* 10 + 100 + 1000 *)
let spawn_work = 8_000
let max_depth = 3
let fanout = 10

let run ?(seed = 1) ~procs (make : procs:int -> int Pool_obj.pool) =
  let pool = make ~procs in
  let consumed = ref 0 in
  let finish_time = ref 0 in
  let stop () = !consumed >= total_tasks in
  let stats =
    Sim.run ~seed ~procs ~abort_after:400_000_000 (fun p ->
        if p = 0 then
          for _ = 1 to fanout do
            pool.Pool_obj.enqueue 1
          done;
        let rec work () =
          if not (stop ()) then
            match pool.Pool_obj.dequeue ~stop with
            | None -> () (* drained: someone consumed the last task *)
            | Some depth ->
                incr consumed;
                if stop () then finish_time := E.now ()
                else if depth < max_depth then begin
                  E.delay spawn_work;
                  for _ = 1 to fanout do
                    pool.Pool_obj.enqueue (depth + 1)
                  done
                end;
                work ()
        in
        work ())
  in
  ignore stats;
  if !consumed < total_tasks then
    failwith
      (Printf.sprintf "queens: only %d/%d tasks consumed (method %s)"
         !consumed total_tasks pool.Pool_obj.name);
  { procs; elapsed = !finish_time; consumed = !consumed }

let sweep ?seed ~proc_counts make =
  List.map (fun procs -> run ?seed ~procs make) proc_counts
