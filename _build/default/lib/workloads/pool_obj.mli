(** First-class pool and counter objects over the simulator engine, so
    every method of the paper plugs into every benchmark. *)

type 'v pool = {
  name : string;
  enqueue : 'v -> unit;
  dequeue : stop:(unit -> bool) -> 'v option;
  stats_by_level : (unit -> Core.Elim_stats.t list) option;
      (** diagnostic hook; [None] for methods without a tree *)
}

type counter = { cname : string; fetch_and_inc : unit -> int }

val pool :
  ?stats_by_level:(unit -> Core.Elim_stats.t list) ->
  name:string ->
  enqueue:('v -> unit) ->
  dequeue:(stop:(unit -> bool) -> 'v option) ->
  unit ->
  'v pool

val counter : name:string -> Sync.Counter.t -> counter
