(** The 10-queens job-distribution benchmark of §2.5.3 (Fig. 10 left):
    10 seed tasks of depth 1; consuming a task of depth < 3 costs 8000
    cycles of work and spawns 10 tasks of depth+1; the run ends when
    all 1110 tasks are consumed. *)

type point = { procs : int; elapsed : int; consumed : int }

val total_tasks : int
val spawn_work : int
val max_depth : int
val fanout : int

val run : ?seed:int -> procs:int -> (procs:int -> int Pool_obj.pool) -> point

val sweep :
  ?seed:int ->
  proc_counts:int list ->
  (procs:int -> int Pool_obj.pool) ->
  point list
