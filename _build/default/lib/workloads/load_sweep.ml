(* Elimination rate and latency versus offered load — the paper's core
   thesis ("superior response (on average constant) under high loads
   ... providing improved response time as the load on them increases")
   made directly visible: sweep the produce-consume think time at fixed
   processor count and report latency together with the root balancer's
   elimination fraction. *)

module E = Sim.Engine
module Epool = Core.Elim_pool.Make (E)

type point = {
  workload : int;
  latency : float;            (* cycles per operation *)
  root_elimination : float;   (* fraction eliminated at the root *)
  leaf_fraction : float;      (* requests reaching a leaf pool *)
}

let run ?(seed = 1) ?(horizon = 150_000) ?(width = 32) ~procs ~workload () =
  let pool = Epool.create ~capacity:procs ~width ~leaf_size:8192 () in
  let ops = ref 0 and latency_total = ref 0 in
  let stats =
    Sim.run ~seed ~procs ~abort_after:((horizon * 4) + 2_000_000) (fun p ->
        let i = ref 0 in
        while E.now () < horizon do
          let t0 = E.now () in
          Epool.enqueue pool ((p * 1_000_000) + !i);
          incr i;
          (match Epool.dequeue pool with
          | Some _ -> ()
          | None -> assert false);
          let t1 = E.now () in
          if t1 <= horizon then begin
            ops := !ops + 2;
            latency_total := !latency_total + (t1 - t0)
          end;
          if workload > 0 then E.delay (E.random_int (workload + 1))
        done)
  in
  if stats.aborted_procs > 0 then failwith "load_sweep: stuck processors";
  let root =
    match Epool.stats_by_level pool with s :: _ -> s | [] -> assert false
  in
  {
    workload;
    latency =
      (if !ops = 0 then 0.0
       else float_of_int !latency_total /. float_of_int (!ops / 2));
    root_elimination = Core.Elim_stats.elimination_fraction root;
    leaf_fraction = Epool.leaf_access_fraction pool;
  }

let sweep ?seed ?horizon ?width ~procs ~workloads () =
  List.map (fun workload -> run ?seed ?horizon ?width ~procs ~workload ()) workloads
