lib/workloads/counting.mli: Pool_obj
