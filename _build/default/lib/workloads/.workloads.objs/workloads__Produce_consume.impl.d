lib/workloads/produce_consume.ml: List Pool_obj Printf Sim
