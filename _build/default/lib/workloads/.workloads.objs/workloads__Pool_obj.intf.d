lib/workloads/pool_obj.mli: Core Sync
