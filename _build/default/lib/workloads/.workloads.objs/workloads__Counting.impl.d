lib/workloads/counting.ml: List Pool_obj Printf Sim
