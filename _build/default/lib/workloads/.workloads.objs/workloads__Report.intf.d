lib/workloads/report.mli:
