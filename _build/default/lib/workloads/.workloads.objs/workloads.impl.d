lib/workloads/workloads.ml: Counting Lifo_fidelity Load_sweep Methods Pool_obj Produce_consume Queens Report Response_time Table1
