lib/workloads/response_time.ml: Array List Pool_obj Printf Sim
