lib/workloads/produce_consume.mli: Pool_obj Sim
