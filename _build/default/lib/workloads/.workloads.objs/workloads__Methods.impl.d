lib/workloads/methods.ml: Baselines Core Extras List Pool_obj Printf Sim Sync
