lib/workloads/queens.ml: List Pool_obj Printf Sim
