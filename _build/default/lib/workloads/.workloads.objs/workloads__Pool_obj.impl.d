lib/workloads/pool_obj.ml: Core Sync
