lib/workloads/report.ml: Buffer List Printf String
