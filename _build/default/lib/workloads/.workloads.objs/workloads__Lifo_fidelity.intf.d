lib/workloads/lifo_fidelity.mli: Pool_obj
