lib/workloads/response_time.mli: Pool_obj
