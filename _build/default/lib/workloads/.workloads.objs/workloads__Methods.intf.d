lib/workloads/methods.mli: Baselines Core Extras Pool_obj Sim Sync
