lib/workloads/lifo_fidelity.ml: Hashtbl List Pool_obj Sim
