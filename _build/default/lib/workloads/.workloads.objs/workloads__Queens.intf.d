lib/workloads/queens.mli: Pool_obj
