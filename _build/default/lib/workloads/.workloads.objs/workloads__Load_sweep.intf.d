lib/workloads/load_sweep.mli:
