lib/workloads/load_sweep.ml: Core List Sim
