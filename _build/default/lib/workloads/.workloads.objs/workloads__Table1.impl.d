lib/workloads/table1.ml: Core List Sim
