(** Elimination rate and latency versus offered load at fixed
    concurrency: the "busier it gets, the faster it gets" thesis as a
    single sweep of the produce-consume think time. *)

type point = {
  workload : int;
  latency : float;           (** cycles per enqueue+dequeue pair *)
  root_elimination : float;  (** fraction eliminated at the root *)
  leaf_fraction : float;     (** requests reaching a leaf pool *)
}

val run :
  ?seed:int ->
  ?horizon:int ->
  ?width:int ->
  procs:int ->
  workload:int ->
  unit ->
  point

val sweep :
  ?seed:int ->
  ?horizon:int ->
  ?width:int ->
  procs:int ->
  workloads:int list ->
  unit ->
  point list
