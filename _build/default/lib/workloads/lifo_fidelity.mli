(** Quantifying §3's claim that the stack-like pool keeps LIFO order
    "among all but a small fraction of operations": the fraction of
    pops that return the most recently pushed element still present
    (by operation completion order; direct eliminated handoffs count
    as hits — the popped element is the newest in existence). *)

type point = {
  procs : int;
  pops : int;
  lifo_hits : int;
  hit_fraction : float;  (** pops returning the newest present element *)
  mean_rank : float;
      (** mean normalized recency rank of popped elements — 0 for a
          strict stack, 1 for a strict queue *)
}

val run :
  ?seed:int ->
  ?horizon:int ->
  procs:int ->
  (procs:int -> int Pool_obj.pool) ->
  point

val sweep :
  ?seed:int ->
  ?horizon:int ->
  proc_counts:int list ->
  (procs:int -> int Pool_obj.pool) ->
  point list
