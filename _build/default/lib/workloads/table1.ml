(* Table 1: fraction of tokens eliminated per tree level, measured on
   the produce-consume benchmark (workload 0) with the Etree-32 pool,
   at 16 and 256 processors; plus §2.5.1's derived numbers (expected
   balancers traversed and fraction of requests reaching leaf pools). *)

module E = Sim.Engine
module Epool = Core.Elim_pool.Make (E)

type level_row = { level : int; fraction : float }

type result = {
  procs : int;
  rows : level_row list;
  expected_nodes : float;   (* balancers (+ leaf) visited per request *)
  leaf_fraction : float;    (* requests that reached a leaf pool *)
}

let run ?(seed = 1) ?(horizon = 200_000) ?(width = 32) ~procs () =
  let pool = Epool.create ~capacity:procs ~width ~leaf_size:8192 () in
  let stats =
    Sim.run ~seed ~procs ~abort_after:((horizon * 4) + 2_000_000) (fun p ->
        let i = ref 0 in
        while E.now () < horizon do
          Epool.enqueue pool ((p * 1_000_000) + !i);
          incr i;
          (match Epool.dequeue pool with
          | Some _ -> ()
          | None -> assert false)
        done)
  in
  if stats.aborted_procs > 0 then failwith "table1: stuck processors";
  let rows =
    List.mapi
      (fun level s ->
        { level; fraction = Core.Elim_stats.elimination_fraction s })
      (Epool.stats_by_level pool)
  in
  {
    procs;
    rows;
    expected_nodes = Epool.expected_nodes_traversed pool;
    leaf_fraction = Epool.leaf_access_fraction pool;
  }
