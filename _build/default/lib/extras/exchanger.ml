(* A lock-free, kind-aware exchanger slot (in the style of Scherer, Lea
   & Scott), the building block of the elimination-backoff stack.

   A party posts an offer (its kind and value) into the slot and waits a
   bounded time for a partner of the *opposite* kind to claim it.  The
   claimant removes the offer and deposits its own value in the offer's
   reply cell.  This is the paper's eliminating collision re-derived on
   a single location: the same announce / claim-by-CAS / read-the-reply
   structure as the Location protocol, with physical identity of the
   offer record as the claim ticket. *)

module Make (E : Engine.S) = struct
  type kind = Push | Pop

  type 'a offer = {
    kind : kind;
    value : 'a option;               (* Some for Push, None for Pop *)
    reply : 'a option option E.cell; (* None = pending; Some v = matched *)
  }

  type 'a slot_state = Empty | Offered of 'a offer

  type 'a t = 'a slot_state E.cell

  let create () : 'a t = E.cell Empty

  (* Attempt one exchange of bounded duration.  Returns:
     - [Some v]: matched a partner; [v] is the partner's payload
       ([Some x] when the partner was a Push, [None] for a Pop);
     - [None]: no partner showed up (or an incompatible one occupied
       the slot): caller should retry its main path. *)
  let exchange t ~kind ~value ~patience =
    match E.get t with
    | Offered his as seen when his.kind <> kind ->
        (* Opposite party waiting: claim it. *)
        if E.compare_and_set t seen Empty then begin
          E.set his.reply (Some value);
          Some his.value
        end
        else None
    | Offered _ -> None (* same kind: no elimination possible here *)
    | Empty -> (
        let mine = { kind; value; reply = E.cell None } in
        let posted = Offered mine in
        if not (E.compare_and_set t Empty posted) then None
        else begin
          (* Wait out our patience, then try to withdraw. *)
          E.delay patience;
          match E.get mine.reply with
          | Some payload -> Some payload
          | None ->
              if E.compare_and_set t posted Empty then None (* withdrew *)
              else begin
                (* A claimant beat our withdrawal: its reply is one
                   write away.  Spin for it. *)
                let rec await () =
                  match E.get mine.reply with
                  | Some payload -> payload
                  | None ->
                      E.cpu_relax ();
                      await ()
                in
                Some (await ())
              end
        end)
end
