(** Extensions beyond the paper: the lineage of its elimination idea.

    - {!Treiber_stack} — the classic CAS-on-top lock-free stack (the
      centralized structure elimination was invented to relieve);
    - {!Exchanger} — a kind-aware lock-free exchange slot;
    - {!Eb_stack} — the elimination-backoff stack [Hendler, Shavit &
      Yerushalmi 2004], the design through which elimination became a
      standard technique; a strict-LIFO, lock-free contrast to the
      paper's stack-like pool.

    All engine-parametric: they run natively and under the simulator,
    and the ablation benchmarks race them against the elimination
    tree. *)

module Treiber_stack = Treiber_stack
module Exchanger = Exchanger
module Eb_stack = Eb_stack
