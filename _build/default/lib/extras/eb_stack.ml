(* The elimination-backoff stack (Hendler, Shavit & Yerushalmi, SPAA
   2004) — the design through which this paper's elimination technique
   became standard in concurrent data structures, implemented here as a
   forward-looking extension of the reproduction.

   A Treiber stack is the fast path.  When the top-of-stack CAS fails
   under contention, the operation backs off into an *elimination
   array* of exchanger slots: a push and a pop that meet there cancel
   directly, exactly like an eliminating collision in a tree balancer —
   but with no tree, so there is no deterministic O(log w) termination
   guarantee, only lock-freedom.  Contrast with [Core.Elim_stack]:

   - eb-stack: strict LIFO linearizable stack, lock-free, elimination
     only under contention;
   - elimination tree: stack-like pool (LIFO-ish), bounded balancer
     path, elimination is the common case under load. *)

module Make (E : Engine.S) = struct
  module Treiber = Treiber_stack.Make (E)
  module Exchanger = Exchanger.Make (E)

  type 'a t = {
    stack : 'a Treiber.t;
    slots : 'a Exchanger.t array;
    patience : int;
    elim_rounds : int;
  }

  (* [elim_rounds]: how many exchange attempts to make after a failed
     top-of-stack CAS before coming back to the hot spot.  Staying in
     the elimination layer while the top is contended is the heart of
     the HSY design — retrying the central CAS immediately would only
     lengthen its queue. *)
  let create ?(slots = 16) ?(patience = 16) ?(elim_rounds = 32) () =
    if slots < 1 then invalid_arg "Eb_stack.create";
    {
      stack = Treiber.create ();
      slots = Array.init slots (fun _ -> Exchanger.create ());
      patience;
      elim_rounds;
    }

  let random_slot t = t.slots.(E.random_int (Array.length t.slots))

  (* Try the elimination layer up to [elim_rounds] times; [None] means
     the caller should go back to the central stack. *)
  let try_eliminate t ~kind ~value =
    let rec rounds k =
      if k = 0 then None
      else
        match Exchanger.exchange (random_slot t) ~kind ~value ~patience:t.patience with
        | Some payload -> Some payload
        | None -> rounds (k - 1)
    in
    rounds t.elim_rounds

  let rec push t v =
    let top = E.get t.stack in
    if
      not
        (E.compare_and_set t.stack top
           (Treiber.Cons { value = v; next = top }))
    then begin
      (* Contention: try to hand the value straight to a popper. *)
      match try_eliminate t ~kind:Exchanger.Push ~value:(Some v) with
      | Some _ -> () (* eliminated against a pop *)
      | None -> push t v
    end

  let rec try_pop t =
    match E.get t.stack with
    | Treiber.Nil -> None
    | Treiber.Cons { value; next } as top ->
        if E.compare_and_set t.stack top next then Some value
        else begin
          match try_eliminate t ~kind:Exchanger.Pop ~value:None with
          | Some (Some v) -> Some v (* eliminated against a push *)
          | Some None ->
              (* Partner was a Push by construction, so it carried a
                 value. *)
              assert false
          | None -> try_pop t
        end

  let pop ?(poll = 16) ?(stop = fun () -> false) t =
    let rec attempt () =
      match try_pop t with
      | Some _ as v -> v
      | None ->
          if stop () then None
          else begin
            E.delay poll;
            attempt ()
          end
    in
    attempt ()
end
