lib/extras/treiber_stack.mli: Engine
