lib/extras/eb_stack.mli: Engine
