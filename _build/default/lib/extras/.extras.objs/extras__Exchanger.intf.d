lib/extras/exchanger.mli: Engine
