lib/extras/exchanger.ml: Engine
