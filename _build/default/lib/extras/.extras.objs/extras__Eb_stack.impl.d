lib/extras/eb_stack.ml: Array Engine Exchanger Treiber_stack
