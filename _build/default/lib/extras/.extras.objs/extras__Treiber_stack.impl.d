lib/extras/treiber_stack.ml: Engine
