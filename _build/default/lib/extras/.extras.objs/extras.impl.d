lib/extras/extras.ml: Eb_stack Exchanger Treiber_stack
