(** The elimination-backoff stack [Hendler, Shavit & Yerushalmi 2004]:
    a Treiber stack whose contention path retries an elimination array
    of exchanger slots — the design through which this paper's
    technique became standard.  Strictly LIFO and lock-free; unlike the
    elimination tree it keeps a central hot spot, so it saturates at
    very high simulated processor counts (see EXPERIMENTS.md,
    ablations). *)

module Make (E : Engine.S) : sig
  type 'a t

  val create : ?slots:int -> ?patience:int -> ?elim_rounds:int -> unit -> 'a t
  (** [slots]: exchanger array width; [patience]: wait per exchange
      attempt; [elim_rounds]: exchange attempts after each failed
      top-of-stack CAS before returning to the hot spot. *)

  val push : 'a t -> 'a -> unit
  val try_pop : 'a t -> 'a option
  val pop : ?poll:int -> ?stop:(unit -> bool) -> 'a t -> 'a option
end
