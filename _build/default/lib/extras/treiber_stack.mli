(** Treiber's lock-free stack (1986): a linked list with a CAS-updated
    top pointer — the centralized structure that elimination was
    invented to relieve.  Exposed representation so the
    elimination-backoff stack can share its fast path. *)

module Make (E : Engine.S) : sig
  type 'a node = Nil | Cons of { value : 'a; next : 'a node }

  type 'a t = 'a node E.cell

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val try_pop : 'a t -> 'a option
  val pop : ?poll:int -> ?stop:(unit -> bool) -> 'a t -> 'a option
  val is_empty : 'a t -> bool
end
