(** A lock-free, kind-aware exchange slot (after Scherer, Lea & Scott):
    the paper's eliminating collision re-derived on one location, and
    the building block of the elimination-backoff stack.  A posted
    offer can be claimed only by the opposite kind; physical identity
    of the offer record is the claim ticket. *)

module Make (E : Engine.S) : sig
  type kind = Push | Pop

  type 'a t

  val create : unit -> 'a t

  val exchange :
    'a t -> kind:kind -> value:'a option -> patience:int -> 'a option option
  (** One bounded-duration exchange attempt.  [Some payload]: matched a
      partner ([payload] is the partner's value — [Some v] from a Push,
      [None] from a Pop).  [None]: nobody compatible showed up within
      [patience]; retry the caller's main path. *)
end
