(* Treiber's lock-free stack (IBM TR RJ5118, 1986): a singly linked
   list whose top pointer is updated by compare-and-swap.  The natural
   "centralized" contrast to the elimination-based stacks: correct and
   non-blocking, but every operation fights over one location, so under
   load it behaves like the hot spots of the paper's introduction.

   The engines' physical-equality CAS is exactly right here: each CAS
   compares against the node list previously read. *)

module Make (E : Engine.S) = struct
  type 'a node = Nil | Cons of { value : 'a; next : 'a node }

  type 'a t = 'a node E.cell

  let create () : 'a t = E.cell Nil

  let rec push t v =
    let top = E.get t in
    if not (E.compare_and_set t top (Cons { value = v; next = top })) then begin
      E.cpu_relax ();
      push t v
    end

  let rec try_pop t =
    match E.get t with
    | Nil -> None
    | Cons { value; next } as top ->
        if E.compare_and_set t top next then Some value
        else begin
          E.cpu_relax ();
          try_pop t
        end

  (* Pop, waiting for an element; [stop] bounds the wait. *)
  let pop ?(poll = 16) ?(stop = fun () -> false) t =
    let rec attempt () =
      match try_pop t with
      | Some _ as v -> v
      | None ->
          if stop () then None
          else begin
            E.delay poll;
            attempt ()
          end
    in
    attempt ()

  let is_empty t = E.get t = Nil
end
