(** Synchronization substrate: locks and shared counters.

    Everything here is a functor over {!Engine.S} so it runs both
    natively (OCaml 5 atomics/domains) and under the simulator.

    - {!Mcs_lock} — the MCS queue lock [Mellor-Crummey & Scott 1991],
      FIFO-fair with local spinning; the lock the paper uses for toggle
      bits and leaf pools.
    - {!Tas_lock} — test-and-test-and-set with exponential backoff.
    - {!Backoff} — randomized exponential backoff.
    - {!Counter} — a fetch&increment counter as a first-class value.
    - {!Mcs_counter} — the paper's "MCS" counting method (locked cell).
    - {!Combining_tree} — the paper's "Ctree-n" method [Goodman et al.].
    - {!Naive_counter} — raw fetch&add on one location (hot-spot
      ablation, not one of the paper's methods). *)

module Backoff = Backoff
module Mcs_lock = Mcs_lock
module Tas_lock = Tas_lock

(** Anderson's array queue lock [2] (cited baseline; FIFO like MCS). *)
module Anderson_lock = Anderson_lock

module Counter = Counter
module Mcs_counter = Mcs_counter
module Naive_counter = Naive_counter
module Combining_tree = Combining_tree
