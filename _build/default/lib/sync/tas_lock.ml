(* A test-and-test-and-set lock with randomized exponential backoff.

   Kept as a contrast baseline for the lock tests and as the cheap
   per-node monitor lock inside the combining tree, where at most a
   handful of processors ever contend on one node. *)

module Make (E : Engine.S) = struct
  module Backoff = Backoff.Make (E)

  type t = bool E.cell

  let create () : t = E.cell false

  let acquire t =
    let b = Backoff.create () in
    let rec attempt () =
      if E.get t then begin
        E.cpu_relax ();
        attempt ()
      end
      else if E.compare_and_set t false true then ()
      else begin
        Backoff.once b;
        attempt ()
      end
    in
    attempt ()

  let try_acquire t = (not (E.get t)) && E.compare_and_set t false true

  let release t = E.set t false

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
