(** The Mellor-Crummey & Scott queue lock [15]: FIFO-fair, local
    spinning.  The lock the paper uses for balancer toggle bits and
    leaf pools (its fairness underpins Theorem 2.2's bounded-time
    guarantee). *)

module Make (E : Engine.S) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [create ~capacity ()] makes a lock usable by processors with ids
      in [[0, capacity)].  [capacity] defaults to [E.nprocs ()], which
      under the simulator is only available inside a run — pass it
      explicitly when building structures up front. *)

  val acquire : t -> unit
  (** Enqueue on the lock and spin locally until granted.  Not
      reentrant. *)

  val release : t -> unit
  (** Hand the lock to the next waiter, if any. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [with_lock t f] runs [f] under the lock, releasing on return or
      exception. *)
end
