(** A shared fetch&increment counter as a first-class value, so every
    counting method (MCS, combining tree, diffracting tree, bitonic
    network) plugs into every benchmark — in particular into the
    Figure-5 centralized pool, whose head/tail counters define the
    paper's "MCS" / "Ctree-n" / "Dtree" produce-consume methods. *)

type t = { fetch_and_inc : unit -> int }

val fetch_and_inc : t -> int
