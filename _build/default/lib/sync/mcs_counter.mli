(** The paper's "MCS" counting method: one shared counter protected by
    an MCS queue lock.  Constant and small cost when sparse, linear in
    the number of concurrent requests under load. *)

module Make (E : Engine.S) : sig
  type t

  val create : ?initial:int -> ?capacity:int -> unit -> t
  (** [capacity] sizes the underlying MCS lock (see {!Mcs_lock}). *)

  val fetch_and_inc : t -> int

  val as_counter : t -> Counter.t
end
