(* A software combining tree for fetch&increment — the paper's "Ctree-n"
   method, following the protocol of Goodman, Vernon & Woest [10] as
   modified in [11]; the concrete state machine is the classic five-state
   formulation (IDLE / FIRST / SECOND / RESULT / ROOT) of that protocol.

   Processors climb from a private leaf (two processors share each leaf)
   toward the root.  The first processor to reach a node continues and
   carries the node's combined total; the second deposits its request at
   the node and waits for the first to bring the answer back down.  With
   n processors the optimal width is n/2 leaves, giving 2 log n node
   visits per operation (up and down) — logarithmic latency, and
   combining absorbs contention under load.

   Each node is a little monitor: a test-and-set lock plus condition
   re-check loops (the original protocol's wait/notify, realized by
   release-delay-reacquire polling, which is how spin monitors are built
   on machines without blocking primitives). *)

module Make (E : Engine.S) = struct
  module Lock = Tas_lock.Make (E)

  type status = Idle | First | Second | Result | Root

  type node = {
    monitor : Lock.t;
    status : status E.cell;
    locked : bool E.cell;
    first_value : int E.cell;
    second_value : int E.cell;
    result : int E.cell;
    parent : int; (* index in [nodes]; -1 for the root *)
  }

  type t = {
    nodes : node array; (* heap layout: root at 0 *)
    width : int;        (* number of leaves (power of two) *)
  }

  let is_power_of_two w = w > 0 && w land (w - 1) = 0

  let create ?(initial = 0) ~width () =
    if not (is_power_of_two width) then
      invalid_arg "Combining_tree.create: width must be a power of two";
    let n = (2 * width) - 1 in
    let nodes =
      Array.init n (fun i ->
          {
            monitor = Lock.create ();
            status = E.cell (if i = 0 then Root else Idle);
            locked = E.cell false;
            first_value = E.cell 0;
            second_value = E.cell 0;
            result = E.cell (if i = 0 then initial else 0);
            parent = (if i = 0 then -1 else (i - 1) / 2);
          })
    in
    { nodes; width }

  (* Monitor-style wait: poll [cond] under the node's lock, releasing it
     between checks so the partner can make progress. *)
  let wait_until node cond =
    let rec poll () =
      if cond () then ()
      else begin
        Lock.release node.monitor;
        E.delay 4;
        Lock.acquire node.monitor;
        poll ()
      end
    in
    poll ()

  (* Phase 1 helper: returns true if the caller is first at [node] and
     should keep climbing. *)
  let precombine node =
    Lock.acquire node.monitor;
    (* With the optimal width (two processors per leaf) a node is never
       seen in SECOND/RESULT here; with narrower trees a late third
       arrival must also wait out the current pair. *)
    wait_until node (fun () ->
        (not (E.get node.locked))
        &&
        match E.get node.status with
        | Idle | First | Root -> true
        | Second | Result -> false);
    let continue_up =
      match E.get node.status with
      | Idle ->
          E.set node.status First;
          true
      | First ->
          (* We are the second to arrive: lock the node so the first
             cannot combine past us before we deposit our value. *)
          E.set node.locked true;
          E.set node.status Second;
          false
      | Root -> false
      | Second | Result -> assert false
    in
    Lock.release node.monitor;
    continue_up

  (* Phase 2 helper: fold our accumulated [combined] into [node]. *)
  let combine node combined =
    Lock.acquire node.monitor;
    wait_until node (fun () -> not (E.get node.locked));
    E.set node.locked true;
    E.set node.first_value combined;
    let total =
      match E.get node.status with
      | First -> combined
      | Second -> combined + E.get node.second_value
      | Idle | Result | Root -> assert false
    in
    Lock.release node.monitor;
    total

  (* Phase 3: apply the combined increment at the stop node. *)
  let op node combined =
    Lock.acquire node.monitor;
    let prior =
      match E.get node.status with
      | Root ->
          let prior = E.get node.result in
          E.set node.result (prior + combined);
          prior
      | Second ->
          E.set node.second_value combined;
          (* Unleash the first processor's combine at this node. *)
          E.set node.locked false;
          wait_until node (fun () -> E.get node.status = Result);
          E.set node.locked false;
          E.set node.status Idle;
          E.get node.result
      | Idle | First | Result -> assert false
    in
    Lock.release node.monitor;
    prior

  (* Phase 4: walk back down handing out results. *)
  let distribute node prior =
    Lock.acquire node.monitor;
    (match E.get node.status with
    | First ->
        E.set node.status Idle;
        E.set node.locked false
    | Second ->
        E.set node.result (prior + E.get node.first_value);
        E.set node.status Result
    | Idle | Result | Root -> assert false);
    Lock.release node.monitor

  let leaf_of t pid = t.nodes.((t.width - 1) + (pid / 2) mod t.width)

  let fetch_and_inc t =
    let my_leaf = leaf_of t (E.pid ()) in
    (* Precombining phase: claim FIRST slots upward until we are second
       somewhere (or hit the root). *)
    let rec climb node =
      if precombine node then climb t.nodes.(node.parent) else node
    in
    let stop = climb my_leaf in
    (* Combining phase: gather increments along the same path. *)
    let rec gather node combined visited =
      if node == stop then (combined, visited)
      else
        let combined = combine node combined in
        gather t.nodes.(node.parent) combined (node :: visited)
    in
    let combined, visited = gather my_leaf 1 [] in
    let prior = op stop combined in
    (* Distribution phase: most recently combined node first. *)
    let rec scatter prior = function
      | [] -> ()
      | node :: rest ->
          distribute node prior;
          scatter prior rest
    in
    scatter prior visited;
    prior

  let as_counter t : Counter.t = { fetch_and_inc = (fun () -> fetch_and_inc t) }
end
