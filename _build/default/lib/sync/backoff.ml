(* Randomized exponential backoff, engine-parametric.

   Used by the test-and-set lock and by retry loops in the pools.  The
   delay is drawn uniformly from [1, cur] and [cur] doubles up to [max],
   the classic contention-decoupling scheme. *)

module Make (E : Engine.S) = struct
  type t = { mutable cur : int; max : int }

  let create ?(init = 2) ?(max = 256) () =
    if init < 1 || max < init then invalid_arg "Backoff.create";
    { cur = init; max }

  let reset ?(init = 2) t = t.cur <- init

  let once t =
    E.delay (1 + E.random_int t.cur);
    let doubled = t.cur * 2 in
    t.cur <- (if doubled > t.max then t.max else doubled)
end
