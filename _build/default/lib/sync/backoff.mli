(** Randomized exponential backoff: delays drawn uniformly from
    [[1, cur]] with [cur] doubling up to a cap. *)

module Make (E : Engine.S) : sig
  type t

  val create : ?init:int -> ?max:int -> unit -> t
  (** Defaults: [init = 2], [max = 256].  Raises [Invalid_argument] if
      [init < 1] or [max < init]. *)

  val reset : ?init:int -> t -> unit

  val once : t -> unit
  (** Wait once, then double the window. *)
end
