(* A shared fetch&increment counter, as a first-class value.

   The paper's Figure-5 pool is parameterized by the counter used for
   its head and tail pointers ("MCS", "Ctree-n", "Dtree-32"); passing
   counters as values lets every counting method plug into every
   benchmark without a functor per combination. *)

type t = { fetch_and_inc : unit -> int }

let fetch_and_inc t = t.fetch_and_inc ()
