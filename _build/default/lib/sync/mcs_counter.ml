(* The paper's "MCS" counting method: a single shared counter protected
   by an MCS queue lock.  Response time is linear in the number of
   concurrent requests (every increment is serialized through the lock),
   but constant and small when access is sparse — which is exactly the
   regime where it wins in Figures 7-10. *)

module Make (E : Engine.S) = struct
  module Lock = Mcs_lock.Make (E)

  type t = { lock : Lock.t; value : int E.cell }

  let create ?(initial = 0) ?capacity () =
    { lock = Lock.create ?capacity (); value = E.cell initial }

  let fetch_and_inc t =
    Lock.acquire t.lock;
    let v = E.get t.value in
    E.set t.value (v + 1);
    Lock.release t.lock;
    v

  let as_counter t : Counter.t = { fetch_and_inc = (fun () -> fetch_and_inc t) }
end
