(* A bare hardware fetch&add on one location.

   Not one of the paper's methods (Alewife had no combining fetch&add);
   included as an ablation showing the hot-spot ceiling: all requests
   serialize at one location, so throughput saturates at
   1 / rmw_latency regardless of processor count. *)

module Make (E : Engine.S) = struct
  type t = int E.cell

  let create ?(initial = 0) () : t = E.cell initial
  let fetch_and_inc t = E.fetch_and_add t 1
  let as_counter t : Counter.t = { fetch_and_inc = (fun () -> fetch_and_inc t) }
end
