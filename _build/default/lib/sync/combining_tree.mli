(** A software combining tree for fetch&increment — the paper's
    "Ctree-n" method, after Goodman, Vernon & Woest [10] as modified in
    [11].  Processors climb from a private leaf; the second arrival at
    a node deposits its request for the first to carry upward, giving
    2·log n node visits per operation and contention absorption under
    load.  Optimal width is n/2 leaves for n processors (two per
    leaf). *)

module Make (E : Engine.S) : sig
  type t

  val create : ?initial:int -> width:int -> unit -> t
  (** [width] is the number of leaves; must be a power of two.  More
      than two processors per leaf is tolerated (late arrivals wait out
      the current pair). *)

  val fetch_and_inc : t -> int

  val as_counter : t -> Counter.t
end
