(* Anderson's array-based queue lock [2] — the other queue-lock-based
   pool construction cited in the paper's introduction.

   A fetch&add ticket indexes a circular array of "has lock" flags; each
   waiter spins on its own slot, and release sets the next slot.  Same
   FIFO behaviour as MCS with simpler state, but the array must be sized
   to the maximum number of concurrent waiters, and on real machines the
   slots should be padded to distinct cache lines (the engines model
   each cell as its own location, which is the padded layout). *)

module Make (E : Engine.S) = struct
  type t = {
    flags : bool E.cell array;
    next_ticket : int E.cell;
    my_slot : int array; (* per-processor slot, written under the lock *)
  }

  let create ?capacity () =
    let capacity =
      match capacity with Some c -> c | None -> E.nprocs ()
    in
    if capacity < 1 then invalid_arg "Anderson_lock.create";
    {
      flags = Array.init capacity (fun i -> E.cell (i = 0));
      next_ticket = E.cell 0;
      my_slot = Array.make capacity 0;
    }

  let acquire t =
    let n = Array.length t.flags in
    let slot = E.fetch_and_add t.next_ticket 1 mod n in
    t.my_slot.(E.pid ()) <- slot;
    while not (E.get t.flags.(slot)) do
      E.cpu_relax ()
    done

  let release t =
    let n = Array.length t.flags in
    let slot = t.my_slot.(E.pid ()) in
    E.set t.flags.(slot) false;
    E.set t.flags.((slot + 1) mod n) true

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
