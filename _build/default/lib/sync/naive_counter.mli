(** A bare hardware fetch&add on one location — not one of the paper's
    methods (Alewife had no combining fetch&add), included as the
    hot-spot ablation: throughput saturates at [1 / rmw_latency]
    regardless of processor count. *)

module Make (E : Engine.S) : sig
  type t

  val create : ?initial:int -> unit -> t
  val fetch_and_inc : t -> int
  val as_counter : t -> Counter.t
end
