(** A test-and-test-and-set lock with randomized exponential backoff.
    Cheap under low contention and unfair under high contention; used
    as the per-node monitor lock of the combining tree and as a
    contrast baseline in the lock tests. *)

module Make (E : Engine.S) : sig
  type t

  val create : unit -> t

  val acquire : t -> unit

  val try_acquire : t -> bool
  (** One attempt; true on success. *)

  val release : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
end
