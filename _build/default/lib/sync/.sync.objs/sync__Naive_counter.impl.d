lib/sync/naive_counter.ml: Counter Engine
