lib/sync/combining_tree.ml: Array Counter Engine Tas_lock
