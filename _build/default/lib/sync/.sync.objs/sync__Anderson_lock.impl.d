lib/sync/anderson_lock.ml: Array Engine
