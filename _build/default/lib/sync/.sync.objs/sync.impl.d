lib/sync/sync.ml: Anderson_lock Backoff Combining_tree Counter Mcs_counter Mcs_lock Naive_counter Tas_lock
