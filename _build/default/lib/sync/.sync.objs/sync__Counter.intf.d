lib/sync/counter.mli:
