lib/sync/mcs_counter.mli: Counter Engine
