lib/sync/anderson_lock.mli: Engine
