lib/sync/mcs_lock.mli: Engine
