lib/sync/backoff.ml: Engine
