lib/sync/mcs_lock.ml: Array Engine
