lib/sync/tas_lock.ml: Backoff Engine
