lib/sync/naive_counter.mli: Counter Engine
