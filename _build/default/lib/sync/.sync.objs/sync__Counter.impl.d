lib/sync/counter.ml:
