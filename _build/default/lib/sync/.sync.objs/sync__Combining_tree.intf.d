lib/sync/combining_tree.mli: Counter Engine
