lib/sync/tas_lock.mli: Engine
