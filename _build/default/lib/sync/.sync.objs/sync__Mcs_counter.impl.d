lib/sync/mcs_counter.ml: Counter Engine Mcs_lock
