lib/sync/backoff.mli: Engine
