(** Anderson's array-based queue lock [2]: a fetch&add ticket indexes a
    circular array of flags, each waiter spinning on its own slot.
    FIFO like MCS; the array must cover the maximum number of
    concurrent waiters. *)

module Make (E : Engine.S) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] bounds concurrent waiters (default [E.nprocs ()]). *)

  val acquire : t -> unit
  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end
