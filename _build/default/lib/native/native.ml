(** The full library instantiated on the native OCaml 5 engine
    ([Atomic] cells, [Domain] processors): ready-to-use concurrent
    structures.

    Before creating any structure, size the engine to the number of
    domains that will participate:
    {[
      Engine.Native.set_capacity 8;
      let pool = Native.Elim_pool.create ~capacity:8 ~width:4 () in
      ...
    ]}

    Every module here is the corresponding functor applied to
    {!Engine.Native}; see the functor for semantics and references into
    the paper. *)

module E = Engine.Native

(* The paper's contribution. *)
module Elim_balancer = Core.Elim_balancer.Make (E)
module Elim_tree = Core.Elim_tree.Make (E)
module Elim_pool = Core.Elim_pool.Make (E)
module Elim_stack = Core.Elim_stack.Make (E)
module Inc_dec_counter = Core.Inc_dec_counter.Make (E)

(* Synchronization substrate. *)
module Backoff = Sync.Backoff.Make (E)
module Mcs_lock = Sync.Mcs_lock.Make (E)
module Tas_lock = Sync.Tas_lock.Make (E)
module Anderson_lock = Sync.Anderson_lock.Make (E)
module Mcs_counter = Sync.Mcs_counter.Make (E)
module Naive_counter = Sync.Naive_counter.Make (E)
module Combining_tree = Sync.Combining_tree.Make (E)

(* Pools and baselines. *)
module Local_pool = Pools.Local_pool.Make (E)
module Diff_tree = Baselines.Diff_tree.Make (E)
module Central_pool = Baselines.Central_pool.Make (E)
module Rsu = Baselines.Rsu.Make (E)
module Bitonic_network = Baselines.Bitonic_network.Make (E)
module Work_stealing = Baselines.Work_stealing.Make (E)

(* Extensions (see the [extras] library). *)
module Treiber_stack = Extras.Treiber_stack.Make (E)
module Exchanger = Extras.Exchanger.Make (E)
module Eb_stack = Extras.Eb_stack.Make (E)
