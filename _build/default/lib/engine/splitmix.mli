(** Splitmix64 pseudo-random number generator (Steele, Lea & Flood,
    OOPSLA 2014).

    Deterministic per seed — the simulator relies on this for
    reproducible experiments — with cheap derivation of decorrelated
    per-processor streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> index:int -> t
(** [split base ~index] derives an independent stream for stream
    [index] without advancing [base]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> num:int -> den:int -> bool
(** [bernoulli t ~num ~den] is true with probability [num/den]
    (clamped to [\[0,1\]]).  Raises [Invalid_argument] if [den <= 0]. *)
