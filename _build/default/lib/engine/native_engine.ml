(* The native engine: OCaml 5 domains and atomics.

   Cells are ['a Atomic.t]; processor identifiers are dense integers
   handed out on each domain's first use through domain-local storage.
   [capacity] bounds how many distinct domains may participate — it sizes
   the per-processor arrays inside the data structures, so it must be set
   (or left at its default of 128) before any structure is built. *)

type 'a cell = 'a Atomic.t

let cell = Atomic.make
let get = Atomic.get
let set = Atomic.set
let exchange = Atomic.exchange
let compare_and_set = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add

let capacity = Atomic.make 128

let set_capacity n =
  if n <= 0 then invalid_arg "Native_engine.set_capacity";
  Atomic.set capacity n

let nprocs () = Atomic.get capacity

let next_pid = Atomic.make 0

(* Retired processor ids, reusable by later domains.  Domains are often
   short-lived; without recycling a long-running program would exhaust
   [capacity].  A Treiber-style list of free ids. *)
let free_pids : int list Atomic.t = Atomic.make []

let rec take_free_pid () =
  match Atomic.get free_pids with
  | [] -> None
  | p :: rest as old ->
      if Atomic.compare_and_set free_pids old rest then Some p
      else take_free_pid ()

let pid_key =
  Domain.DLS.new_key (fun () ->
      match take_free_pid () with
      | Some p -> p
      | None -> Atomic.fetch_and_add next_pid 1)

let pid () =
  let p = Domain.DLS.get pid_key in
  if p >= Atomic.get capacity then
    failwith "Native_engine: more domains than the configured capacity";
  p

(* Return the calling domain's processor id to the free pool.  Call this
   as the last engine operation before the domain exits; using any
   structure afterwards from the same domain would alias a live id. *)
let rec release_pid () =
  let p = Domain.DLS.get pid_key in
  let old = Atomic.get free_pids in
  if not (Atomic.compare_and_set free_pids old (p :: old)) then release_pid ()

let seed = Atomic.make 0x9E3779B9

let set_seed s = Atomic.set seed s

let rng_key =
  Domain.DLS.new_key (fun () ->
      let base = Splitmix.of_int (Atomic.get seed) in
      Splitmix.split base ~index:(Domain.DLS.get pid_key))

let random_int n = Splitmix.int (Domain.DLS.get rng_key) n

let random_bernoulli ~num ~den =
  Splitmix.bernoulli (Domain.DLS.get rng_key) ~num ~den

let cpu_relax = Domain.cpu_relax

let delay n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* Monotonic-ish clock in nanoseconds.  [Sys.time] has coarse resolution
   but the native engine only uses [now] for workload cut-offs, never for
   measurement — benchmarks are timed by Bechamel. *)
let now () = int_of_float (Sys.time () *. 1e9)
