(** The native execution engine: OCaml 5 [Atomic] cells and [Domain]
    processors.  Implements {!Sig_.S}; see that signature for the
    semantics of each operation.

    Processor identifiers are dense integers handed out on each
    domain's first engine operation and recycled via {!release_pid}.
    {!set_capacity} bounds how many domains may participate at once and
    must be called before building any structure (it sizes their
    per-processor arrays). *)

include Sig_.S with type 'a cell = 'a Atomic.t

val set_capacity : int -> unit
(** [set_capacity n] declares that at most [n] domains will use the
    engine simultaneously.  Default 128.  Raises [Invalid_argument] on
    non-positive [n]. *)

val set_seed : int -> unit
(** Seed for the per-domain random streams (affects domains that have
    not yet drawn). *)

val release_pid : unit -> unit
(** Return the calling domain's processor id to the free pool; call as
    the last engine operation before the domain exits.  Using any
    engine-based structure from the same domain afterwards would alias
    a potentially live id. *)
