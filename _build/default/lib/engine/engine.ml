(** Execution engines for the elimination-tree library.

    The concurrent algorithms in this repository are functors over
    {!module-type:S}, the small set of shared-memory primitives the paper
    assumes of its hardware.  Two engines implement it:

    - {!Native}: OCaml 5 [Atomic] cells and [Domain] processors — the
      engine behind the reusable library;
    - [Sim.Engine] (in the [sim] library): a deterministic discrete-event
      multiprocessor simulator used to reproduce the paper's
      256-processor Proteus/Alewife experiments.

    {!Splitmix} is the deterministic PRNG shared by both engines. *)

module type S = Sig_.S
(** Shared-memory engine interface; see {!Sig_.S} for per-item docs. *)

module Native = Native_engine
(** The native OCaml 5 engine ([Atomic] + [Domain]). *)

module Splitmix = Splitmix
(** Splitmix64 deterministic PRNG with independent streams. *)
