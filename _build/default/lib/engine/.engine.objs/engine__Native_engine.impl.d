lib/engine/native_engine.ml: Atomic Domain Splitmix Sys
