lib/engine/engine.ml: Native_engine Sig_ Splitmix
