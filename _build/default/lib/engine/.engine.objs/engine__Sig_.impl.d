lib/engine/sig_.ml:
