lib/engine/splitmix.ml: Int64
