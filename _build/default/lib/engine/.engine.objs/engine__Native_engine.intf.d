lib/engine/native_engine.mli: Atomic Sig_
