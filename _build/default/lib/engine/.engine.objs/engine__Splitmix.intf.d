lib/engine/splitmix.mli:
