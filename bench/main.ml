(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation on the simulator, plus Bechamel micro-benchmarks
   of the native structures.

     dune exec bench/main.exe                 -- everything, default scale
     dune exec bench/main.exe -- fig7 fig9    -- selected experiments
     dune exec bench/main.exe -- --quick all  -- reduced scale
     dune exec bench/main.exe -- --full all   -- the paper's 10^6 cycles

   Experiments: fig7 fig8 table1 fig9 fig10 chaos service adapt ablate
   extra native all
   (see DESIGN.md §3 for the experiment index, EXPERIMENTS.md for
   paper-vs-measured).  With [--json], experiments that support it also
   write machine-readable BENCH_<experiment>.json point files.

   Tracing (docs/TRACING.md): [--trace] adds a traced fig7 run of the
   elimination tree at the largest processor count, printing its
   cycle-attribution table and embedding it in BENCH_fig7.json;
   [--trace-out FILE] additionally writes the run's Chrome trace-event
   JSON (rendered at [--trace-level], default events) for
   ui.perfetto.dev. *)

module W = Workloads
module R = W.Report

type scale = { horizon : int; counts : int list; rt_total : int }

let default_scale =
  {
    horizon = 200_000;
    counts = [ 2; 4; 8; 16; 32; 64; 128; 256 ];
    rt_total = 2_560;
  }

let quick_scale =
  { horizon = 50_000; counts = [ 4; 16; 64; 256 ]; rt_total = 640 }

let full_scale = { default_scale with horizon = 1_000_000 }

let progress fmt =
  Printf.ksprintf
    (fun s ->
      prerr_string ("# " ^ s ^ "\n");
      flush stderr)
    fmt

let method_name make = (make ~procs:2).W.Pool_obj.name
let counter_name make = (make ~procs:2).W.Pool_obj.cname

(* Workload runs below use the library default seed; recorded in each
   meta block so DB rows are comparable. *)
let run_seed = 1

(* Verdict failures (conservation FAILs, attribution books that don't
   balance) collect here and turn the whole bench run's exit status
   non-zero, so CI can't silently pass a broken quick bench. *)
let failures : string list ref = ref []

let record_failure fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "bench: FAIL %s\n%!" s;
      failures := s :: !failures)
    fmt

(* --json: machine-readable BENCH_<experiment>.json next to the text
   tables.  Every report carries a "meta" block from the [probe]
   started when its experiment began — provenance, Gc cost and the
   simulator's event/op odometer (docs/BENCHDB.md); the "# host" line
   is rendered from the same record, so stdout and JSON cannot
   disagree. *)
let json_flag = ref false

let emit_json ?(extra = []) ~experiment ~probe points =
  let meta = R.Meta.stop probe ~experiment ~seed:run_seed in
  progress "%s" (R.Meta.host_line meta);
  if !json_flag then begin
    let file = Printf.sprintf "BENCH_%s.json" experiment in
    R.write_json ~file
      (R.Obj
         ([
            ("experiment", R.Str experiment);
            ("meta", R.Meta.json meta);
            ("points", R.Arr points);
          ]
         @ extra));
    progress "wrote %s" file
  end

let mem_fields (s : Sim.stats) =
  [
    ("reads", R.Int s.Sim.reads);
    ("writes", R.Int s.Sim.writes);
    ("rmws", R.Int s.Sim.rmws);
    ("events", R.Int s.Sim.events_fired);
    ("end_clock", R.Int s.Sim.end_clock);
    ("crashed_procs", R.Int s.Sim.crashed_procs);
    ("fault_defers", R.Int s.Sim.fault_defers);
    ("queue_wait_cycles", R.Int s.Sim.queue_wait_cycles);
  ]

(* --trace: traced fig7 run with cycle attribution (docs/TRACING.md). *)
let trace_flag = ref false
let trace_out : string option ref = ref None
let trace_level = ref Etrace.Level.Events

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: produce-consume                                    *)
(* ------------------------------------------------------------------ *)

let produce_consume_tables ?(races = false) ~scale ~workload () =
  let methods = W.Methods.produce_consume_methods in
  let columns = List.map method_name methods in
  let series =
    List.map
      (fun make ->
        progress "produce-consume W=%d: %s" workload (method_name make);
        W.Produce_consume.sweep ~horizon:scale.horizon ~workload ~races
          ~proc_counts:scale.counts make)
      methods
  in
  let row_of f procs =
    ( string_of_int procs,
      List.map
        (fun points ->
          let p =
            List.find (fun p -> p.W.Produce_consume.procs = procs) points
          in
          f p)
        series )
  in
  let throughput =
    R.table
      ~title:
        (Printf.sprintf
           "Produce-Consume, Workload=%d: throughput (ops per 10^6 cycles)"
           workload)
      ~row_label:"procs" ~columns
      (List.map
         (row_of (fun p -> R.int_ p.W.Produce_consume.throughput_per_m))
         scale.counts)
  in
  let latency =
    R.table
      ~title:
        (Printf.sprintf
           "Produce-Consume, Workload=%d: average latency (cycles/op)"
           workload)
      ~row_label:"procs" ~columns
      (List.map
         (row_of (fun p -> R.float1 p.W.Produce_consume.latency))
         scale.counts)
  in
  let json =
    List.concat
      (List.map2
         (fun make points ->
           let name = method_name make in
           List.map
             (fun (p : W.Produce_consume.point) ->
               R.Obj
                 ([
                    ("method", R.Str name);
                    ("workload", R.Int workload);
                    ("procs", R.Int p.W.Produce_consume.procs);
                    ( "throughput_per_m",
                      R.Int p.W.Produce_consume.throughput_per_m );
                    ("latency", R.Float p.W.Produce_consume.latency);
                    ("latency_hist", R.histogram_json p.W.Produce_consume.lat);
                    ("ops", R.Int p.W.Produce_consume.ops);
                    ( "elim_rate",
                      R.opt
                        (fun r -> R.Float r)
                        p.W.Produce_consume.elim_rate );
                    ( "races",
                      R.opt (fun n -> R.Int n) p.W.Produce_consume.races );
                  ]
                 @ mem_fields p.W.Produce_consume.mem))
             points)
         methods series)
  in
  (throughput ^ "\n" ^ latency, json)

(* The traced fig7 run: the elimination tree at the largest processor
   count, under the attribution sink (and the Chrome exporter when
   [--trace-out] was given).  Returns the attribution summary for the
   JSON report. *)
let traced_fig7 scale =
  let procs = List.fold_left max 2 scale.counts in
  progress "fig7 traced: etree @ %d procs (level %s)" procs
    (Etrace.Level.to_string !trace_level);
  let chrome_level =
    match !trace_out with Some _ -> Some !trace_level | None -> None
  in
  let tr =
    W.Traced.run ?chrome_level ~procs (fun () ->
        W.Produce_consume.run ~horizon:scale.horizon ~workload:0 ~procs
          (fun ~procs -> W.Methods.etree_pool ~procs ()))
  in
  print_string
    (R.attribution_table
       ~title:
         (Printf.sprintf "Cycle attribution: etree, W=0, %d procs" procs)
       tr.W.Traced.attribution);
  print_newline ();
  (match (tr.W.Traced.chrome, !trace_out) with
  | Some c, Some file -> (
      Etrace.Chrome.write ~file c;
      match Etrace.Chrome.validate_file file with
      | Ok st ->
          progress "wrote %s (%d events, %d tracks)" file st.Etrace.Chrome.events
            st.Etrace.Chrome.tracks
      | Error e ->
          Printf.eprintf "bench: %s fails trace validation: %s\n" file e;
          exit 1)
  | _ -> ());
  tr.W.Traced.attribution

let fig7 scale =
  print_string "== Figure 7: produce-consume, Workload = 0 ==\n\n";
  let probe = R.Meta.start () in
  let text, json = produce_consume_tables ~races:true ~scale ~workload:0 () in
  print_string text;
  print_newline ();
  let extra =
    if !trace_flag then begin
      let attribution = traced_fig7 scale in
      if not (Etrace.Attribution.check attribution) then
        record_failure "fig7: attribution books do not balance (%d/%d cycles)"
          attribution.Etrace.Attribution.attributed_cycles
          attribution.Etrace.Attribution.total_cycles;
      [ ("attribution", R.attribution_json attribution) ]
    end
    else []
  in
  emit_json ~extra ~experiment:"fig7" ~probe json

let fig8 scale =
  print_string "== Figure 8: produce-consume, Workload > 0 ==\n";
  print_string
    "(the paper's exact non-zero workload constants are illegible in the\n\
    \ available text; 1000/4000/16000 preserve the reported regimes)\n\n";
  let probe = R.Meta.start () in
  let json =
    List.concat_map
      (fun workload ->
        let text, json = produce_consume_tables ~scale ~workload () in
        print_string text;
        print_newline ();
        json)
      [ 1_000; 4_000; 16_000 ]
  in
  emit_json ~experiment:"fig8" ~probe json

(* ------------------------------------------------------------------ *)
(* Table 1: elimination fractions per level                            *)
(* ------------------------------------------------------------------ *)

let table1 scale =
  print_string
    "== Table 1: fraction of tokens eliminated per tree level ==\n\n";
  let run procs =
    progress "table1: %d procs" procs;
    W.Table1.run ~horizon:scale.horizon ~procs ()
  in
  let r16 = run 16 and r256 = run 256 in
  let rows =
    List.map2
      (fun (a : W.Table1.level_row) (b : W.Table1.level_row) ->
        ( Printf.sprintf "level %d" a.W.Table1.level,
          [ R.percent a.W.Table1.fraction; R.percent b.W.Table1.fraction ] ))
      r16.W.Table1.rows r256.W.Table1.rows
  in
  print_string
    (R.table ~title:"Etree-32 on produce-consume (W=0)" ~row_label:"level"
       ~columns:[ "16 procs"; "256 procs" ]
       rows);
  Printf.printf
    "\n\
     expected nodes traversed (incl. leaf): %.2f @16 procs, %.2f @256 procs\n\
     requests reaching leaf pools:          %s @16 procs, %s @256 procs\n\n"
    r16.W.Table1.expected_nodes r256.W.Table1.expected_nodes
    (R.percent r16.W.Table1.leaf_fraction)
    (R.percent r256.W.Table1.leaf_fraction)

(* ------------------------------------------------------------------ *)
(* Figure 9: counting benchmark                                        *)
(* ------------------------------------------------------------------ *)

let fig9 scale =
  print_string "== Figure 9: counting benchmark (fetch&increment loop) ==\n\n";
  let probe = R.Meta.start () in
  let methods = W.Methods.counting_methods in
  let columns = List.map counter_name methods in
  let series =
    List.map
      (fun make ->
        progress "counting: %s" (counter_name make);
        W.Counting.sweep ~horizon:scale.horizon ~proc_counts:scale.counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p = List.find (fun p -> p.W.Counting.procs = procs) points in
              R.int_ p.W.Counting.throughput_per_m)
            series ))
      scale.counts
  in
  print_string
    (R.table ~title:"Throughput (fetch&inc per 10^6 cycles)"
       ~row_label:"procs" ~columns rows);
  print_newline ();
  emit_json ~experiment:"fig9" ~probe
    (List.concat
       (List.map2
          (fun make points ->
            let name = counter_name make in
            List.map
              (fun (p : W.Counting.point) ->
                R.Obj
                  ([
                     ("method", R.Str name);
                     ("procs", R.Int p.W.Counting.procs);
                     ("throughput_per_m", R.Int p.W.Counting.throughput_per_m);
                   ]
                  @ mem_fields p.W.Counting.mem))
              points)
          methods series))

(* ------------------------------------------------------------------ *)
(* Figure 10: 10-queens and response time                              *)
(* ------------------------------------------------------------------ *)

let fig10 scale =
  print_string "== Figure 10 (left): 10-queens job distribution ==\n\n";
  let probe = R.Meta.start () in
  let methods = W.Methods.distribution_methods in
  let columns = List.map method_name methods in
  let counts = scale.counts in
  let series =
    List.map
      (fun make ->
        progress "queens: %s" (method_name make);
        W.Queens.sweep ~proc_counts:counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p = List.find (fun p -> p.W.Queens.procs = procs) points in
              R.int_ p.W.Queens.elapsed)
            series ))
      counts
  in
  print_string
    (R.table ~title:"Elapsed cycles until all 1110 tasks consumed"
       ~row_label:"procs" ~columns rows);
  print_newline ();
  let queens_json =
    List.concat
      (List.map2
         (fun make points ->
           let name = method_name make in
           List.map
             (fun (p : W.Queens.point) ->
               R.Obj
                 [
                   ("kind", R.Str "queens");
                   ("method", R.Str name);
                   ("procs", R.Int p.W.Queens.procs);
                   ("elapsed", R.Int p.W.Queens.elapsed);
                   ("consumed", R.Int p.W.Queens.consumed);
                 ])
             points)
         methods series)
  in
  print_string "== Figure 10 (right): response time (sparse handoff) ==\n\n";
  let rt_counts = List.filter (fun n -> n mod 2 = 0) scale.counts in
  let series =
    List.map
      (fun make ->
        progress "response-time: %s" (method_name make);
        W.Response_time.sweep ~total:scale.rt_total ~proc_counts:rt_counts
          make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p =
                List.find (fun p -> p.W.Response_time.procs = procs) points
              in
              R.float1 p.W.Response_time.normalized)
            series ))
      rt_counts
  in
  print_string
    (R.table
       ~title:
         (Printf.sprintf
            "Elapsed time until %d elements consumed, normalized per dequeue"
            scale.rt_total)
       ~row_label:"procs" ~columns rows);
  print_newline ();
  let rt_rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p =
                List.find (fun p -> p.W.Response_time.procs = procs) points
              in
              R.latency_cell p.W.Response_time.rt)
            series ))
      rt_counts
  in
  print_string
    (R.table
       ~title:"Per-element response time, p50/p90/p99 (cycles)"
       ~row_label:"procs" ~columns rt_rows);
  print_newline ();
  emit_json ~experiment:"fig10" ~probe
    (queens_json
    @ List.concat
        (List.map2
           (fun make points ->
             let name = method_name make in
             List.map
               (fun (p : W.Response_time.point) ->
                 R.Obj
                   [
                     ("kind", R.Str "response_time");
                     ("method", R.Str name);
                     ("procs", R.Int p.W.Response_time.procs);
                     ("elapsed", R.Int p.W.Response_time.elapsed);
                     ("normalized", R.Float p.W.Response_time.normalized);
                     ("consumed", R.Int p.W.Response_time.consumed);
                     ("response_time", R.histogram_json p.W.Response_time.rt);
                   ])
               points)
           methods series))

(* ------------------------------------------------------------------ *)
(* Chaos: the etrees.faults robustness sweep                           *)
(* ------------------------------------------------------------------ *)

let chaos_point_json ~level ~label (p : W.Chaos.point) =
  R.Obj
    ([
       ("method", R.Str p.W.Chaos.method_name);
       ("procs", R.Int p.W.Chaos.procs);
       ("fault_level", R.Int level);
       ("fault_label", R.Str label);
       ("plan", R.Str p.W.Chaos.plan);
       ("throughput_per_m", R.Int p.W.Chaos.throughput_per_m);
       ("latency", R.Float p.W.Chaos.latency);
       ("ops", R.Int p.W.Chaos.ops);
       ("started", R.Int p.W.Chaos.started);
       ("elim_rate", R.opt (fun r -> R.Float r) p.W.Chaos.elim_rate);
       ("races", R.opt (fun n -> R.Int n) p.W.Chaos.races);
       ("starved", R.Int p.W.Chaos.starved);
       ("crashed", R.Int p.W.Chaos.crashed);
       ("stuck", R.Int p.W.Chaos.stuck);
       ( "conservation_ok",
         R.Bool p.W.Chaos.conservation.Analysis.Conservation.ok );
       ( "conservation",
         R.Str p.W.Chaos.conservation.Analysis.Conservation.detail );
       ( "termination_ok",
         R.Bool p.W.Chaos.termination.Faults.Termination.ok );
       ( "termination",
         R.Str (Faults.Termination.format p.W.Chaos.termination) );
     ]
    @ mem_fields p.W.Chaos.mem)

let chaos scale =
  print_string
    "== Chaos: degradation under deterministic fault plans (etrees.faults) \
     ==\n\n";
  let probe = R.Meta.start () in
  let procs = 64 and fault_seed = 7 in
  progress "chaos: procs=%d fault-seed=%d" procs fault_seed;
  let levels =
    W.Chaos.sweep ~fault_seed ~horizon:scale.horizon ~procs ~races:true ()
  in
  List.iter
    (fun (level, label, points) ->
      Printf.printf "-- fault level %d (%s) --\n" level label;
      (match points with
      | p :: _ -> Printf.printf "plan: %s\n" p.W.Chaos.plan
      | [] -> ());
      List.iter (fun p -> print_endline (W.Chaos.format_point p)) points;
      print_newline ())
    levels;
  let columns = List.map (fun (_, label, _) -> label) levels in
  let methods =
    match levels with
    | (_, _, points) :: _ ->
        List.map (fun p -> p.W.Chaos.method_name) points
    | [] -> []
  in
  let cell f name (_, _, points) =
    let p =
      List.find (fun p -> p.W.Chaos.method_name = name) points
    in
    f p
  in
  print_string
    (R.table ~title:"Throughput (ops per 10^6 cycles) vs fault level"
       ~row_label:"method" ~columns
       (List.map
          (fun name ->
            ( name,
              List.map
                (cell (fun p -> R.int_ p.W.Chaos.throughput_per_m) name)
                levels ))
          methods));
  print_newline ();
  print_string
    (R.table
       ~title:
         "Verdicts (conservation / termination bound; see docs/FAULTS.md)"
       ~row_label:"method" ~columns
       (List.map
          (fun name ->
            ( name,
              List.map
                (cell
                   (fun p ->
                     Printf.sprintf "%s/%s"
                       (if p.W.Chaos.conservation.Analysis.Conservation.ok
                        then "PASS"
                        else "FAIL")
                       (if p.W.Chaos.termination.Faults.Termination.ok then
                          "PASS"
                        else "FAIL"))
                   name)
                levels ))
          methods));
  print_newline ();
  List.iter
    (fun (level, label, points) ->
      List.iter
        (fun (p : W.Chaos.point) ->
          if not p.W.Chaos.conservation.Analysis.Conservation.ok then
            record_failure "chaos: conservation @ level %d (%s), %s: %s" level
              label p.W.Chaos.method_name
              p.W.Chaos.conservation.Analysis.Conservation.detail)
        points)
    levels;
  emit_json ~experiment:"chaos" ~probe
    (List.concat_map
       (fun (level, label, points) ->
         List.map (chaos_point_json ~level ~label) points)
       levels)

(* ------------------------------------------------------------------ *)
(* S1: the sharded service frontend (docs/SHARDING.md)                 *)
(* ------------------------------------------------------------------ *)

let service_point_json (p : W.Service.point) =
  R.Obj
    ([
       ("regime", R.Str p.W.Service.regime_name);
       ("regime_detail", R.Str p.W.Service.regime);
       ("shards", R.Int p.W.Service.shards);
       ("steal_probes", R.Int p.W.Service.steal_probes);
       ("policy", R.Str p.W.Service.policy);
       ("procs", R.Int p.W.Service.procs);
       ("width", R.Int p.W.Service.width);
       ("sessions", R.Int p.W.Service.sessions);
       ("requests", R.Int p.W.Service.requests);
       ("completed", R.Int p.W.Service.completed);
       ("starved", R.Int p.W.Service.starved);
       ("throughput_per_m", R.Int p.W.Service.throughput_per_m);
       ("sojourn", R.histogram_json p.W.Service.sojourn);
       ("steal_empty_homes", R.Int p.W.Service.steal_empty_homes);
       ("steal_probed", R.Int p.W.Service.steal_probed);
       ("steal_hits", R.Int p.W.Service.steal_hits);
       ("residue", R.Int p.W.Service.residue);
       ( "residue_by_shard",
         R.Arr (List.map (fun r -> R.Int r) p.W.Service.residue_by_shard) );
       ( "conservation_ok",
         R.Bool p.W.Service.conservation.Analysis.Conservation.ok );
       ( "conservation",
         R.Str p.W.Service.conservation.Analysis.Conservation.detail );
       ( "conservation_by_shard_ok",
         R.Bool
           (List.for_all
              (fun (r : Analysis.Conservation.report) ->
                r.Analysis.Conservation.ok)
              p.W.Service.conservation_by_shard) );
     ]
    @ mem_fields p.W.Service.mem)

let service scale =
  print_string
    "== S1: sharded service frontend, closed-loop sessions \
     (docs/SHARDING.md) ==\n\n";
  let probe = R.Meta.start () in
  (* Session budget by scale: the default sweep simulates >= 1M
     sessions total (6 points x 175k); quick keeps CI fast. *)
  let sessions =
    if scale.horizon < 100_000 then 5_000
    else if scale.horizon > 500_000 then 350_000
    else 175_000
  in
  let shard_counts = [ 1; 8 ] in
  let regimes = W.Service.default_regimes ~mean_gap:800 in
  let points =
    List.concat_map
      (fun regime ->
        List.map
          (fun shards ->
            progress "service: %s shards=%d sessions=%d"
              (W.Arrivals.describe regime) shards sessions;
            W.Service.run ~shards ~sessions ~regime ())
          shard_counts)
      regimes
  in
  List.iter (fun p -> print_endline (W.Service.format_point p)) points;
  print_newline ();
  let columns = List.map string_of_int shard_counts in
  let cell f regime shards =
    let p =
      List.find
        (fun (p : W.Service.point) ->
          p.W.Service.regime_name = W.Arrivals.name regime
          && p.W.Service.shards = shards)
        points
    in
    f p
  in
  print_string
    (R.table
       ~title:"Completed requests per 10^6 cycles vs shard count"
       ~row_label:"regime" ~columns
       (List.map
          (fun regime ->
            ( W.Arrivals.name regime,
              List.map
                (cell (fun p -> R.int_ p.W.Service.throughput_per_m) regime)
                shard_counts ))
          regimes));
  print_newline ();
  print_string
    (R.table ~title:"Sojourn (completion - scheduled arrival), p50/p90/p99 \
                     (cycles)"
       ~row_label:"regime" ~columns
       (List.map
          (fun regime ->
            ( W.Arrivals.name regime,
              List.map
                (cell (fun p -> R.latency_cell p.W.Service.sojourn) regime)
                shard_counts ))
          regimes));
  print_newline ();
  let all_ok =
    List.for_all
      (fun (p : W.Service.point) ->
        p.W.Service.conservation.Analysis.Conservation.ok)
      points
  in
  Printf.printf "conservation (whole frontend, per shard): %s\n\n"
    (if all_ok then "PASS" else "FAIL");
  if not all_ok then
    List.iter
      (fun (p : W.Service.point) ->
        if not p.W.Service.conservation.Analysis.Conservation.ok then
          record_failure "service: conservation @ %s shards=%d: %s"
            p.W.Service.regime_name p.W.Service.shards
            p.W.Service.conservation.Analysis.Conservation.detail)
      points;
  emit_json ~experiment:"service" ~probe (List.map service_point_json points)

(* ------------------------------------------------------------------ *)
(* A1: the adaptive crossover (docs/ADAPTIVE.md)                       *)
(* ------------------------------------------------------------------ *)

let adapt_point_json (p : W.Adapt_sweep.point) =
  R.Obj
    [
      ("method", R.Str p.W.Adapt_sweep.method_name);
      ("reactive", R.Bool p.W.Adapt_sweep.reactive);
      ("workload", R.Int p.W.Adapt_sweep.workload);
      ("procs", R.Int p.W.Adapt_sweep.procs);
      ("throughput_per_m", R.Int p.W.Adapt_sweep.throughput_per_m);
      ("latency", R.Float p.W.Adapt_sweep.latency);
      ("latency_hist", R.histogram_json p.W.Adapt_sweep.lat);
      ("elim_rate", R.opt (fun r -> R.Float r) p.W.Adapt_sweep.elim_rate);
      ( "final_adapt",
        R.opt
          (fun levels ->
            R.Arr
              (List.map
                 (fun level ->
                   R.Arr
                     (List.map
                        (fun (spin, widths) ->
                          R.Obj
                            [
                              ("spin", R.Int spin);
                              ( "widths",
                                R.Arr (List.map (fun w -> R.Int w) widths) );
                            ])
                        level))
                 levels))
          p.W.Adapt_sweep.final_adapt );
    ]

let adapt_exp scale =
  print_string
    "== A1: reactive vs hand-tuned static elimination (docs/ADAPTIVE.md) \
     ==\n\n";
  let probe = R.Meta.start () in
  let procs = List.fold_left max 2 scale.counts in
  (* Load falls as think time grows; trim the axis at quick scale. *)
  let workloads =
    if scale.horizon < 100_000 then [ 0; 2_000; 16_000 ]
    else W.Adapt_sweep.default_workloads
  in
  let specs = W.Adapt_sweep.methods () in
  let series =
    List.map
      (fun (spec : W.Adapt_sweep.method_spec) ->
        progress "adapt: %s @ %d procs" spec.W.Adapt_sweep.label procs;
        List.map
          (fun workload ->
            W.Adapt_sweep.run_point ~horizon:scale.horizon ~procs ~workload
              spec)
          workloads)
      specs
  in
  let columns =
    List.map (fun (s : W.Adapt_sweep.method_spec) -> s.W.Adapt_sweep.label)
      specs
  in
  let row_of f workload =
    ( string_of_int workload,
      List.map
        (fun points ->
          let p =
            List.find
              (fun (p : W.Adapt_sweep.point) ->
                p.W.Adapt_sweep.workload = workload)
              points
          in
          f p)
        series )
  in
  print_string
    (R.table
       ~title:
         (Printf.sprintf
            "Produce-consume @ %d procs: throughput (ops per 10^6 cycles) \
             vs think time"
            procs)
       ~row_label:"workload" ~columns
       (List.map
          (row_of (fun p -> R.int_ p.W.Adapt_sweep.throughput_per_m))
          workloads));
  print_newline ();
  print_string
    (R.table
       ~title:
         (Printf.sprintf
            "Produce-consume @ %d procs: average latency (cycles/op) vs \
             think time"
            procs)
       ~row_label:"workload" ~columns
       (List.map
          (row_of (fun p -> R.float1 p.W.Adapt_sweep.latency))
          workloads));
  print_newline ();
  (* The reactive column's final state at the extremes of the axis. *)
  List.iter
    (fun points ->
      List.iter
        (fun (p : W.Adapt_sweep.point) ->
          match p.W.Adapt_sweep.final_adapt with
          | None -> ()
          | Some levels ->
              let fmt_level level =
                String.concat ","
                  (List.map
                     (fun (spin, widths) ->
                       Printf.sprintf "%d:[%s]" spin
                         (String.concat ";"
                            (List.map string_of_int widths)))
                     level)
              in
              Printf.printf "adapted (W=%d) spin:[widths] by depth: %s\n"
                p.W.Adapt_sweep.workload
                (String.concat " | " (List.map fmt_level levels)))
        points)
    series;
  let flat = List.concat series in
  Printf.printf
    "\nshape: saturation within 5%% of best static: %s; low-load latency \
     strictly best: %s\n\n"
    (if W.Adapt_sweep.saturation_ok flat then "PASS" else "FAIL")
    (if W.Adapt_sweep.low_load_ok flat then "PASS" else "FAIL");
  emit_json ~experiment:"adapt" ~probe (List.map adapt_point_json flat)

(* ------------------------------------------------------------------ *)
(* Ablations (extensions; see EXPERIMENTS.md)                          *)
(* ------------------------------------------------------------------ *)

let ablate scale =
  print_string "== Ablations: what makes the elimination tree fast? ==\n\n";
  let methods = W.Methods.ablation_methods in
  let columns = List.map method_name methods in
  let counts = List.filter (fun n -> n >= 16) scale.counts in
  let series =
    List.map
      (fun make ->
        progress "ablate: %s" (method_name make);
        W.Produce_consume.sweep ~horizon:scale.horizon ~workload:0
          ~proc_counts:counts make)
      methods
  in
  let table f title =
    R.table ~title ~row_label:"procs" ~columns
      (List.map
         (fun procs ->
           ( string_of_int procs,
             List.map
               (fun points ->
                 let p =
                   List.find
                     (fun p -> p.W.Produce_consume.procs = procs)
                     points
                 in
                 f p)
               series ))
         counts)
  in
  print_string
    (table
       (fun p -> R.int_ p.W.Produce_consume.throughput_per_m)
       "Produce-consume W=0: throughput (ops per 10^6 cycles)");
  print_newline ();
  print_string
    (table
       (fun p -> R.float1 p.W.Produce_consume.latency)
       "Produce-consume W=0: average latency (cycles/op)");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Extra experiments beyond the paper                                  *)
(* ------------------------------------------------------------------ *)

let width_sweep scale =
  print_string
    "== Extra: elimination-tree width sensitivity (the paper chose 32 \
     empirically) ==\n\n";
  let methods = W.Methods.width_methods in
  let columns = List.map method_name methods in
  let series =
    List.map
      (fun make ->
        progress "width: %s" (method_name make);
        W.Produce_consume.sweep ~horizon:scale.horizon ~workload:0
          ~proc_counts:scale.counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p =
                List.find (fun p -> p.W.Produce_consume.procs = procs) points
              in
              R.int_ p.W.Produce_consume.throughput_per_m)
            series ))
      scale.counts
  in
  print_string
    (R.table ~title:"Produce-consume W=0: throughput (ops per 10^6 cycles)"
       ~row_label:"procs" ~columns rows);
  print_newline ()

let extra scale =
  print_string "== Extra: counting-network lineage (not in the paper) ==\n\n";
  let methods = W.Methods.counting_extra_methods in
  let columns = List.map counter_name methods in
  let series =
    List.map
      (fun make ->
        progress "extra counting: %s" (counter_name make);
        W.Counting.sweep ~horizon:scale.horizon ~proc_counts:scale.counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p = List.find (fun p -> p.W.Counting.procs = procs) points in
              R.int_ p.W.Counting.throughput_per_m)
            series ))
      scale.counts
  in
  print_string
    (R.table
       ~title:
         "Throughput (fetch&inc per 10^6 cycles): AHS bitonic network [4] \
          vs diffracting trees vs one hot location"
       ~row_label:"procs" ~columns rows);
  print_newline ();
  print_string
    "== Extra: LIFO job distribution (stack-like pool vs stealing) ==\n\n";
  let methods = W.Methods.distribution_extra_methods in
  let columns = List.map method_name methods in
  let series =
    List.map
      (fun make ->
        progress "extra queens: %s" (method_name make);
        W.Queens.sweep ~proc_counts:scale.counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.map
            (fun points ->
              let p = List.find (fun p -> p.W.Queens.procs = procs) points in
              R.int_ p.W.Queens.elapsed)
            series ))
      scale.counts
  in
  print_string
    (R.table ~title:"Elapsed cycles until all 1110 tasks consumed"
       ~row_label:"procs" ~columns rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Thesis experiments: load sweep and LIFO fidelity                    *)
(* ------------------------------------------------------------------ *)

let thesis scale =
  print_string
    "== Extra: elimination rate and latency vs offered load \
     (Etree-32, 256 procs) ==\n\n";
  progress "load sweep";
  let points =
    W.Load_sweep.sweep ~horizon:scale.horizon ~procs:256
      ~workloads:[ 0; 500; 1_000; 2_000; 4_000; 8_000; 16_000 ]
      ()
  in
  print_string
    (R.table ~title:"The busier it gets, the faster it gets"
       ~row_label:"workload"
       ~columns:[ "latency"; "root elim"; "reach leaf" ]
       (List.map
          (fun (p : W.Load_sweep.point) ->
            ( string_of_int p.W.Load_sweep.workload,
              [
                R.float1 p.W.Load_sweep.latency;
                R.percent p.W.Load_sweep.root_elimination;
                R.percent p.W.Load_sweep.leaf_fraction;
              ] ))
          points));
  print_newline ();
  print_string
    "== Extra: LIFO fidelity of the stack-like pool (fraction of pops \
     returning the newest element) ==\n\n";
  let methods =
    [
      (fun ~procs -> W.Methods.estack_pool ~procs ());
      (fun ~procs -> W.Methods.etree_pool ~procs ());
    ]
  in
  let columns = List.map method_name methods in
  let counts = List.filter (fun n -> n >= 4) scale.counts in
  let series =
    List.map
      (fun make ->
        progress "lifo fidelity: %s" (method_name make);
        W.Lifo_fidelity.sweep ~horizon:scale.horizon ~proc_counts:counts make)
      methods
  in
  let rows =
    List.map
      (fun procs ->
        ( string_of_int procs,
          List.concat_map
            (fun points ->
              let p =
                List.find (fun p -> p.W.Lifo_fidelity.procs = procs) points
              in
              [
                R.percent p.W.Lifo_fidelity.hit_fraction;
                R.float2 p.W.Lifo_fidelity.mean_rank;
              ])
            series ))
      counts
  in
  let columns =
    List.concat_map (fun c -> [ c ^ " hits"; c ^ " rank" ]) columns
  in
  print_string
    (R.table
       ~title:
         "Stack-like pool vs plain (FIFO-leaf) pool, produce-consume \
          (hits: pop returned the newest element; rank: 0 = stack, 1 = \
          queue)"
       ~row_label:"procs" ~columns rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Model sensitivity                                                   *)
(* ------------------------------------------------------------------ *)

(* The cost model assumes hot locations can be read-shared (reads do
   not serialize).  This experiment re-runs the headline comparison
   with reads queueing like writes: the ranking and shapes must
   survive, only constants move. *)
let model scale =
  print_string
    "== Extra: model sensitivity (reads serialize like writes) ==\n\n";
  let methods = W.Methods.produce_consume_methods in
  let columns = List.map method_name methods in
  let counts = List.filter (fun n -> n >= 16) scale.counts in
  List.iter
    (fun (label, config) ->
      let series =
        List.map
          (fun make ->
            progress "model(%s): %s" label (method_name make);
            W.Produce_consume.sweep ~horizon:scale.horizon ?config
              ~workload:0 ~proc_counts:counts make)
          methods
      in
      let rows =
        List.map
          (fun procs ->
            ( string_of_int procs,
              List.map
                (fun points ->
                  let p =
                    List.find
                      (fun p -> p.W.Produce_consume.procs = procs)
                      points
                  in
                  R.int_ p.W.Produce_consume.throughput_per_m)
                series ))
          counts
      in
      print_string
        (R.table
           ~title:
             (Printf.sprintf
                "Produce-consume W=0 throughput, %s read model" label)
           ~row_label:"procs" ~columns rows);
      print_newline ())
    [
      ("shared (default)", None);
      ("serialized", Some Sim.Memory.serialized_reads_config);
    ]

(* ------------------------------------------------------------------ *)
(* Native micro-benchmarks (Bechamel)                                  *)
(* ------------------------------------------------------------------ *)

let native_benches () =
  print_string "== Native micro-benchmarks (single-domain op cost) ==\n\n";
  let open Bechamel in
  let open Toolkit in
  Engine.Native.set_capacity 64;
  let elim_stack = Native.Elim_stack.create ~capacity:64 ~width:4 () in
  let elim_pool = Native.Elim_pool.create ~capacity:64 ~width:4 () in
  let local =
    Native.Local_pool.create ~discipline:`Lifo ~lock_capacity:64 ()
  in
  let central =
    Native.Central_pool.create ~size:4096
      ~head:
        (Native.Mcs_counter.as_counter
           (Native.Mcs_counter.create ~capacity:64 ()))
      ~tail:
        (Native.Mcs_counter.as_counter
           (Native.Mcs_counter.create ~capacity:64 ()))
      ()
  in
  let idc = Native.Inc_dec_counter.create ~capacity:64 ~width:4 () in
  let tests =
    [
      Test.make ~name:"elim_stack push+pop"
        (Staged.stage (fun () ->
             Native.Elim_stack.push elim_stack 1;
             ignore (Native.Elim_stack.pop elim_stack)));
      Test.make ~name:"elim_pool enq+deq"
        (Staged.stage (fun () ->
             Native.Elim_pool.enqueue elim_pool 1;
             ignore (Native.Elim_pool.dequeue elim_pool)));
      Test.make ~name:"locked local pool enq+deq"
        (Staged.stage (fun () ->
             Native.Local_pool.enqueue local 1;
             ignore (Native.Local_pool.try_dequeue local)));
      Test.make ~name:"central pool (MCS) enq+deq"
        (Staged.stage (fun () ->
             Native.Central_pool.enqueue central 1;
             ignore (Native.Central_pool.dequeue central)));
      Test.make ~name:"inc_dec_counter inc"
        (Staged.stage (fun () ->
             ignore (Native.Inc_dec_counter.increment idc)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"native" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%.0f" t
        | _ -> "n/a"
      in
      rows := (name, [ est ]) :: !rows)
    results;
  print_string
    (R.table ~title:"Single-domain operation cost" ~row_label:"operation"
       ~columns:[ "ns/op" ]
       (List.sort compare !rows));
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let total_probe = R.Meta.start () in
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref default_scale in
  let picked = ref [] in
  let horizon_override = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        scale := quick_scale;
        parse rest
    | "--full" :: rest ->
        scale := full_scale;
        parse rest
    | "--horizon" :: n :: rest ->
        horizon_override := Some (int_of_string n);
        parse rest
    | "--json" :: rest ->
        json_flag := true;
        parse rest
    | "--trace" :: rest ->
        trace_flag := true;
        parse rest
    | "--trace-out" :: file :: rest ->
        trace_flag := true;
        trace_out := Some file;
        parse rest
    | "--trace-level" :: l :: rest ->
        (match Etrace.Level.of_string l with
        | Some lv -> trace_level := lv
        | None ->
            prerr_endline
              ("unknown trace level " ^ l ^ " (off|ops|events|full)");
            exit 2);
        parse rest
    | x :: rest ->
        picked := x :: !picked;
        parse rest
  in
  parse args;
  let scale =
    match !horizon_override with
    | Some h -> { !scale with horizon = h }
    | None -> !scale
  in
  let picked = if !picked = [] then [ "all" ] else List.rev !picked in
  let want x = List.mem x picked || List.mem "all" picked in
  progress "scale: horizon=%d cycles, procs=%s" scale.horizon
    (String.concat "," (List.map string_of_int scale.counts));
  if want "fig7" then fig7 scale;
  if want "fig8" then fig8 scale;
  if want "table1" then table1 scale;
  if want "fig9" then fig9 scale;
  if want "fig10" then fig10 scale;
  if want "chaos" then chaos scale;
  if want "service" then service scale;
  if want "adapt" then adapt_exp scale;
  if want "ablate" then ablate scale;
  if want "extra" then begin
    width_sweep scale;
    extra scale;
    thesis scale;
    model scale
  end;
  if want "native" then native_benches ();
  (* Whole-process cost line, from the same Report.Meta probe the JSON
     meta blocks use (satellite 6 of docs/BENCHDB.md: one code path, so
     stdout and JSON cannot disagree). *)
  progress "%s"
    (R.Meta.host_line (R.Meta.stop total_probe ~experiment:"all" ~seed:run_seed));
  match !failures with
  | [] -> ()
  | fs ->
      Printf.eprintf "bench: %d verdict failure(s):\n" (List.length fs);
      List.iter (fun f -> Printf.eprintf "  %s\n" f) (List.rev fs);
      exit 1
