(** Plain-text table formatting for the benchmark harness. *)

val table :
  title:string ->
  row_label:string ->
  columns:string list ->
  (string * string list) list ->
  string
(** [table ~title ~row_label ~columns rows] renders right-aligned
    columns; each row is (label, preformatted cells). *)

val ops : Sim.stats -> string
(** One-line [reads/writes/rmws] summary of a run's engine-level
    operation counters, e.g. ["1052r/312w/97rmw"]. *)

val latency_cell : Etrace.Histogram.summary -> string
(** ["p50/p90/p99"] of a latency distribution, e.g. ["41/96/204"]. *)

val float1 : float -> string
val float2 : float -> string
val percent : float -> string
val int_ : int -> string

(** {2 JSON emission}

    A minimal hand-rolled emitter (the image carries no JSON library)
    for the benchmark harness's [--json] output. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
val opt : ('a -> json) -> 'a option -> json
val write_json : file:string -> json -> unit
(** Writes [j] followed by a newline, overwriting [file]. *)

(** {2 Trace-derived reporting} *)

val histogram_json : Etrace.Histogram.summary -> json

val attribution_table : title:string -> Etrace.Attribution.summary -> string
(** The flamegraph-style cycle-attribution table: one row per tree
    layer (plus the outside-the-tree pseudo-layer and a total row),
    one column per {!Etrace.Attribution.category}, cells as shares of
    total simulated cycles. *)

val attribution_json : Etrace.Attribution.summary -> json

(** {2 Meta: the per-run provenance + cost probe}

    Snapshots host cost ([Sys.time], [Gc.quick_stat]) and the
    simulator's cumulative event/op odometer ({!Sim.totals}) around a
    benchmark run, yielding the ["meta"] block every [BENCH_<exp>.json]
    carries and the ["# host ..."] stdout line — both rendered from the
    same record, so they can never disagree.  The deterministic columns
    (events, reads/writes/rmws, minor words per event) are the ones the
    perf-regression gate compares (docs/BENCHDB.md); wall-clock columns
    are recorded but advisory. *)

module Meta : sig
  type t = {
    experiment : string;
    seed : int;
    date : string;      (** UTC [YYYY-MM-DD]; ["unknown"] off-host *)
    commit : string;    (** short SHA; ["unknown"] outside a checkout *)
    dirty : bool;       (** tracked files modified at run time *)
    toolchain : string; (** e.g. ["ocaml-5.1.1/64-bit"] *)
    events : int;       (** simulated events fired during the run *)
    reads : int;
    writes : int;
    rmws : int;
    cpu_s : float;      (** host CPU seconds (advisory) *)
    minor_words : float;
    major_words : float;
    major_collections : int;
    events_per_sec : float;         (** derived; 0 when cpu_s = 0 *)
    minor_words_per_event : float;  (** derived; 0 when events = 0 *)
  }

  type probe

  val start : unit -> probe
  val stop : probe -> experiment:string -> seed:int -> t
  val json : t -> json
  val host_line : t -> string
end
