(** Plain-text table formatting for the benchmark harness. *)

val table :
  title:string ->
  row_label:string ->
  columns:string list ->
  (string * string list) list ->
  string
(** [table ~title ~row_label ~columns rows] renders right-aligned
    columns; each row is (label, preformatted cells). *)

val ops : Sim.stats -> string
(** One-line [reads/writes/rmws] summary of a run's engine-level
    operation counters, e.g. ["1052r/312w/97rmw"]. *)

val float1 : float -> string
val float2 : float -> string
val percent : float -> string
val int_ : int -> string
