(** Plain-text table formatting for the benchmark harness. *)

val table :
  title:string ->
  row_label:string ->
  columns:string list ->
  (string * string list) list ->
  string
(** [table ~title ~row_label ~columns rows] renders right-aligned
    columns; each row is (label, preformatted cells). *)

val ops : Sim.stats -> string
(** One-line [reads/writes/rmws] summary of a run's engine-level
    operation counters, e.g. ["1052r/312w/97rmw"]. *)

val latency_cell : Etrace.Histogram.summary -> string
(** ["p50/p90/p99"] of a latency distribution, e.g. ["41/96/204"]. *)

val float1 : float -> string
val float2 : float -> string
val percent : float -> string
val int_ : int -> string

(** {2 JSON emission}

    A minimal hand-rolled emitter (the image carries no JSON library)
    for the benchmark harness's [--json] output. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
val opt : ('a -> json) -> 'a option -> json
val write_json : file:string -> json -> unit
(** Writes [j] followed by a newline, overwriting [file]. *)

(** {2 Trace-derived reporting} *)

val histogram_json : Etrace.Histogram.summary -> json

val attribution_table : title:string -> Etrace.Attribution.summary -> string
(** The flamegraph-style cycle-attribution table: one row per tree
    layer (plus the outside-the-tree pseudo-layer and a total row),
    one column per {!Etrace.Attribution.category}, cells as shares of
    total simulated cycles. *)

val attribution_json : Etrace.Attribution.summary -> json
