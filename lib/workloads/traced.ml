(* Running workloads under tracing sinks (etrees.trace).

   [run] installs an attribution sink — and, when a [chrome_level] is
   given, a Chrome-export sink — around an arbitrary thunk, restoring
   the previous trace state afterwards.  Emission into the sinks never
   costs simulated cycles, so the thunk's simulated results are
   identical to an untraced run; only host time is spent.

   [procs] must cover every simulated processor id the thunk can spawn
   (events from higher pids are ignored by the attribution sink, which
   would unbalance its books). *)

type 'a traced = {
  value : 'a;
  attribution : Etrace.Attribution.summary;
  chrome : Etrace.Chrome.t option; (* present iff [chrome_level] given *)
}

let run ?chrome_level ~procs f =
  let attr = Etrace.Attribution.create ~procs in
  let chrome =
    Option.map (fun level -> Etrace.Chrome.create ~level ()) chrome_level
  in
  let sinks =
    Etrace.Attribution.sink attr
    ::
    (match chrome with
    | Some c -> [ Etrace.Chrome.on_event c ]
    | None -> [])
  in
  let value = Etrace.with_tracing (Etrace.tee sinks) f in
  { value; attribution = Etrace.Attribution.summarize attr; chrome }
