(* Constructors for every method compared in the paper's evaluation,
   instantiated on the simulator engine with the paper's parameters. *)

module E = Sim.Engine
module Epool = Core.Elim_pool.Make (E)
module Estack = Core.Elim_stack.Make (E)
module Mcs_counter = Sync.Mcs_counter.Make (E)
module Naive_counter = Sync.Naive_counter.Make (E)
module Ctree = Sync.Combining_tree.Make (E)
module Dtree = Baselines.Diff_tree.Make (E)
module Central = Baselines.Central_pool.Make (E)
module Rsu = Baselines.Rsu.Make (E)
module Treiber = Extras.Treiber_stack.Make (E)
module Eb_stack = Extras.Eb_stack.Make (E)
module Bitonic = Baselines.Bitonic_network.Make (E)
module Ws = Baselines.Work_stealing.Make (E)
module Spool = Shard.Shard_pool.Make (E)

let pow2_ceil n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* "Optimal width means that when n processors participate, a tree of
   width n/2 will be used" (§2.5.1). *)
let ctree_width ~procs = pow2_ceil (max 1 (procs / 2))

(* ------------------------------------------------------------------ *)
(* Pools for the produce-consume / queens / response benchmarks         *)
(* ------------------------------------------------------------------ *)

(* Etree-<width>: the elimination-tree pool (the paper's contribution). *)
let etree_pool ?(width = 32) ~procs () =
  let p = Epool.create ~capacity:procs ~width ~leaf_size:8192 () in
  Pool_obj.pool
    ~name:(Printf.sprintf "Etree-%d" width)
    ~enqueue:(fun v -> Epool.enqueue p v)
    ~dequeue:(fun ~stop -> Epool.dequeue ~stop p)
    ~stats_by_level:(fun () -> Epool.stats_by_level p)
    ~residue:(fun () -> Epool.residue p)
    ()

(* Etree-<width>/s<base>: the elimination-tree pool on an alternative
   static spin schedule — the hand-tuning axis the adaptive controller
   competes against (EXPERIMENTS.md A1). *)
let etree_pool_spin ?(width = 32) ~spin_base ~procs () =
  let p =
    Epool.create
      ~config:(Core.Tree_config.etree ~spin_base width)
      ~capacity:procs ~width ~leaf_size:8192 ()
  in
  Pool_obj.pool
    ~name:(Printf.sprintf "Etree-%d/s%d" width spin_base)
    ~enqueue:(fun v -> Epool.enqueue p v)
    ~dequeue:(fun ~stop -> Epool.dequeue ~stop p)
    ~stats_by_level:(fun () -> Epool.stats_by_level p)
    ~residue:(fun () -> Epool.residue p)
    ()

(* Etree-<width>/adapt: the reactive elimination-tree pool
   (docs/ADAPTIVE.md) — spin windows and prism widths adapt online
   around the paper's static tuning. *)
let etree_pool_reactive ?(width = 32) ?(config = Adapt.default) ~procs () =
  let p =
    Epool.create ~policy:(`Reactive config) ~capacity:procs ~width
      ~leaf_size:8192 ()
  in
  Pool_obj.pool
    ~name:(Printf.sprintf "Etree-%d/adapt" width)
    ~enqueue:(fun v -> Epool.enqueue p v)
    ~dequeue:(fun ~stop -> Epool.dequeue ~stop p)
    ~stats_by_level:(fun () -> Epool.stats_by_level p)
    ~residue:(fun () -> Epool.residue p)
    ~adapt_by_level:(fun () -> Epool.adapt_by_level p)
    ()

(* Estack-<width>: the stack-like pool (§3), for LIFO scheduling. *)
let estack_pool ?(width = 32) ?policy ~procs () =
  let s = Estack.create ?policy ~capacity:procs ~width ~leaf_size:8192 () in
  let name =
    match policy with
    | Some (`Reactive _) -> Printf.sprintf "Estack-%d/adapt" width
    | Some `Static | None -> Printf.sprintf "Estack-%d" width
  in
  Pool_obj.pool ~name
    ~enqueue:(fun v -> Estack.push s v)
    ~dequeue:(fun ~stop -> Estack.pop ~stop s)
    ~stats_by_level:(fun () -> Estack.stats_by_level s)
    ~residue:(fun () -> Estack.residue s)
    ~adapt_by_level:(fun () -> Estack.adapt_by_level s)
    ()

(* Shard-<n>x<width>: the sharded frontend (lib/shard) as a plain pool.
   Enqueues route by the value (every element is a fresh session, so
   production spreads over shards by hash); dequeues route by a
   rotating collector id, so consumption spreads independently and the
   steal path carries whatever imbalance is left — which is how chaos
   fault plans reach individual shards: a hot-spot or stall on one
   shard's locations forces the others to absorb its traffic. *)
let shard_pool ?(shards = 4) ?(width = 8) ~procs () =
  let p = Spool.create ~capacity:procs ~width ~shards ~leaf_size:8192 () in
  let next_collector = ref 0 in
  Pool_obj.pool
    ~name:(Printf.sprintf "Shard-%dx%d" shards width)
    ~enqueue:(fun v -> Spool.enqueue p ~session:v v)
    ~dequeue:(fun ~stop ->
      let c = !next_collector in
      incr next_collector;
      Spool.dequeue ~stop p ~session:c)
    ~stats_by_level:(fun () -> Spool.stats_by_level p)
    ~residue:(fun () -> Spool.residue p)
    ()

(* The Figure-5 centralized pool over a pair of counters. *)
let central_pool ~name ~procs mk_counter =
  ignore procs;
  let pool =
    Central.create ~size:16384 ~head:(mk_counter ()) ~tail:(mk_counter ()) ()
  in
  Pool_obj.pool ~name
    ~enqueue:(fun v -> Central.enqueue pool v)
    ~dequeue:(fun ~stop -> Central.dequeue ~stop pool)
    ~residue:(fun () -> Central.residue pool)
    ()

(* MCS: centralized pool, counters = MCS-locked cells. *)
let mcs_pool ~procs () =
  central_pool ~name:"MCS" ~procs (fun () ->
      Mcs_counter.as_counter (Mcs_counter.create ~capacity:procs ()))

(* Ctree-n: centralized pool, counters = combining trees of width n/2.
   [tree_procs] defaults to the participating processors; Figure 10 uses
   a fixed Ctree-256. *)
let ctree_pool ?tree_procs ~procs () =
  let name =
    match tree_procs with
    | Some n -> Printf.sprintf "Ctree-%d" n
    | None -> "Ctree-n" (* sized to the participating processors *)
  in
  let tree_procs = match tree_procs with Some n -> n | None -> procs in
  let width = ctree_width ~procs:tree_procs in
  central_pool ~name ~procs (fun () ->
      Ctree.as_counter (Ctree.create ~width ()))

(* Dtree-32: centralized pool, counters = diffracting trees. *)
let dtree_pool ?(width = 32) ~procs () =
  central_pool
    ~name:(Printf.sprintf "Dtree-%d" width)
    ~procs
    (fun () -> Dtree.as_counter (Dtree.create ~capacity:procs ~width ()))

(* RSU: randomized load-balanced local piles.  The paper's simulated
   machine always has 256 processors, so RSU always owns [machine]
   piles even when only [procs] of them participate — which is what
   produces its Theta(n) sparse-access behaviour (Fig. 10 right). *)
let rsu_pool ?(machine = 256) ~procs () =
  let t = Rsu.create ~procs:(max machine procs) () in
  Pool_obj.pool ~name:"RSU"
    ~enqueue:(fun v -> Rsu.enqueue t v)
    ~dequeue:(fun ~stop -> Rsu.dequeue ~stop t)
    ~residue:(fun () -> Rsu.total_size t)
    ()

(* ---- ablation variants (not in the paper; see EXPERIMENTS.md) ---- *)

(* The elimination tree with eliminating collisions disabled: tokens
   and anti-tokens still diffract and toggle, so this isolates how much
   of the high-load win is elimination itself. *)
let etree_pool_no_elim ?(width = 32) ~procs () =
  let p =
    Epool.create ~eliminate:false ~capacity:procs ~width ~leaf_size:8192 ()
  in
  Pool_obj.pool
    ~name:(Printf.sprintf "Etree-%d/noelim" width)
    ~enqueue:(fun v -> Epool.enqueue p v)
    ~dequeue:(fun ~stop -> Epool.dequeue ~stop p)
    ~stats_by_level:(fun () -> Epool.stats_by_level p)
    ~residue:(fun () -> Epool.residue p)
    ()

(* The elimination tree on the original single-prism schedule of [24]:
   isolates the multi-layered-prism contribution. *)
let etree_pool_single_prism ?(width = 32) ~procs () =
  let p =
    Epool.create
      ~config:(Core.Tree_config.dtree width)
      ~capacity:procs ~width ~leaf_size:8192 ()
  in
  Pool_obj.pool
    ~name:(Printf.sprintf "Etree-%d/1prism" width)
    ~enqueue:(fun v -> Epool.enqueue p v)
    ~dequeue:(fun ~stop -> Epool.dequeue ~stop p)
    ~stats_by_level:(fun () -> Epool.stats_by_level p)
    ~residue:(fun () -> Epool.residue p)
    ()

(* The elimination-backoff stack (Hendler-Shavit-Yerushalmi 2004): the
   paper's idea as it became standard — elimination as a backoff path
   of a centralized Treiber stack. *)
let eb_stack_pool ~procs () =
  ignore procs;
  let s = Eb_stack.create () in
  Pool_obj.pool ~name:"EB-stack"
    ~enqueue:(fun v -> Eb_stack.push s v)
    ~dequeue:(fun ~stop -> Eb_stack.pop ~stop s)
    ()

(* A plain Treiber stack: the centralized hot spot itself. *)
let treiber_pool ~procs () =
  ignore procs;
  let s = Treiber.create () in
  Pool_obj.pool ~name:"Treiber"
    ~enqueue:(fun v -> Treiber.push s v)
    ~dequeue:(fun ~stop -> Treiber.pop ~stop s)
    ()

(* Width sensitivity: the paper picked width 32 "based on empirical
   testing"; this sweep reproduces that choice. *)
let width_methods : (procs:int -> int Pool_obj.pool) list =
  List.map
    (fun width ~procs -> etree_pool ~width ~procs ())
    [ 8; 16; 32; 64 ]

let ablation_methods : (procs:int -> int Pool_obj.pool) list =
  [
    (fun ~procs -> etree_pool ~procs ());
    (fun ~procs -> etree_pool_no_elim ~procs ());
    (fun ~procs -> etree_pool_single_prism ~procs ());
    (fun ~procs -> eb_stack_pool ~procs ());
    (fun ~procs -> treiber_pool ~procs ());
    (fun ~procs -> mcs_pool ~procs ());
  ]

(* The method sets of the figures. *)
let produce_consume_methods : (procs:int -> int Pool_obj.pool) list =
  [
    (fun ~procs -> etree_pool ~procs ());
    (fun ~procs -> mcs_pool ~procs ());
    (fun ~procs -> ctree_pool ~procs ());
    (fun ~procs -> dtree_pool ~procs ());
  ]

let distribution_methods : (procs:int -> int Pool_obj.pool) list =
  [
    (fun ~procs -> etree_pool ~procs ());
    (fun ~procs -> mcs_pool ~procs ());
    (fun ~procs -> ctree_pool ~tree_procs:256 ~procs ());
    (fun ~procs -> rsu_pool ~procs ());
  ]

(* ------------------------------------------------------------------ *)
(* Counters for the counting benchmark (Fig. 9)                        *)
(* ------------------------------------------------------------------ *)

let counting_methods : (procs:int -> Pool_obj.counter) list =
  [
    (fun ~procs ->
      Pool_obj.counter ~name:"Dtree-32+MulPri"
        (Dtree.as_counter
           (Dtree.create ~prisms:`Multi_prism ~capacity:procs ~width:32 ())));
    (fun ~procs ->
      Pool_obj.counter ~name:"MCS"
        (Mcs_counter.as_counter (Mcs_counter.create ~capacity:procs ())));
    (fun ~procs ->
      Pool_obj.counter ~name:"Ctree-n"
        (Ctree.as_counter (Ctree.create ~width:(ctree_width ~procs) ())));
    (fun ~procs ->
      Pool_obj.counter ~name:"Dtree-32"
        (Dtree.as_counter
           (Dtree.create ~prisms:`Single_prism ~capacity:procs ~width:32 ())));
    (fun ~procs ->
      Pool_obj.counter ~name:"Dtree-64"
        (Dtree.as_counter
           (Dtree.create ~prisms:`Single_prism ~capacity:procs ~width:64 ())));
  ]

(* Extra ablation (not in the paper): raw fetch&add on one location. *)
let naive_counter ~procs:_ =
  Pool_obj.counter ~name:"Faa-1loc"
    (Naive_counter.as_counter (Naive_counter.create ()))

(* Extra baselines (cited [4]): the AHS counting networks. *)
let bitonic_counter ?(kind = `Bitonic) ?(width = 32) ~procs () =
  ignore procs;
  let prefix =
    match kind with `Bitonic -> "Bitonic" | `Periodic -> "Periodic"
  in
  Pool_obj.counter
    ~name:(Printf.sprintf "%s-%d" prefix width)
    (Bitonic.as_counter (Bitonic.create ~kind ~width ()))

(* Extra baseline (cited [7]): work-stealing deques, machine-sized like
   RSU. *)
let ws_pool ?(machine = 256) ~procs () =
  let t = Ws.create ~procs:(max machine procs) () in
  Pool_obj.pool ~name:"WorkSteal"
    ~enqueue:(fun v -> Ws.enqueue t v)
    ~dequeue:(fun ~stop -> Ws.dequeue ~stop t)
    ~residue:(fun () -> Ws.total_size t)
    ()

(* Extended job-distribution comparison: the paper's RSU and Etree plus
   our extra work-stealing baseline and the LIFO stack-like pool. *)
let distribution_extra_methods : (procs:int -> int Pool_obj.pool) list =
  [
    (fun ~procs -> estack_pool ~procs ());
    (fun ~procs -> rsu_pool ~procs ());
    (fun ~procs -> ws_pool ~procs ());
  ]

(* ------------------------------------------------------------------ *)
(* Named registries (the single source of truth for CLI method names)  *)
(* ------------------------------------------------------------------ *)

(* Every pool method under its CLI name, shared by bin/etrees_run and
   the chaos experiment — add a method here and every name-driven
   driver picks it up. *)
let pool_registry : (string * (procs:int -> int Pool_obj.pool)) list =
  [
    ("etree", fun ~procs -> etree_pool ~procs ());
    ("etree64", fun ~procs -> etree_pool ~width:64 ~procs ());
    ("etree-adapt", fun ~procs -> etree_pool_reactive ~procs ());
    ("estack", fun ~procs -> estack_pool ~procs ());
    ("estack-adapt",
     fun ~procs -> estack_pool ~policy:(`Reactive Adapt.default) ~procs ());
    ("mcs", fun ~procs -> mcs_pool ~procs ());
    ("ctree", fun ~procs -> ctree_pool ~procs ());
    ("ctree256", fun ~procs -> ctree_pool ~tree_procs:256 ~procs ());
    ("dtree32", fun ~procs -> dtree_pool ~procs ());
    ("rsu", fun ~procs -> rsu_pool ~procs ());
    ("worksteal", fun ~procs -> ws_pool ~procs ());
    ("ebstack", fun ~procs -> eb_stack_pool ~procs ());
    ("treiber", fun ~procs -> treiber_pool ~procs ());
    ("etree-noelim", fun ~procs -> etree_pool_no_elim ~procs ());
    ("etree-1prism", fun ~procs -> etree_pool_single_prism ~procs ());
    ("shard4", fun ~procs -> shard_pool ~shards:4 ~procs ());
    ("shard8", fun ~procs -> shard_pool ~shards:8 ~procs ());
  ]

let pool_method = fun name -> List.assoc_opt name pool_registry
let pool_method_names = List.map fst pool_registry

(* Extended counting comparison: the counting-network lineage. *)
let counting_extra_methods : (procs:int -> Pool_obj.counter) list =
  [
    (fun ~procs -> bitonic_counter ~procs ());
    (fun ~procs -> bitonic_counter ~kind:`Periodic ~procs ());
    (fun ~procs ->
      Pool_obj.counter ~name:"Dtree-32"
        (Dtree.as_counter
           (Dtree.create ~prisms:`Single_prism ~capacity:procs ~width:32 ())));
    (fun ~procs ->
      Pool_obj.counter ~name:"Dtree-32+MulPri"
        (Dtree.as_counter
           (Dtree.create ~prisms:`Multi_prism ~capacity:procs ~width:32 ())));
    naive_counter;
  ]

(* Counter methods under their CLI names. *)
let counter_registry : (string * (procs:int -> Pool_obj.counter)) list =
  [
    ("mcs", List.nth counting_methods 1);
    ("ctree", List.nth counting_methods 2);
    ("dtree32", List.nth counting_methods 3);
    ("dtree64", List.nth counting_methods 4);
    ("dtree32multi", List.nth counting_methods 0);
    ("faa", naive_counter);
    ("bitonic", fun ~procs -> bitonic_counter ~procs ());
  ]

let counter_method = fun name -> List.assoc_opt name counter_registry
let counter_method_names = List.map fst counter_registry
