(** The robustness sweep (etrees.faults): the §2.5.1 produce-consume
    workload run under a deterministic fault plan, with a value ledger
    feeding a post-run conservation audit and a termination-bound
    verdict.  Crashed and starved processors are data here, not bugs —
    the experiment quantifies how gracefully each method degrades as
    fault intensity rises. *)

type point = {
  method_name : string;
  procs : int;
  plan : string;            (** {!Faults.Fault_plan.describe}, stable *)
  ops : int;                (** ops completed inside the window *)
  started : int;            (** pool ops issued, completed or not *)
  throughput_per_m : int;   (** ops per 10^6 cycles *)
  latency : float;          (** average cycles per completed op *)
  elim_rate : float option; (** eliminated/entries, trees only *)
  starved : int;            (** dequeues that gave up empty-handed *)
  crashed : int;            (** crash-stopped processors *)
  stuck : int;              (** aborted (non-crashed) processors *)
  end_clock : int;
  races : int option;       (** [Some n] when run under the detector *)
  mem : Sim.stats;
  conservation : Analysis.Conservation.report;
  termination : Faults.Termination.verdict;
}

val default_methods : string list
(** ["etree"; "estack"; "mcs"; "ctree"; "dtree32"] — names in
    {!Methods.pool_registry}. *)

val run :
  ?seed:int ->
  ?horizon:int ->
  ?config:Sim.Memory.config ->
  ?grace:int ->
  ?workload:int ->
  ?races:bool ->
  plan:Faults.Fault_plan.t ->
  procs:int ->
  (procs:int -> int Pool_obj.pool) ->
  point
(** One method under one plan.  [grace] (default 25_000) bounds how
    long a dequeuer waits past [horizon] before counting as starved;
    [races:true] additionally runs the whole simulation under
    {!Analysis.Race_detector.run}.  Deterministic in every argument. *)

val sweep :
  ?seed:int ->
  ?fault_seed:int ->
  ?horizon:int ->
  ?config:Sim.Memory.config ->
  ?grace:int ->
  ?workload:int ->
  ?races:bool ->
  ?methods:string list ->
  procs:int ->
  unit ->
  (int * string * point list) list
(** The degradation ladder: every method of [methods] (names resolved
    via {!Methods.pool_method}) under each
    {!Faults.Fault_plan.ladder} level, as
    [(level, level_label, points)]. *)

val format_point : point -> string
(** Stable one-line rendering; the determinism regression test compares
    these byte-for-byte. *)
