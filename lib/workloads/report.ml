(* Plain-text table formatting for the benchmark harness: one column of
   processor counts, one column per method. *)

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let fit w s =
  let n = String.length s in
  if n >= w then s else String.make (w - n) ' ' ^ s

(* [table ~title ~row_label labels rows] where each row is
   (label, cell list); cells are preformatted strings. *)
let table ~title ~row_label ~columns rows =
  let col_width =
    List.fold_left (fun acc c -> max acc (String.length c)) 10 columns
  in
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (String.length l))
      (String.length row_label)
      rows
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  let widths = label_width :: List.map (fun _ -> col_width) columns in
  Buffer.add_string buf
    (String.concat " | "
       (fit label_width row_label :: List.map (fit col_width) columns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (hrule widths);
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf
        (String.concat " | "
           (fit label_width label :: List.map (fit col_width) cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* One-line summary of the engine-level operation counters carried in a
   run's [Sim.stats]: reads / writes / read-modify-writes issued. *)
let ops (s : Sim.stats) =
  Printf.sprintf "%dr/%dw/%drmw" s.Sim.reads s.Sim.writes s.Sim.rmws

let float1 x = Printf.sprintf "%.1f" x
let float2 x = Printf.sprintf "%.2f" x
let percent x = Printf.sprintf "%.1f%%" (100.0 *. x)
let int_ x = string_of_int x
