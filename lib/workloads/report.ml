(* Plain-text table formatting for the benchmark harness: one column of
   processor counts, one column per method. *)

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let fit w s =
  let n = String.length s in
  if n >= w then s else String.make (w - n) ' ' ^ s

(* [table ~title ~row_label labels rows] where each row is
   (label, cell list); cells are preformatted strings. *)
let table ~title ~row_label ~columns rows =
  let col_width =
    List.fold_left (fun acc c -> max acc (String.length c)) 10 columns
  in
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (String.length l))
      (String.length row_label)
      rows
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  let widths = label_width :: List.map (fun _ -> col_width) columns in
  Buffer.add_string buf
    (String.concat " | "
       (fit label_width row_label :: List.map (fit col_width) columns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (hrule widths);
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf
        (String.concat " | "
           (fit label_width label :: List.map (fit col_width) cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* One-line summary of the engine-level operation counters carried in a
   run's [Sim.stats]: reads / writes / read-modify-writes issued. *)
let ops (s : Sim.stats) =
  Printf.sprintf "%dr/%dw/%drmw" s.Sim.reads s.Sim.writes s.Sim.rmws

let float1 x = Printf.sprintf "%.1f" x
let float2 x = Printf.sprintf "%.2f" x
let percent x = Printf.sprintf "%.1f%%" (100.0 *. x)
let int_ x = string_of_int x

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter (no JSON library in the image)                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* Infinities and NaN are not JSON numbers. *)
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  add_json buf j;
  Buffer.contents buf

let opt f = function None -> Null | Some v -> f v

let write_json ~file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json_to_string j);
      output_char oc '\n')
