(* Plain-text table formatting for the benchmark harness: one column of
   processor counts, one column per method. *)

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let fit w s =
  let n = String.length s in
  if n >= w then s else String.make (w - n) ' ' ^ s

(* [table ~title ~row_label labels rows] where each row is
   (label, cell list); cells are preformatted strings. *)
let table ~title ~row_label ~columns rows =
  let col_width =
    List.fold_left (fun acc c -> max acc (String.length c)) 10 columns
  in
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (String.length l))
      (String.length row_label)
      rows
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  let widths = label_width :: List.map (fun _ -> col_width) columns in
  Buffer.add_string buf
    (String.concat " | "
       (fit label_width row_label :: List.map (fit col_width) columns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (hrule widths);
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf
        (String.concat " | "
           (fit label_width label :: List.map (fit col_width) cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* One-line summary of the engine-level operation counters carried in a
   run's [Sim.stats]: reads / writes / read-modify-writes issued. *)
let ops (s : Sim.stats) =
  Printf.sprintf "%dr/%dw/%drmw" s.Sim.reads s.Sim.writes s.Sim.rmws

(* A latency-distribution cell: median with the tail behind it. *)
let latency_cell (h : Etrace.Histogram.summary) =
  Printf.sprintf "%d/%d/%d" h.Etrace.Histogram.p50 h.Etrace.Histogram.p90
    h.Etrace.Histogram.p99

let float1 x = Printf.sprintf "%.1f" x
let float2 x = Printf.sprintf "%.2f" x
let percent x = Printf.sprintf "%.1f%%" (100.0 *. x)
let int_ x = string_of_int x

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter (no JSON library in the image)                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* Infinities and NaN are not JSON numbers. *)
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  add_json buf j;
  Buffer.contents buf

let opt f = function None -> Null | Some v -> f v

(* ------------------------------------------------------------------ *)
(* Trace-derived reporting                                             *)
(* ------------------------------------------------------------------ *)

let histogram_json (h : Etrace.Histogram.summary) =
  Obj
    [
      ("count", Int h.Etrace.Histogram.count);
      ("mean", Float h.Etrace.Histogram.mean);
      ("p50", Int h.Etrace.Histogram.p50);
      ("p90", Int h.Etrace.Histogram.p90);
      ("p99", Int h.Etrace.Histogram.p99);
      ("min", Int h.Etrace.Histogram.min);
      ("max", Int h.Etrace.Histogram.max);
    ]

(* The flamegraph-style cycle-attribution table: one row per tree
   layer (plus the outside-the-tree pseudo-layer and a total row), one
   column per category, each cell showing the share of total simulated
   cycles spent there. *)
let attribution_table ~title (s : Etrace.Attribution.summary) =
  let module A = Etrace.Attribution in
  let share c = 100.0 *. float_of_int c /. float_of_int (max 1 s.A.total_cycles) in
  let cell c = Printf.sprintf "%.1f%%" (share c) in
  let row (r : A.row) =
    let label =
      if r.A.depth < 0 then "outside"
      else Printf.sprintf "layer %d" r.A.depth
    in
    let cells = Array.to_list (Array.map cell r.A.cycles) in
    (label, cells @ [ cell (A.row_total r) ])
  in
  let total_row =
    let by_cat = List.map (fun (_, c) -> cell c) s.A.by_category in
    ("all", by_cat @ [ cell s.A.attributed_cycles ])
  in
  let columns = List.map A.category_name A.categories @ [ "total" ] in
  let header =
    Printf.sprintf "%s
total %d simulated cycles over %d procs (%d attributed)"
      title s.A.total_cycles s.A.procs s.A.attributed_cycles
  in
  table ~title:header ~row_label:"where" ~columns
    (List.map row s.A.by_layer @ [ total_row ])

let attribution_json (s : Etrace.Attribution.summary) =
  let module A = Etrace.Attribution in
  let cats (cycles : int array) =
    List.map
      (fun cat -> (A.category_name cat, Int cycles.(A.cat_index cat)))
      A.categories
  in
  Obj
    [
      ("procs", Int s.A.procs);
      ("total_cycles", Int s.A.total_cycles);
      ("attributed_cycles", Int s.A.attributed_cycles);
      ( "by_category",
        Obj (List.map (fun (cat, c) -> (A.category_name cat, Int c)) s.A.by_category) );
      ( "by_layer",
        Arr
          (List.map
             (fun (r : A.row) ->
               Obj (("depth", Int r.A.depth) :: cats r.A.cycles))
             s.A.by_layer) );
      ( "balancers",
        Arr
          (List.map
             (fun (r : A.row) ->
               Obj
                 (("depth", Int r.A.depth)
                 :: ("balancer", Int r.A.balancer)
                 :: cats r.A.cycles))
             s.A.rows) );
    ]

let write_json ~file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json_to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Meta: the per-run provenance + cost probe (docs/BENCHDB.md)         *)
(* ------------------------------------------------------------------ *)

module Meta = struct
  (* One snapshot pair around a benchmark run, turned into the "meta"
     block of BENCH_<exp>.json and the "# host:" stdout line — the same
     record feeds both, so they can never disagree.  The deterministic
     columns (events, reads/writes/rmws, minor words per event) are
     what the perf-regression gate (lib/benchdb) compares; wall-clock
     derived columns (cpu_s, events_per_sec) are recorded but noisy. *)

  (* First line of a command's stdout, via the stdlib only (the image
     carries no process library below bin/).  Failure is data here:
     provenance degrades to "unknown", never to an exception. *)
  let command_line cmd =
    let tmp = Filename.temp_file "etrees_meta" ".txt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let status =
          try Sys.command (Printf.sprintf "%s > %s 2> /dev/null" cmd tmp)
          with Sys_error _ -> 127
        in
        if status <> 0 then None
        else
          match In_channel.with_open_text tmp In_channel.input_line with
          | Some "" | None -> None
          | some -> some
          | exception Sys_error _ -> None)

  let commit_info =
    lazy
      (match command_line "git rev-parse --short HEAD" with
      | None -> ("unknown", false)
      | Some sha ->
          (sha, command_line "git status --porcelain --untracked-files=no"
                <> None))

  let date =
    lazy
      (match command_line "date -u +%Y-%m-%d" with
      | Some d -> d
      | None -> "unknown")

  let toolchain =
    Printf.sprintf "ocaml-%s/%d-bit" Sys.ocaml_version Sys.word_size

  type t = {
    experiment : string;
    seed : int;
    date : string;
    commit : string;
    dirty : bool;
    toolchain : string;
    events : int;
    reads : int;
    writes : int;
    rmws : int;
    cpu_s : float;
    minor_words : float;
    major_words : float;
    major_collections : int;
    events_per_sec : float;
    minor_words_per_event : float;
  }

  type probe = { p_cpu : float; p_gc : Gc.stat; p_totals : Sim.totals }

  let start () =
    { p_cpu = Sys.time (); p_gc = Gc.quick_stat (); p_totals = Sim.totals () }

  let stop probe ~experiment ~seed =
    let gc = Gc.quick_stat () and totals = Sim.totals () in
    let events = totals.Sim.t_events - probe.p_totals.Sim.t_events in
    let cpu_s = Sys.time () -. probe.p_cpu in
    let minor_words = gc.Gc.minor_words -. probe.p_gc.Gc.minor_words in
    let commit, dirty = Lazy.force commit_info in
    {
      experiment;
      seed;
      date = Lazy.force date;
      commit;
      dirty;
      toolchain;
      events;
      reads = totals.Sim.t_reads - probe.p_totals.Sim.t_reads;
      writes = totals.Sim.t_writes - probe.p_totals.Sim.t_writes;
      rmws = totals.Sim.t_rmws - probe.p_totals.Sim.t_rmws;
      cpu_s;
      minor_words;
      major_words = gc.Gc.major_words -. probe.p_gc.Gc.major_words;
      major_collections =
        gc.Gc.major_collections - probe.p_gc.Gc.major_collections;
      events_per_sec =
        (if cpu_s > 0.0 then float_of_int events /. cpu_s else 0.0);
      minor_words_per_event =
        (if events > 0 then minor_words /. float_of_int events else 0.0);
    }

  let json m =
    Obj
      [
        ("experiment", Str m.experiment);
        ("seed", Int m.seed);
        ("date", Str m.date);
        ("commit", Str m.commit);
        ("dirty", Bool m.dirty);
        ("toolchain", Str m.toolchain);
        ("events", Int m.events);
        ("reads", Int m.reads);
        ("writes", Int m.writes);
        ("rmws", Int m.rmws);
        ("cpu_s", Float m.cpu_s);
        ("minor_words", Float m.minor_words);
        ("major_words", Float m.major_words);
        ("major_collections", Int m.major_collections);
        ("events_per_sec", Float m.events_per_sec);
        ("minor_words_per_event", Float m.minor_words_per_event);
      ]

  let host_line m =
    Printf.sprintf
      "host %s: %.1fs cpu, %d events (%.2fM events/s), %d ops \
       (%dr/%dw/%drmw), %.1f minor words/event, %.2e major words, %d major \
       gcs"
      m.experiment m.cpu_s m.events
      (m.events_per_sec /. 1e6)
      (m.reads + m.writes + m.rmws)
      m.reads m.writes m.rmws m.minor_words_per_event m.major_words
      m.major_collections
end
