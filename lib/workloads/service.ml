(* The service-frontend workload (etrees.shard, docs/SHARDING.md).

   A bounded pool of [procs] simulated workers multiplexes [sessions]
   client sessions against a {!Shard.Shard_pool} frontend.  Each worker
   owns [sessions / procs] sessions and an open-loop arrival schedule
   drawn from an {!Arrivals} regime.  The submit half routes by the
   session id (a session's jobs colocate on its home shard); the drain
   half models the worker pool consuming jobs: each worker dequeues
   from its own collector id's home shard and relies on the steal path
   when it runs dry — sharding's load balancer.  A worker starts
   draining only after completing its own equal number of submissions,
   so availability (P2) holds globally and every dequeue has an element
   somewhere in the frontend.  The worker serves its schedule
   sequentially: when it falls behind, later arrivals queue and their
   sojourn (completion - scheduled arrival) grows — exactly the SLO
   p50/p90/p99 dynamics a saturated frontend produces, reported from
   an {!Etrace.Histogram}.

   The ledger mirrors {!Chaos}: every value handed to an enqueue is
   recorded with its session, so a dequeued value attributes to the
   shard it lived in (elements never migrate — a steal moves the
   dequeuer), giving per-shard conservation inputs that
   {!Analysis.Conservation.combine} folds into the whole-frontend
   audit. *)

module E = Sim.Engine
module Spool = Shard.Shard_pool.Make (E)

type point = {
  regime : string;        (* Arrivals.describe, stable *)
  regime_name : string;   (* Arrivals.name *)
  shards : int;
  steal_probes : int;
  policy : string;        (* Adapt.policy_name *)
  procs : int;
  width : int;
  sessions : int;         (* actual sessions simulated *)
  requests : int;         (* issued: 2 per session *)
  completed : int;        (* requests that finished (starved excluded) *)
  starved : int;          (* dequeues that gave up after [grace] *)
  end_clock : int;
  throughput_per_m : int; (* completed requests per million cycles *)
  sojourn : Etrace.Histogram.summary;  (* completion - scheduled arrival *)
  steal_empty_homes : int;
  steal_probed : int;
  steal_hits : int;
  residue : int;
  residue_by_shard : int list;
  conservation : Analysis.Conservation.report;  (* whole frontend *)
  conservation_by_shard : Analysis.Conservation.report list;
  mem : Sim.stats;
}

let run ?(seed = 1) ?(procs = 256) ?(width = 4) ?(shards = 1) ?steal_probes
    ?(policy = `Static) ?(grace = 500_000) ?(sessions = 10_000) ~regime () =
  if procs < 1 then invalid_arg "Service.run: procs must be >= 1";
  let per_worker = max 1 (sessions / procs) in
  let sessions = per_worker * procs in
  let requests = 2 * sessions in
  (* Leaf capacity: at most [sessions] elements are ever live, and the
     step property spreads a shard's residue evenly over its leaves, so
     2x the single-shard worst case per leaf absorbs any hash skew. *)
  let leaf_size = max 1_024 (2 * sessions / width) in
  let pool =
    Spool.create ?steal_probes ~policy ~leaf_size ~capacity:procs ~width
      ~shards ()
  in
  let session_of ~pid ~k = (pid * per_worker) + (k mod per_worker) in
  let value_of ~pid ~k = (pid * 2 * per_worker) + k in
  (* The ledger: value -> session, so a dequeued value attributes to
     the shard it lived in. *)
  let handed = Hashtbl.create (2 * requests) in
  let enq_started = Array.make shards 0 in
  let enq_completed = Array.make shards 0 in
  let deq_by_shard = Array.make shards 0 in
  let dequeued = ref [] in
  let starved = ref 0 in
  let completed = ref 0 in
  let hist = Etrace.Histogram.create () in
  let body pid =
    let gen = Arrivals.create ~seed ~stream:pid regime in
    (* The worker's collector id: drains always start at this id's home
       shard, so consumption concentrates per worker and the steal path
       carries whatever imbalance the session hash left behind. *)
    let collector = sessions + pid in
    let next = ref 0 in
    for k = 0 to (2 * per_worker) - 1 do
      next := !next + Arrivals.next_gap gen ~now:!next;
      let now = E.now () in
      if now < !next then E.delay (!next - now);
      let done_ =
        if k < per_worker then begin
          let session = session_of ~pid ~k in
          let home = Spool.shard_of pool ~session in
          let v = value_of ~pid ~k in
          enq_started.(home) <- enq_started.(home) + 1;
          Hashtbl.replace handed v session;
          Spool.enqueue pool ~session v;
          enq_completed.(home) <- enq_completed.(home) + 1;
          true
        end
        else begin
          let t0 = E.now () in
          match
            Spool.dequeue
              ~stop:(fun () -> E.now () - t0 > grace)
              pool ~session:collector
          with
          | Some v ->
              dequeued := v :: !dequeued;
              true
          | None ->
              incr starved;
              false
        end
      in
      if done_ then begin
        incr completed;
        Etrace.Histogram.add hist (E.now () - !next)
      end
    done
  in
  (* No abort horizon: availability (P2) plus the per-dequeue [grace]
     bound every request, so the run terminates on its own. *)
  let stats = Sim.run ~seed ~procs body in
  (* Residue probe: engine-level reads, quiescent one-processor run. *)
  let residue_by_shard =
    let r = ref [] in
    ignore (Sim.run ~seed ~procs:1 (fun _ -> r := Spool.residue_by_shard pool));
    !r
  in
  (* Attribute each dequeued value to the shard it lived in; values
     never handed out count as phantoms against shard 0. *)
  List.iter
    (fun v ->
      let s =
        match Hashtbl.find_opt handed v with
        | Some session -> Spool.shard_of pool ~session
        | None -> 0
      in
      deq_by_shard.(s) <- deq_by_shard.(s) + 1)
    !dequeued;
  let duplicates, phantoms =
    Analysis.Conservation.check_values ~enq_started:(Hashtbl.mem handed)
      !dequeued
  in
  let inputs =
    List.map2
      (fun s residue ->
        {
          Analysis.Conservation.enq_started = enq_started.(s);
          enq_completed = enq_completed.(s);
          dequeued = deq_by_shard.(s);
          (* Value-level safety is global (a stolen value legitimately
             surfaces far from its enqueuer's processor); attribute it
             to the combined ledger only. *)
          duplicates = 0;
          phantoms = 0;
          residue = Some residue;
          in_flight = 0;
        })
      (List.init shards Fun.id)
      residue_by_shard
  in
  let conservation_by_shard = List.map Analysis.Conservation.audit inputs in
  let combined = Analysis.Conservation.combine inputs in
  let conservation =
    Analysis.Conservation.audit { combined with duplicates; phantoms }
  in
  let steal = Spool.steal_stats pool in
  let end_clock = stats.Sim.end_clock in
  {
    regime = Arrivals.describe regime;
    regime_name = Arrivals.name regime;
    shards;
    steal_probes = (match steal_probes with Some p -> min p (shards - 1) | None -> shards - 1);
    policy = Adapt.policy_name policy;
    procs;
    width;
    sessions;
    requests;
    completed = !completed;
    starved = !starved;
    end_clock;
    throughput_per_m =
      (if end_clock = 0 then 0
       else
         int_of_float
           (float_of_int !completed *. 1e6 /. float_of_int end_clock));
    sojourn = Etrace.Histogram.summary hist;
    steal_empty_homes = steal.Spool.empty_homes;
    steal_probed = steal.Spool.probes;
    steal_hits = steal.Spool.steals;
    residue = List.fold_left ( + ) 0 residue_by_shard;
    residue_by_shard;
    conservation;
    conservation_by_shard;
    mem = stats;
  }

(* Stable one-line rendering (the determinism test compares these). *)
let format_point p =
  Printf.sprintf
    "%-28s shards %-2d p%-3d | thr %6d/M sojourn p50 %7d p90 %7d p99 %7d | \
     steals %d/%d probes | starved %d residue %d; %s"
    p.regime p.shards p.procs p.throughput_per_m p.sojourn.Etrace.Histogram.p50
    p.sojourn.Etrace.Histogram.p90 p.sojourn.Etrace.Histogram.p99 p.steal_hits
    p.steal_probed p.starved p.residue
    p.conservation.Analysis.Conservation.detail

let default_regimes ~mean_gap =
  [
    Arrivals.Poisson { mean_gap };
    Arrivals.Bursty { mean_gap; burst = 32; hot_factor = 8 };
    Arrivals.Diurnal { mean_gap; amplitude_pct = 80; period = 100_000 };
  ]

(* Defaults are the validated near-saturation operating point: 256
   workers (the paper's machine size) at mean gap 800 offer ~0.32
   req/cycle against a width-4 tree whose single-shard capacity is
   ~0.08 — the single tree collapses while 8 shards keep up. *)
let sweep ?seed ?procs ?width ?(shard_counts = [ 1; 8 ]) ?steal_probes ?policy
    ?grace ?sessions ?(regimes = default_regimes ~mean_gap:800) () =
  List.concat_map
    (fun regime ->
      List.map
        (fun shards ->
          run ?seed ?procs ?width ~shards ?steal_probes ?policy ?grace
            ?sessions ~regime ())
        shard_counts)
    regimes
