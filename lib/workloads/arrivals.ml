(* Arrival-process generators for the service workload (etrees.shard).

   Three request-arrival regimes over simulated cycles, all built on
   one private splitmix stream ({!Engine.Splitmix.stream}) so a
   generator is a pure function of (seed, stream index, draw count,
   now) — byte-replayable, never touching engine state:

   - [Poisson]: i.i.d. exponential gaps with the configured mean — the
     memoryless open-loop baseline.
   - [Bursty]: a Markov-modulated on/off process.  Requests arrive in
     bursts (geometric length, mean [burst]) at [hot_factor] times the
     base rate, separated by off-gaps sized so the long-run mean gap
     stays exactly [mean_gap] in expectation.
   - [Diurnal]: exponential gaps whose local mean follows
     [mean_gap / (1 + a sin(2 pi t / period))] — a slow sinusoidal
     "day"; over whole periods the mean rate is the base rate.

   All means are in simulated cycles per request (per generator). *)

type regime =
  | Poisson of { mean_gap : int }
  | Bursty of { mean_gap : int; burst : int; hot_factor : int }
  | Diurnal of { mean_gap : int; amplitude_pct : int; period : int }

let validate = function
  | Poisson { mean_gap } when mean_gap >= 1 -> ()
  | Bursty { mean_gap; burst; hot_factor }
    when mean_gap >= 1 && burst >= 1 && hot_factor >= 1 ->
      ()
  | Diurnal { mean_gap; amplitude_pct; period }
    when mean_gap >= 1 && amplitude_pct >= 0 && amplitude_pct < 100
         && period >= 1 ->
      ()
  | _ -> invalid_arg "Arrivals: nonsense regime parameters"

let mean_gap = function
  | Poisson { mean_gap } | Bursty { mean_gap; _ } | Diurnal { mean_gap; _ } ->
      float_of_int mean_gap

let name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"

let describe = function
  | Poisson { mean_gap } -> Printf.sprintf "poisson(gap %d)" mean_gap
  | Bursty { mean_gap; burst; hot_factor } ->
      Printf.sprintf "bursty(gap %d, burst %d, x%d)" mean_gap burst hot_factor
  | Diurnal { mean_gap; amplitude_pct; period } ->
      Printf.sprintf "diurnal(gap %d, amp %d%%, period %d)" mean_gap
        amplitude_pct period

(* CLI defaults: a pronounced but stable burst shape and a "day" short
   enough that any bench horizon covers many periods. *)
let of_name s ~mean_gap =
  match s with
  | "poisson" -> Some (Poisson { mean_gap })
  | "bursty" -> Some (Bursty { mean_gap; burst = 32; hot_factor = 8 })
  | "diurnal" ->
      Some (Diurnal { mean_gap; amplitude_pct = 80; period = 100_000 })
  | _ -> None

let known_names = [ "poisson"; "bursty"; "diurnal" ]

type t = {
  regime : regime;
  rng : Engine.Splitmix.t;
  mutable in_burst : int;  (* bursty: requests left in the current burst *)
}

let create ~seed ~stream regime =
  validate regime;
  { regime; rng = Engine.Splitmix.stream ~seed ~index:stream; in_burst = 0 }

(* Uniform in (0,1): top 53 bits, offset so log never sees 0. *)
let uniform t =
  let bits = Int64.shift_right_logical (Engine.Splitmix.next_int64 t.rng) 11 in
  (Int64.to_float bits +. 0.5) /. 9007199254740992.0

let exponential t ~mean =
  int_of_float (Float.round (-.mean *. log (uniform t)))

(* Geometric on {1, 2, ...} with the given mean. *)
let geometric t ~mean =
  if mean <= 1.0 then 1
  else
    let q = 1.0 -. (1.0 /. mean) in
    1 + int_of_float (log (uniform t) /. log q)

let next_gap t ~now =
  match t.regime with
  | Poisson { mean_gap } -> exponential t ~mean:(float_of_int mean_gap)
  | Bursty { mean_gap; burst; hot_factor } ->
      let mean = float_of_int mean_gap in
      let hot_gap = mean /. float_of_int hot_factor in
      if t.in_burst > 0 then begin
        t.in_burst <- t.in_burst - 1;
        exponential t ~mean:hot_gap
      end
      else begin
        let len = geometric t ~mean:(float_of_int burst) in
        t.in_burst <- len - 1;
        (* Off-gap mean chosen so a whole burst cycle averages
           [burst * mean_gap] cycles for [burst] requests. *)
        let off_mean = float_of_int burst *. (mean -. hot_gap) in
        exponential t ~mean:off_mean
      end
  | Diurnal { mean_gap; amplitude_pct; period } ->
      let a = float_of_int amplitude_pct /. 100.0 in
      let phase =
        2.0 *. Float.pi *. float_of_int (now mod period) /. float_of_int period
      in
      let local_mean = float_of_int mean_gap /. (1.0 +. (a *. sin phase)) in
      exponential t ~mean:local_mean
