(** Running workloads under tracing sinks: cycle attribution, plus
    optional Chrome/Perfetto export (see docs/TRACING.md). *)

type 'a traced = {
  value : 'a;  (** the thunk's own result *)
  attribution : Etrace.Attribution.summary;
  chrome : Etrace.Chrome.t option;
      (** present iff [chrome_level] was given; render with
          {!Etrace.Chrome.write} or {!Etrace.Chrome.contents} *)
}

val run : ?chrome_level:Etrace.Level.t -> procs:int -> (unit -> 'a) -> 'a traced
(** [run ~procs f] executes [f] with tracing installed and folds its
    event stream into a cycle-attribution summary.  [procs] must cover
    every simulated processor id [f] can spawn.  The previous trace
    state is restored on exit (including on exceptions); the simulated
    results of [f] are identical to an untraced run. *)
