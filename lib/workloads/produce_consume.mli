(** The produce-consume benchmark of §2.5.1 (Figures 7 and 8): each
    processor alternately enqueues, dequeues, and thinks U[0, workload]
    cycles, for [horizon] simulated cycles. *)

type point = {
  procs : int;
  throughput_per_m : int; (** produce+consume ops per 10^6 cycles *)
  latency : float;        (** average cycles per operation *)
  lat : Etrace.Histogram.summary;
      (** per-operation latency distribution (p50/p90/p99) *)
  ops : int;              (** raw operations completed in the window *)
  elim_rate : float option;
      (** eliminated/entries over all tree levels; [None] for methods
          without per-level stats *)
  races : int option;
      (** number of races the dynamic race detector reported; [None]
          unless the run was made with [~races:true] *)
  mem : Sim.stats;        (** engine-level op counters of the run *)
}

val run :
  ?seed:int ->
  ?horizon:int ->
  ?config:Sim.Memory.config ->
  ?races:bool ->
  workload:int ->
  procs:int ->
  (procs:int -> int Pool_obj.pool) ->
  point
(** Raises [Failure] if any processor failed to terminate (which would
    indicate a broken pool, cf. P1/P2).  With [~races:true] the whole
    run executes under {!Analysis.Race_detector} and the point's
    [races] field carries the race count. *)

val sweep :
  ?seed:int ->
  ?horizon:int ->
  ?config:Sim.Memory.config ->
  ?races:bool ->
  workload:int ->
  proc_counts:int list ->
  (procs:int -> int Pool_obj.pool) ->
  point list
