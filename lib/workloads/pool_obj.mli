(** First-class pool and counter objects over the simulator engine, so
    every method of the paper plugs into every benchmark. *)

type 'v pool = {
  name : string;
  enqueue : 'v -> unit;
  dequeue : stop:(unit -> bool) -> 'v option;
  stats_by_level : (unit -> Core.Elim_stats.t list) option;
      (** diagnostic hook; [None] for methods without a tree *)
  residue : (unit -> int) option;
      (** elements still buffered, exact when quiescent (engine-level
          reads: call inside a simulator run); [None] when the method
          cannot report one.  The chaos conservation audit probes
          this. *)
  adapt_by_level : (unit -> (int * int list) list list) option;
      (** current reactive [(spin, widths)] per balancer by depth
          (host-level reads, safe outside a run); [None] for static
          methods. *)
}

type counter = { cname : string; fetch_and_inc : unit -> int }

val pool :
  ?stats_by_level:(unit -> Core.Elim_stats.t list) ->
  ?residue:(unit -> int) ->
  ?adapt_by_level:(unit -> (int * int list) list list) ->
  name:string ->
  enqueue:('v -> unit) ->
  dequeue:(stop:(unit -> bool) -> 'v option) ->
  unit ->
  'v pool

val counter : name:string -> Sync.Counter.t -> counter
