(** Constructors for every method of the paper's evaluation (on the
    simulator engine, with the paper's parameters), plus the extension
    methods of the ablation/extra experiments. *)

(** Exposed functor instantiations, for callers that need the concrete
    structures (e.g. parameter sweeps). *)
module E = Sim.Engine

module Epool : module type of Core.Elim_pool.Make (E)
module Estack : module type of Core.Elim_stack.Make (E)
module Mcs_counter : module type of Sync.Mcs_counter.Make (E)
module Naive_counter : module type of Sync.Naive_counter.Make (E)
module Ctree : module type of Sync.Combining_tree.Make (E)
module Dtree : module type of Baselines.Diff_tree.Make (E)
module Central : module type of Baselines.Central_pool.Make (E)
module Rsu : module type of Baselines.Rsu.Make (E)
module Treiber : module type of Extras.Treiber_stack.Make (E)
module Eb_stack : module type of Extras.Eb_stack.Make (E)
module Bitonic : module type of Baselines.Bitonic_network.Make (E)
module Ws : module type of Baselines.Work_stealing.Make (E)
module Spool : module type of Shard.Shard_pool.Make (E)

val pow2_ceil : int -> int
val ctree_width : procs:int -> int

(** {2 The paper's methods} *)

val etree_pool : ?width:int -> procs:int -> unit -> int Pool_obj.pool

val etree_pool_spin :
  ?width:int -> spin_base:int -> procs:int -> unit -> int Pool_obj.pool
(** The elimination-tree pool on an alternative static spin schedule
    ("Etree-w/s<base>") — the hand-tuning axis the reactive controller
    competes against (EXPERIMENTS.md A1). *)

val etree_pool_reactive :
  ?width:int -> ?config:Adapt.config -> procs:int -> unit -> int Pool_obj.pool
(** "Etree-w/adapt": reactive spin windows and prism widths
    (docs/ADAPTIVE.md); the pool exposes [adapt_by_level]. *)

val estack_pool :
  ?width:int -> ?policy:Adapt.policy -> procs:int -> unit -> int Pool_obj.pool
val mcs_pool : procs:int -> unit -> int Pool_obj.pool
val ctree_pool : ?tree_procs:int -> procs:int -> unit -> int Pool_obj.pool
val dtree_pool : ?width:int -> procs:int -> unit -> int Pool_obj.pool
val rsu_pool : ?machine:int -> procs:int -> unit -> int Pool_obj.pool

val produce_consume_methods : (procs:int -> int Pool_obj.pool) list
(** Figure 7/8 columns: Etree-32, MCS, Ctree-n, Dtree-32. *)

val distribution_methods : (procs:int -> int Pool_obj.pool) list
(** Figure 10 columns: Etree-32, MCS, Ctree-256, RSU. *)

val counting_methods : (procs:int -> Pool_obj.counter) list
(** Figure 9 columns: Dtree-32+MulPri, MCS, Ctree-n, Dtree-32,
    Dtree-64. *)

(** {2 Extension methods (see EXPERIMENTS.md)} *)

val etree_pool_no_elim : ?width:int -> procs:int -> unit -> int Pool_obj.pool
val etree_pool_single_prism :
  ?width:int -> procs:int -> unit -> int Pool_obj.pool
val eb_stack_pool : procs:int -> unit -> int Pool_obj.pool
val treiber_pool : procs:int -> unit -> int Pool_obj.pool
val naive_counter : procs:int -> Pool_obj.counter
val bitonic_counter :
  ?kind:[ `Bitonic | `Periodic ] ->
  ?width:int ->
  procs:int ->
  unit ->
  Pool_obj.counter
val ws_pool : ?machine:int -> procs:int -> unit -> int Pool_obj.pool

val shard_pool :
  ?shards:int -> ?width:int -> procs:int -> unit -> int Pool_obj.pool
(** "Shard-nxw": the sharded frontend (lib/shard, docs/SHARDING.md) as
    a plain pool — enqueues route by value, dequeues by a rotating
    collector id, so the steal path carries the imbalance and chaos
    fault plans can target individual shards. *)

val ablation_methods : (procs:int -> int Pool_obj.pool) list
val width_methods : (procs:int -> int Pool_obj.pool) list
val distribution_extra_methods : (procs:int -> int Pool_obj.pool) list
val counting_extra_methods : (procs:int -> Pool_obj.counter) list

(** {2 Named registries}

    The single source of truth mapping CLI method names to
    constructors, shared by [bin/etrees_run] and the chaos
    experiment. *)

val pool_registry : (string * (procs:int -> int Pool_obj.pool)) list
val pool_method : string -> (procs:int -> int Pool_obj.pool) option
val pool_method_names : string list

val counter_registry : (string * (procs:int -> Pool_obj.counter)) list
val counter_method : string -> (procs:int -> Pool_obj.counter) option
val counter_method_names : string list
