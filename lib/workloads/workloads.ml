(** Benchmark workloads reproducing every experiment of the paper's
    evaluation (§2.5, §3), all running on the deterministic simulator:

    - {!Produce_consume} — Figures 7 and 8 (throughput & latency vs.
      concurrency at several think-time workloads);
    - {!Table1} — Table 1 (per-level elimination fractions) and the
      derived expected-depth numbers of §2.5.1;
    - {!Counting} — Figure 9 (fetch&increment throughput; no
      elimination possible);
    - {!Queens} — Figure 10 left (10-queens job distribution);
    - {!Response_time} — Figure 10 right (sparse producer/consumer
      handoff);
    - {!Chaos} — the etrees.faults robustness sweep (degradation under
      deterministic fault plans, with conservation and termination
      audits);
    - {!Arrivals}/{!Service} — the etrees.shard service frontend:
      Poisson/bursty/diurnal session arrivals against a sharded
      elimination-tree pool, with SLO percentiles and a composed
      conservation audit (docs/SHARDING.md);
    - {!Methods} — constructors for every compared method with the
      paper's parameters, plus the named method registries;
    - {!Pool_obj} — first-class pool/counter plumbing;
    - {!Report} — plain-text tables and JSON emission;
    - {!Traced} — running any of the above under tracing sinks
      (cycle attribution, Chrome/Perfetto export). *)

module Pool_obj = Pool_obj
module Methods = Methods
module Arrivals = Arrivals
module Service = Service
module Produce_consume = Produce_consume
module Chaos = Chaos
module Counting = Counting
module Queens = Queens
module Response_time = Response_time
module Table1 = Table1
module Lifo_fidelity = Lifo_fidelity
module Load_sweep = Load_sweep
module Adapt_sweep = Adapt_sweep
module Report = Report
module Traced = Traced
