(** The response-time benchmark of §2.5.3 (Fig. 10 right): n/2
    enqueuers each post one element and wait for it to be consumed
    before the next (no pipelining); n/2 dequeuers; ends after [total]
    elements.  The regime where randomized local piles pay Θ(n). *)

type point = {
  procs : int;
  elapsed : int;
  normalized : float; (** elapsed / (dequeues per dequeuer) *)
  consumed : int;
  rt : Etrace.Histogram.summary;
      (** per-element response times (enqueue to dequeue, cycles) *)
}

val run :
  ?seed:int ->
  ?total:int ->
  procs:int ->
  (procs:int -> int Pool_obj.pool) ->
  point
(** [procs] must be even and >= 2. *)

val sweep :
  ?seed:int ->
  ?total:int ->
  proc_counts:int list ->
  (procs:int -> int Pool_obj.pool) ->
  point list
