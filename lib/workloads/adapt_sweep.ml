(* A1 — the adaptive crossover (docs/ADAPTIVE.md, EXPERIMENTS.md §A1).

   The paper's static tuning is one point on a hand-tuning axis: longer
   spin windows buy elimination at saturation and cost pure latency
   when the tree is lightly loaded.  This sweep makes the trade
   explicit — produce-consume at a fixed processor count across
   think-time workloads (load falls as think time grows), comparing
   hand-tuned static schedules (spin bases along the axis) against the
   one reactive configuration.  The headline shape, asserted by
   test/test_bench_shapes.ml over the emitted BENCH_adapt.json:

   - at saturation (workload 0) the reactive tree stays within a few
     percent of the best static schedule;
   - at the lowest load (largest think time) it beats every static
     schedule on latency, because the controller has shrunk the spin
     windows nobody was colliding in. *)

type point = {
  method_name : string;
  reactive : bool;
  workload : int; (* think time bound, cycles (load falls as it grows) *)
  procs : int;
  throughput_per_m : int;
  latency : float;
  lat : Etrace.Histogram.summary;
  elim_rate : float option;
  final_adapt : (int * int list) list list option;
      (* reactive only: per-depth (spin, widths) at the end of the run *)
}

type method_spec = {
  label : string;
  reactive : bool;
  make : procs:int -> int Pool_obj.pool;
}

(* The hand-tuning axis: the paper's base (64) bracketed by a short and
   a long window. *)
let default_spin_bases = [ 16; 64; 256 ]

let methods ?(width = 32) ?(spin_bases = default_spin_bases)
    ?(config = Adapt.default) () =
  List.map
    (fun spin_base ->
      {
        label = Printf.sprintf "Etree-%d/s%d" width spin_base;
        reactive = false;
        make = (fun ~procs -> Methods.etree_pool_spin ~width ~spin_base ~procs ());
      })
    spin_bases
  @ [
      {
        label = Printf.sprintf "Etree-%d/adapt" width;
        reactive = true;
        make = (fun ~procs -> Methods.etree_pool_reactive ~width ~config ~procs ());
      };
    ]

let run_point ?seed ?horizon ~procs ~workload (spec : method_spec) =
  (* Capture the pool [Produce_consume.run] builds so the reactive
     state can be read back after the run (host-level reads). *)
  let captured = ref None in
  let make ~procs =
    let p = spec.make ~procs in
    captured := Some p;
    p
  in
  let pt = Produce_consume.run ?seed ?horizon ~workload ~procs make in
  let pool = Option.get !captured in
  {
    method_name = spec.label;
    reactive = spec.reactive;
    workload;
    procs;
    throughput_per_m = pt.Produce_consume.throughput_per_m;
    latency = pt.Produce_consume.latency;
    lat = pt.Produce_consume.lat;
    elim_rate = pt.Produce_consume.elim_rate;
    final_adapt = Option.map (fun f -> f ()) pool.Pool_obj.adapt_by_level;
  }

(* The think-time axis: saturation down to near-idle. *)
let default_workloads = [ 0; 500; 2_000; 8_000; 16_000 ]

let sweep ?seed ?horizon ?(workloads = default_workloads) ~procs specs =
  List.map
    (fun spec ->
      List.map
        (fun workload -> run_point ?seed ?horizon ~procs ~workload spec)
        workloads)
    specs

(* ------------------------------------------------------------------ *)
(* Shape predicates (shared by the bench text report and the           *)
(* regression test over BENCH_adapt.json)                              *)
(* ------------------------------------------------------------------ *)

let at_workload w = List.filter (fun p -> p.workload = w)

let workload_axis points =
  List.sort_uniq compare (List.map (fun p -> p.workload) points)

let split (points : point list) =
  ( List.filter (fun (p : point) -> p.reactive) points,
    List.filter (fun (p : point) -> not p.reactive) points )

(* Saturation (the smallest workload): reactive throughput within
   [tolerance_pct] percent of the best static schedule. *)
let saturation_ok ?(tolerance_pct = 5) points =
  match workload_axis points with
  | [] -> false
  | w :: _ -> (
      let reactive, statics = split (at_workload w points) in
      match (reactive, statics) with
      | [ r ], _ :: _ ->
          let best =
            List.fold_left (fun acc p -> max acc p.throughput_per_m) 0 statics
          in
          r.throughput_per_m * 100 >= best * (100 - tolerance_pct)
      | _ -> false)

(* Lowest load (the largest workload): reactive latency strictly below
   every static schedule's. *)
let low_load_ok points =
  match List.rev (workload_axis points) with
  | [] -> false
  | w :: _ -> (
      let reactive, statics = split (at_workload w points) in
      match (reactive, statics) with
      | [ r ], _ :: _ ->
          List.for_all (fun s -> r.latency < s.latency) statics
      | _ -> false)
