(* The produce-consume benchmark of §2.5.1 (Figures 7 and 8).

   Each processor alternately enqueues a fresh element, dequeues one,
   and waits a uniform random number of cycles in [0, workload]; the run
   lasts [horizon] simulated cycles.  Reported: throughput (operations
   completed, normalized to operations per 10^6 cycles) and latency
   (average cycles per produce/consume operation). *)

module E = Sim.Engine

type point = {
  procs : int;
  throughput_per_m : int; (* produce+consume ops per 10^6 cycles *)
  latency : float;        (* average cycles per operation *)
  lat : Etrace.Histogram.summary; (* per-operation latency distribution *)
  ops : int;              (* raw operations completed in the window *)
  elim_rate : float option; (* eliminated/entries over all levels *)
  races : int option;     (* Some n when run under the race detector *)
  mem : Sim.stats;        (* engine-level op counters, see Report.ops *)
}

(* Overall elimination fraction of the run, when the method exposes
   per-level stats (trees only). *)
let elim_rate_of (pool : _ Pool_obj.pool) =
  match pool.Pool_obj.stats_by_level with
  | None -> None
  | Some stats ->
      Some (Core.Elim_stats.elimination_fraction (Core.Elim_stats.merge (stats ())))

let run_plain ~seed ~horizon ?config ~workload ~procs
    (make : procs:int -> int Pool_obj.pool) =
  let pool = make ~procs in
  let ops = ref 0 in
  let lat = Etrace.Histogram.create () in
  let record t0 =
    let t1 = E.now () in
    if t1 <= horizon then begin
      incr ops;
      Etrace.Histogram.add lat (t1 - t0)
    end
  in
  let stats =
    Sim.run ~seed ?config ~procs ~abort_after:((horizon * 4) + 2_000_000)
      (fun p ->
        let i = ref 0 in
        while E.now () < horizon do
          (* produce *)
          let t0 = E.now () in
          pool.Pool_obj.enqueue ((p * 1_000_000) + !i);
          incr i;
          record t0;
          (* consume: always succeeds eventually because every processor
             enqueues before it dequeues (P2). *)
          let t0 = E.now () in
          (match pool.Pool_obj.dequeue ~stop:(fun () -> false) with
          | Some _ -> ()
          | None -> assert false);
          record t0;
          if workload > 0 then E.delay (E.random_int (workload + 1))
        done)
  in
  if stats.aborted_procs > 0 then
    failwith
      (Printf.sprintf "produce-consume: %d processors stuck (method %s)"
         stats.aborted_procs pool.Pool_obj.name);
  {
    procs;
    throughput_per_m =
      int_of_float (float_of_int !ops *. 1e6 /. float_of_int horizon);
    latency = Etrace.Histogram.mean lat;
    lat = Etrace.Histogram.summary lat;
    ops = !ops;
    elim_rate = elim_rate_of pool;
    races = None;
    mem = stats;
  }

(* [races] reruns nothing: the whole simulated run executes under the
   race detector's tracer, and the point carries the race count
   (etrees.analysis, dynamic prong). *)
let run ?(seed = 1) ?(horizon = 200_000) ?config ?(races = false) ~workload
    ~procs make =
  if races then begin
    let point, report =
      Analysis.Race_detector.run (fun () ->
          run_plain ~seed ~horizon ?config ~workload ~procs make)
    in
    { point with races = Some (List.length report.Analysis.Race_detector.races) }
  end
  else run_plain ~seed ~horizon ?config ~workload ~procs make

(* Sweep processor counts for one method. *)
let sweep ?seed ?horizon ?config ?races ~workload ~proc_counts make =
  List.map
    (fun procs -> run ?seed ?horizon ?config ?races ~workload ~procs make)
    proc_counts
