(** The counting benchmark of §2.5.2 (Figure 9): fetch&increment in a
    loop until the horizon; elimination never fires, isolating the
    diffraction machinery. *)

type point = {
  procs : int;
  throughput_per_m : int;
  ops : int;
  mem : Sim.stats;  (** engine-level operation counters of the run *)
}

val run :
  ?seed:int ->
  ?horizon:int ->
  procs:int ->
  (procs:int -> Pool_obj.counter) ->
  point

val sweep :
  ?seed:int ->
  ?horizon:int ->
  proc_counts:int list ->
  (procs:int -> Pool_obj.counter) ->
  point list
