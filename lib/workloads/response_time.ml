(* The response-time benchmark of §2.5.3 (Fig. 10, right): sparse
   producer/consumer handoff.

   n/2 processors are enqueuers and n/2 dequeuers.  Each enqueuer
   repeatedly enqueues one element and then waits until that very
   element has been dequeued before enqueuing the next (no pipelining).
   The run ends when [total] elements (2560 in the paper) have been
   dequeued; the metric is the elapsed time normalized by the number of
   dequeues each dequeuer performed.  This is where the deterministic
   O(log w) routing of elimination trees crushes the randomized local
   piles: RSU dequeuers must find the few populated piles by luck.

   Besides the paper's normalized-elapsed metric, each element's
   individual response time (enqueue to dequeue, in cycles) feeds a
   log-bucketed histogram ({!Etrace.Histogram}), so the report can show
   p50/p90/p99 instead of only the average-shaped normalization. *)

module E = Sim.Engine

type point = {
  procs : int;
  elapsed : int;
  normalized : float; (* elapsed / (dequeues per dequeuer) *)
  consumed : int;
  rt : Etrace.Histogram.summary; (* per-element response times *)
}

let run ?(seed = 1) ?(total = 2560) ~procs
    (make : procs:int -> int Pool_obj.pool) =
  if procs < 2 || procs mod 2 <> 0 then
    invalid_arg "Response_time.run: procs must be even and >= 2";
  let pool = make ~procs in
  let enqueuers = procs / 2 in
  let consumed = ref 0 in
  let finish_time = ref 0 in
  let stop () = !consumed >= total in
  (* One flag per in-flight element, indexed by enqueuer. *)
  let taken = Array.make enqueuers false in
  (* Host-side response-time bookkeeping: enqueue stamp per in-flight
     element, histogram of dequeue-minus-enqueue times. *)
  let enq_time = Array.make enqueuers 0 in
  let rt = Etrace.Histogram.create () in
  let stats =
    Sim.run ~seed ~procs ~abort_after:2_000_000_000 (fun p ->
        if p < enqueuers then begin
          (* Enqueuer: element id = its own index; wait for handoff. *)
          let rec produce () =
            if not (stop ()) then begin
              taken.(p) <- false;
              enq_time.(p) <- E.now ();
              pool.Pool_obj.enqueue p;
              let rec await () =
                if (not taken.(p)) && not (stop ()) then begin
                  E.delay 32;
                  await ()
                end
              in
              await ();
              produce ()
            end
          in
          produce ()
        end
        else begin
          let rec consume () =
            if not (stop ()) then begin
              (match pool.Pool_obj.dequeue ~stop with
              | Some id ->
                  incr consumed;
                  Etrace.Histogram.add rt (E.now () - enq_time.(id));
                  if stop () then finish_time := E.now ();
                  taken.(id) <- true
              | None -> ());
              consume ()
            end
          in
          consume ()
        end)
  in
  ignore stats;
  if !consumed < total then
    failwith
      (Printf.sprintf "response-time: only %d/%d consumed (method %s)"
         !consumed total pool.Pool_obj.name);
  let per_dequeuer = float_of_int total /. float_of_int (procs / 2) in
  {
    procs;
    elapsed = !finish_time;
    normalized = float_of_int !finish_time /. per_dequeuer;
    consumed = !consumed;
    rt = Etrace.Histogram.summary rt;
  }

let sweep ?seed ?total ~proc_counts make =
  List.map (fun procs -> run ?seed ?total ~procs make) proc_counts
