(** A1 — the adaptive crossover (docs/ADAPTIVE.md): produce-consume at
    a fixed processor count across think-time workloads, hand-tuned
    static spin schedules versus the reactive controller.  Emitted as
    BENCH_adapt.json by [bench/main.exe adapt] and shape-checked by
    test/test_bench_shapes.ml. *)

type point = {
  method_name : string;
  reactive : bool;
  workload : int;  (** think-time bound, cycles; load falls as it grows *)
  procs : int;
  throughput_per_m : int;
  latency : float;
  lat : Etrace.Histogram.summary;
  elim_rate : float option;
  final_adapt : (int * int list) list list option;
      (** reactive only: per-depth [(spin, widths)] after the run *)
}

type method_spec = {
  label : string;
  reactive : bool;
  make : procs:int -> int Pool_obj.pool;
}

val default_spin_bases : int list
val default_workloads : int list

val methods :
  ?width:int ->
  ?spin_bases:int list ->
  ?config:Adapt.config ->
  unit ->
  method_spec list
(** Static "Etree-w/s<base>" columns for each spin base plus one
    reactive "Etree-w/adapt" column. *)

val run_point :
  ?seed:int ->
  ?horizon:int ->
  procs:int ->
  workload:int ->
  method_spec ->
  point

val sweep :
  ?seed:int ->
  ?horizon:int ->
  ?workloads:int list ->
  procs:int ->
  method_spec list ->
  point list list
(** One inner list per method, across the workload axis. *)

(** {2 Shape predicates} (shared with the regression test) *)

val saturation_ok : ?tolerance_pct:int -> point list -> bool
(** At the smallest workload: reactive throughput within
    [tolerance_pct] (default 5) percent of the best static schedule.
    [false] when the reactive or static columns are missing. *)

val low_load_ok : point list -> bool
(** At the largest workload: reactive latency strictly below every
    static schedule's. *)
