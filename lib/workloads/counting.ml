(* The counting benchmark of §2.5.2 (Figure 9): every processor loops
   fetch&increment until the horizon.  No anti-tokens, so elimination
   never fires — this isolates the diffraction machinery, comparing the
   original single-prism diffracting balancer against this paper's
   multi-layered prisms, plus the MCS and combining-tree counters. *)

module E = Sim.Engine

type point = {
  procs : int;
  throughput_per_m : int;
  ops : int;
  mem : Sim.stats; (* engine-level operation counters, see Report.ops *)
}

let run ?(seed = 1) ?(horizon = 200_000) ~procs
    (make : procs:int -> Pool_obj.counter) =
  let counter = make ~procs in
  let ops = ref 0 in
  let stats =
    Sim.run ~seed ~procs ~abort_after:((horizon * 4) + 2_000_000) (fun _ ->
        while E.now () < horizon do
          let _ = counter.Pool_obj.fetch_and_inc () in
          if E.now () <= horizon then incr ops
        done)
  in
  if stats.aborted_procs > 0 then
    failwith
      (Printf.sprintf "counting: %d processors stuck (method %s)"
         stats.aborted_procs counter.Pool_obj.cname);
  {
    procs;
    throughput_per_m =
      int_of_float (float_of_int !ops *. 1e6 /. float_of_int horizon);
    ops = !ops;
    mem = stats;
  }

let sweep ?seed ?horizon ~proc_counts make =
  List.map (fun procs -> run ?seed ?horizon ~procs make) proc_counts
