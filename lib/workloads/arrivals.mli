(** Arrival-process generators for the service workload
    (docs/SHARDING.md): Poisson, bursty (Markov-modulated on/off) and
    diurnal (sinusoidal-rate) request streams over simulated cycles.

    A generator is seed-deterministic (a private
    {!Engine.Splitmix.stream}, no engine state), so runs replay
    byte-identically; every regime's long-run mean gap is its
    configured [mean_gap] (in expectation; the qcheck tests pin the
    tolerance). *)

type regime =
  | Poisson of { mean_gap : int }
  | Bursty of { mean_gap : int; burst : int; hot_factor : int }
      (** bursts of geometric mean length [burst] at [hot_factor] times
          the base rate, with compensating off-gaps *)
  | Diurnal of { mean_gap : int; amplitude_pct : int; period : int }
      (** local rate [(1 + a sin(2 pi t / period)) / mean_gap],
          [a = amplitude_pct / 100 < 1] *)

val mean_gap : regime -> float
(** The configured long-run mean gap, cycles per request. *)

val name : regime -> string
(** The regime class: ["poisson" | "bursty" | "diurnal"]. *)

val describe : regime -> string
(** Stable rendering with parameters. *)

val of_name : string -> mean_gap:int -> regime option
(** CLI lookup by {!name}, with default shape parameters (burst 32 at
    x8 for bursty; 80%% amplitude, period 100k for diurnal). *)

val known_names : string list

type t

val create : seed:int -> stream:int -> regime -> t
(** An independent generator on stream [stream] of [seed]
    ({!Engine.Splitmix.stream}).  Raises [Invalid_argument] on
    nonsense parameters (mean/burst/factor/period < 1, amplitude
    outside [0, 100)). *)

val next_gap : t -> now:int -> int
(** Cycles until this generator's next request, given the current
    clock (diurnal reads the phase from [now]). *)
