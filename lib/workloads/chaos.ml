(* The robustness sweep (etrees.faults): the produce-consume workload
   of §2.5.1 run under a deterministic fault plan, with a full ledger of
   values so the run can be audited afterwards.

   Unlike {!Produce_consume}, an aborted processor is data here, not a
   bug: crashes strand elements and stalls starve dequeuers, and the
   point of the experiment is to quantify how gracefully each method
   degrades.  Every point carries a conservation audit (no element lost
   or duplicated) and a termination-bound verdict (the paper's O(log w)
   balancer-step claim, checked in aggregate). *)

module E = Sim.Engine

type point = {
  method_name : string;
  procs : int;
  plan : string;            (* Fault_plan.describe, stable *)
  ops : int;                (* ops completed inside the window *)
  started : int;            (* pool ops issued, completed or not *)
  throughput_per_m : int;
  latency : float;
  elim_rate : float option;
  starved : int;            (* dequeues that gave up empty-handed *)
  crashed : int;
  stuck : int;              (* aborted (non-crashed) processors *)
  end_clock : int;
  races : int option;       (* Some n when run under the race detector *)
  mem : Sim.stats;
  conservation : Analysis.Conservation.report;
  termination : Faults.Termination.verdict;
}

let default_methods =
  [ "etree"; "estack"; "mcs"; "ctree"; "dtree32"; "shard4" ]

let run_plain ?(seed = 1) ?(horizon = 50_000) ?config ?(grace = 25_000)
    ?(workload = 50) ~plan ~procs (make : procs:int -> int Pool_obj.pool) =
  let pool = make ~procs in
  (* The workload's own ledger: which values were handed to enqueue,
     which enqueues returned, which values dequeues produced. *)
  let enq_started = ref 0 in
  let enq_completed = ref 0 in
  let handed = Hashtbl.create 1024 in
  let deq_started = ref 0 in
  let dequeued = ref [] in
  let starved = ref 0 in
  let ops = ref 0 in
  let latency_total = ref 0 in
  let record t0 =
    let t1 = E.now () in
    if t1 <= horizon then begin
      incr ops;
      latency_total := !latency_total + (t1 - t0)
    end
  in
  let stats =
    Faults.Inject.run ~seed ?config
      ~abort_after:((horizon * 4) + 2_000_000)
      ~plan ~procs
      (fun p ->
        let i = ref 0 in
        while E.now () < horizon do
          let v = (p * 1_000_000) + !i in
          incr i;
          let t0 = E.now () in
          incr enq_started;
          Hashtbl.replace handed v ();
          pool.Pool_obj.enqueue v;
          incr enq_completed;
          record t0;
          let t0 = E.now () in
          incr deq_started;
          (* A peer may have crashed between its ticket and its element:
             give up once well past the window instead of spinning. *)
          (match
             pool.Pool_obj.dequeue ~stop:(fun () -> E.now () > horizon + grace)
           with
          | Some v -> dequeued := v :: !dequeued
          | None -> incr starved);
          record t0;
          if workload > 0 then E.delay (E.random_int (workload + 1))
        done)
  in
  (* Residue probe: engine-level reads, so run it as a quiescent
     one-processor simulation after the faulty run. *)
  let residue =
    match pool.Pool_obj.residue with
    | None -> None
    | Some f ->
        let r = ref 0 in
        ignore (Sim.run ~seed ~procs:1 (fun _ -> r := f ()));
        Some !r
  in
  let levels, entries =
    match pool.Pool_obj.stats_by_level with
    | None -> (None, None)
    | Some stats ->
        let per_level = stats () in
        ( Some (List.length per_level),
          Some (Core.Elim_stats.entries (Core.Elim_stats.merge per_level)) )
  in
  let started = !enq_started + !deq_started in
  let termination =
    Faults.Termination.check ?levels ?entries ~started
      ~stuck:stats.Sim.aborted_procs ()
  in
  let duplicates, phantoms =
    Analysis.Conservation.check_values
      ~enq_started:(Hashtbl.mem handed)
      !dequeued
  in
  let conservation =
    Analysis.Conservation.audit
      {
        enq_started = !enq_started;
        enq_completed = !enq_completed;
        dequeued = List.length !dequeued;
        duplicates;
        phantoms;
        residue;
        in_flight = stats.Sim.crashed_procs + stats.Sim.aborted_procs;
      }
  in
  let latency =
    if !ops = 0 then 0.0
    else float_of_int !latency_total /. float_of_int !ops
  in
  {
    method_name = pool.Pool_obj.name;
    procs;
    plan = Faults.Fault_plan.describe plan;
    ops = !ops;
    started;
    throughput_per_m =
      int_of_float (float_of_int !ops *. 1e6 /. float_of_int horizon);
    latency;
    elim_rate =
      (match pool.Pool_obj.stats_by_level with
      | None -> None
      | Some stats ->
          Some
            (Core.Elim_stats.elimination_fraction
               (Core.Elim_stats.merge (stats ()))));
    starved = !starved;
    crashed = stats.Sim.crashed_procs;
    stuck = stats.Sim.aborted_procs;
    end_clock = stats.Sim.end_clock;
    races = None;
    mem = stats;
    conservation;
    termination;
  }

let run ?seed ?horizon ?config ?grace ?workload ?(races = false) ~plan ~procs
    make =
  if races then begin
    let point, report =
      Analysis.Race_detector.run (fun () ->
          run_plain ?seed ?horizon ?config ?grace ?workload ~plan ~procs make)
    in
    { point with races = Some (List.length report.Analysis.Race_detector.races) }
  end
  else run_plain ?seed ?horizon ?config ?grace ?workload ~plan ~procs make

(* Stable one-line rendering: the determinism regression test compares
   these byte-for-byte across repeated runs. *)
let format_point p =
  let elim =
    match p.elim_rate with
    | None -> "-"
    | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
  in
  let races =
    match p.races with None -> "" | Some n -> Printf.sprintf " races %d;" n
  in
  Printf.sprintf
    "%-16s p%-3d | thr %6d/M lat %7.1f elim %6s | starved %d crashed %d \
     stuck %d;%s conservation %s; termination %s"
    p.method_name p.procs p.throughput_per_m p.latency elim p.starved
    p.crashed p.stuck races p.conservation.Analysis.Conservation.detail
    (Faults.Termination.format p.termination)

let resolve name =
  match Methods.pool_method name with
  | Some make -> make
  | None ->
      invalid_arg
        (Printf.sprintf "Chaos: unknown method %S (known: %s)" name
           (String.concat ", " Methods.pool_method_names))

let sweep ?(seed = 1) ?(fault_seed = 7) ?horizon ?config ?grace ?workload
    ?races ?(methods = default_methods) ~procs () =
  let horizon_v = match horizon with Some h -> h | None -> 50_000 in
  List.map
    (fun level ->
      let plan =
        Faults.Fault_plan.ladder ~seed:fault_seed ~procs ~horizon:horizon_v
          ~level
      in
      let points =
        List.map
          (fun name ->
            run ~seed ?horizon ?config ?grace ?workload ?races ~plan ~procs
              (resolve name))
          methods
      in
      (level, Faults.Fault_plan.level_label level, points))
    (List.init Faults.Fault_plan.ladder_levels Fun.id)
