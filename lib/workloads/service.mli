(** The service-frontend workload (docs/SHARDING.md): a bounded pool of
    simulated workers multiplexing client sessions against a
    {!Shard.Shard_pool} frontend, under {!Arrivals} request regimes.

    Each session submits one job (enqueue, routed by its session id)
    and the worker pool drains one job per session (dequeue, routed by
    the worker's collector id, stealing on an empty home); workers
    serve their open-loop arrival schedules sequentially, so backlog
    shows up as sojourn (completion minus scheduled arrival), reported
    as SLO p50/p90/p99.  Every run carries
    a per-shard conservation audit composed into the whole-frontend
    ledger with {!Analysis.Conservation.combine}. *)

type point = {
  regime : string;
  regime_name : string;
  shards : int;
  steal_probes : int;
  policy : string;
  procs : int;
  width : int;
  sessions : int;
  requests : int;
  completed : int;
  starved : int;
  end_clock : int;
  throughput_per_m : int;
  sojourn : Etrace.Histogram.summary;
  steal_empty_homes : int;
  steal_probed : int;
  steal_hits : int;
  residue : int;
  residue_by_shard : int list;
  conservation : Analysis.Conservation.report;
  conservation_by_shard : Analysis.Conservation.report list;
  mem : Sim.stats;
}

val run :
  ?seed:int ->
  ?procs:int ->
  ?width:int ->
  ?shards:int ->
  ?steal_probes:int ->
  ?policy:Adapt.policy ->
  ?grace:int ->
  ?sessions:int ->
  regime:Arrivals.regime ->
  unit ->
  point
(** One point: [sessions] (rounded to a multiple of [procs]; default
    10k) sessions of two requests each over [shards] pools of the
    given [width] (defaults 256 procs, width 4 — the near-saturation
    operating point of docs/SHARDING.md).  [grace] bounds how long a
    dequeue waits before counting as starved (default 500k cycles);
    [steal_probes]/[policy] pass through to
    {!Shard.Shard_pool.Make.create}. *)

val format_point : point -> string
(** Stable one-line rendering (byte-compared by the determinism
    test). *)

val default_regimes : mean_gap:int -> Arrivals.regime list
(** Poisson, bursty (32 @ x8) and diurnal (80%%, period 100k). *)

val sweep :
  ?seed:int ->
  ?procs:int ->
  ?width:int ->
  ?shard_counts:int list ->
  ?steal_probes:int ->
  ?policy:Adapt.policy ->
  ?grace:int ->
  ?sessions:int ->
  ?regimes:Arrivals.regime list ->
  unit ->
  point list
(** The cross product regimes (default {!default_regimes} at mean gap
    800) x shard counts (default [[1; 8]]), one {!run} each. *)
