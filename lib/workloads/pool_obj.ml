(* First-class pool and counter objects over the simulator engine, so
   every method of the paper plugs into every benchmark. *)

type 'v pool = {
  name : string;
  enqueue : 'v -> unit;
  dequeue : stop:(unit -> bool) -> 'v option;
  (* Diagnostic hooks; None for methods without an elimination tree
     (stats) or without an inspectable buffer (residue). *)
  stats_by_level : (unit -> Core.Elim_stats.t list) option;
  residue : (unit -> int) option;
  adapt_by_level : (unit -> (int * int list) list list) option;
  (* current reactive (spin, widths) per balancer by depth; None for
     static methods.  Host-level reads: safe outside a run too. *)
}

type counter = { cname : string; fetch_and_inc : unit -> int }

let pool ?stats_by_level ?residue ?adapt_by_level ~name ~enqueue ~dequeue () =
  { name; enqueue; dequeue; stats_by_level; residue; adapt_by_level }

let counter ~name (c : Sync.Counter.t) =
  { cname = name; fetch_and_inc = c.Sync.Counter.fetch_and_inc }
