(** The stack-flavoured sharded frontend: {!Shard_pool}'s routing and
    steal protocol over {!Core.Elim_stack} shards.  LIFO order is per
    shard (and, like elimination itself, best-effort under
    concurrency); the frontend guarantees pool semantics. *)

module Make (E : Engine.S) : sig
  type 'v t

  type steal_stats = {
    empty_homes : int;
    probes : int;
    steals : int;
  }

  val create :
    ?config:Core.Tree_config.t ->
    ?policy:Adapt.policy ->
    ?eliminate:bool ->
    ?leaf_size:int ->
    ?steal_probes:int ->
    ?hash_seed:int ->
    capacity:int ->
    width:int ->
    shards:int ->
    unit ->
    'v t
  (** See {!Shard_pool.Make.create}. *)

  val shard_count : 'v t -> int
  val width : 'v t -> int
  val shard_of : 'v t -> session:int -> int
  val push : 'v t -> session:int -> 'v -> unit

  val pop : ?stop:(unit -> bool) -> 'v t -> session:int -> 'v option
  (** See {!Shard_pool.Make.dequeue} for the steal and [stop]
      contract. *)

  val residue : 'v t -> int
  val residue_by_shard : 'v t -> int list
  val steal_stats : 'v t -> steal_stats
  val stats_by_level : 'v t -> Core.Elim_stats.t list
  val balancer_stats_by_shard : 'v t -> Core.Elim_stats.t list list list
  val reset_stats : 'v t -> unit
  val adapt_by_level : 'v t -> (int * int list) list list
end
