(* A sharded frontend over N independent elimination-tree pools
   (docs/SHARDING.md).

   The paper's structure is a single global tree; this is the scale-out
   step (ROADMAP item 2): route each client session to a "home" shard
   with a stateless splitmix hash, and on an empty home steal from a
   bounded probe sequence of foreign shards.  The frontend adds no
   shared state of its own — every element lives in exactly one
   [Elim_pool] from enqueue to dequeue, and a steal IS the dequeue
   (performed by the stealing processor against the victim shard), so
   whole-frontend conservation is the sum of per-shard conservation
   and the summed residue is exact at quiescence.

   Adaptation composes: with [`Reactive cfg] each shard's controllers
   run on an independent stream (the shard index splits [cfg.seed]), so
   shard 0's decisions never mirror shard 1's under symmetric load. *)

module Make (E : Engine.S) = struct
  module Pool = Core.Elim_pool.Make (E)

  (* Host-level steal counters, in the style of [Core.Elim_stats]:
     plain mutable fields are exact and free under the single-threaded
     simulator, racy-hence-approximate under native parallelism, and
     never read by the algorithm itself. *)
  type counters = {
    mutable c_empty_homes : int;  (* dequeues whose home attempt found nothing *)
    mutable c_probes : int;       (* foreign-shard attempts *)
    mutable c_steals : int;       (* values obtained from a foreign shard *)
  }

  type steal_stats = { empty_homes : int; probes : int; steals : int }

  type 'v t = {
    pools : 'v Pool.t array;
    hash_seed : int;
    steal_probes : int;  (* foreign shards probed per round; 0 = no stealing *)
    steal : counters;
  }

  let reseed_policy policy index =
    match policy with
    | Some (`Reactive cfg) ->
        Some
          (`Reactive
             { cfg with Adapt.seed = Engine.Splitmix.hash3 cfg.Adapt.seed index 0 })
    | other -> other

  let create ?config ?policy ?eliminate ?leaf_size ?steal_probes
      ?(hash_seed = 0) ~capacity ~width ~shards () =
    if shards < 1 then invalid_arg "Shard_pool.create: shards must be >= 1";
    let steal_probes =
      match steal_probes with
      | None -> shards - 1 (* default: one round may visit every foreign shard *)
      | Some p when p < 0 ->
          invalid_arg "Shard_pool.create: steal_probes must be >= 0"
      | Some p -> min p (shards - 1)
    in
    {
      pools =
        Array.init shards (fun i ->
            Pool.create ?config ?policy:(reseed_policy policy i) ?eliminate
              ?leaf_size ~capacity ~width ());
      hash_seed;
      steal_probes;
      steal = { c_empty_homes = 0; c_probes = 0; c_steals = 0 };
    }

  let shard_count t = Array.length t.pools
  let width t = Pool.width t.pools.(0)

  (* Session -> home shard: a pure hash, so routing needs no shared
     state and any participant can compute any session's home. *)
  let shard_of t ~session =
    Engine.Splitmix.hash3 t.hash_seed session 0 mod Array.length t.pools

  let enqueue t ~session v = Pool.enqueue t.pools.(shard_of t ~session) v

  (* One bounded attempt: traverse the tree and return immediately if
     the leaf pool is empty (the [stop] contract of [Pool.dequeue]). *)
  let try_pool pool = Pool.dequeue ~stop:(fun () -> true) pool

  let dequeue ?(stop = fun () -> false) t ~session =
    let n = Array.length t.pools in
    let home = shard_of t ~session in
    (* Probe sequence start is a second hash of the session, so
       concurrent victims of one empty shard fan out over different
       foreign shards instead of convoying on home+1. *)
    let start = Engine.Splitmix.hash3 t.hash_seed session 1 mod n in
    let rec probe k visited =
      if visited >= t.steal_probes then None
      else
        let s = (start + k) mod n in
        if s = home then probe (k + 1) visited
        else begin
          t.steal.c_probes <- t.steal.c_probes + 1;
          (* Glance at the victim's buffered count before paying a full
             traversal (spin windows included): an empty-looking shard
             costs width reads, not a tree walk.  The glance is racy —
             a miss is fine, the caller loops rounds — but a home
             attempt never takes it, so elimination against concurrent
             enqueuers is preserved where it matters. *)
          if Pool.residue t.pools.(s) = 0 then probe (k + 1) (visited + 1)
          else
            match try_pool t.pools.(s) with
            | Some v ->
                t.steal.c_steals <- t.steal.c_steals + 1;
                Some v
            | None -> probe (k + 1) (visited + 1)
        end
    in
    let rec round backoff =
      match try_pool t.pools.(home) with
      | Some v -> Some v
      | None -> (
          t.steal.c_empty_homes <- t.steal.c_empty_homes + 1;
          match probe 0 0 with
          | Some v -> Some v
          | None ->
              if stop () then None
              else begin
                (* A full empty round means the frontend is (at least
                   transiently) drained: back off exponentially so
                   waiting dequeuers don't flood every shard's tree
                   with probe traffic, and always advance the clock so
                   the wait is engine-visible. *)
                E.delay backoff;
                round (min (backoff * 2) 4096)
              end)
    in
    round 1

  let residue_by_shard t = Array.to_list (Array.map Pool.residue t.pools)
  let residue t = Array.fold_left (fun acc p -> acc + Pool.residue p) 0 t.pools

  let steal_stats t =
    {
      empty_homes = t.steal.c_empty_homes;
      probes = t.steal.c_probes;
      steals = t.steal.c_steals;
    }

  (* Aggregated per-depth statistics: shard trees are structurally
     identical, so depth d of the frontend is the merge of depth d of
     every shard ([Elim_stats.merge] sums fresh records). *)
  let stats_by_level t =
    let per_shard = Array.map Pool.stats_by_level t.pools in
    List.init
      (List.length per_shard.(0))
      (fun d ->
        Core.Elim_stats.merge
          (Array.to_list (Array.map (fun l -> List.nth l d) per_shard)))

  let balancer_stats_by_shard t =
    Array.to_list (Array.map Pool.balancer_stats_by_level t.pools)

  let reset_stats t =
    Array.iter Pool.reset_stats t.pools;
    t.steal.c_empty_homes <- 0;
    t.steal.c_probes <- 0;
    t.steal.c_steals <- 0

  (* Per-depth adaptation snapshots, shards concatenated within each
     depth (matches the [Pool_obj.adapt_by_level] shape). *)
  let adapt_by_level t =
    let per_shard = Array.map Pool.adapt_by_level t.pools in
    List.init
      (List.length per_shard.(0))
      (fun d ->
        List.concat
          (Array.to_list (Array.map (fun l -> List.nth l d) per_shard)))
end
