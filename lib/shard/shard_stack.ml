(* The stack-flavoured sharded frontend: identical routing and steal
   protocol to {!Shard_pool}, over [Core.Elim_stack] shards (the
   paper's §3 stack-like pool).  LIFO order holds per shard in
   sequential executions; the frontend keeps only pool semantics
   (sharding, like elimination, trades global LIFO for scale). *)

module Make (E : Engine.S) = struct
  module Stack = Core.Elim_stack.Make (E)

  type counters = {
    mutable c_empty_homes : int;
    mutable c_probes : int;
    mutable c_steals : int;
  }

  type steal_stats = { empty_homes : int; probes : int; steals : int }

  type 'v t = {
    stacks : 'v Stack.t array;
    hash_seed : int;
    steal_probes : int;
    steal : counters;
  }

  let reseed_policy policy index =
    match policy with
    | Some (`Reactive cfg) ->
        Some
          (`Reactive
             { cfg with Adapt.seed = Engine.Splitmix.hash3 cfg.Adapt.seed index 0 })
    | other -> other

  let create ?config ?policy ?eliminate ?leaf_size ?steal_probes
      ?(hash_seed = 0) ~capacity ~width ~shards () =
    if shards < 1 then invalid_arg "Shard_stack.create: shards must be >= 1";
    let steal_probes =
      match steal_probes with
      | None -> shards - 1
      | Some p when p < 0 ->
          invalid_arg "Shard_stack.create: steal_probes must be >= 0"
      | Some p -> min p (shards - 1)
    in
    {
      stacks =
        Array.init shards (fun i ->
            Stack.create ?config ?policy:(reseed_policy policy i) ?eliminate
              ?leaf_size ~capacity ~width ());
      hash_seed;
      steal_probes;
      steal = { c_empty_homes = 0; c_probes = 0; c_steals = 0 };
    }

  let shard_count t = Array.length t.stacks
  let width t = Stack.width t.stacks.(0)

  let shard_of t ~session =
    Engine.Splitmix.hash3 t.hash_seed session 0 mod Array.length t.stacks

  let push t ~session v = Stack.push t.stacks.(shard_of t ~session) v

  let try_stack stack = Stack.pop ~stop:(fun () -> true) stack

  let pop ?(stop = fun () -> false) t ~session =
    let n = Array.length t.stacks in
    let home = shard_of t ~session in
    let start = Engine.Splitmix.hash3 t.hash_seed session 1 mod n in
    let rec probe k visited =
      if visited >= t.steal_probes then None
      else
        let s = (start + k) mod n in
        if s = home then probe (k + 1) visited
        else begin
          t.steal.c_probes <- t.steal.c_probes + 1;
          (* Residue glance before the full traversal; see
             {!Shard_pool}. *)
          if Stack.residue t.stacks.(s) = 0 then probe (k + 1) (visited + 1)
          else
            match try_stack t.stacks.(s) with
            | Some v ->
                t.steal.c_steals <- t.steal.c_steals + 1;
                Some v
            | None -> probe (k + 1) (visited + 1)
        end
    in
    let rec round backoff =
      match try_stack t.stacks.(home) with
      | Some v -> Some v
      | None -> (
          t.steal.c_empty_homes <- t.steal.c_empty_homes + 1;
          match probe 0 0 with
          | Some v -> Some v
          | None ->
              if stop () then None
              else begin
                (* See {!Shard_pool}: exponential backoff between empty
                   rounds, clock always advancing. *)
                E.delay backoff;
                round (min (backoff * 2) 4096)
              end)
    in
    round 1

  let residue_by_shard t = Array.to_list (Array.map Stack.residue t.stacks)
  let residue t = Array.fold_left (fun acc s -> acc + Stack.residue s) 0 t.stacks

  let steal_stats t =
    {
      empty_homes = t.steal.c_empty_homes;
      probes = t.steal.c_probes;
      steals = t.steal.c_steals;
    }

  let stats_by_level t =
    let per_shard = Array.map Stack.stats_by_level t.stacks in
    List.init
      (List.length per_shard.(0))
      (fun d ->
        Core.Elim_stats.merge
          (Array.to_list (Array.map (fun l -> List.nth l d) per_shard)))

  let balancer_stats_by_shard t =
    Array.to_list (Array.map Stack.balancer_stats_by_level t.stacks)

  let reset_stats t =
    Array.iter Stack.reset_stats t.stacks;
    t.steal.c_empty_homes <- 0;
    t.steal.c_probes <- 0;
    t.steal.c_steals <- 0

  let adapt_by_level t =
    let per_shard = Array.map Stack.adapt_by_level t.stacks in
    List.init
      (List.length per_shard.(0))
      (fun d ->
        List.concat
          (Array.to_list (Array.map (fun l -> List.nth l d) per_shard)))
end
