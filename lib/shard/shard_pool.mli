(** A sharded frontend over N independent elimination-tree pools
    (docs/SHARDING.md, ROADMAP item 2).

    Sessions are routed to a home shard by a stateless splitmix hash;
    a dequeue that finds its home empty steals from a bounded,
    session-spread probe sequence of foreign shards.  The frontend
    itself holds no shared state: every element lives in exactly one
    {!Core.Elim_pool} between enqueue and dequeue (a steal is simply a
    dequeue against the victim shard), so whole-frontend conservation
    is the sum over shards and the summed residue is exact at
    quiescence. *)

module Make (E : Engine.S) : sig
  type 'v t

  type steal_stats = {
    empty_homes : int;  (** dequeues whose home attempt found nothing *)
    probes : int;       (** foreign-shard attempts *)
    steals : int;       (** values obtained from a foreign shard *)
  }

  val create :
    ?config:Core.Tree_config.t ->
    ?policy:Adapt.policy ->
    ?eliminate:bool ->
    ?leaf_size:int ->
    ?steal_probes:int ->
    ?hash_seed:int ->
    capacity:int ->
    width:int ->
    shards:int ->
    unit ->
    'v t
  (** [shards] independent [Elim_pool]s of the given [width]; all other
      structure options are passed through to every shard
      ({!Core.Elim_pool.Make.create}).  Under [?policy:(`Reactive cfg)]
      each shard's controllers get an independent stream ([cfg.seed]
      split by the shard index).  [steal_probes] bounds the foreign
      shards probed per dequeue round (clamped to [shards - 1];
      default all of them; [0] disables stealing).  [hash_seed] salts
      the session hash. *)

  val shard_count : 'v t -> int
  val width : 'v t -> int

  val shard_of : 'v t -> session:int -> int
  (** The session's home shard: a pure hash
      ({!Engine.Splitmix.hash3}), computable by any participant. *)

  val enqueue : 'v t -> session:int -> 'v -> unit
  (** Enqueue at the session's home shard; never blocks (P1 per
      shard). *)

  val dequeue : ?stop:(unit -> bool) -> 'v t -> session:int -> 'v option
  (** One bounded attempt at the home shard, then up to [steal_probes]
      bounded attempts over foreign shards (probe order spread by a
      second session hash), repeating until a value arrives or [stop]
      fires ([None]).  Without [stop] it returns [None] never; every
      empty round costs at least one cycle, so waiting is
      engine-visible. *)

  val residue : 'v t -> int
  (** Elements buffered across all shards (exact when quiescent). *)

  val residue_by_shard : 'v t -> int list

  val steal_stats : 'v t -> steal_stats

  val stats_by_level : 'v t -> Core.Elim_stats.t list
  (** Per-depth merge across all shards (shard trees are structurally
      identical). *)

  val balancer_stats_by_shard : 'v t -> Core.Elim_stats.t list list list
  (** Each shard's live [balancer_stats_by_level], in shard order —
      the model checker's per-shard step-property input. *)

  val reset_stats : 'v t -> unit

  val adapt_by_level : 'v t -> (int * int list) list list
  (** Reactive [(spin, widths)] snapshots per depth, shards
      concatenated within each depth; empty inner lists under
      [`Static]. *)
end
