(* A sequentially-accessed local pool: a bounded ring buffer protected
   by an MCS queue lock, usable in FIFO (queue) or LIFO (stack)
   discipline.  One of these sits on every output wire of an
   elimination tree ("a simple queue protected by an MCS-queue-lock
   will do", §2.1); the LIFO variant provides the local stacks of the
   stack-like pool (§3), and RSU's per-processor work piles reuse it.

   The [raw_*] operations assume the caller holds [lock]; they exist so
   that RSU's balancing step can operate on two pools under both locks
   (acquired in [uid] order to avoid deadlock). *)

module Make (E : Engine.S) = struct
  module Lock = Sync.Mcs_lock.Make (E)

  type 'v t = {
    uid : int; (* global lock-ordering rank (see [Rsu]) *)
    discipline : [ `Fifo | `Lifo ];
    lock : Lock.t;
    buf : 'v option E.cell array;
    head : int E.cell; (* index of the oldest element *)
    tail : int E.cell; (* index one past the newest element *)
  }

  (* Pools are created during (single-threaded) structure setup, before
     processors start, so a plain counter suffices. *)
  let next_uid = ref 0

  let create ?(discipline = `Fifo) ?(size = 4096) ~lock_capacity () =
    if size < 1 then invalid_arg "Local_pool.create: size must be positive";
    let uid = !next_uid in
    incr next_uid;
    {
      uid;
      discipline;
      lock = Lock.create ~capacity:lock_capacity ();
      buf = Array.init size (fun _ -> E.cell None);
      head = E.cell 0;
      tail = E.cell 0;
    }

  let capacity t = Array.length t.buf

  (* ---- raw operations: caller holds [lock] ---- *)

  let raw_size t = E.get t.tail - E.get t.head

  let raw_push t v =
    let tail = E.get t.tail in
    if tail - E.get t.head >= Array.length t.buf then
      failwith "Local_pool: overflow (increase ~size)";
    E.set t.buf.(tail mod Array.length t.buf) (Some v);
    E.set t.tail (tail + 1)

  let raw_pop t =
    let head = E.get t.head and tail = E.get t.tail in
    if tail = head then None
    else begin
      let slot_index =
        match t.discipline with `Fifo -> head | `Lifo -> tail - 1
      in
      let slot = t.buf.(slot_index mod Array.length t.buf) in
      let v = E.get slot in
      E.set slot None;
      (match t.discipline with
      | `Fifo -> E.set t.head (head + 1)
      | `Lifo -> E.set t.tail (tail - 1));
      match v with
      | Some _ -> v
      | None -> assert false (* occupied range always holds Some *)
    end

  (* Remove the oldest element regardless of discipline (the FIFO end
     of the ring) — the thief's end in work-stealing schedulers.
     Caller holds [lock]. *)
  let raw_steal_oldest t =
    let head = E.get t.head and tail = E.get t.tail in
    if tail = head then None
    else begin
      let slot = t.buf.(head mod Array.length t.buf) in
      let v = E.get slot in
      E.set slot None;
      E.set t.head (head + 1);
      match v with Some _ -> v | None -> assert false
    end

  (* ---- public operations ---- *)

  let size t = raw_size t (* racy snapshot; exact when quiescent *)

  let enqueue t v = Lock.with_lock t.lock (fun () -> raw_push t v)

  let try_dequeue t = Lock.with_lock t.lock (fun () -> raw_pop t)

  (* Locked steal from the FIFO end (see [raw_steal_oldest]). *)
  let steal_oldest t = Lock.with_lock t.lock (fun () -> raw_steal_oldest t)

  (* Block until an element arrives, polling under the (fair) lock.
     [stop] turns the wait into a bounded one: once it returns true the
     dequeuer gives up with [None] — workloads use this to drain. *)
  let dequeue_blocking ?(poll = 16) ?(stop = fun () -> false) t =
    let rec attempt spinning =
      match try_dequeue t with
      | Some _ as v ->
          if spinning && Etrace.on Etrace.lv_events then
            Etrace.emit
              (Etrace.Event.Spin_end { pid = E.pid (); time = E.now () });
          v
      | None ->
          if stop () then begin
            if spinning && Etrace.on Etrace.lv_events then
              Etrace.emit
                (Etrace.Event.Spin_end { pid = E.pid (); time = E.now () });
            None
          end
          else begin
            if (not spinning) && Etrace.on Etrace.lv_events then
              Etrace.emit
                (Etrace.Event.Spin_begin { pid = E.pid (); time = E.now () });
            E.delay poll;
            attempt true
          end
    in
    attempt false

  (* Acquire the locks of [a] and [b] (distinct pools) in uid order,
     run [f], release in reverse order. *)
  let with_two_locks a b f =
    if a.uid = b.uid then invalid_arg "Local_pool.with_two_locks: same pool";
    let first, second = if a.uid < b.uid then (a, b) else (b, a) in
    Lock.with_lock first.lock (fun () ->
        Lock.with_lock second.lock (fun () -> f ()))
end
