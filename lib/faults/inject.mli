(** Running simulations under a fault plan. *)

val run :
  ?seed:int ->
  ?config:Sim.Memory.config ->
  ?abort_after:int ->
  plan:Fault_plan.t ->
  procs:int ->
  (int -> unit) ->
  Sim.stats
(** [run ~plan ~procs body] is [Sim.run] with [plan] compiled and
    installed as the scheduler's fault injector (a fault-free fast path
    is used when the plan is {!Fault_plan.none}).  Deterministic in
    [(seed, config, plan)].  Crash-stopped processors are reported in
    [stats.crashed_procs]; they are {e not} counted as aborted. *)
