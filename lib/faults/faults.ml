(** etrees.faults — deterministic fault injection and robustness
    verdicts for the simulator.

    The paper's headline results are robustness claims: a pool
    operation terminates within O(log w) balancer steps no matter what
    every other processor does (§1, Theorem 2.2), and elimination trees
    tolerate the timing variance that collapses centralized structures.
    This library makes those claims testable instead of asserted:

    - {!Fault_plan} — pure, seed-derived schedules of processor stalls,
      crash-stops, memory hot spots / latency spikes, and delay jitter,
      compiled into [Sim.Scheduler] hooks; the same [(seed, plan)]
      always replays the identical execution;
    - {!Inject} — [Sim.run] under a plan;
    - {!Termination} — the termination-bound checker turning a
      run-under-fault into a pass/fail verdict.

    The matching workload is [Workloads.Chaos]; the conservation audit
    it applies afterwards is [Analysis.Conservation].  See
    docs/FAULTS.md. *)

module Fault_plan = Fault_plan
module Inject = Inject
module Termination = Termination
