(* The termination-bound checker: aggregate O(log w) balancer-step
   bound plus liveness of non-crashed processors.  See the .mli and
   docs/FAULTS.md for exactly what is (and is not) being claimed. *)

type verdict = {
  ok : bool;
  live_ok : bool;
  visits_ok : bool;
  depth : int;
  mean_visits : float;
  stuck : int;
}

let check ?levels ?entries ~started ~stuck () =
  let live_ok = stuck = 0 in
  let depth = match levels with Some d -> d | None -> 0 in
  let visits_ok, mean_visits =
    match (levels, entries) with
    | Some depth, Some entries when started > 0 ->
        ( entries <= started * depth,
          float_of_int entries /. float_of_int started )
    | Some _, Some entries -> (entries = 0, if entries = 0 then 0.0 else -1.0)
    | _ -> (true, -1.0)
  in
  { ok = live_ok && visits_ok; live_ok; visits_ok; depth; mean_visits; stuck }

let format v =
  let verdict = if v.ok then "PASS" else "FAIL" in
  if v.depth > 0 then
    Printf.sprintf "%s (depth %d, %.2f visits/op <= %d%s, stuck %d)" verdict
      v.depth v.mean_visits v.depth
      (if v.visits_ok then "" else " VIOLATED")
      v.stuck
  else Printf.sprintf "%s (no balancer tree, stuck %d)" verdict v.stuck
