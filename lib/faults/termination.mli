(** The termination-bound checker (paper §1, Theorem 2.2 / §2.5): a
    pool operation on a width-[w] elimination tree traverses at most
    [log2 w] balancers {e regardless of the behaviour of every other
    processor} — stalled mid-prism, crashed, or arbitrarily slow.

    The checker turns a run-under-fault into a verdict from two
    observables:

    - {b liveness}: no non-crashed processor was still stuck when the
      run's (generous) abort horizon fired — delay-tolerance of the
      structure as a whole;
    - {b balancer-step bound}: the aggregate form of the O(log w)
      claim.  Every started operation enters each tree level at most
      once (there are no retry loops that re-enter a balancer), so
      total balancer entries never exceed started operations times the
      tree depth.  A structure that livelocked or bounced requests
      around under faults would violate the inequality.

    For methods with no balancer tree (MCS, combining trees, …) only
    the liveness half applies.  See docs/FAULTS.md for how these map to
    the paper's claims. *)

type verdict = {
  ok : bool;                (** both checks below hold *)
  live_ok : bool;           (** no non-crashed processor stuck *)
  visits_ok : bool;         (** entries <= started * depth (vacuous
                                without balancer stats) *)
  depth : int;              (** balancer levels, 0 if no tree *)
  mean_visits : float;      (** balancer entries per started op, -1 if
                                no tree *)
  stuck : int;              (** non-crashed processors aborted *)
}

val check :
  ?levels:int -> ?entries:int -> started:int -> stuck:int -> unit -> verdict
(** [check ~levels ~entries ~started ~stuck ()] — [levels]/[entries]
    come from the structure's per-level statistics when it has them;
    [started] counts pool operations issued (completed or not);
    [stuck] is the run's aborted (not crashed) processor count. *)

val format : verdict -> string
(** Stable one-line rendering, e.g.
    ["PASS (depth 5, 3.42 visits/op <= 5, stuck 0)"]. *)
