(** Seeded, deterministic fault plans (the heart of etrees.faults).

    A {!t} is a pure, seed-derived schedule of adversarial events —
    processor stalls, crash-stops, per-location memory hot spots and
    latency spikes, and jittered local delays — compiled by {!injector}
    into the scheduler hooks of [Sim.Scheduler].  The same [(seed,
    plan)] pair always replays the identical execution; nothing in the
    plan or its application consults wall-clock time or global
    randomness.  See docs/FAULTS.md for the fault model and the
    determinism contract. *)

type event =
  | Stall of { pid : int; at : int; cycles : int }
      (** [pid]'s next event at or after [at] (and any event inside
          [\[at, at+cycles)]) is deferred to [at + cycles] *)
  | Crash of { pid : int; at : int }
      (** crash-stop: no event of [pid] fires at or after [at]; held
          locks stay held, in-flight operations die *)
  | Hotspot of { from_ : int; until_ : int; factor : int; num : int;
                 den : int; salt : int }
      (** during [\[from_, until_)], every memory operation on a
          location selected with probability [num/den] (by a pure hash
          of the location id and [salt]) costs [factor] times its base
          latency — a sustained hot-spot slowdown when the window is
          long, a latency spike when it is short *)
  | Jitter of { from_ : int; until_ : int; amp : int }
      (** during [\[from_, until_)], every [delay n] is lengthened by a
          pure-hash-derived amount in [\[0, amp\]] *)

type t = {
  seed : int;     (** derives event placement and all jitter/selection *)
  events : event list;
}

val none : t
val is_none : t -> bool

(** {1 Seed-derived constructors} *)

val stalls : seed:int -> procs:int -> horizon:int -> count:int ->
  cycles:int -> t
(** [count] stalls of [cycles] cycles each, at seed-derived processors
    and start times in [\[0, horizon)]. *)

val crashes : seed:int -> procs:int -> horizon:int -> count:int -> t
(** [count] crash-stops at seed-derived distinct processors and times.
    [count] is clamped to [procs - 1]: at least one processor survives. *)

val hotspot : ?salt:int -> ?num:int -> ?den:int -> from_:int ->
  until_:int -> factor:int -> unit -> t
(** One hot-spot window; by default ([num]=1, [den]=8) it slows an
    eighth of all locations. *)

val jitter : from_:int -> until_:int -> amp:int -> t

val union : seed:int -> t list -> t
(** Merge the events of several plans under one seed. *)

val ladder : seed:int -> procs:int -> horizon:int -> level:int -> t
(** The fault-intensity ladder of the [chaos] benchmark: level 0 is
    {!none}; each further level adds a fault class (1 stalls, 2 + hot
    spot + jitter, 3 + crashes).  Levels above 3 clamp to 3. *)

val ladder_levels : int
val level_label : int -> string

(** {1 CLI plumbing} *)

val parse_pair : string -> (int * int, string) result
(** Parse a ["COUNTxCYCLES"] spec such as ["8x2000"]; both components
    must be positive. *)

val of_flags : fault_seed:int -> procs:int -> horizon:int ->
  stall:(int * int) option -> crash:int -> hotspot:(int * int) option ->
  jitter:int -> t
(** Assemble a plan from the [chaos] subcommand's flags: [stall =
    (count, cycles)], [crash = count], [hotspot = (factor, denominator)]
    (slows [1/denominator] of locations for the middle half of the
    run), [jitter = amplitude] (whole run). *)

(** {1 Inspection} *)

val describe : t -> string
(** Stable, human-readable one-line summary (reports and the
    determinism regression test both rely on its stability). *)

val crash_count : t -> int
(** Number of distinct processors the plan crash-stops. *)

val faulty_pids : t -> int list
(** Sorted distinct pids targeted by stalls or crashes. *)

val injector : t -> Sim.Scheduler.injector
(** Compile the plan into scheduler hooks.  Pure: two injectors from
    equal plans behave identically. *)
