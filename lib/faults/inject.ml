(* Running simulations under a fault plan: compile the plan once and
   hand it to the scheduler as its injector. *)

let run ?seed ?config ?abort_after ~plan ~procs body =
  if Fault_plan.is_none plan then Sim.run ?seed ?config ?abort_after ~procs body
  else
    let injector = Fault_plan.injector plan in
    Sim.run ?seed ?config ?abort_after ~injector ~procs body
