(* Seeded, deterministic fault plans.

   A plan is pure data: a seed plus a list of scheduled adversarial
   events.  Seed-derived constructors place events with a private
   Splitmix stream (tagged per fault class so stall and crash placement
   are decorrelated); the compiled injector consults only pure
   functions of (event list, seed, pid, time, location id), so a run
   under the same (seed, plan) replays the identical execution.  See
   docs/FAULTS.md. *)

type event =
  | Stall of { pid : int; at : int; cycles : int }
  | Crash of { pid : int; at : int }
  | Hotspot of { from_ : int; until_ : int; factor : int; num : int;
                 den : int; salt : int }
  | Jitter of { from_ : int; until_ : int; amp : int }

type t = { seed : int; events : event list }

let none = { seed = 0; events = [] }
let is_none t = t.events = []

(* ------------------------------------------------------------------ *)
(* Pure hashing (jitter amounts, hot-spot location selection)          *)
(* ------------------------------------------------------------------ *)

(* The finalizer itself lives in {!Engine.Splitmix.hash3} (shared with
   stream derivation and the shard frontend's session hash); here we
   only bound it to a modulus. *)
let hash_mod a b c m = if m <= 0 then 0 else Engine.Splitmix.hash3 a b c mod m

(* Is location [id] inside the [num/den] slice selected by [salt]? *)
let hot_location ~salt ~num ~den id = hash_mod id salt 0x407 den < num

(* ------------------------------------------------------------------ *)
(* Seed-derived constructors                                           *)
(* ------------------------------------------------------------------ *)

let rng_of ~seed ~tag = Engine.Splitmix.stream ~seed ~index:tag

let stalls ~seed ~procs ~horizon ~count ~cycles =
  if procs < 1 then invalid_arg "Fault_plan.stalls: procs must be positive";
  if cycles < 1 then invalid_arg "Fault_plan.stalls: cycles must be positive";
  let rng = rng_of ~seed ~tag:1 in
  let events =
    List.init (max 0 count) (fun _ ->
        let pid = Engine.Splitmix.int rng procs in
        let at = Engine.Splitmix.int rng (max 1 horizon) in
        Stall { pid; at; cycles })
  in
  { seed; events }

let crashes ~seed ~procs ~horizon ~count =
  if procs < 1 then invalid_arg "Fault_plan.crashes: procs must be positive";
  (* Fisher-Yates over the pid space, so crash targets are distinct and
     at least one processor always survives. *)
  let rng = rng_of ~seed ~tag:2 in
  let pids = Array.init procs Fun.id in
  for i = procs - 1 downto 1 do
    let j = Engine.Splitmix.int rng (i + 1) in
    let tmp = pids.(i) in
    pids.(i) <- pids.(j);
    pids.(j) <- tmp
  done;
  let count = min (max 0 count) (procs - 1) in
  let events =
    List.init count (fun i ->
        let at = Engine.Splitmix.int rng (max 1 horizon) in
        Crash { pid = pids.(i); at })
  in
  { seed; events }

let hotspot ?(salt = 0) ?(num = 1) ?(den = 8) ~from_ ~until_ ~factor () =
  if factor < 1 then invalid_arg "Fault_plan.hotspot: factor must be >= 1";
  if den < 1 || num < 0 then invalid_arg "Fault_plan.hotspot: bad fraction";
  { seed = 0; events = [ Hotspot { from_; until_; factor; num; den; salt } ] }

let jitter ~from_ ~until_ ~amp =
  if amp < 0 then invalid_arg "Fault_plan.jitter: amp must be >= 0";
  { seed = 0; events = [ Jitter { from_; until_; amp } ] }

let union ~seed plans = { seed; events = List.concat_map (fun p -> p.events) plans }

let ladder_levels = 4

let ladder ~seed ~procs ~horizon ~level =
  let level = min (max level 0) (ladder_levels - 1) in
  let stall_plan =
    stalls ~seed ~procs ~horizon ~count:(max 2 (procs / 8))
      ~cycles:(max 500 (horizon / 20))
  in
  let hot_plan =
    hotspot ~salt:seed ~from_:(horizon / 4) ~until_:(3 * horizon / 4)
      ~factor:8 ()
  in
  let jitter_plan = jitter ~from_:0 ~until_:horizon ~amp:64 in
  let crash_plan =
    crashes ~seed ~procs ~horizon ~count:(max 1 (procs / 16))
  in
  match level with
  | 0 -> none
  | 1 -> union ~seed [ stall_plan ]
  | 2 -> union ~seed [ stall_plan; hot_plan; jitter_plan ]
  | _ -> union ~seed [ stall_plan; hot_plan; jitter_plan; crash_plan ]

let level_label = function
  | 0 -> "none"
  | 1 -> "stalls"
  | 2 -> "stalls+hotspot+jitter"
  | _ -> "stalls+hotspot+jitter+crashes"

(* ------------------------------------------------------------------ *)
(* CLI plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let parse_pair s =
  match String.index_opt s 'x' with
  | None -> Error (Printf.sprintf "%S: expected COUNTxCYCLES (e.g. 8x2000)" s)
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a > 0 && b > 0 -> Ok (a, b)
      | Some _, Some _ -> Error (Printf.sprintf "%S: both parts must be positive" s)
      | _ -> Error (Printf.sprintf "%S: expected COUNTxCYCLES (e.g. 8x2000)" s))

let of_flags ~fault_seed ~procs ~horizon ~stall ~crash ~hotspot:hot ~jitter:amp =
  let parts =
    List.concat
      [
        (match stall with
        | Some (count, cycles) ->
            [ stalls ~seed:fault_seed ~procs ~horizon ~count ~cycles ]
        | None -> []);
        (if crash > 0 then
           [ crashes ~seed:fault_seed ~procs ~horizon ~count:crash ]
         else []);
        (match hot with
        | Some (factor, den) ->
            [
              hotspot ~salt:fault_seed ~den ~from_:(horizon / 4)
                ~until_:(3 * horizon / 4) ~factor ();
            ]
        | None -> []);
        (if amp > 0 then [ jitter ~from_:0 ~until_:horizon ~amp ] else []);
      ]
  in
  union ~seed:fault_seed parts

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let describe t =
  if is_none t then "no faults"
  else
    let part = function
      | Stall { pid; at; cycles } ->
          Printf.sprintf "stall p%d@%d+%d" pid at cycles
      | Crash { pid; at } -> Printf.sprintf "crash p%d@%d" pid at
      | Hotspot { from_; until_; factor; num; den; salt = _ } ->
          Printf.sprintf "hotspot [%d,%d)x%d %d/%d" from_ until_ factor num den
      | Jitter { from_; until_; amp } ->
          Printf.sprintf "jitter [%d,%d)+%d" from_ until_ amp
    in
    Printf.sprintf "seed=%d; %s" t.seed
      (String.concat "; " (List.map part t.events))

let crash_pids t =
  List.filter_map (function Crash { pid; _ } -> Some pid | _ -> None) t.events
  |> List.sort_uniq compare

let crash_count t = List.length (crash_pids t)

let faulty_pids t =
  List.filter_map
    (function
      | Crash { pid; _ } | Stall { pid; _ } -> Some pid
      | Hotspot _ | Jitter _ -> None)
    t.events
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Compilation into scheduler hooks                                    *)
(* ------------------------------------------------------------------ *)

let injector t =
  let max_pid =
    List.fold_left
      (fun acc -> function
        | Stall { pid; _ } | Crash { pid; _ } -> max acc pid
        | Hotspot _ | Jitter _ -> acc)
      (-1) t.events
  in
  let crash_at = Array.make (max_pid + 1) max_int in
  let stall_windows = Array.make (max_pid + 1) [] in
  let hotspots =
    List.filter_map
      (function
        | Hotspot { from_; until_; factor; num; den; salt } ->
            Some (from_, until_, factor, num, den, salt)
        | _ -> None)
      t.events
  in
  let jitters =
    List.filter_map
      (function
        | Jitter { from_; until_; amp } when amp > 0 ->
            Some (from_, until_, amp)
        | _ -> None)
      t.events
  in
  List.iter
    (function
      | Crash { pid; at } -> crash_at.(pid) <- min crash_at.(pid) at
      | Stall { pid; at; cycles } ->
          stall_windows.(pid) <- (at, at + cycles) :: stall_windows.(pid)
      | Hotspot _ | Jitter _ -> ())
    t.events;
  let seed = t.seed in
  let on_event ~pid ~time =
    if pid > max_pid then Sim.Scheduler.Fault_proceed
    else if time >= crash_at.(pid) then Sim.Scheduler.Fault_drop
    else
      match
        List.find_opt (fun (a, u) -> a <= time && time < u) stall_windows.(pid)
      with
      | Some (_, until_) -> Sim.Scheduler.Fault_defer until_
      | None -> Sim.Scheduler.Fault_proceed
  in
  (* Hash location ids relative to the allocation watermark at
     compile time: absolute ids grow monotonically across runs in one
     process, and hashing them raw would select a different hot set on
     an otherwise identical replay. *)
  let id_base = Sim.Memory.loc_count () in
  let mem_latency ~loc ~pid:_ ~now ~base =
    let factor =
      List.fold_left
        (fun acc (from_, until_, factor, num, den, salt) ->
          if
            from_ <= now && now < until_
            && hot_location ~salt ~num ~den (loc.Sim.Memory.id - id_base)
          then max acc factor
          else acc)
        1 hotspots
    in
    base * factor
  in
  let delay_jitter ~pid ~now ~base:_ =
    List.fold_left
      (fun acc (from_, until_, amp) ->
        if from_ <= now && now < until_ then
          max acc (hash_mod seed pid now (amp + 1))
        else acc)
      0 jitters
  in
  { Sim.Scheduler.on_event; mem_latency; delay_jitter }
