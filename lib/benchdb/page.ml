(* The trend page (ci_bench's generate_bench_page, docs/BENCHDB.md):
   a single self-contained HTML file — inline CSS, inline SVG, no
   scripts, no external fetches — rendering every experiment's
   accumulated DB series as one sparkline per metric next to a
   latest-vs-reference delta table.  Pure stdlib, deterministic: the
   same database renders byte-identical HTML (the golden-fixture test
   relies on this), so the optional [generated] stamp is the caller's.

   Visual rules: one accent hue for the single-series marks, text in
   ink/muted tokens (never the series color), recessive axis/grid, and
   the full numbers always present in the adjacent table so nothing is
   encoded by color alone. *)

let spark_w = 150
let spark_h = 32
let pad = 4.0

(* Metrics shown per experiment, in reading order: the gated columns
   first (docs/BENCHDB.md), then the advisory host-cost ones. *)
let page_metrics =
  [
    ("events", "simulated events");
    ("reads", "atomic reads");
    ("writes", "atomic writes");
    ("rmws", "atomic rmws");
    ("points", "report points");
    ("minor_words_per_event", "minor words / event");
    ("events_per_sec", "events / host second");
    ("cpu_s", "host cpu seconds");
    ("major_collections", "major collections");
  ]

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    (* Group thousands so the table reads at a glance. *)
    let s = Printf.sprintf "%.0f" v in
    let n = String.length s in
    let start = if n > 0 && s.[0] = '-' then 1 else 0 in
    let buf = Buffer.create (n + n / 3) in
    String.iteri
      (fun i c ->
        if i > start && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
        Buffer.add_char buf c)
      s;
    Buffer.contents buf
  else Printf.sprintf "%.4g" v

let fmt_coord v =
  (* Fixed decimals keep the SVG byte-stable across platforms. *)
  Printf.sprintf "%.1f" v

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One series -> inline SVG: a 2px accent polyline over a recessive
   baseline, a dot on the latest run, a hollow dot on the reference. *)
let sparkline ?(ref_index = -1) values =
  match values with
  | [] | [ _ ] ->
      (* One run is a point, not a trend. *)
      let cy = float_of_int spark_h /. 2.0 in
      Printf.sprintf
        "<svg class=\"spark\" width=\"%d\" height=\"%d\" role=\"img\" \
         aria-label=\"single run\"><circle cx=\"%s\" cy=\"%s\" r=\"2.5\" \
         fill=\"#2563eb\"/></svg>"
        spark_w spark_h
        (fmt_coord (float_of_int spark_w -. pad))
        (fmt_coord cy)
  | values ->
      let n = List.length values in
      let lo = List.fold_left min infinity values in
      let hi = List.fold_left max neg_infinity values in
      let x i =
        pad
        +. float_of_int i
           *. (float_of_int spark_w -. (2.0 *. pad))
           /. float_of_int (n - 1)
      in
      let y v =
        if hi = lo then float_of_int spark_h /. 2.0
        else
          pad
          +. (hi -. v) /. (hi -. lo) *. (float_of_int spark_h -. (2.0 *. pad))
      in
      let pts =
        String.concat " "
          (List.mapi
             (fun i v -> fmt_coord (x i) ^ "," ^ fmt_coord (y v))
             values)
      in
      let dot i v extra =
        Printf.sprintf
          "<circle cx=\"%s\" cy=\"%s\" r=\"2.5\" %s/>"
          (fmt_coord (x i)) (fmt_coord (y v)) extra
      in
      let last_i = n - 1 in
      let last_v = List.nth values last_i in
      let ref_dot =
        if ref_index >= 0 && ref_index < n && ref_index <> last_i then
          dot ref_index
            (List.nth values ref_index)
            "fill=\"#ffffff\" stroke=\"#6b7280\" stroke-width=\"1.5\""
        else ""
      in
      Printf.sprintf
        "<svg class=\"spark\" width=\"%d\" height=\"%d\" role=\"img\" \
         aria-label=\"%d runs, %s to %s\"><polyline points=\"%s\" \
         fill=\"none\" stroke=\"#2563eb\" stroke-width=\"2\" \
         stroke-linejoin=\"round\" stroke-linecap=\"round\"/>%s%s</svg>"
        spark_w spark_h n
        (escape_html (fmt_value lo))
        (escape_html (fmt_value hi))
        pts ref_dot
        (dot last_i last_v "fill=\"#2563eb\"")

let css =
  {|:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, sans-serif; color: #1f2937;
       background: #ffffff; margin: 2rem auto; max-width: 72rem;
       padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
p.note { color: #6b7280; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 0.3rem 0.75rem;
         border-bottom: 1px solid #e5e7eb; font-variant-numeric: tabular-nums; }
th { color: #6b7280; font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
td.spark-cell { text-align: center; }
td.delta { white-space: nowrap; }
.gated { color: #1f2937; } .advisory { color: #6b7280; }
.runs { color: #6b7280; font-size: 0.85rem; }
svg.spark { vertical-align: middle; }|}

let metric_row ~runs ~ref_index ~ref_run ~latest (name, label_text) =
  let values = List.filter_map (fun r -> Db.metric r name) runs in
  let cell v =
    match v with None -> "&mdash;" | Some v -> escape_html (fmt_value v)
  in
  let delta =
    match (Db.metric ref_run name, Db.metric latest name) with
    | Some r, Some c ->
        let pct = Gate.delta_pct ~reference:r ~current:c in
        if Float.is_finite pct then Printf.sprintf "%+.2f%%" pct else "n/a"
    | _ -> "&mdash;"
  in
  let gated =
    List.exists (fun (s : Gate.spec) -> s.Gate.metric = name) Gate.default_specs
  in
  Printf.sprintf
    "<tr class=\"%s\"><td>%s</td><td class=\"spark-cell\">%s</td>\
     <td>%s</td><td>%s</td><td class=\"delta\">%s</td></tr>"
    (if gated then "gated" else "advisory")
    (escape_html label_text)
    (sparkline ~ref_index values)
    (cell (Db.metric ref_run name))
    (cell (Db.metric latest name))
    delta

let experiment_section (exp, runs) =
  match (Db.reference runs, Db.latest runs) with
  | None, _ | _, None ->
      Printf.sprintf
        "<h2>%s</h2>\n<p class=\"note\">no runs in the database yet</p>"
        (escape_html exp)
  | Some ref_run, Some latest ->
      let ref_index =
        let rec find i = function
          | [] -> -1
          | r :: rest -> if r == ref_run then i else find (i + 1) rest
        in
        find 0 runs
      in
      let rows =
        List.map
          (metric_row ~runs ~ref_index ~ref_run ~latest)
          page_metrics
      in
      Printf.sprintf
        "<h2>%s</h2>\n\
         <p class=\"runs\">%d runs; reference %s; latest %s</p>\n\
         <table>\n\
         <tr><th>metric</th><th>trend (oldest&rarr;newest)</th>\
         <th>reference</th><th>latest</th><th>&Delta; latest vs \
         reference</th></tr>\n\
         %s\n\
         </table>"
        (escape_html exp) (List.length runs)
        (escape_html (Db.label ref_run))
        (escape_html (Db.label latest))
        (String.concat "\n" rows)

let render ?generated experiments =
  let header =
    Printf.sprintf
      "<h1>etrees &mdash; benchmark trends</h1>\n\
       <p class=\"note\">One row per metric, one point per recorded run \
       (oldest to newest) from the append-only bench database \
       (docs/BENCHDB.md).  The hollow dot marks the gate's reference \
       entry, the filled dot the latest run.  Deterministic metrics are \
       gated tight; host-time metrics are advisory (muted rows).%s</p>"
      (match generated with
      | None -> ""
      | Some g -> Printf.sprintf "  Generated %s." (escape_html g))
  in
  Printf.sprintf
    "<!doctype html>\n\
     <html lang=\"en\">\n\
     <head>\n\
     <meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
     <title>etrees benchmark trends</title>\n\
     <style>%s</style>\n\
     </head>\n\
     <body>\n\
     %s\n\
     %s\n\
     </body>\n\
     </html>\n"
    css header
    (String.concat "\n" (List.map experiment_section experiments))

let write ~file ?generated experiments =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?generated experiments))
