(* etrees.benchdb — the append-only benchmark database and the
   perf-regression gate built on it (docs/BENCHDB.md, ROADMAP item 4).

   Every `bench/main.exe --json` run stamps its BENCH_<exp>.json with a
   deterministic "meta" block (Report.Meta); [Db] folds those blocks
   into one committed JSONL file per experiment, [Gate] compares a
   fresh run against the DB's reference entry with ci_bench-style
   thresholds, [Page] renders the accumulated series as a
   self-contained HTML trend page, and [Baseline] regenerates
   BENCH_BASELINE.md from the reference entries.  Pure stdlib over the
   Etrace.Json reader, below the simulator in the dependency graph. *)

module Db = Db
module Gate = Gate
module Page = Page
module Baseline = Baseline
