(* The append-only benchmark DB: one JSONL file per experiment under
   bench/db/, one line per run, newest last (nim-lang/ci_bench's
   minimize.csv shape, with the meta block as the row).  Lines carry
   only the run's provenance + cost "meta" block and the point count —
   never the points themselves — so a year of history stays a few
   kilobytes and diffs stay reviewable. *)

module J = Etrace.Json

type run = {
  exp : string;
  reference : bool;  (** the gate compares against the newest reference *)
  points : int;      (** length of the source report's "points" array *)
  meta : J.value;    (** the "meta" object, schema-checked on entry *)
}

(* ------------------------------------------------------------------ *)
(* Serializing Json.value back out (the reader in lib/trace has no
   writer; emission here mirrors Report's escaping rules).             *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null"

let rec add_value buf = function
  | J.Null -> Buffer.add_string buf "null"
  | J.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | J.Num f -> Buffer.add_string buf (number_to_string f)
  | J.Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | J.Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          add_value buf item)
        items;
      Buffer.add_char buf ']'
  | J.Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          add_value buf v)
        fields;
      Buffer.add_char buf '}'

let value_to_string v =
  let buf = Buffer.create 256 in
  add_value buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The meta schema (Report.Meta's json, re-checked on the read side)   *)
(* ------------------------------------------------------------------ *)

let str_keys = [ "experiment"; "date"; "commit"; "toolchain" ]

let int_keys =
  [ "seed"; "events"; "reads"; "writes"; "rmws"; "major_collections" ]

let num_keys =
  [
    "cpu_s";
    "minor_words";
    "major_words";
    "events_per_sec";
    "minor_words_per_event";
  ]

let validate_meta meta =
  let missing what key = Error (Printf.sprintf "meta.%s: not a %s" key what) in
  let rec check = function
    | [] -> Ok ()
    | (what, to_x, key) :: rest -> (
        match Option.bind (J.member key meta) to_x with
        | None -> missing what key
        | Some _ -> check rest)
  in
  match meta with
  | J.Obj _ ->
      check
        (List.map (fun k -> ("string", J.to_str, k)) str_keys
        @ List.map
            (fun k -> ("int", (fun v -> Option.map string_of_int (J.to_int v)), k))
            int_keys
        @ List.map
            (fun k -> ("number", (fun v -> Option.map string_of_float (J.to_num v)), k))
            num_keys
        @ [ ("bool", (fun v -> Option.map string_of_bool (J.to_bool v)), "dirty") ])
  | _ -> Error "meta: not an object"

(* A freshly written BENCH_<exp>.json -> one DB row. *)
let of_bench_json ~exp v =
  match
    ( Option.bind (J.member "experiment" v) J.to_str,
      Option.bind (J.member "points" v) J.to_list,
      J.member "meta" v )
  with
  | Some e, _, _ when e <> exp ->
      Error (Printf.sprintf "experiment is %S, expected %S" e exp)
  | _, _, None -> Error "no meta block (bench too old? re-run with --json)"
  | Some _, Some points, Some meta -> (
      match validate_meta meta with
      | Error e -> Error e
      | Ok () ->
          Ok { exp; reference = false; points = List.length points; meta })
  | None, _, _ -> Error "no experiment tag"
  | _, None, _ -> Error "no points array"

let run_to_line r =
  value_to_string
    (J.Obj
       [
         ("exp", J.Str r.exp);
         ("reference", J.Bool r.reference);
         ("points", J.Num (float_of_int r.points));
         ("meta", r.meta);
       ])

let run_of_line ~exp line =
  match J.parse line with
  | Error e -> Error e
  | Ok v -> (
      match
        ( Option.bind (J.member "exp" v) J.to_str,
          Option.bind (J.member "reference" v) J.to_bool,
          Option.bind (J.member "points" v) J.to_int,
          J.member "meta" v )
      with
      | Some e, Some reference, Some points, Some meta when e = exp -> (
          match validate_meta meta with
          | Error e -> Error e
          | Ok () -> Ok { exp; reference; points; meta })
      | Some e, _, _, _ when e <> exp ->
          Error (Printf.sprintf "row tagged %S in the %S database" e exp)
      | _ -> Error "malformed database row")

(* ------------------------------------------------------------------ *)
(* The files                                                           *)
(* ------------------------------------------------------------------ *)

let path ~db_dir exp = Filename.concat db_dir (exp ^ ".jsonl")

let append ~db_dir r =
  if not (Sys.file_exists db_dir) then Sys.mkdir db_dir 0o755;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_text ] 0o644
      (path ~db_dir r.exp)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (run_to_line r);
      output_char oc '\n')

let load ~db_dir exp =
  let file = path ~db_dir exp in
  if not (Sys.file_exists file) then Ok []
  else
    let lines = In_channel.with_open_text file In_channel.input_lines in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> go (i + 1) acc rest
      | line :: rest -> (
          match run_of_line ~exp line with
          | Ok r -> go (i + 1) (r :: acc) rest
          | Error e -> Error (Printf.sprintf "%s:%d: %s" file i e))
    in
    go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let latest runs = match List.rev runs with [] -> None | r :: _ -> Some r

(* The gate's comparison target: the newest run marked [reference], or
   the oldest run when none is (the first append seeds the baseline). *)
let reference runs =
  match List.rev (List.filter (fun r -> r.reference) runs) with
  | r :: _ -> Some r
  | [] -> ( match runs with r :: _ -> Some r | [] -> None)

(* Metric lookup: the meta block's numeric fields, plus the row-level
   point count under the pseudo-metric "points". *)
let metric r name =
  if name = "points" then Some (float_of_int r.points)
  else Option.bind (J.member name r.meta) J.to_num

let series ~metric:name runs = List.map (fun r -> metric r name) runs

let str_field r name = Option.bind (J.member name r.meta) J.to_str

let label r =
  let date = Option.value ~default:"?" (str_field r "date") in
  let commit = Option.value ~default:"?" (str_field r "commit") in
  let dirty =
    match Option.bind (J.member "dirty" r.meta) J.to_bool with
    | Some true -> "+"
    | _ -> ""
  in
  Printf.sprintf "%s %s%s" date commit dirty
