(** The append-only benchmark database (docs/BENCHDB.md): one JSONL
    file per experiment under [bench/db/], one line per run, newest
    last.  Rows carry the run's provenance + cost ["meta"] block and
    its point count — never the points — so history stays small and
    diffs reviewable. *)

type run = {
  exp : string;
  reference : bool;  (** the gate compares against the newest reference *)
  points : int;      (** length of the source report's points array *)
  meta : Etrace.Json.value;  (** the meta object, schema-checked *)
}

val value_to_string : Etrace.Json.value -> string
(** Compact single-line serialization of a parsed JSON value
    (the reader in [lib/trace] has no writer). *)

val validate_meta : Etrace.Json.value -> (unit, string) result
(** The meta schema every [BENCH_<exp>.json] must satisfy: the
    [Report.Meta] fields, present and correctly typed. *)

val of_bench_json :
  exp:string -> Etrace.Json.value -> (run, string) result
(** Fold a freshly written [BENCH_<exp>.json] into one DB row
    (validates the experiment tag and the meta schema). *)

val run_to_line : run -> string
val run_of_line : exp:string -> string -> (run, string) result

val path : db_dir:string -> string -> string
(** [path ~db_dir exp] is [db_dir/exp.jsonl]. *)

val append : db_dir:string -> run -> unit
(** Append one row ([run_to_line] + newline), creating the directory
    and file on first use. *)

val load : db_dir:string -> string -> (run list, string) result
(** All rows, oldest first; [Ok []] when the file does not exist yet;
    [Error "file:line: ..."] on the first malformed row. *)

val latest : run list -> run option

val reference : run list -> run option
(** The newest row marked [reference], else the oldest row (the first
    append seeds the baseline), else [None] on an empty database. *)

val metric : run -> string -> float option
(** Numeric meta fields by name, plus the row-level point count under
    the pseudo-metric ["points"]. *)

val series : metric:string -> run list -> float option list
(** [metric] per run, oldest first. *)

val str_field : run -> string -> string option

val label : run -> string
(** ["<date> <commit>[+]"] — the run's provenance stamp ([+] marks a
    dirty work tree). *)
