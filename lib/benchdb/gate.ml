(* The perf-regression gate (ci_bench's threshold rule, docs/BENCHDB.md):
   compare a fresh run's meta block against the DB's reference entry,
   metric by metric.

   Two tolerance classes: the *deterministic* columns — point count,
   simulated events, scheduler reads/writes/rmws (exact functions of
   the seed) and minor words per event (exact per binary, a few percent
   across compiler versions) — are held to the tight threshold, while
   the wall-clock-derived events/sec only fails on a loose-threshold
   slowdown.  Direction matters: a deterministic counter regresses by
   *moving* (either way means the simulation changed), allocation only
   by growing, throughput only by falling. *)

type tolerance = Tight | Loose
type direction = Both | Increase | Decrease

type spec = { metric : string; tolerance : tolerance; direction : direction }

let default_specs =
  [
    { metric = "points"; tolerance = Tight; direction = Both };
    { metric = "events"; tolerance = Tight; direction = Both };
    { metric = "reads"; tolerance = Tight; direction = Both };
    { metric = "writes"; tolerance = Tight; direction = Both };
    { metric = "rmws"; tolerance = Tight; direction = Both };
    { metric = "minor_words_per_event"; tolerance = Tight; direction = Increase };
    { metric = "events_per_sec"; tolerance = Loose; direction = Decrease };
  ]

let default_tight_pct = 5.0
let default_loose_pct = 50.0

type delta = {
  d_metric : string;
  d_tolerance : tolerance;
  d_direction : direction;
  d_reference : float;
  d_current : float;
  d_pct : float;        (** 100 * (current - reference) / reference *)
  d_regressed : bool;
}

type verdict =
  | Pass of delta list
  | Regression of delta list  (** every delta, regressed ones included *)
  | No_baseline

let delta_pct ~reference ~current =
  if reference = 0.0 then if current = 0.0 then 0.0 else Float.infinity
  else 100.0 *. (current -. reference) /. Float.abs reference

let check ?(specs = default_specs) ?(tight_pct = default_tight_pct)
    ?(loose_pct = default_loose_pct) ~reference ~current () =
  match reference with
  | None -> No_baseline
  | Some ref_run ->
      let deltas =
        List.filter_map
          (fun s ->
            match (Db.metric ref_run s.metric, Db.metric current s.metric) with
            | Some r, Some c ->
                let pct = delta_pct ~reference:r ~current:c in
                let tol =
                  match s.tolerance with
                  | Tight -> tight_pct
                  | Loose -> loose_pct
                in
                let regressed =
                  match s.direction with
                  | Both -> Float.abs pct > tol
                  | Increase -> pct > tol
                  | Decrease -> pct < -.tol
                in
                Some
                  {
                    d_metric = s.metric;
                    d_tolerance = s.tolerance;
                    d_direction = s.direction;
                    d_reference = r;
                    d_current = c;
                    d_pct = pct;
                    d_regressed = regressed;
                  }
            | _ -> None)
          specs
      in
      if List.exists (fun d -> d.d_regressed) deltas then Regression deltas
      else Pass deltas

(* Exit codes in the etrees_run check style: 0 pass, 1 regression,
   3 no baseline to compare against. *)
let exit_code = function Pass _ -> 0 | Regression _ -> 1 | No_baseline -> 3

(* Worst verdict across experiments: any regression dominates, then any
   missing baseline, then pass. *)
let combined_exit_code verdicts =
  let codes = List.map exit_code verdicts in
  if List.mem 1 codes then 1 else if List.mem 3 codes then 3 else 0

let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let format_delta d =
  let tol = match d.d_tolerance with Tight -> "tight" | Loose -> "loose" in
  let dir =
    match d.d_direction with
    | Both -> "+/-"
    | Increase -> "+only"
    | Decrease -> "-only"
  in
  Printf.sprintf "  %-22s %14s -> %14s  %+8.2f%%  [%s %s] %s" d.d_metric
    (format_value d.d_reference)
    (format_value d.d_current) d.d_pct tol dir
    (if d.d_regressed then "REGRESSION" else "ok")

let format ~exp ~tight_pct ~loose_pct verdict =
  let header tail =
    Printf.sprintf "perf %s (tight %.1f%%, loose %.1f%%): %s" exp tight_pct
      loose_pct tail
  in
  match verdict with
  | No_baseline ->
      header "no baseline entry in the database (run `perf append` to seed)"
      ^ "\n"
  | Pass deltas ->
      header "PASS" ^ "\n" ^ String.concat "\n" (List.map format_delta deltas)
      ^ "\n"
  | Regression deltas ->
      header "REGRESSION" ^ "\n"
      ^ String.concat "\n" (List.map format_delta deltas)
      ^ "\n"
