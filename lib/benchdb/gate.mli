(** The perf-regression gate: ci_bench-style threshold comparison of a
    fresh run's meta block against the database's reference entry
    (docs/BENCHDB.md). *)

type tolerance = Tight | Loose

type direction =
  | Both      (** any movement past tolerance regresses (determinism) *)
  | Increase  (** only growth regresses (allocation) *)
  | Decrease  (** only shrinkage regresses (throughput) *)

type spec = { metric : string; tolerance : tolerance; direction : direction }

val default_specs : spec list
(** points / events / reads / writes / rmws at [Tight, Both],
    minor_words_per_event at [Tight, Increase], events_per_sec at
    [Loose, Decrease]. *)

val default_tight_pct : float
(** 5.0 — wide enough to absorb compiler-version allocation drift on
    the minor-words column; the pure counter columns are exact. *)

val default_loose_pct : float
(** 50.0 — events/sec varies with host load; only a halving fails. *)

type delta = {
  d_metric : string;
  d_tolerance : tolerance;
  d_direction : direction;
  d_reference : float;
  d_current : float;
  d_pct : float;  (** 100 * (current - reference) / reference *)
  d_regressed : bool;
}

type verdict =
  | Pass of delta list
  | Regression of delta list  (** every delta, regressed ones included *)
  | No_baseline

val delta_pct : reference:float -> current:float -> float

val check :
  ?specs:spec list ->
  ?tight_pct:float ->
  ?loose_pct:float ->
  reference:Db.run option ->
  current:Db.run ->
  unit ->
  verdict
(** Metrics missing on either side are skipped (the schema check on
    entry keeps the standard ones present). *)

val exit_code : verdict -> int
(** 0 pass / 1 regression / 3 no baseline, in the [etrees_run check]
    exit-code style. *)

val combined_exit_code : verdict list -> int
(** Worst verdict across experiments: 1 dominates 3 dominates 0. *)

val format_delta : delta -> string
val format : exp:string -> tight_pct:float -> loose_pct:float -> verdict -> string
