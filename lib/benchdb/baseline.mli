(** Generated BENCH_BASELINE.md (docs/BENCHDB.md): rendered from the
    database's reference entries so the committed baseline can never
    drift from what the gate compares against. *)

val render : ?db_dir:string -> (string * Db.run list) list -> string
(** [(experiment, runs oldest-first)] — one table row per experiment's
    reference entry.  [db_dir] only customizes the paths quoted in the
    prose (default ["bench/db"]). *)

val write :
  file:string -> ?db_dir:string -> (string * Db.run list) list -> unit
