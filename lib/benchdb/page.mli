(** The self-contained HTML trend page (docs/BENCHDB.md): inline CSS
    and SVG sparklines, no scripts, rendered deterministically from the
    database so the golden-fixture test can compare bytes. *)

val page_metrics : (string * string) list
(** (metric, display label) rows rendered per experiment, gated
    columns first. *)

val sparkline : ?ref_index:int -> float list -> string
(** One series, oldest first, as an inline [<svg>]: accent polyline,
    filled dot on the latest value, hollow dot on [ref_index]. *)

val render : ?generated:string -> (string * Db.run list) list -> string
(** [(experiment, runs oldest-first)] sections in the given order.
    [generated] is a caller-supplied stamp (omitted from tests to keep
    output deterministic). *)

val write :
  file:string -> ?generated:string -> (string * Db.run list) list -> unit
