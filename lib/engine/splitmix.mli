(** Splitmix64 pseudo-random number generator (Steele, Lea & Flood,
    OOPSLA 2014).

    Deterministic per seed — the simulator relies on this for
    reproducible experiments — with cheap derivation of decorrelated
    per-processor streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> index:int -> t
(** [split base ~index] derives an independent stream for stream
    [index] without advancing [base]. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is [split (of_int seed) ~index]: the one
    canonical way to derive stream [index] of an integer-seeded family
    (adapt controllers, fault classes, arrival generators). *)

val mix64 : int64 -> int64
(** The Murmur3-style 64-bit finalizer behind {!split}.  Exposed so
    every pure hash in the library mixes through the same function. *)

val hash3 : int -> int -> int -> int
(** [hash3 a b c] is a pure non-negative hash of the triple, suitable
    for stateless noise (fault jitter) and key→bucket mapping (the
    shard frontend's session hash). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> num:int -> den:int -> bool
(** [bernoulli t ~num ~den] is true with probability [num/den]
    (clamped to [\[0,1\]]).  Raises [Invalid_argument] if [den <= 0]. *)
