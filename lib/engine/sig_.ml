(* The execution-engine abstraction.

   Every concurrent algorithm in this repository (elimination trees,
   diffracting trees, combining trees, MCS locks, pools, RSU) is written
   once as a functor over [S] and instantiated twice:

   - against {!Native_engine}, where a cell is an ['a Atomic.t] and
     processors are OCaml 5 domains — the reusable library; and
   - against [Sim.Engine], where every operation is a discrete-event
     simulation step with a cycle cost and per-location contention — the
     vehicle for reproducing the paper's 256-processor experiments.

   The three read-modify-write primitives are exactly the ones the paper
   assumes of the hardware: [exchange] (the paper's
   [register_to_memory_swap]), [compare_and_set] ([compare_and_swap]) and
   [fetch_and_add] ([fetch_and_increment]).  [compare_and_set] compares
   with physical equality, matching [Atomic.compare_and_set]; all
   algorithms here only ever CAS against a value they previously read or
   wrote, so physical equality is sufficient.

   The effect discipline.  Engine-parametric code must route EVERY
   access to shared state through a cell and the operations below —
   never a raw [ref], [mutable] field, array store or direct [Atomic].
   The discipline is not style: under [Sim.Engine] a raw mutation is a
   zero-cost, unserialized store that the per-location queueing never
   sees, silently corrupting the very contention behaviour the
   experiments measure (and natively it is simply a data race).  Truly
   processor-private or construction-only state may opt out, but each
   such site must carry a justification in
   lib/analysis/lint_allowlist.txt.  Two tools enforce this
   (docs/ANALYSIS.md): the parsetree lint behind `dune build @lint`
   flags raw mutation statically, and [Analysis.Race_detector] audits
   simulated runs dynamically by stamping each location with its last
   engine writer and checking the stamp on every operation. *)

module type S = sig
  type 'a cell
  (** A shared memory location holding a value of type ['a]. *)

  val cell : 'a -> 'a cell
  (** [cell v] allocates a fresh shared location initialized to [v].
      Allocation is free of synchronization cost in both engines, so it
      may be used during data-structure construction. *)

  val get : 'a cell -> 'a
  (** Atomic read. *)

  val set : 'a cell -> 'a -> unit
  (** Atomic write. *)

  val exchange : 'a cell -> 'a -> 'a
  (** [exchange c v] atomically stores [v] and returns the previous
      value (the paper's register-to-memory swap). *)

  val compare_and_set : 'a cell -> 'a -> 'a -> bool
  (** [compare_and_set c expected desired] atomically replaces the
      contents with [desired] iff they are physically equal to
      [expected]; returns whether the replacement happened. *)

  val fetch_and_add : int cell -> int -> int
  (** [fetch_and_add c k] atomically adds [k] and returns the previous
      value. *)

  val pid : unit -> int
  (** Dense identifier of the calling processor, in [0, nprocs ())].
      Used to index per-processor announcement arrays such as the
      elimination balancer's [Location] array. *)

  val nprocs : unit -> int
  (** Upper bound on the number of processors that will participate. *)

  val delay : int -> unit
  (** [delay n] performs [n] units of local work: simulated cycles under
      the simulator, [Domain.cpu_relax] iterations natively.  This is the
      balancer's spin-wait and the workloads' think time. *)

  val cpu_relax : unit -> unit
  (** A minimal backoff hint, cheaper than [delay 1] natively. *)

  val random_int : int -> int
  (** [random_int n] draws uniformly from [0, n) using the calling
      processor's private stream (no cross-processor synchronization). *)

  val random_bernoulli : num:int -> den:int -> bool
  (** Bernoulli trial with probability [num/den] on the private stream. *)

  val now : unit -> int
  (** Elapsed time: simulated cycles under the simulator, an approximate
      nanosecond clock natively.  Workload loop bounds use this. *)
end
