(* Splitmix64 pseudo-random number generator (Steele, Lea & Flood 2014).

   Used for all randomized decisions in the library: prism slot choice,
   RSU partner choice and workload think times.  It is deterministic per
   seed, which the simulator relies on for reproducible experiments, and
   each simulated processor (or native domain) owns an independent
   stream, so drawing numbers never synchronizes between processors. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

(* Murmur3-style 64-bit finalizer.  This is the single mixing function
   behind stream derivation ([split]), the fault planner's pure hashing
   and the shard frontend's session→shard hash — shared here so the
   three cannot drift apart. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* Derive an independent stream: mixing the parent seed with the stream
   index through the output function keeps streams decorrelated even for
   consecutive indices. *)
let split t ~index =
  create (mix64 (Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (index + 1)))))

let stream ~seed ~index = split (of_int seed) ~index

(* Pure (stateless) non-negative hash of a triple: decorrelates
   consecutive inputs so per-(pid, cycle) jitter and per-session shard
   choice look noise-like while remaining pure functions. *)
let hash3 a b c =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int a) golden_gamma)
         (Int64.add
            (Int64.mul (Int64.of_int b) 0xBF58476D1CE4E5B9L)
            (Int64.of_int c)))
  in
  Int64.to_int z land max_int

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound).  Rejection sampling over the top 62 bits avoids
   modulo bias beyond one part in 2^62 / bound, which is negligible for
   the bounds used here (all well below 2^30). *)
let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli trial with probability [num]/[den]. *)
let bernoulli t ~num ~den =
  if den <= 0 then invalid_arg "Splitmix.bernoulli: den must be positive";
  if num <= 0 then false
  else if num >= den then true
  else int t den < num
