(* The typed trace-event vocabulary (etrees.trace).

   One flat variant shared by every emitter (the simulator's scheduler,
   the elimination balancer/tree, the locks' spin loops) and every sink
   (cycle attribution, Chrome/Perfetto export, ad-hoc test probes).
   Events are plain immutable values: a sink that wants state keeps its
   own.

   Timestamps are simulated cycles.  Every event names the simulated
   processor it belongs to; interval events ([Mem_op], [Delay_done])
   are emitted when their completion event fires and carry the whole
   service window, so a sink never has to pair begin/end records for
   them.  Span events (balancer/prism/toggle/spin, operations) come as
   begin/end pairs emitted from the traversal code itself.

   The vocabulary deliberately uses only ints and small variants — no
   references into simulator or tree state — so the trace library
   depends on nothing and everything may depend on it. *)

type mem_kind = Read | Write | Rmw

let mem_kind_name = function Read -> "read" | Write -> "write" | Rmw -> "rmw"

(* Mirrors [Core.Location.kind] without depending on core: a token is
   an enqueue/push traversal, an anti-token a dequeue/pop. *)
type token_kind = Token | Anti

let token_kind_name = function Token -> "token" | Anti -> "anti"

(* How a prism collision attempt resolved.  [Lost] means a claim CAS
   failed (the partner was already taken, or our own announcement was
   claimed first and the outcome arrives as a victim-side event). *)
type collision = Eliminated | Diffracted | Lost

let collision_name = function
  | Eliminated -> "eliminated"
  | Diffracted -> "diffracted"
  | Lost -> "lost"

type end_reason = Finished | Aborted | Crashed

let end_reason_name = function
  | Finished -> "finished"
  | Aborted -> "aborted"
  | Crashed -> "crashed"

type t =
  (* -- processor lifecycle (level: ops) -- *)
  | Proc_start of { pid : int; time : int }
  | Proc_end of { pid : int; time : int; reason : end_reason }
  (* -- operation lifecycle: one tree traversal (level: ops) -- *)
  | Op_begin of { pid : int; time : int; kind : token_kind }
  | Op_end of { pid : int; time : int; kind : token_kind; leaf : int option }
      (* [leaf = None]: the operation was eliminated inside the tree *)
  (* -- balancer traversal detail (level: events) -- *)
  | Balancer_enter of {
      pid : int;
      time : int;
      balancer : int;
      depth : int;
      kind : token_kind;
    }
  | Balancer_exit of {
      pid : int;
      time : int;
      balancer : int;
      depth : int;
      wire : int option; (* None: eliminated here *)
    }
  | Prism_enter of { pid : int; time : int; balancer : int; layer : int }
  | Prism_exit of { pid : int; time : int; balancer : int; layer : int }
  | Prism_cas of {
      pid : int;
      time : int;
      balancer : int;
      partner : int;
      initiator : bool; (* false: we were claimed by [partner] *)
      result : collision;
    }
  | Toggle_wait of { pid : int; time : int; balancer : int }
  | Toggle_pass of {
      pid : int;
      time : int;
      balancer : int;
      toggled : bool; (* false: claimed while queueing for the lock *)
    }
  | Spin_begin of { pid : int; time : int }
  | Spin_end of { pid : int; time : int }
  (* -- reactive controller decisions (level: events) — emitted by a
     balancer's Adapt controller only when the value changed, so a
     clamped controller emits nothing (docs/ADAPTIVE.md) -- *)
  | Adapt_spin of { pid : int; time : int; balancer : int; spin : int }
  | Adapt_width of {
      pid : int;
      time : int;
      balancer : int;
      layer : int;
      width : int; (* the new effective width of this prism layer *)
    }
  (* -- raw scheduler intervals (level: full) -- *)
  | Mem_op of {
      pid : int;
      kind : mem_kind;
      loc : int; (* Memory.loc id; -1 when the op had no location *)
      issued : int; (* when the processor performed the effect *)
      begins : int; (* service start (= issued + queueing delay) *)
      finish : int; (* service end as scheduled *)
      fired : int; (* actual completion (> finish under a stall) *)
    }
  | Delay_done of {
      pid : int;
      issued : int;
      planned : int; (* requested cycles, after clamping and jitter *)
      fired : int;
    }
  (* -- injected faults (level: ops) -- *)
  | Fault_stall of { pid : int; time : int; until : int }
  | Fault_crash of { pid : int; time : int }

let pid = function
  | Proc_start e -> e.pid
  | Proc_end e -> e.pid
  | Op_begin e -> e.pid
  | Op_end e -> e.pid
  | Balancer_enter e -> e.pid
  | Balancer_exit e -> e.pid
  | Prism_enter e -> e.pid
  | Prism_exit e -> e.pid
  | Prism_cas e -> e.pid
  | Toggle_wait e -> e.pid
  | Toggle_pass e -> e.pid
  | Spin_begin e -> e.pid
  | Spin_end e -> e.pid
  | Adapt_spin e -> e.pid
  | Adapt_width e -> e.pid
  | Mem_op e -> e.pid
  | Delay_done e -> e.pid
  | Fault_stall e -> e.pid
  | Fault_crash e -> e.pid

(* The event's primary timestamp: where it sits on its processor's
   timeline.  For interval events this is the interval's start, which
   keeps per-processor emission order monotone in [time]. *)
let time = function
  | Proc_start e -> e.time
  | Proc_end e -> e.time
  | Op_begin e -> e.time
  | Op_end e -> e.time
  | Balancer_enter e -> e.time
  | Balancer_exit e -> e.time
  | Prism_enter e -> e.time
  | Prism_exit e -> e.time
  | Prism_cas e -> e.time
  | Toggle_wait e -> e.time
  | Toggle_pass e -> e.time
  | Spin_begin e -> e.time
  | Spin_end e -> e.time
  | Adapt_spin e -> e.time
  | Adapt_width e -> e.time
  | Mem_op e -> e.issued
  | Delay_done e -> e.issued
  | Fault_stall e -> e.time
  | Fault_crash e -> e.time

let name = function
  | Proc_start _ -> "proc-start"
  | Proc_end _ -> "proc-end"
  | Op_begin _ -> "op-begin"
  | Op_end _ -> "op-end"
  | Balancer_enter _ -> "balancer-enter"
  | Balancer_exit _ -> "balancer-exit"
  | Prism_enter _ -> "prism-enter"
  | Prism_exit _ -> "prism-exit"
  | Prism_cas _ -> "prism-cas"
  | Toggle_wait _ -> "toggle-wait"
  | Toggle_pass _ -> "toggle-pass"
  | Spin_begin _ -> "spin-begin"
  | Spin_end _ -> "spin-end"
  | Adapt_spin _ -> "adapt-spin"
  | Adapt_width _ -> "adapt-width"
  | Mem_op _ -> "mem-op"
  | Delay_done _ -> "delay"
  | Fault_stall _ -> "fault-stall"
  | Fault_crash _ -> "fault-crash"
