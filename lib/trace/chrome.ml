(* Chrome trace-event / Perfetto export (etrees.trace).

   A sink that renders the event stream as Chrome trace-event JSON
   (the "JSON Array Format" every Chromium and ui.perfetto.dev build
   reads).  Conventions:

   - one process (pid 0 = the simulator), one thread track per
     simulated processor (tid = processor id);
   - timestamps are in microseconds; we map 1 simulated cycle = 1 us;
   - each pool operation is an async span ([ph b]/[ph e], one id per
     operation) so its whole journey through the tree reads as a single
     arrow-connected bar;
   - balancer visits, prism phases, toggle waits and spin waits are
     nested duration spans ([ph B]/[ph E]) on the processor's track;
   - prism collision CASes and injected faults are instants ([ph i]);
   - two counter tracks ([ph C]): processors currently inside a prism
     layer, and processors queueing for or holding a toggle lock;
   - at [Full] level, every raw scheduler interval becomes a complete
     slice ([ph X]): memory queueing delay, service window, fault
     stalls, and local delays.

   The sink's [level] selects how much is *rendered*; emission into the
   sink is always full (see [Level]).  Events arrive in simulated-time
   order within each processor, so per-track timestamps are monotone by
   construction — [validate] re-checks that from the written text.

   Rendering buffers everything: trace files from the simulator's runs
   are megabytes, not gigabytes, and buffering lets [contents] prepend
   the metadata records (process/thread names) for exactly the tracks
   that appeared. *)

type t = {
  level : Level.t;
  buf : Buffer.t;
  mutable first : bool;
  pids : (int, unit) Hashtbl.t; (* tracks seen, for thread metadata *)
  op_seq : (int, int) Hashtbl.t; (* per-pid async-span sequence *)
  open_op : (int, int) Hashtbl.t; (* pid -> open async-span id *)
  mutable prism_occupancy : int;
  mutable toggle_depth : int;
}

let create ?(level = Level.Events) () =
  {
    level;
    buf = Buffer.create 65536;
    first = true;
    pids = Hashtbl.create 64;
    op_seq = Hashtbl.create 64;
    open_op = Hashtbl.create 64;
    prism_occupancy = 0;
    toggle_depth = 0;
  }

let level t = t.level

let raw t s =
  if t.first then t.first <- false else Buffer.add_string t.buf ",\n";
  Buffer.add_string t.buf s

let ev t fmt = Printf.ksprintf (raw t) fmt

let track t pid =
  if not (Hashtbl.mem t.pids pid) then Hashtbl.add t.pids pid ()

(* Async-span ids: unique per operation, decodable back to the
   processor ([id / 1_000_000]) when eyeballing raw JSON. *)
let fresh_op_id t pid =
  let seq = match Hashtbl.find_opt t.op_seq pid with Some s -> s | None -> 0 in
  Hashtbl.replace t.op_seq pid (seq + 1);
  (pid * 1_000_000) + seq

let instant t ~pid ~time ~name ~args =
  ev t {|{"name":"%s","cat":"sim","ph":"i","s":"t","pid":0,"tid":%d,"ts":%d,"args":{%s}}|}
    name pid time args

let begin_span t ~pid ~time ~name =
  ev t {|{"name":"%s","cat":"sim","ph":"B","pid":0,"tid":%d,"ts":%d}|} name pid
    time

let end_span t ~pid ~time ~args =
  if args = "" then ev t {|{"ph":"E","pid":0,"tid":%d,"ts":%d}|} pid time
  else ev t {|{"ph":"E","pid":0,"tid":%d,"ts":%d,"args":{%s}}|} pid time args

let slice t ~pid ~ts ~dur ~name ~args =
  ev t {|{"name":"%s","cat":"mem","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":{%s}}|}
    name pid ts dur args

let counter t ~time ~name ~value =
  ev t {|{"name":"%s","ph":"C","pid":0,"ts":%d,"args":{"n":%d}}|} name time
    value

let on_event t (e : Event.t) =
  let r = Level.rank t.level in
  if r >= 1 then begin
    track t (Event.pid e);
    match e with
    (* -- ops level ------------------------------------------------- *)
    | Event.Proc_start { pid; time } ->
        instant t ~pid ~time ~name:"proc-start" ~args:""
    | Event.Proc_end { pid; time; reason } ->
        instant t ~pid ~time ~name:"proc-end"
          ~args:
            (Printf.sprintf {|"reason":"%s"|} (Event.end_reason_name reason))
    | Event.Op_begin { pid; time; kind } ->
        let id = fresh_op_id t pid in
        Hashtbl.replace t.open_op pid id;
        ev t
          {|{"name":"%s","cat":"op","ph":"b","id":%d,"pid":0,"tid":%d,"ts":%d}|}
          (Event.token_kind_name kind)
          id pid time
    | Event.Op_end { pid; time; kind; leaf } ->
        (match Hashtbl.find_opt t.open_op pid with
        | None -> ()
        | Some id ->
            Hashtbl.remove t.open_op pid;
            let args =
              match leaf with
              | Some w -> Printf.sprintf {|"leaf":%d|} w
              | None -> {|"eliminated":true|}
            in
            ev t
              {|{"name":"%s","cat":"op","ph":"e","id":%d,"pid":0,"tid":%d,"ts":%d,"args":{%s}}|}
              (Event.token_kind_name kind)
              id pid time args)
    | Event.Fault_stall { pid; time; until } ->
        instant t ~pid ~time ~name:"fault-stall"
          ~args:(Printf.sprintf {|"until":%d|} until)
    | Event.Fault_crash { pid; time } ->
        instant t ~pid ~time ~name:"fault-crash" ~args:""
    (* -- events level ---------------------------------------------- *)
    | Event.Balancer_enter { pid; time; balancer; depth; kind } ->
        if r >= 2 then
          ev t
            {|{"name":"balancer %d","cat":"sim","ph":"B","pid":0,"tid":%d,"ts":%d,"args":{"depth":%d,"kind":"%s"}}|}
            balancer pid time depth
            (Event.token_kind_name kind)
    | Event.Balancer_exit { pid; time; wire; _ } ->
        if r >= 2 then
          end_span t ~pid ~time
            ~args:
              (match wire with
              | Some w -> Printf.sprintf {|"wire":%d|} w
              | None -> {|"eliminated":true|})
    | Event.Prism_enter { pid; time; balancer; layer } ->
        if r >= 2 then begin
          begin_span t ~pid ~time
            ~name:(Printf.sprintf "prism %d/L%d" balancer layer);
          t.prism_occupancy <- t.prism_occupancy + 1;
          counter t ~time ~name:"prism occupancy" ~value:t.prism_occupancy
        end
    | Event.Prism_exit { pid; time; _ } ->
        if r >= 2 then begin
          end_span t ~pid ~time ~args:"";
          t.prism_occupancy <- t.prism_occupancy - 1;
          counter t ~time ~name:"prism occupancy" ~value:t.prism_occupancy
        end
    | Event.Prism_cas { pid; time; balancer; partner; initiator; result } ->
        if r >= 2 then
          instant t ~pid ~time ~name:"prism-cas"
            ~args:
              (Printf.sprintf
                 {|"balancer":%d,"partner":%d,"initiator":%b,"result":"%s"|}
                 balancer partner initiator
                 (Event.collision_name result))
    | Event.Toggle_wait { pid; time; balancer } ->
        if r >= 2 then begin
          begin_span t ~pid ~time ~name:(Printf.sprintf "toggle %d" balancer);
          t.toggle_depth <- t.toggle_depth + 1;
          counter t ~time ~name:"toggle queue depth" ~value:t.toggle_depth
        end
    | Event.Toggle_pass { pid; time; toggled; _ } ->
        if r >= 2 then begin
          end_span t ~pid ~time
            ~args:(Printf.sprintf {|"toggled":%b|} toggled);
          t.toggle_depth <- t.toggle_depth - 1;
          counter t ~time ~name:"toggle queue depth" ~value:t.toggle_depth
        end
    | Event.Spin_begin { pid; time } ->
        if r >= 2 then begin_span t ~pid ~time ~name:"spin"
    | Event.Spin_end { pid; time } ->
        if r >= 2 then end_span t ~pid ~time ~args:""
    | Event.Adapt_spin { pid; time; balancer; spin } ->
        if r >= 2 then begin
          instant t ~pid ~time ~name:"adapt-spin"
            ~args:(Printf.sprintf {|"balancer":%d,"spin":%d|} balancer spin);
          counter t ~time
            ~name:(Printf.sprintf "spin window b%d" balancer)
            ~value:spin
        end
    | Event.Adapt_width { pid; time; balancer; layer; width } ->
        if r >= 2 then begin
          instant t ~pid ~time ~name:"adapt-width"
            ~args:
              (Printf.sprintf {|"balancer":%d,"layer":%d,"width":%d|} balancer
                 layer width);
          counter t ~time
            ~name:(Printf.sprintf "prism width b%d.%d" balancer layer)
            ~value:width
        end
    (* -- full level ------------------------------------------------ *)
    | Event.Mem_op { pid; kind; loc; issued; begins; finish; fired } ->
        if r >= 3 then begin
          if begins > issued then
            slice t ~pid ~ts:issued ~dur:(begins - issued) ~name:"queue"
              ~args:(Printf.sprintf {|"loc":%d|} loc);
          slice t ~pid ~ts:begins ~dur:(finish - begins)
            ~name:(Event.mem_kind_name kind)
            ~args:(Printf.sprintf {|"loc":%d|} loc);
          if fired > finish then
            slice t ~pid ~ts:finish ~dur:(fired - finish) ~name:"stalled"
              ~args:""
        end
    | Event.Delay_done { pid; issued; fired; planned } ->
        if r >= 3 && fired > issued then
          slice t ~pid ~ts:issued ~dur:(fired - issued) ~name:"delay"
            ~args:(Printf.sprintf {|"planned":%d|} planned)
  end

(* -- output -------------------------------------------------------- *)

let contents t =
  let out = Buffer.create (Buffer.length t.buf + 4096) in
  Buffer.add_string out {|{"displayTimeUnit":"ms","traceEvents":[|};
  Buffer.add_char out '\n';
  let meta = Buffer.create 1024 in
  Buffer.add_string meta
    {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"etrees-sim"}}|};
  let pids =
    Hashtbl.fold (fun pid () acc -> pid :: acc) t.pids []
    |> List.sort compare
  in
  List.iter
    (fun pid ->
      Buffer.add_string meta ",\n";
      Buffer.add_string meta
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"proc %d"}}|}
           pid pid))
    pids;
  Buffer.add_buffer out meta;
  if Buffer.length t.buf > 0 then begin
    Buffer.add_string out ",\n";
    Buffer.add_buffer out t.buf
  end;
  Buffer.add_string out "\n]}\n";
  Buffer.contents out

let write ~file t =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (contents t))

(* -- validation ---------------------------------------------------- *)

type stats = { events : int; tracks : int }

let known_phases = [ "M"; "i"; "b"; "e"; "B"; "E"; "X"; "C" ]

(* Structural validation of written trace text: parses the JSON,
   checks every record has a known phase, pid, and (except metadata) a
   timestamp, and that timestamps are monotone non-decreasing per
   thread track and per counter track.  Used by the golden-fixture
   test, the CLI's [--check], and the CI smoke. *)
let validate text =
  let ( let* ) = Result.bind in
  let* root = Json.parse text in
  let* events =
    match Json.member "traceEvents" root with
    | Some (Json.Arr evs) -> Ok evs
    | _ -> Error "missing traceEvents array"
  in
  let last_ts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let tracks : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let check_one i v =
    let fail msg = Error (Printf.sprintf "event %d: %s" i msg) in
    match v with
    | Json.Obj _ -> (
        match Option.bind (Json.member "ph" v) Json.to_str with
        | None -> fail "missing ph"
        | Some ph when not (List.mem ph known_phases) ->
            fail (Printf.sprintf "unknown ph %S" ph)
        | Some "M" ->
            if Json.member "pid" v = None then fail "metadata without pid"
            else Ok ()
        | Some ph -> (
            match Option.bind (Json.member "ts" v) Json.to_int with
            | None -> fail "missing ts"
            | Some ts ->
                if ts < 0 then fail "negative ts"
                else begin
                  let key =
                    if ph = "C" then
                      match Option.bind (Json.member "name" v) Json.to_str with
                      | Some n -> "C:" ^ n
                      | None -> "C:?"
                    else
                      match Option.bind (Json.member "tid" v) Json.to_int with
                      | Some tid ->
                          Hashtbl.replace tracks tid ();
                          Printf.sprintf "T:%d" tid
                      | None -> "T:?"
                  in
                  match Hashtbl.find_opt last_ts key with
                  | Some prev when ts < prev ->
                      fail
                        (Printf.sprintf
                           "timestamps not monotone on track %s (%d < %d)" key
                           ts prev)
                  | _ ->
                      Hashtbl.replace last_ts key ts;
                      Ok ()
                end))
    | _ -> fail "not an object"
  in
  let rec all i = function
    | [] -> Ok ()
    | v :: rest ->
        let* () = check_one i v in
        all (i + 1) rest
  in
  let* () = all 0 events in
  Ok { events = List.length events; tracks = Hashtbl.length tracks }

let validate_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | text -> validate text
  | exception Sys_error msg -> Error msg
