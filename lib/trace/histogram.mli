(** Log-bucketed integer histograms with four sub-buckets per octave
    (relative error <= 12.5% above 4; exact below).  The single home of
    the percentile/bucketing arithmetic used by the workload reports —
    O(1) insertion, fixed 256-slot storage, fully deterministic. *)

type t

val create : unit -> t
val clear : t -> unit

val add : t -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val count : t -> int
val total : t -> int
val mean : t -> float

val merge : t -> t -> t
(** Element-wise sum into a fresh histogram. *)

val percentile : t -> float -> int
(** [percentile t q] for 0 < q <= 1: the representative value of the
    bucket holding the ceil(q*n)-th smallest sample, clamped to the
    observed min/max.  0 on an empty histogram. *)

val index_of : int -> int
(** Bucket index of a value (exposed for tests). *)

val bounds : int -> int * int
(** Inclusive value range of a bucket index (exposed for tests). *)

val nonzero_buckets : t -> (int * int * int) list
(** Non-empty buckets, smallest first: [(lo, hi, count)]. *)

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  min : int;
  max : int;
}

val summary : t -> summary
val format_summary : summary -> string
