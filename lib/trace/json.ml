(* A minimal JSON reader (etrees.trace).

   Just enough of RFC 8259 to re-read the Chrome trace files this
   library writes and the BENCH_*.json reports, so tests and the CLI's
   [--check] can validate output without external dependencies.  Not a
   streaming parser; traces from the simulator's quick runs are a few
   megabytes at most. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                (* No surrogate-pair handling: the writers in this
                   repo emit ASCII only. *)
                Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | _ -> fail st "bad escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after value"
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | s -> parse s
  | exception Sys_error msg -> Error msg

(* -- accessors ----------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
