(* etrees.trace — deterministic, zero-cost-when-off structured tracing
   for the simulator and the elimination trees.

   The control surface is a single global sink, mirroring the
   [Sim.Memory.tracer] injector-hook pattern: instrumented code guards
   each emission with [if on lv_... then emit (...)], where [on] is a
   two-word load-and-compare against the current level rank.  With no
   sink installed the rank is 0, every guard is false, and no event is
   even allocated — benches are byte-identical to an untraced build
   (the determinism regression in test/test_trace.ml checks this).

   Emission never advances simulated time: sinks run on the host,
   outside the scheduler, so installing one cannot change any simulated
   result — only observe it.

   Levels gate *emission sites* by cost/detail ([lv_ops] < [lv_events]
   < [lv_full]); [install] turns everything on because the attribution
   sink needs the full-level raw intervals to balance its books.  A
   Chrome sink applies its own rendering level downstream. *)

module Event = Event
module Histogram = Histogram
module Attribution = Attribution
module Chrome = Chrome
module Json = Json
module Level = Level

type level = Level.t = Off | Ops | Events | Full

let lv_ops = 1
let lv_events = 2
let lv_full = 3

let null_sink : Event.t -> unit = fun _ -> ()
let sink = ref null_sink
let level_rank = ref 0

let[@inline] on rank = !level_rank >= rank
let[@inline] emit e = !sink e

let install s =
  sink := s;
  level_rank := lv_full

let uninstall () =
  sink := null_sink;
  level_rank := 0

let installed () = !level_rank > 0

(* Fan one event stream out to several sinks (e.g. attribution and
   Chrome export at once). *)
let tee sinks e = List.iter (fun s -> s e) sinks

let with_tracing s f =
  let saved_sink = !sink and saved_rank = !level_rank in
  install s;
  Fun.protect
    ~finally:(fun () ->
      sink := saved_sink;
      level_rank := saved_rank)
    f
