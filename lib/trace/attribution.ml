(* Cycle attribution (etrees.trace): a profiling sink that folds the
   event stream into per-balancer / per-layer / per-category cycle
   budgets.

   Under the discrete-event simulator a processor's lifetime partitions
   exactly into the intervals of the events it parks in the heap: local
   delays, read latencies, and serialized operations (queueing plus
   service).  The scheduler emits each interval when it completes
   ([Event.Delay_done], [Event.Mem_op]), so summing the attributed
   pieces per processor must reproduce that processor's lifetime — and
   the grand total must equal total simulated cycles (sum of processor
   lifetimes over every run observed).  [check] verifies this within
   1%; the qcheck property in test/test_trace.ml exercises it across
   random seeds and fault plans.

   Categories:
   - [Spin]: delays inside a spin-wait ([Event.Spin_begin/End] marks:
     prism collision waits, MCS lock spins, empty-pool polls);
   - [Work]: all other delays (workload think time, local computation);
   - [Queue]: cycles a serialized operation waited behind earlier
     operations on its location ([begins - issued]) — the hot-spot
     cost the paper's prisms exist to avoid;
   - [Service]: the operation's own service latency;
   - [Stalled]: extra cycles an injected fault deferred a completion;
   - [Lost]: the unattributable tail of a crashed/aborted processor
     (its in-flight operation died with it).

   Context: cycles land on the balancer the processor was traversing
   (tracked from [Balancer_enter]/[Balancer_exit]), keyed by
   (depth, balancer id); cycles outside any balancer land on the
   pseudo-context (-1, -1) ("outside the tree": leaf pools, central
   structures, workload think time).

   A single [t] may observe several sequential [Sim.run]s (e.g. the
   chaos workload's quiescent residue probe): [Proc_start] opens a new
   per-processor segment and [Proc_end] closes it into the totals. *)

type category = Spin | Queue | Service | Work | Stalled | Lost

let categories = [ Spin; Queue; Service; Work; Stalled; Lost ]

let category_name = function
  | Spin -> "spin"
  | Queue -> "queue"
  | Service -> "service"
  | Work -> "work"
  | Stalled -> "stalled"
  | Lost -> "lost"

let cat_index = function
  | Spin -> 0
  | Queue -> 1
  | Service -> 2
  | Work -> 3
  | Stalled -> 4
  | Lost -> 5

let ncats = 6

type t = {
  procs : int;
  cells : (int * int, int array) Hashtbl.t; (* (depth, balancer) -> by cat *)
  stack : (int * int) list array; (* per-pid balancer context *)
  spin_depth : int array;
  seg_attr : int array; (* cycles attributed in the open segment *)
  started : bool array; (* saw Proc_start for the open segment *)
  mutable total : int; (* sum of closed segment lifetimes *)
  mutable attributed : int;
}

let create ~procs =
  {
    procs;
    cells = Hashtbl.create 64;
    stack = Array.make procs [];
    spin_depth = Array.make procs 0;
    seg_attr = Array.make procs 0;
    started = Array.make procs false;
    total = 0;
    attributed = 0;
  }

let context t pid = match t.stack.(pid) with [] -> (-1, -1) | c :: _ -> c

let charge t pid cat cycles =
  if cycles > 0 then begin
    let key = context t pid in
    let row =
      match Hashtbl.find_opt t.cells key with
      | Some row -> row
      | None ->
          let row = Array.make ncats 0 in
          Hashtbl.add t.cells key row;
          row
    in
    row.(cat_index cat) <- row.(cat_index cat) + cycles;
    t.seg_attr.(pid) <- t.seg_attr.(pid) + cycles;
    t.attributed <- t.attributed + cycles
  end

let sink t (e : Event.t) =
  match e with
  | Event.Proc_start { pid; _ } ->
      if pid < t.procs then begin
        t.seg_attr.(pid) <- 0;
        t.started.(pid) <- true;
        t.stack.(pid) <- [];
        t.spin_depth.(pid) <- 0
      end
  | Event.Proc_end { pid; time; _ } ->
      if pid < t.procs then begin
        t.total <- t.total + time;
        (* Whatever the interval stream did not cover — the in-flight
           operation of a crashed processor, a crash-dropped initial
           event (no Proc_start at all) — is unattributable. *)
        let covered = if t.started.(pid) then t.seg_attr.(pid) else 0 in
        charge t pid Lost (time - covered);
        t.started.(pid) <- false;
        t.stack.(pid) <- []
      end
  | Event.Balancer_enter { pid; balancer; depth; _ } ->
      if pid < t.procs then t.stack.(pid) <- (depth, balancer) :: t.stack.(pid)
  | Event.Balancer_exit { pid; _ } -> (
      if pid < t.procs then
        match t.stack.(pid) with [] -> () | _ :: rest -> t.stack.(pid) <- rest)
  | Event.Spin_begin { pid; _ } ->
      if pid < t.procs then t.spin_depth.(pid) <- t.spin_depth.(pid) + 1
  | Event.Spin_end { pid; _ } ->
      if pid < t.procs && t.spin_depth.(pid) > 0 then
        t.spin_depth.(pid) <- t.spin_depth.(pid) - 1
  | Event.Delay_done { pid; issued; planned; fired } ->
      if pid < t.procs then begin
        let cat = if t.spin_depth.(pid) > 0 then Spin else Work in
        charge t pid cat planned;
        charge t pid Stalled (fired - issued - planned)
      end
  | Event.Mem_op { pid; issued; begins; finish; fired; _ } ->
      if pid < t.procs then begin
        charge t pid Queue (begins - issued);
        charge t pid Service (finish - begins);
        charge t pid Stalled (fired - finish)
      end
  | Event.Op_begin _ | Event.Op_end _ | Event.Prism_enter _
  | Event.Prism_exit _ | Event.Prism_cas _ | Event.Toggle_wait _
  | Event.Toggle_pass _ | Event.Adapt_spin _ | Event.Adapt_width _
  | Event.Fault_stall _ | Event.Fault_crash _ ->
      ()

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  depth : int; (* -1: outside any balancer *)
  balancer : int;
  cycles : int array; (* indexed by [cat_index] *)
}

let row_total r = Array.fold_left ( + ) 0 r.cycles

type summary = {
  procs : int;
  total_cycles : int; (* sum of processor lifetimes *)
  attributed_cycles : int;
  rows : row list; (* per balancer, (depth, id) ascending *)
  by_layer : row list; (* aggregated per depth, balancer = -1 *)
  by_category : (category * int) list;
}

let summarize t =
  let rows =
    Hashtbl.fold
      (fun (depth, balancer) cycles acc ->
        { depth; balancer; cycles = Array.copy cycles } :: acc)
      t.cells []
    |> List.sort (fun a b -> compare (a.depth, a.balancer) (b.depth, b.balancer))
  in
  let by_layer =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let acc =
          match Hashtbl.find_opt tbl r.depth with
          | Some a -> a
          | None ->
              let a = Array.make ncats 0 in
              Hashtbl.add tbl r.depth a;
              a
        in
        Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) r.cycles)
      rows;
    Hashtbl.fold
      (fun depth cycles acc -> { depth; balancer = -1; cycles } :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.depth b.depth)
  in
  let by_category =
    List.map
      (fun cat ->
        ( cat,
          List.fold_left (fun acc r -> acc + r.cycles.(cat_index cat)) 0 rows ))
      categories
  in
  {
    procs = t.procs;
    total_cycles = t.total;
    attributed_cycles = t.attributed;
    rows;
    by_layer;
    by_category;
  }

(* The books must balance: attributed cycles = total simulated cycles,
   within 1% (the slack covers nothing today — the accounting is exact
   by construction — but keeps the contract honest if an emitter ever
   rounds). *)
let check s =
  if s.total_cycles = 0 then s.attributed_cycles = 0
  else
    let diff = abs (s.attributed_cycles - s.total_cycles) in
    100 * diff <= s.total_cycles

let share s cycles =
  if s.total_cycles = 0 then 0.0
  else 100.0 *. float_of_int cycles /. float_of_int s.total_cycles
