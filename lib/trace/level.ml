(* Trace detail levels (etrees.trace).

   Levels are cumulative: each includes everything below it.

   - [Off]    — nothing.
   - [Ops]    — processor and operation lifecycle, injected faults.
   - [Events] — plus balancer traversal detail: prism entry/exit,
                collision CASes, toggle waits/passes, spin marks.
   - [Full]   — plus every raw scheduler interval (memory operations
                with their queueing delay, local delays).

   Emission is always at [Full] whenever any sink is installed (cycle
   attribution needs the raw intervals); the level selects what the
   Chrome exporter renders and what the CLI asks for. *)

type t = Off | Ops | Events | Full

let rank = function Off -> 0 | Ops -> 1 | Events -> 2 | Full -> 3

let to_string = function
  | Off -> "off"
  | Ops -> "ops"
  | Events -> "events"
  | Full -> "full"

let of_string = function
  | "off" -> Some Off
  | "ops" -> Some Ops
  | "events" -> Some Events
  | "full" -> Some Full
  | _ -> None

let all = [ Off; Ops; Events; Full ]
