(* Log-bucketed latency histograms (etrees.trace).

   Buckets cover the non-negative integers with four sub-buckets per
   octave (relative error <= 12.5% above 4), exactly like HdrHistogram
   at 2 significant bits:

     bucket 0         = {0}
     buckets 1..3     = {1}, {2}, {3}              (exact)
     for m >= 2, the octave [2^m, 2^(m+1)) splits into 4 runs of
     2^(m-2) values each, at indices 4*(m-1) .. 4*(m-1)+3.

   Everything is integer arithmetic on a fixed 256-slot array: adding a
   sample is O(1) with no allocation, merging is element-wise, and all
   derived statistics are deterministic functions of the recorded
   multiset — the workload reports depend on that for their replay
   regressions.

   This module is the single home of the percentile/bucketing
   arithmetic: [Workloads.Response_time] and the trace reports both use
   it rather than hand-rolling their own (see ISSUE 3, satellite 2). *)

type t = {
  counts : int array; (* 256 slots, see [index_of] *)
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let slots = 256

let create () =
  { counts = Array.make slots 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

let clear t =
  Array.fill t.counts 0 slots 0;
  t.n <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Position of the most significant set bit (v >= 1). *)
let msb v =
  let rec go m v = if v <= 1 then m else go (m + 1) (v lsr 1) in
  go 0 v

let index_of v =
  if v <= 0 then 0
  else if v < 4 then v
  else
    let m = msb v in
    (4 * (m - 1)) + ((v lsr (m - 2)) land 3)

(* Inclusive [lo, hi] range of values mapping to bucket [i]. *)
let bounds i =
  if i < 4 then (i, i)
  else
    let m = (i / 4) + 1 and sub = i mod 4 in
    let step = 1 lsl (m - 2) in
    let lo = (1 lsl m) + (sub * step) in
    (lo, lo + step - 1)

(* A bucket's representative value: its midpoint (exact below 4). *)
let representative i =
  let lo, hi = bounds i in
  lo + ((hi - lo) / 2)

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  let i = if i >= slots then slots - 1 else i in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.n <- a.n + b.n;
  t.sum <- a.sum + b.sum;
  t.min_v <- min a.min_v b.min_v;
  t.max_v <- max a.max_v b.max_v;
  t

(* The value at quantile [q] (0 < q <= 1): the representative of the
   bucket containing the ceil(q*n)-th smallest sample, clamped to the
   observed min/max so singleton distributions report exactly. *)
let percentile t q =
  if t.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec find i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank then i else find (i + 1) seen
    in
    let i = find 0 0 in
    let v = representative i in
    if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v
  end

(* Non-empty buckets, smallest value first: (lo, hi, count). *)
let nonzero_buckets t =
  let acc = ref [] in
  for i = slots - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  min : int;
  max : int;
}

let summary t =
  {
    count = t.n;
    mean = mean t;
    p50 = percentile t 0.50;
    p90 = percentile t 0.90;
    p99 = percentile t 0.99;
    min = (if t.n = 0 then 0 else t.min_v);
    max = t.max_v;
  }

let format_summary s =
  Printf.sprintf "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d" s.count s.mean
    s.p50 s.p90 s.p99 s.max
