(** Static effect-discipline lint (the static prong of etrees.analysis).

    Parses OCaml sources with compiler-libs and flags raw mutation that
    escapes the engine discipline: all shared state in engine-parametric
    code must flow through [E.cell] so that the simulator's per-location
    queueing (and the native engine's [Atomic]s) see it.  See
    docs/ANALYSIS.md for the rules and the allowlist policy. *)

type rule =
  | Ref_cell      (** [ref] / [:=] / [!] / [incr] / [decr] *)
  | Setfield      (** [e.f <- v] *)
  | Array_mut     (** [Array.set] & friends, [a.(i) <- v] *)
  | Atomic_use    (** direct [Atomic.*] *)
  | Mutable_field (** [mutable] field declaration *)
  | Sim_bypass
      (** naming [Sim]/[Memory]/[Scheduler]/[Engine_impl]/[Event_heap]
          from engine-parametric code: the simulator must only be
          reached through the [Engine.S] functor parameter *)
  | Nondet
      (** [Sys.time]/[Unix.gettimeofday]/[Random.*]/[Hashtbl.hash]:
          host nondeterminism outside the engine's seeded streams
          breaks seed-exact replay *)

val rule_name : rule -> string
val rule_of_name : string -> rule option

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

exception Parse_error of string

val scan_file : string -> violation list
(** Parse one [.ml] file and return its violations in source order.
    Raises {!Parse_error} if the file does not parse. *)

type allow = { path : string; allowed : rule }

val load_allowlist : string -> allow list
(** One [<path> <rule>] pair per line; ['#'] comments.  Raises
    {!Parse_error} on malformed lines. *)

val apply_allowlist :
  allow list -> violation list -> violation list * violation list * allow list
(** [apply_allowlist allows vs] is [(kept, suppressed, unused_entries)]. *)

val format_violation : violation -> string
(** Machine-readable [file:line:col: [rule] message]. *)

val report : violation list -> string
(** All violations, one {!format_violation} line each. *)

val report_json :
  files:int ->
  kept:violation list ->
  suppressed:violation list ->
  unused:allow list ->
  string
(** The whole lint run as one JSON object:
    [{"files": n, "violations": [{"file","line","col","rule","message"}],
    "allowlisted": n, "stale_allowlist": [{"path","rule"}]}].
    Uploaded as a CI artifact alongside the bench jsons. *)
