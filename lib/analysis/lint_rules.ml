(* The effect-discipline lint (etrees.analysis, static prong).

   Every piece of shared state in code meant to run under the simulator
   must flow through the engine's [E.cell] API so that {!Sim.Memory}'s
   per-location busy-until queueing sees it.  A stray [ref], [<-] or
   direct [Atomic] use produces zero-simulated-cost, unserialized
   "shared memory" that silently corrupts every benchmark — the
   contention shapes of Table 1, the Theorem 2.6 balancing numbers, the
   O(log w) termination bound all stop meaning anything.

   This module parses source files with compiler-libs (no typing: the
   pass runs on parsetrees, so it is fast, needs no build context, and
   never misfires on files that do not compile yet) and walks them with
   {!Ast_iterator}, flagging syntactic escapes from the discipline:

   - [ref]/[:=]/[!]/[incr]/[decr]        (rule [ref])
   - [e.f <- v] record-field mutation    (rule [setfield])
   - [Array.set]/[a.(i) <- v]/[Bytes.set]/[fill]/[blit]  (rule [array-set])
   - any mention of the [Atomic] module  (rule [atomic])
   - [mutable] record fields             (rule [mutable-field])

   A parsetree pass cannot know whether a given mutation is actually
   shared between simulated processors (pid-private scratch arrays and
   construction-time initialization are fine), so deliberate exceptions
   are recorded in a committed allowlist, one [path rule] pair per line,
   each with a justification comment.  The policy is in
   docs/ANALYSIS.md: prefer rewriting to allowlisting; an allowlist
   entry must say why the mutation cannot race under the simulator. *)

type rule =
  | Ref_cell      (* ref / := / ! / incr / decr *)
  | Setfield      (* e.f <- v *)
  | Array_mut     (* Array.set & friends, a.(i) <- v *)
  | Atomic_use    (* direct Atomic.* *)
  | Mutable_field (* mutable field declaration *)
  | Sim_bypass    (* direct Sim/Memory/Scheduler mention *)
  | Nondet        (* host clock / OS randomness / unseeded hashing *)

let rule_name = function
  | Ref_cell -> "ref"
  | Setfield -> "setfield"
  | Array_mut -> "array-set"
  | Atomic_use -> "atomic"
  | Mutable_field -> "mutable-field"
  | Sim_bypass -> "sim-bypass"
  | Nondet -> "nondet"

let rule_of_name = function
  | "ref" -> Some Ref_cell
  | "setfield" -> Some Setfield
  | "array-set" -> Some Array_mut
  | "atomic" -> Some Atomic_use
  | "mutable-field" -> Some Mutable_field
  | "sim-bypass" -> Some Sim_bypass
  | "nondet" -> Some Nondet
  | _ -> None

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

exception Parse_error of string (* file: compiler-libs error text *)

(* ------------------------------------------------------------------ *)
(* The parsetree pass                                                  *)
(* ------------------------------------------------------------------ *)

(* Identifiers whose very mention breaks the discipline.  Matching the
   bare mention (not just the applied position) also catches first-class
   uses such as [List.iter incr cells]. *)
let ref_idents = [ "ref"; ":="; "!"; "incr"; "decr" ]

let array_mutators =
  [ ("Array", "set"); ("Array", "unsafe_set"); ("Array", "fill");
    ("Array", "blit"); ("Bytes", "set"); ("Bytes", "unsafe_set");
    ("Bytes", "fill"); ("Bytes", "blit") ]

(* Modules an engine-parametric structure must never name: anything it
   needs from the simulator has to arrive through its [Engine.S]
   functor parameter, or the same code silently stops being runnable
   on [Engine.Native] — and the model checker's controlled scheduler
   never sees its accesses. *)
let sim_internal_modules =
  [ "Sim"; "Memory"; "Scheduler"; "Engine_impl"; "Event_heap" ]

(* Host nondeterminism (rule [nondet]): wall-clock, OS randomness and
   unseeded hashing make a run a function of the host instead of the
   seed, which silently breaks replay, the golden perf metrics, and the
   model checker's assumption that re-execution is exact.  Randomness
   must come from the engine's seeded Splitmix streams and time from
   [E.now]; the rare host probes (the native engine's clock, the
   report's CPU-cost meta block) live in the committed
   lib/analysis/nondet_allowlist.txt with justifications. *)
let nondet_time_fns = [ ("Sys", "time"); ("Unix", "time"); ("Unix", "gettimeofday") ]

let nondet_hash_fns = [ "hash"; "seeded_hash"; "hash_param"; "randomize" ]

let rec longident_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> longident_head l
  | Longident.Lapply (l, _) -> longident_head l

let classify_ident (lid : Longident.t) : (rule * string) option =
  match lid with
  | Lident s when List.mem s ref_idents ->
      Some
        ( Ref_cell,
          Printf.sprintf
            "`%s` builds or mutates an unserialized ref cell; shared state \
             must go through E.cell"
            s )
  | Ldot (Lident "Stdlib", s) when List.mem s ref_idents ->
      Some
        ( Ref_cell,
          Printf.sprintf
            "`Stdlib.%s` builds or mutates an unserialized ref cell; shared \
             state must go through E.cell"
            s )
  | Ldot (Lident m, f) when List.mem (m, f) array_mutators ->
      Some
        ( Array_mut,
          Printf.sprintf
            "`%s.%s` mutates an array outside the engine; shared arrays must \
             hold E.cell elements"
            m f )
  | Ldot (Lident m, f) when List.mem (m, f) nondet_time_fns ->
      Some
        ( Nondet,
          Printf.sprintf
            "`%s.%s` reads the host clock; simulated time must come from the \
             engine (E.now), so runs stay deterministic functions of the seed"
            m f )
  | Ldot (Lident "Hashtbl", f) when List.mem f nondet_hash_fns ->
      Some
        ( Nondet,
          Printf.sprintf
            "`Hashtbl.%s` hashes with host-varying state; derive keys from \
             the engine's seeded Splitmix streams instead"
            f )
  | lid when longident_head lid = "Random" ->
      Some
        ( Nondet,
          "`Random` draws OS-seeded randomness; use the engine's seeded \
           Splitmix streams so runs replay exactly" )
  | lid when longident_head lid = "Atomic" ->
      Some
        ( Atomic_use,
          "direct `Atomic` use bypasses the simulated memory model; use the \
           engine's cell operations" )
  | lid when List.mem (longident_head lid) sim_internal_modules ->
      Some
        ( Sim_bypass,
          Printf.sprintf
            "`%s` reaches into the simulator instead of going through the \
             Engine.S functor parameter; structures must stay \
             engine-parametric"
            (longident_head lid) )
  | _ -> None

let scan_structure ~file (str : Parsetree.structure) : violation list =
  let acc = ref [] in
  let add (loc : Location.t) rule message =
    let p = loc.loc_start in
    acc :=
      {
        file;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        message;
      }
      :: !acc
  in
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match classify_ident txt with
        | Some (rule, msg) -> add loc rule msg
        | None -> ())
    | Pexp_setfield (_, f, _) ->
        add e.pexp_loc Setfield
          (Printf.sprintf
             "record-field assignment `%s <-` mutates outside the engine; \
              shared fields must be E.cell"
             (String.concat "." (Longident.flatten f.txt)))
    | _ -> ());
    default_iterator.expr self e
  in
  let label_declaration self (ld : Parsetree.label_declaration) =
    (match ld.pld_mutable with
    | Mutable ->
        add ld.pld_loc Mutable_field
          (Printf.sprintf
             "mutable field `%s` declares engine-invisible shared state; use \
              an E.cell (or allowlist with a justification)"
             ld.pld_name.txt)
    | Immutable -> ());
    default_iterator.label_declaration self ld
  in
  let iterator = { default_iterator with expr; label_declaration } in
  iterator.structure iterator str;
  (* Source order: the iterator's traversal order is close to it, but
     sort to make the report (and the golden test) deterministic. *)
  List.sort
    (fun a b -> compare (a.line, a.col, rule_name a.rule) (b.line, b.col, rule_name b.rule))
    !acc

let scan_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let lexbuf = Lexing.from_channel ic in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str -> scan_structure ~file:path str
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      raise (Parse_error (Printf.sprintf "%s: %s" path msg))

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

type allow = { path : string; allowed : rule }

(* One entry per line: [<path> <rule>], '#' starts a comment.  A
   violation is suppressed when its file path ends with the entry's
   path (so the allowlist works from any working directory) and its
   rule matches. *)
let load_allowlist path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let entries = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ p; r ] -> (
           match rule_of_name r with
           | Some allowed -> entries := { path = p; allowed } :: !entries
           | None ->
               raise
                 (Parse_error
                    (Printf.sprintf "%s:%d: unknown lint rule %S" path !lineno
                       r)))
       | _ ->
           raise
             (Parse_error
                (Printf.sprintf
                   "%s:%d: expected `<path> <rule>` (got %S)" path !lineno
                   line))
     done
   with End_of_file -> ());
  List.rev !entries

let suffix_matches ~path ~file =
  let lp = String.length path and lf = String.length file in
  lf >= lp
  && String.sub file (lf - lp) lp = path
  && (lf = lp || file.[lf - lp - 1] = '/')

let is_allowed allows (v : violation) =
  List.exists
    (fun a -> a.allowed = v.rule && suffix_matches ~path:a.path ~file:v.file)
    allows

(* Partition violations into (kept, suppressed); also return allowlist
   entries that suppressed nothing, so stale entries are visible. *)
let apply_allowlist allows violations =
  let kept, suppressed =
    List.partition (fun v -> not (is_allowed allows v)) violations
  in
  let unused =
    List.filter
      (fun a ->
        not
          (List.exists
             (fun v ->
               a.allowed = v.rule && suffix_matches ~path:a.path ~file:v.file)
             suppressed))
      allows
  in
  (kept, suppressed, unused)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let format_violation v =
  Printf.sprintf "%s:%d:%d: [%s] %s" v.file v.line v.col (rule_name v.rule)
    v.message

let report violations =
  String.concat "" (List.map (fun v -> format_violation v ^ "\n") violations)

(* Machine-readable report (CI artifact): hand-rolled JSON, since the
   analysis library deliberately has no serialization dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let violation_json v =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape v.file) v.line v.col (rule_name v.rule)
    (json_escape v.message)

let allow_json (a : allow) =
  Printf.sprintf {|{"path":"%s","rule":"%s"}|} (json_escape a.path)
    (rule_name a.allowed)

let report_json ~files ~kept ~suppressed ~unused =
  let array xs = "[" ^ String.concat "," xs ^ "]" in
  String.concat ""
    [
      "{\"files\":";
      string_of_int files;
      ",\"violations\":";
      array (List.map violation_json kept);
      ",\"allowlisted\":";
      string_of_int (List.length suppressed);
      ",\"stale_allowlist\":";
      array (List.map allow_json unused);
      "}\n";
    ]
