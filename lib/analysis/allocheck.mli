(* Hot-path allocation certifier (etrees.allocheck, docs/ANALYSIS.md).

   A typed, interprocedural census of allocation sites over the
   simulator core, read from dune-produced [.cmt] typedtrees.  Sites
   inside functions reachable from declared hot roots (the scheduler's
   step loop, the engine dispatch, the event heap, the memory stamps)
   are checked against a committed per-(function, kind) budget: any new
   hot-path allocation fails the build, and any budget entry looser
   than reality is stale and also fails.  The census JSON is the static
   ledger that benchdb's [minor_words_per_event] column reconciles
   against. *)

type kind =
  | K_closure   (* fun ... -> / local let-bound function *)
  | K_papply    (* partial application (omitted args or under-arity) *)
  | K_tuple     (* (e1, ..., en) *)
  | K_construct (* constructor with a payload: Some, inline records, ... *)
  | K_variant   (* polymorphic variant with a payload *)
  | K_record    (* { ... } *)
  | K_array     (* [| ... |] and Array.make-family calls *)
  | K_float_box (* float-typed application / field read (boxed result) *)
  | K_boxed (* int64/int32/nativeint-typed application (boxed result) *)
  | K_string    (* ^, String/Bytes/Printf builders *)
  | K_list      (* :: and List allocators *)
  | K_lazy      (* lazy ... *)
  | K_other     (* objects, first-class modules, letop, ... *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type site = {
  s_file : string;
  s_line : int;
  s_col : int;
  s_fn : string;   (* owning top-level binding, as "Module.name" *)
  s_kind : kind;
  s_what : string; (* short human label: constructor name, callee, ... *)
}

type fn_info = {
  f_name : string;        (* "Module.name" *)
  f_module : string;
  f_arity : int;          (* length of the outermost curried chain; 0 = value *)
  f_calls : string list;  (* mentioned census nodes, sorted, deduped *)
  f_sites : site list;    (* allocation sites, source order *)
}

type census = {
  c_modules : string list; (* scanned module names, sorted *)
  c_fns : fn_info list;    (* all top-level bindings, sorted by name *)
}

exception Error of string

val read_cmt : string -> string * Typedtree.structure
(** [read_cmt path] loads a .cmt file, returning the plain module name
    (library prefixes such as [Sim__] stripped) and the implementation
    typedtree.  Raises {!Error} on unreadable files or interface-only
    cmts. *)

val census : (string * Typedtree.structure) list -> census
(** Two-pass census over every scanned module: collect top-level
    binding names and arities first (so cross-module under-application
    is recognized), then classify allocation sites and mentions. *)

val census_of_paths : string list -> census
(** Convenience: each path is a [.cmt] file or a directory scanned
    recursively for [.cmt] files. *)

val hot : census -> roots:string list -> (string * string list) list
(** Functions reachable from the roots via the mention graph, with a
    shortest root-first call chain for each; sorted by name.  Mentions
    only count toward reachability when the callee has arity >= 1 (a
    mentioned value binding is module-init, not per-event, work).
    Raises {!Error} if a root names no census function. *)

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

type budget_entry = { b_fn : string; b_kind : kind; b_count : int }

val load_budget : string -> budget_entry list
(** One entry per line: [<Module.fn> <kind> <count>], '#' comments.
    Raises {!Error} on malformed lines or unknown kinds. *)

type violation = {
  v_site : site;          (* representative site (first in source order) *)
  v_chain : string list;  (* root-first call chain to the owning function *)
  v_found : int;          (* hot sites of this (fn, kind) *)
  v_budget : int;         (* committed budget (0 when the entry is missing) *)
}

type verdict = {
  hot_fns : (string * string list) list; (* hot functions with chains *)
  hot_sites : site list;                 (* all sites in hot functions *)
  violations : violation list;           (* found > budget *)
  stale : budget_entry list;             (* budget > found (or fn not hot) *)
}

val check : census -> roots:string list -> budget:budget_entry list -> verdict

val format_violation : violation -> string
(** "file:line:col: [alloc-<kind>] ..." naming the root->site chain. *)

val format_stale : budget_entry -> string

val print_budget : verdict -> string
(** The verdict's hot census in budget-file syntax (the ratchet helper:
    paste, then justify each entry). *)

val census_json :
  census -> verdict:verdict -> roots:string list -> string
(** Machine-readable census: per-module site counts, site-kind
    histogram, hot-set size and per-function hot counts, budget
    violations/stale entries.  Deterministic (sorted keys). *)
