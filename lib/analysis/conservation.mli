(** Post-run conservation audit (etrees.faults integration): no element
    is lost or duplicated by a pool, under any fault plan.

    The audit works on the workload's own ledger of a run — which
    values were handed to [enqueue] (started), which [enqueue] calls
    returned (completed), and which values [dequeue] returned — plus
    the structure's residue (elements still buffered) when it can
    report one, probed quiescently after the run.

    Safety half (always checked): no value is dequeued twice, and no
    value is dequeued that was never handed to an enqueue.

    Accounting half (checked when [residue] is known): completed
    enqueues = dequeues + residue, up to a slack of [in_flight] — the
    processors that died mid-operation (crash-stopped or aborted),
    each of which may strand its one in-flight element (op started,
    never completed, value possibly already in the structure — or the
    converse).  Fault-free runs have [in_flight = 0], so the equation
    must hold exactly. *)

type input = {
  enq_started : int;    (** enqueue calls issued *)
  enq_completed : int;  (** enqueue calls that returned *)
  dequeued : int;       (** values returned by dequeues *)
  duplicates : int;     (** values returned by more than one dequeue *)
  phantoms : int;       (** dequeued values never handed to an enqueue *)
  residue : int option; (** elements left buffered; [None] = structure
                            cannot report *)
  in_flight : int;      (** crashed + aborted processors *)
}

type report = {
  ok : bool;
  lost : int option;  (** completed - dequeued - residue, when known *)
  detail : string;    (** stable one-line rendering *)
  input : input;
}

val audit : input -> report

val combine : input list -> input
(** Field-wise sum: the whole-frontend ledger of a sharded structure
    (lib/shard), where every element lives in exactly one shard and a
    steal moves the dequeuer, not the element.  [residue] is the sum
    when every part reports one, [None] otherwise; [in_flight] slack
    sums.  [combine \[\]] is the all-zero ledger (known residue 0). *)

val check_values : enq_started:(int -> bool) -> int list -> int * int
(** [check_values ~enq_started dequeued] returns [(duplicates,
    phantoms)] over the dequeued-value list; [enq_started v] says
    whether [v] was ever handed to an enqueue. *)
