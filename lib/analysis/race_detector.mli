(** Simulated-memory race detector (the dynamic prong of
    etrees.analysis).

    Wrap any code that drives the simulator — typically one or more
    [Sim.run] calls — in {!run} and every engine-level operation is
    audited: raw mutations that bypassed the effect discipline
    ([raw-write]), busy-until-chain violations ([serialized-overlap], a
    scheduler self-check), and reads completing inside an in-flight
    serialized write's service window (benign under the cached-read
    model; counted, and promoted to races under [~strict_reads:true]).
    See docs/ANALYSIS.md. *)

type kind =
  | Raw_write           (** value the engine never installed *)
  | Serialized_overlap  (** scheduler self-check: windows overlapped *)
  | Read_write_overlap  (** strict mode only: read inside write window *)

val kind_name : kind -> string

type race = {
  kind : kind;
  loc_id : int;       (** [Sim.Memory.loc] allocation index *)
  pid : int;          (** processor whose operation detected it *)
  time : int;         (** simulated completion time of that operation *)
  writer_pid : int;   (** location's last engine writer (-1 = none) *)
  writer_time : int;
  writer_seq : int;
  detail : string;
}

type report = {
  races : race list;        (** in detection order *)
  overlapping_reads : int;  (** benign cached-read/write overlaps seen *)
  reads_checked : int;
  commits_checked : int;
  issues_checked : int;
}

val run : ?strict_reads:bool -> ?max_races:int -> (unit -> 'a) -> 'a * report
(** [run f] evaluates [f] with the detector installed and returns its
    result plus the audit report.  Raw-write detection is per-location
    deduplicated; at most [max_races] (default 1000) races are kept.
    Nested uses restore the previous tracer. *)

val format_race : race -> string
val format_report : report -> string
