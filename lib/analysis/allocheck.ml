(* Hot-path allocation certifier (etrees.allocheck, docs/ANALYSIS.md).

   Where lint_rules.ml works on parsetrees (fast, no build context),
   this pass needs types and resolved paths, so it reads the typedtrees
   dune already produces as [.cmt] files ([-bin-annot] is on by
   default) via compiler-libs' [Cmt_format] and walks them with
   {!Tast_iterator}.

   The pass has three layers:

   1. {e Census}: every top-level binding of every scanned module
      becomes a node "Module.name"; inside each binding body the walk
      classifies allocation sites (closures, partial application,
      tuples, payload constructors, records, arrays, boxed floats,
      string builders, list allocators, lazy, ...) and records every
      mention of another census node (the call graph, mention = edge:
      an over-approximation that is exactly what a certifier wants).

   2. {e Hot set}: BFS from the declared roots — the scheduler step
      loop, the engine dispatch, the event heap, the memory stamps —
      over mention edges whose target has arity >= 1 (a mentioned
      value binding is module-init work, not per-event work).  A
      shortest root-first chain is kept per function for diagnostics.

   3. {e Budget}: sites inside hot functions are summed per
      (function, kind) and held against the committed budget file
      (lib/analysis/alloc_budget.txt): a count over budget is a new
      hot-path allocation (build failure, diagnostic names the
      root->site chain); a count under budget is a stale entry (also a
      failure: the ratchet must tighten in the same change that drops
      the allocation, or the slack is a hole the next regression hides
      in).

   The analysis is intentionally static and conservative: it cannot
   see that flambda would have inlined a closure away, and it counts a
   site once whether it fires once per run or once per event.  The
   budget's justification comments carry that judgement; the dynamic
   truth it must reconcile with is benchdb's [minor_words_per_event]
   column. *)

type kind =
  | K_closure
  | K_papply
  | K_tuple
  | K_construct
  | K_variant
  | K_record
  | K_array
  | K_float_box
  | K_boxed
  | K_string
  | K_list
  | K_lazy
  | K_other

let kind_name = function
  | K_closure -> "closure"
  | K_papply -> "papply"
  | K_tuple -> "tuple"
  | K_construct -> "construct"
  | K_variant -> "variant"
  | K_record -> "record"
  | K_array -> "array"
  | K_float_box -> "float"
  | K_boxed -> "boxed-int"
  | K_string -> "string"
  | K_list -> "list"
  | K_lazy -> "lazy"
  | K_other -> "other"

let all_kinds =
  [ K_closure; K_papply; K_tuple; K_construct; K_variant; K_record; K_array;
    K_float_box; K_boxed; K_string; K_list; K_lazy; K_other ]

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type site = {
  s_file : string;
  s_line : int;
  s_col : int;
  s_fn : string;
  s_kind : kind;
  s_what : string;
}

type fn_info = {
  f_name : string;
  f_module : string;
  f_arity : int;
  f_calls : string list;
  f_sites : site list;
}

type census = { c_modules : string list; c_fns : fn_info list }

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Names and paths                                                     *)
(* ------------------------------------------------------------------ *)

(* "Sim__Event_heap" -> "Event_heap": library wrapping mangles module
   names with a double-underscore prefix; the census (and the budget
   file) use the plain name people write in source. *)
let plain_module m =
  let n = String.length m in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i < n -> String.sub m i (n - i)
  | _ -> m

(* The (module, value) pair of a resolved value path, with the module
   normalized to its plain name.  [Stdlib.^] -> ("Stdlib", "^");
   [Sim__Event_heap.push] and [Event_heap.push] both ->
   ("Event_heap", "push"). *)
let path_pair (p : Path.t) : (string * string) option =
  match p with
  | Path.Pdot (m, v) ->
      let md =
        match m with
        | Path.Pident id -> plain_module (Ident.name id)
        | Path.Pdot (_, s) -> plain_module s
        | _ -> "?"
      in
      Some (md, v)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Known external allocators                                           *)
(* ------------------------------------------------------------------ *)

let string_allocators =
  [ ("Stdlib", "^"); ("Stdlib", "string_of_int"); ("Stdlib", "string_of_float");
    ("Stdlib", "string_of_bool"); ("String", "make"); ("String", "init");
    ("String", "sub"); ("String", "concat"); ("String", "cat");
    ("String", "map"); ("String", "mapi"); ("String", "trim");
    ("String", "escaped"); ("String", "uppercase_ascii");
    ("String", "lowercase_ascii"); ("Bytes", "create"); ("Bytes", "make");
    ("Bytes", "init"); ("Bytes", "sub"); ("Bytes", "copy"); ("Bytes", "cat");
    ("Bytes", "extend"); ("Bytes", "of_string"); ("Bytes", "to_string");
    ("Printf", "sprintf"); ("Printf", "ksprintf"); ("Format", "asprintf");
    ("Buffer", "contents"); ("Buffer", "to_bytes") ]

let array_allocators =
  [ ("Array", "make"); ("Array", "create_float"); ("Array", "init");
    ("Array", "make_matrix"); ("Array", "append"); ("Array", "concat");
    ("Array", "sub"); ("Array", "copy"); ("Array", "of_list");
    ("Array", "to_list"); ("Array", "of_seq"); ("Array", "map");
    ("Array", "mapi"); ("Array", "split"); ("Array", "combine") ]

let list_allocators =
  [ ("Stdlib", "@"); ("List", "cons"); ("List", "init"); ("List", "map");
    ("List", "mapi"); ("List", "rev"); ("List", "rev_map");
    ("List", "rev_append"); ("List", "append"); ("List", "concat");
    ("List", "concat_map"); ("List", "flatten"); ("List", "filter");
    ("List", "filteri"); ("List", "filter_map"); ("List", "partition");
    ("List", "split"); ("List", "combine"); ("List", "sort");
    ("List", "stable_sort"); ("List", "sort_uniq"); ("List", "of_seq") ]

(* ------------------------------------------------------------------ *)
(* Reading cmts                                                        *)
(* ------------------------------------------------------------------ *)

let read_cmt path =
  let infos =
    try Cmt_format.read_cmt path
    with e -> errorf "%s: cannot read cmt (%s)" path (Printexc.to_string e)
  in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      (plain_module infos.Cmt_format.cmt_modname, str)
  | _ -> errorf "%s: not an implementation cmt" path

(* ------------------------------------------------------------------ *)
(* The census walk                                                     *)
(* ------------------------------------------------------------------ *)

open Typedtree

(* The outermost curried chain of a binding: the Texp_function nodes
   that are the function itself (one closure, allocated when the
   binding is evaluated) rather than per-call allocations.  The chain
   extends through single-case, unguarded bodies only: a multi-case
   [function] ends it, and anything under a case branch is a fresh
   runtime closure. *)
let rec fn_chain (e : expression) : expression list =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
      e :: fn_chain c_rhs
  | Texp_function _ -> [ e ]
  | _ -> []

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Boxed-number results: every Int64/Int32/Nativeint operation returns
   a fresh 3-word box — the dominant allocation inside Splitmix. *)
let is_boxed_num_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_int64
      || Path.same p Predef.path_int32
      || Path.same p Predef.path_nativeint
  | _ -> false

let is_arrow_ty ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Unwrap [f @@ x] and [x |> f] to (f, [x]) so application-position
   classification sees through the operators. *)
let unwrap_apply fn args =
  match (fn.exp_desc, args) with
  | Texp_ident (p, _, _), [ (_, Some a); (_, Some b) ] -> (
      match path_pair p with
      | Some ("Stdlib", "@@") -> (a, [ (Asttypes.Nolabel, Some b) ])
      | Some ("Stdlib", "|>") -> (b, [ (Asttypes.Nolabel, Some a) ])
      | _ -> (fn, args))
  | _ -> (fn, args)

type scan_state = {
  mutable cur_fn : string;            (* owning top-level binding *)
  mutable spine : expression list;    (* Texp_function nodes not to count *)
  mutable skip_records : expression list; (* inline-record constructor args *)
  mutable sites : site list;          (* reversed *)
  calls : (string * string, unit) Hashtbl.t; (* (fn, callee) mention set *)
}

let census (units : (string * Typedtree.structure) list) : census =
  (* Pass 1: every top-level binding's (module, name) -> arity, so that
     pass 2 can resolve mentions and recognize cross-module
     under-application. *)
  let arity_of : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let module_fns : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let toplevel_names : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let synth_count = ref 0 in
  let binding_name pat =
    match pat.pat_desc with
    | Tpat_var (id, _) -> Ident.name id
    | _ ->
        incr synth_count;
        Printf.sprintf "<init%d>" !synth_count
  in
  (* Structure traversal shared by both passes: [on_binding] receives
     every top-level (possibly submodule-qualified) binding. *)
  let rec walk_structure ~modpath ~on_binding (str : structure) =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                on_binding ~modpath ~name:(binding_name vb.vb_pat)
                  ~expr:vb.vb_expr)
              vbs
        | Tstr_eval (e, _) ->
            incr synth_count;
            on_binding ~modpath
              ~name:(Printf.sprintf "<init%d>" !synth_count)
              ~expr:e
        | Tstr_module mb -> walk_module ~modpath ~on_binding mb
        | Tstr_recmodule mbs ->
            List.iter (walk_module ~modpath ~on_binding) mbs
        | _ -> ())
      str.str_items
  and walk_module ~modpath ~on_binding (mb : module_binding) =
    let sub =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    let rec expr_structure (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> Some s
      | Tmod_constraint (me, _, _, _) -> expr_structure me
      | Tmod_functor (_, me) -> expr_structure me
      | _ -> None
    in
    match expr_structure mb.mb_expr with
    | Some s -> walk_structure ~modpath:(modpath ^ "." ^ sub) ~on_binding s
    | None -> ()
  in
  List.iter
    (fun (modname, str) ->
      if not (Hashtbl.mem module_fns modname) then
        Hashtbl.add module_fns modname (ref []);
      walk_structure ~modpath:modname
        ~on_binding:(fun ~modpath ~name ~expr ->
          let fn = modpath ^ "." ^ name in
          Hashtbl.replace arity_of fn (List.length (fn_chain expr));
          Hashtbl.replace toplevel_names (modname, name) ();
          let fns = Hashtbl.find module_fns modname in
          fns := fn :: !fns)
        str)
    units;
  (* Reset synthesized-name numbering so both passes agree. *)
  let pass1_synth = !synth_count in
  synth_count := 0;
  (* Pass 2: classify sites and collect mentions per binding. *)
  let fn_infos = ref [] in
  List.iter
    (fun (modname, str) ->
      let st =
        {
          cur_fn = "";
          spine = [];
          skip_records = [];
          sites = [];
          calls = Hashtbl.create 64;
        }
      in
      let add_site (loc : Location.t) k what =
        let p = loc.Location.loc_start in
        st.sites <-
          {
            s_file = p.Lexing.pos_fname;
            s_line = p.Lexing.pos_lnum;
            s_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
            s_fn = st.cur_fn;
            s_kind = k;
            s_what = what;
          }
          :: st.sites
      in
      let add_call callee = Hashtbl.replace st.calls (st.cur_fn, callee) () in
      let mention (p : Path.t) =
        match p with
        | Path.Pident id ->
            let n = Ident.name id in
            if Hashtbl.mem toplevel_names (modname, n) then
              add_call (modname ^ "." ^ n)
        | _ -> (
            match path_pair p with
            | Some (md, v) when Hashtbl.mem arity_of (md ^ "." ^ v) ->
                add_call (md ^ "." ^ v)
            | _ -> ())
      in
      let classify_apply (e : expression) fn args =
        let fn, args = unwrap_apply fn args in
        let callee =
          match fn.exp_desc with
          | Texp_ident (p, _, _) -> path_pair p
          | _ -> None
        in
        let supplied =
          List.length (List.filter (fun (_, a) -> a <> None) args)
        in
        let omitted = List.exists (fun (_, a) -> a = None) args in
        let what =
          match callee with
          | Some (md, v) -> md ^ "." ^ v
          | None -> "<apply>"
        in
        if omitted then add_site e.exp_loc K_papply what
        else
          match callee with
          | Some pair when List.mem pair string_allocators ->
              add_site e.exp_loc K_string what
          | Some pair when List.mem pair array_allocators ->
              add_site e.exp_loc K_array what
          | Some pair when List.mem pair list_allocators ->
              add_site e.exp_loc K_list what
          | Some ("Stdlib", "ref") ->
              add_site e.exp_loc K_record "ref"
          | _ ->
              if is_float_ty e.exp_type then add_site e.exp_loc K_float_box what
              else if is_boxed_num_ty e.exp_type then
                add_site e.exp_loc K_boxed what
              else if is_arrow_ty e.exp_type then
                (* Under-application is only certain when the callee's
                   own curried arity is known from the census; an
                   arrow-typed full application just returns an
                   existing closure. *)
                match callee with
                | Some (md, v) -> (
                    match Hashtbl.find_opt arity_of (md ^ "." ^ v) with
                    | Some arity when arity > supplied ->
                        add_site e.exp_loc K_papply what
                    | _ -> ())
                | None -> ()
      in
      let open Tast_iterator in
      let expr self (e : expression) =
        (match e.exp_desc with
        | Texp_ident (p, _, _) -> mention p
        | Texp_function _ ->
            if not (List.memq e st.spine) then begin
              add_site e.exp_loc K_closure "fun";
              st.spine <- fn_chain e @ st.spine
            end
        | Texp_apply (fn, args) -> classify_apply e fn args
        | Texp_tuple _ -> add_site e.exp_loc K_tuple "(,)"
        | Texp_construct (_, cd, args) when args <> [] ->
            if cd.Types.cstr_name = "::" then
              add_site e.exp_loc K_list "::"
            else begin
              add_site e.exp_loc K_construct cd.Types.cstr_name;
              (* An inline-record payload is the constructor's own
                 block, not a second allocation. *)
              match (cd.Types.cstr_inlined, args) with
              | Some _, [ ({ exp_desc = Texp_record _; _ } as r) ] ->
                  st.skip_records <- r :: st.skip_records
              | _ -> ()
            end
        | Texp_variant (l, Some _) -> add_site e.exp_loc K_variant ("`" ^ l)
        | Texp_record _ ->
            if not (List.memq e st.skip_records) then
              let what =
                match Types.get_desc e.exp_type with
                | Types.Tconstr (p, _, _) -> Path.name p
                | _ -> "{...}"
              in
              add_site e.exp_loc K_record what
        | Texp_array [] -> ()
        | Texp_array _ -> add_site e.exp_loc K_array "[|...|]"
        | Texp_field (_, _, ld) ->
            if is_float_ty e.exp_type then
              add_site e.exp_loc K_float_box ("." ^ ld.Types.lbl_name)
        | Texp_lazy _ -> add_site e.exp_loc K_lazy "lazy"
        | Texp_object _ -> add_site e.exp_loc K_other "object"
        | Texp_new _ -> add_site e.exp_loc K_other "new"
        | Texp_pack _ -> add_site e.exp_loc K_other "module"
        | _ -> ());
        default_iterator.expr self e
      in
      (* A nested [let f x = ...] allocates one closure for its whole
         curried chain when the surrounding scope is entered; count it
         here (under the enclosing binding's name) and mark the chain
         so the Texp_function case does not re-count it. *)
      let value_binding self (vb : value_binding) =
        (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
        | Tpat_var (id, _), Texp_function _ ->
            add_site vb.vb_expr.exp_loc K_closure (Ident.name id);
            st.spine <- fn_chain vb.vb_expr @ st.spine
        | _ -> ());
        default_iterator.value_binding self vb
      in
      let iter = { default_iterator with expr; value_binding } in
      walk_structure ~modpath:modname
        ~on_binding:(fun ~modpath ~name ~expr ->
          let fn = modpath ^ "." ^ name in
          st.cur_fn <- fn;
          st.spine <- fn_chain expr;
          st.skip_records <- [];
          let before = st.sites in
          iter.expr iter expr;
          let own, rest =
            ( List.filter (fun s -> not (List.memq s before)) st.sites,
              before )
          in
          let calls =
            Hashtbl.fold
              (fun (f, callee) () acc ->
                if f = fn && callee <> fn then callee :: acc else acc)
              st.calls []
            |> List.sort_uniq compare
          in
          st.sites <- rest;
          fn_infos :=
            {
              f_name = fn;
              f_module = modname;
              f_arity =
                (match Hashtbl.find_opt arity_of fn with
                | Some a -> a
                | None -> 0);
              f_calls = calls;
              f_sites = List.rev own;
            }
            :: !fn_infos)
        str)
    units;
  ignore pass1_synth;
  {
    c_modules =
      List.sort_uniq compare (List.map (fun (m, _) -> m) units);
    c_fns =
      List.sort (fun a b -> compare a.f_name b.f_name) !fn_infos;
  }

let rec cmt_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun n -> cmt_files_under (Filename.concat path n))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

let census_of_paths paths =
  let files = List.concat_map cmt_files_under paths in
  if files = [] then errorf "no .cmt files under: %s" (String.concat " " paths);
  census
    (List.filter_map
       (fun f ->
         (* Interface-only and empty-alias cmts are not census units. *)
         match read_cmt f with
         | unit -> Some unit
         | exception Error _ -> None)
       files)

(* ------------------------------------------------------------------ *)
(* Hot set                                                             *)
(* ------------------------------------------------------------------ *)

let hot (c : census) ~roots =
  let fn_tbl = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace fn_tbl f.f_name f) c.c_fns;
  List.iter
    (fun r ->
      if not (Hashtbl.mem fn_tbl r) then
        errorf
          "unknown hot root %S: no such top-level binding in the scanned \
           modules (stale root after a rename?)"
          r)
    roots;
  let chain_to : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem chain_to r) then begin
        Hashtbl.replace chain_to r [ r ];
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let fn = Queue.take queue in
    let info = Hashtbl.find fn_tbl fn in
    let chain = Hashtbl.find chain_to fn in
    List.iter
      (fun callee ->
        match Hashtbl.find_opt fn_tbl callee with
        | Some target
          when target.f_arity >= 1 && not (Hashtbl.mem chain_to callee) ->
            Hashtbl.replace chain_to callee (chain @ [ callee ]);
            Queue.add callee queue
        | _ -> ())
      info.f_calls
  done;
  Hashtbl.fold (fun fn chain acc -> (fn, chain) :: acc) chain_to []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

type budget_entry = { b_fn : string; b_kind : kind; b_count : int }

let load_budget path =
  let ic = try open_in path with Sys_error e -> errorf "%s" e in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let entries = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ fn; k; n ] -> (
           match (kind_of_name k, int_of_string_opt n) with
           | Some b_kind, Some b_count when b_count >= 0 ->
               entries := { b_fn = fn; b_kind; b_count } :: !entries
           | None, _ ->
               errorf "%s:%d: unknown allocation kind %S" path !lineno k
           | _, _ -> errorf "%s:%d: bad budget count %S" path !lineno n)
       | _ ->
           errorf "%s:%d: expected `<Module.fn> <kind> <count>` (got %S)"
             path !lineno line
     done
   with End_of_file -> ());
  List.rev !entries

type violation = {
  v_site : site;
  v_chain : string list;
  v_found : int;
  v_budget : int;
}

type verdict = {
  hot_fns : (string * string list) list;
  hot_sites : site list;
  violations : violation list;
  stale : budget_entry list;
}

let site_order a b =
  compare (a.s_file, a.s_line, a.s_col, kind_name a.s_kind)
    (b.s_file, b.s_line, b.s_col, kind_name b.s_kind)

let check (c : census) ~roots ~budget =
  let hot_fns = hot c ~roots in
  let chain_of fn = List.assoc fn hot_fns in
  let fn_tbl = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace fn_tbl f.f_name f) c.c_fns;
  let hot_sites =
    List.concat_map
      (fun (fn, _) -> (Hashtbl.find fn_tbl fn).f_sites)
      hot_fns
    |> List.sort site_order
  in
  (* (fn, kind) -> sites, in source order *)
  let groups : (string * kind, site list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = (s.s_fn, s.s_kind) in
      match Hashtbl.find_opt groups key with
      | Some r -> r := s :: !r
      | None -> Hashtbl.add groups key (ref [ s ]))
    hot_sites;
  let budget_of fn kind =
    List.find_opt (fun b -> b.b_fn = fn && b.b_kind = kind) budget
  in
  let violations = ref [] in
  Hashtbl.iter
    (fun (fn, kind) sites ->
      let found = List.length !sites in
      let allowed =
        match budget_of fn kind with Some b -> b.b_count | None -> 0
      in
      if found > allowed then
        let first = List.hd (List.sort site_order !sites) in
        violations :=
          {
            v_site = first;
            v_chain = chain_of fn;
            v_found = found;
            v_budget = allowed;
          }
          :: !violations)
    groups;
  let stale =
    List.filter
      (fun b ->
        let found =
          match Hashtbl.find_opt groups (b.b_fn, b.b_kind) with
          | Some r -> List.length !r
          | None -> 0
        in
        b.b_count > found)
      budget
  in
  {
    hot_fns;
    hot_sites;
    violations =
      List.sort (fun a b -> site_order a.v_site b.v_site) !violations;
    stale;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let format_violation v =
  Printf.sprintf
    "%s:%d:%d: [alloc-%s] %d %s-allocation site(s) in hot function %s \
     (budget %d): a new allocation reached the hot path; remove it or \
     justify it in the budget (chain: %s)"
    v.v_site.s_file v.v_site.s_line v.v_site.s_col (kind_name v.v_site.s_kind)
    v.v_found (kind_name v.v_site.s_kind) v.v_site.s_fn v.v_budget
    (String.concat " -> " v.v_chain)

let format_stale b =
  Printf.sprintf
    "stale budget entry: %s %s %d exceeds the census; tighten it in the \
     same change that dropped the allocation"
    b.b_fn (kind_name b.b_kind) b.b_count

let group_counts sites =
  let tbl : (string * kind, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = (s.s_fn, s.s_kind) in
      Hashtbl.replace tbl key
        (1 + match Hashtbl.find_opt tbl key with Some n -> n | None -> 0))
    sites;
  Hashtbl.fold (fun (fn, k) n acc -> (fn, k, n) :: acc) tbl []
  |> List.sort (fun (f1, k1, _) (f2, k2, _) ->
         compare (f1, kind_name k1) (f2, kind_name k2))

let print_budget (v : verdict) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (fn, k, n) ->
      Buffer.add_string b
        (Printf.sprintf "%s %s %d  # TODO justify\n" fn (kind_name k) n))
    (group_counts v.hot_sites);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Census JSON (CI artifact)                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kind_histogram sites =
  let count k = List.length (List.filter (fun s -> s.s_kind = k) sites) in
  List.filter_map
    (fun k ->
      let n = count k in
      if n = 0 then None
      else Some (Printf.sprintf {|"%s":%d|} (kind_name k) n))
    all_kinds
  |> String.concat ","

let census_json (c : census) ~(verdict : verdict) ~roots =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{";
  add {|"roots":[%s],|}
    (String.concat "," (List.map (fun r -> "\"" ^ json_escape r ^ "\"") roots));
  add {|"modules":{|};
  List.iteri
    (fun i m ->
      let fns = List.filter (fun f -> f.f_module = m) c.c_fns in
      let sites = List.concat_map (fun f -> f.f_sites) fns in
      add {|%s"%s":{"functions":%d,"sites":%d,"kinds":{%s}}|}
        (if i = 0 then "" else ",")
        (json_escape m) (List.length fns) (List.length sites)
        (kind_histogram sites))
    c.c_modules;
  add "},";
  let all_sites = List.concat_map (fun f -> f.f_sites) c.c_fns in
  add {|"kinds":{%s},|} (kind_histogram all_sites);
  add {|"hot":{"functions":%d,"sites":%d,"kinds":{%s},"per_function":{|}
    (List.length verdict.hot_fns)
    (List.length verdict.hot_sites)
    (kind_histogram verdict.hot_sites);
  let hot_groups = group_counts verdict.hot_sites in
  let fns_with_sites =
    List.sort_uniq compare (List.map (fun (f, _, _) -> f) hot_groups)
  in
  List.iteri
    (fun i fn ->
      let kinds =
        List.filter_map
          (fun (f, k, n) ->
            if f = fn then
              Some (Printf.sprintf {|"%s":%d|} (kind_name k) n)
            else None)
          hot_groups
      in
      add {|%s"%s":{%s}|}
        (if i = 0 then "" else ",")
        (json_escape fn) (String.concat "," kinds))
    fns_with_sites;
  add "}},";
  add {|"budget":{"violations":[%s],"stale":[%s]}|}
    (String.concat ","
       (List.map
          (fun v ->
            Printf.sprintf
              {|{"file":"%s","line":%d,"col":%d,"kind":"alloc-%s","fn":"%s","found":%d,"budget":%d,"chain":[%s]}|}
              (json_escape v.v_site.s_file)
              v.v_site.s_line v.v_site.s_col
              (kind_name v.v_site.s_kind)
              (json_escape v.v_site.s_fn)
              v.v_found v.v_budget
              (String.concat ","
                 (List.map
                    (fun f -> "\"" ^ json_escape f ^ "\"")
                    v.v_chain)))
          verdict.violations))
    (String.concat ","
       (List.map
          (fun (e : budget_entry) ->
            Printf.sprintf {|{"fn":"%s","kind":"alloc-%s","budget":%d}|}
              (json_escape e.b_fn) (kind_name e.b_kind) e.b_count)
          verdict.stale));
  add "}\n";
  Buffer.contents b
