(* Post-run conservation audit: see the .mli for the exact claim.  Pure
   list/arithmetic processing of a workload's op ledger — nothing here
   touches the simulator. *)

type input = {
  enq_started : int;
  enq_completed : int;
  dequeued : int;
  duplicates : int;
  phantoms : int;
  residue : int option;
  in_flight : int;
}

type report = {
  ok : bool;
  lost : int option;
  detail : string;
  input : input;
}

let audit input =
  let safety_ok = input.duplicates = 0 && input.phantoms = 0 in
  let lost =
    match input.residue with
    | Some residue -> Some (input.enq_completed - input.dequeued - residue)
    | None -> None
  in
  let accounting_ok =
    match lost with
    | Some lost -> abs lost <= input.in_flight
    | None -> true
  in
  let ok = safety_ok && accounting_ok in
  let detail =
    let base =
      Printf.sprintf "%s (enq %d/%d, deq %d" (if ok then "PASS" else "FAIL")
        input.enq_completed input.enq_started input.dequeued
    in
    let residue_part =
      match (input.residue, lost) with
      | Some r, Some l ->
          Printf.sprintf ", residue %d, lost %d <= in-flight %d" r l
            input.in_flight
      | _ -> ", residue unknown"
    in
    let bad =
      (if input.duplicates > 0 then
         [ Printf.sprintf "%d DUPLICATED" input.duplicates ]
       else [])
      @
      if input.phantoms > 0 then
        [ Printf.sprintf "%d PHANTOM" input.phantoms ]
      else []
    in
    base ^ residue_part
    ^ (if bad = [] then "" else ", " ^ String.concat ", " bad)
    ^ ")"
  in
  { ok; lost; detail; input }

(* Conservation composes over a sharded frontend: when every element
   lives in exactly one shard (stealing moves the dequeuer, not the
   element), the whole-frontend ledger is the field-wise sum, with a
   known residue only if every shard reports one.  [in_flight] slack
   also sums: a crashed processor strands at most one element no
   matter which shard it was visiting. *)
let combine inputs =
  let zero =
    {
      enq_started = 0;
      enq_completed = 0;
      dequeued = 0;
      duplicates = 0;
      phantoms = 0;
      residue = Some 0;
      in_flight = 0;
    }
  in
  List.fold_left
    (fun acc i ->
      {
        enq_started = acc.enq_started + i.enq_started;
        enq_completed = acc.enq_completed + i.enq_completed;
        dequeued = acc.dequeued + i.dequeued;
        duplicates = acc.duplicates + i.duplicates;
        phantoms = acc.phantoms + i.phantoms;
        residue =
          (match (acc.residue, i.residue) with
          | Some a, Some b -> Some (a + b)
          | _ -> None);
        in_flight = acc.in_flight + i.in_flight;
      })
    zero inputs

let check_values ~enq_started dequeued =
  let seen = Hashtbl.create (List.length dequeued) in
  List.fold_left
    (fun (dups, phantoms) v ->
      let dups = if Hashtbl.mem seen v then dups + 1 else dups in
      Hashtbl.replace seen v ();
      let phantoms = if enq_started v then phantoms else phantoms + 1 in
      (dups, phantoms))
    (0, 0) dequeued
