(* Simulated-memory race detector (etrees.analysis, dynamic prong).

   Installs a {!Sim.Memory.tracer} for the duration of a thunk and
   audits every engine-level operation against the effect discipline:

   - [raw-write]: an operation found its cell holding a value that is
     not (physically) the one the engine last installed — some code
     mutated [c.v] directly, bypassing the scheduler.  Such writes cost
     zero simulated cycles and are never serialized, so they corrupt
     both the timing results and (under contention) the values.  This
     is the dynamic complement of the static lint: the lint sees the
     mutation site, the detector sees its effect on a live run.

   - [serialized-overlap]: two serialized operations on one location
     whose service windows overlap.  The busy-until chain makes this
     impossible by construction, so this check is a scheduler
     self-check; a report here means the simulator itself is broken.

   - reads whose completion instant falls inside an in-flight
     serialized write's [begins, finish) window are counted in
     [overlapping_reads].  Under the simulator's memory model these are
     *benign* — reads model cached lines and observe the pre-write
     value, exactly like a local-spinning waiter racing its
     predecessor's release — so they are diagnostics by default and
     promoted to [read-write-overlap] races only under
     [~strict_reads:true] (useful when auditing code that is supposed
     to hold a location's lock around its reads).

   Raw-write detection is sound but not complete: a raw write that
   reinstalls the physically-identical value, or that is raw-overwritten
   before any engine operation touches the cell again, is missed.
   Detection is also deduplicated per location (the shadow stays stale
   after a raw read-side detection, so one stray write would otherwise
   drown the report). *)

type kind = Raw_write | Serialized_overlap | Read_write_overlap

let kind_name = function
  | Raw_write -> "raw-write"
  | Serialized_overlap -> "serialized-overlap"
  | Read_write_overlap -> "read-write-overlap"

type race = {
  kind : kind;
  loc_id : int;       (* Memory.loc allocation index *)
  pid : int;          (* processor whose operation detected it *)
  time : int;         (* simulated completion time of that operation *)
  writer_pid : int;   (* last engine writer of the location (-1 none) *)
  writer_time : int;
  writer_seq : int;
  detail : string;
}

type report = {
  races : race list;        (* detection order *)
  overlapping_reads : int;
  reads_checked : int;
  commits_checked : int;
  issues_checked : int;
}

let format_race r =
  let writer =
    if r.writer_pid < 0 then "no engine writer yet"
    else
      Printf.sprintf "last engine writer: pid %d at t=%d seq %d" r.writer_pid
        r.writer_time r.writer_seq
  in
  Printf.sprintf "[%s] loc %d: pid %d at t=%d (%s) — %s" (kind_name r.kind)
    r.loc_id r.pid r.time writer r.detail

let format_report rep =
  let header =
    Printf.sprintf
      "race detector: %d race(s); %d overlapping read(s); %d reads, %d \
       commits, %d serialized issues checked\n"
      (List.length rep.races) rep.overlapping_reads rep.reads_checked
      rep.commits_checked rep.issues_checked
  in
  header ^ String.concat "" (List.map (fun r -> format_race r ^ "\n") rep.races)

(* Run [f] with the detector observing all simulated-memory traffic.
   Nested uses restore the previously installed tracer. *)
let run ?(strict_reads = false) ?(max_races = 1000) f =
  let races = ref [] in
  let n_races = ref 0 in
  let overlapping_reads = ref 0 in
  let reads_checked = ref 0 in
  let commits_checked = ref 0 in
  let issues_checked = ref 0 in
  (* Locations with an already-reported raw write: their shadow stays
     stale (reads cannot heal it), so report each location once. *)
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let add (loc : Sim.Memory.loc) kind ~pid ~time detail =
    if !n_races < max_races then
      races :=
        {
          kind;
          loc_id = loc.id;
          pid;
          time;
          writer_pid = loc.epoch_pid;
          writer_time = loc.epoch_time;
          writer_seq = loc.epoch_seq;
          detail;
        }
        :: !races;
    incr n_races
  in
  let raw_write (loc : Sim.Memory.loc) ~pid ~time ~op =
    if not (Hashtbl.mem dirty loc.id) then begin
      Hashtbl.add dirty loc.id ();
      add loc Raw_write ~pid ~time
        (Printf.sprintf
           "%s found a value the engine never installed: a raw mutation \
            bypassed the effect discipline"
           op)
    end
  in
  let on_read (loc : Sim.Memory.loc) ~pid ~issued ~fired ~serialized ~clean =
    incr reads_checked;
    if not clean then raw_write loc ~pid ~time:fired ~op:"read";
    if
      (not serialized)
      && loc.pend_pid >= 0
      && loc.pend_pid <> pid
      && fired >= loc.pend_begins
      && fired < loc.pend_finish
    then begin
      incr overlapping_reads;
      if strict_reads then
        add loc Read_write_overlap ~pid ~time:fired
          (Printf.sprintf
             "read issued at t=%d completed inside pid %d's in-flight \
              serialized window [%d, %d)"
             issued loc.pend_pid loc.pend_begins loc.pend_finish)
    end
  in
  let on_issue (loc : Sim.Memory.loc) ~pid ~now ~begins ~finish =
    incr issues_checked;
    (* [begins] is max(now, busy_until) and busy_until is the previous
       op's finish, so overlap here means the busy-until chain broke. *)
    if loc.pend_pid >= 0 && begins < loc.pend_finish then
      add loc Serialized_overlap ~pid ~time:now
        (Printf.sprintf
           "serialized window [%d, %d) overlaps pid %d's window [%d, %d): \
            busy-until chain violated"
           begins finish loc.pend_pid loc.pend_begins loc.pend_finish)
  in
  let on_commit (loc : Sim.Memory.loc) ~pid ~time ~clean =
    incr commits_checked;
    if not clean then raw_write loc ~pid ~time ~op:"serialized op"
  in
  let prev = !Sim.Memory.tracer in
  Sim.Memory.tracer := Some { Sim.Memory.on_read; on_issue; on_commit };
  Fun.protect ~finally:(fun () -> Sim.Memory.tracer := prev) @@ fun () ->
  let result = f () in
  ( result,
    {
      races = List.rev !races;
      overlapping_reads = !overlapping_reads;
      reads_checked = !reads_checked;
      commits_checked = !commits_checked;
      issues_checked = !issues_checked;
    } )
