(* The Mellor-Crummey & Scott queue lock [15].

   Waiters form a linked queue through per-processor nodes and each
   spins only on its own node's [locked] flag, so an acquire generates
   no traffic on shared locations while it waits.  Admission is FIFO —
   the "fairness" property Theorem 2.2 of the paper relies on for
   bounded-time access to the leaf pools and toggle bits.

   Physical-equality note: the tail cell stores the *preallocated*
   [Some node] box kept inside each node ([node.some]), never a fresh
   [Some _], so the release-time [compare_and_set tail node.some None]
   compares the very box the acquire installed. *)

module Make (E : Engine.S) = struct
  type node = {
    locked : bool E.cell;
    next : node option E.cell;
    mutable some : node option; (* stable [Some self] box, see above *)
  }

  type t = { tail : node option E.cell; nodes : node array }

  let make_node () =
    let n = { locked = E.cell false; next = E.cell None; some = None } in
    n.some <- Some n;
    n

  let create ?capacity () =
    let capacity =
      match capacity with Some c -> c | None -> E.nprocs ()
    in
    { tail = E.cell None; nodes = Array.init capacity (fun _ -> make_node ()) }

  let my_node t =
    let p = E.pid () in
    if p >= Array.length t.nodes then
      invalid_arg "Mcs_lock: pid exceeds lock capacity";
    t.nodes.(p)

  let acquire t =
    let node = my_node t in
    E.set node.next None;
    E.set node.locked true;
    match E.exchange t.tail node.some with
    | None -> () (* the queue was empty: lock acquired *)
    | Some pred ->
        E.set pred.next node.some;
        (* Local spinning: [node.locked] is written only by the
           predecessor's release. *)
        if Etrace.on Etrace.lv_events then
          Etrace.emit
            (Etrace.Event.Spin_begin { pid = E.pid (); time = E.now () });
        while E.get node.locked do
          E.cpu_relax ()
        done;
        if Etrace.on Etrace.lv_events then
          Etrace.emit (Etrace.Event.Spin_end { pid = E.pid (); time = E.now () })

  let release t =
    let node = my_node t in
    match E.get node.next with
    | Some succ -> E.set succ.locked false
    | None ->
        if E.compare_and_set t.tail node.some None then ()
        else begin
          (* A successor is between its exchange and linking in: wait
             for the link, then hand over. *)
          let rec hand_over () =
            match E.get node.next with
            | None ->
                E.cpu_relax ();
                hand_over ()
            | Some succ -> E.set succ.locked false
          in
          if Etrace.on Etrace.lv_events then
            Etrace.emit
              (Etrace.Event.Spin_begin { pid = E.pid (); time = E.now () });
          hand_over ();
          if Etrace.on Etrace.lv_events then
            Etrace.emit
              (Etrace.Event.Spin_end { pid = E.pid (); time = E.now () })
        end

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
