(** The counting networks of Aspnes, Herlihy & Shavit [4] — the
    structures the paper's trees generalize: [`Bitonic] (recursive
    merger construction, depth [log w * (log w + 1) / 2]) and
    [`Periodic] ([log w] identical butterfly blocks, same depth).
    Bare-CAS toggle balancers, no prisms; local counters on the logical
    outputs make either an exact fetch&increment with the step property
    in quiescent states.

    Construction goes through the wiring IR: {!ir} is the single source
    of truth for the wiring and {!Make.create} instantiates the
    per-layer toggles from its plan. *)

val ir :
  ?kind:[ `Bitonic | `Periodic ] -> width:int -> unit -> Netverify.Ir.network
(** The canonical wiring IR (validated by the netverify
    well-formedness pass).  Raises [Invalid_argument] when [width] is
    not a power of two. *)

module Make (E : Engine.S) : sig
  type t

  val create :
    ?kind:[ `Bitonic | `Periodic ] -> ?initial:int -> width:int -> unit -> t
  (** [width] must be a power of two.  Default [`Bitonic]. *)

  val depth : t -> int
  (** Number of balancer layers. *)

  val traverse : t -> wire:int -> int
  (** Route one token from input [wire] to its logical output index. *)

  val fetch_and_inc : t -> int
  (** Traverse from a random input wire and fetch the output's local
      counter. *)

  val as_counter : t -> Sync.Counter.t
end
