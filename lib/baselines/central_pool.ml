(* The centralized pool of the paper's Figure 5: a cyclic array indexed
   by two shared counters.  An enqueuer fetches a slot from the head
   counter and CASes its element into the (possibly still occupied)
   slot; a dequeuer fetches a slot from the tail counter, waits for the
   slot to fill, and CASes the element out.

   The paper's "MCS", "Ctree-n" and "Dtree" produce/consume methods are
   all this pool with different counter implementations — pass them in
   as {!Sync.Counter.t} values. *)

module Make (E : Engine.S) = struct
  type 'v t = {
    slots : 'v option E.cell array;
    head : Sync.Counter.t; (* enqueue ticket dispenser *)
    tail : Sync.Counter.t; (* dequeue ticket dispenser *)
    poll : int;            (* cycles between slot re-checks *)
  }

  (* [size] must exceed the maximum possible surplus of enqueues over
     dequeues plus the number of concurrent operations ("N must be
     chosen optimally", Fig. 5). *)
  let create ?(poll = 16) ~size ~head ~tail () =
    if size < 1 then invalid_arg "Central_pool.create";
    { slots = Array.init size (fun _ -> E.cell None); head; tail; poll }

  let enqueue t v =
    let i = Sync.Counter.fetch_and_inc t.head mod Array.length t.slots in
    let slot = t.slots.(i) in
    let rec attempt () =
      if E.compare_and_set slot None (Some v) then ()
      else begin
        (* Slot still holds an element a slow dequeuer has not taken:
           wait for it to drain. *)
        E.delay t.poll;
        attempt ()
      end
    in
    attempt ()

  (* Occupied slots; exact when quiescent (engine-level reads: call
     inside a simulator run). *)
  let residue t =
    Array.fold_left
      (fun acc slot ->
        match E.get slot with Some _ -> acc + 1 | None -> acc)
      0 t.slots

  let dequeue ?(stop = fun () -> false) t =
    let i = Sync.Counter.fetch_and_inc t.tail mod Array.length t.slots in
    let slot = t.slots.(i) in
    let rec attempt () =
      match E.get slot with
      | Some v as el ->
          if E.compare_and_set slot el None then Some v
          else begin
            E.delay t.poll;
            attempt ()
          end
      | None ->
          if stop () then None
          else begin
            E.delay t.poll;
            attempt ()
          end
    in
    attempt ()
end
