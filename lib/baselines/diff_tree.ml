(* Diffracting trees [Shavit & Zemach, 24] used as shared counters —
   the paper's "Dtree" baselines.

   A diffracting balancer is an elimination balancer with elimination
   turned off, a single toggle bit, and (classically) a single prism;
   only tokens flow.  The counting-tree output numbering gives leaf i
   the value sequence i, i+w, i+2w, ..., so a token exiting on leaf i
   fetches that leaf's next value — a correct, high-bandwidth
   fetch&increment (step property of counting trees).

   [`Single_prism] is the original construction with the optimized
   parameters of [24] quoted in §2.5; [`Multi_prism] is this paper's
   new multi-layered-prism balancer evaluated in the counting benchmark
   of §2.5.2 (Fig. 9, "Dtree-32+MulPri"). *)

let config_of_prisms prisms width =
  match prisms with
  | `Single_prism -> Core.Tree_config.dtree width
  | `Multi_prism -> Core.Tree_config.dtree_multiprism width

let ir ?(prisms = `Single_prism) ~width () =
  let name =
    Printf.sprintf "dtree-%d%s" width
      (match prisms with `Single_prism -> "" | `Multi_prism -> "-multiprism")
  in
  Core.Elim_tree.ir ~mode:`Stack ~eliminate:false ~leaf_order:`Interleaved
    ~name
    (config_of_prisms prisms width)

module Make (E : Engine.S) = struct
  module Tree = Core.Elim_tree.Make (E)

  type t = {
    tree : unit Tree.t;
    slots : int E.cell array;
    width : int;
  }

  let create ?(prisms = `Single_prism) ?(initial = 0) ~capacity ~width () =
    let config = config_of_prisms prisms width in
    let tree =
      Tree.create ~mode:`Stack ~eliminate:false ~leaf_order:`Interleaved
        ~capacity config
    in
    {
      tree;
      slots = Array.init width (fun i -> E.cell (initial + i));
      width;
    }

  let fetch_and_inc t =
    match Tree.traverse t.tree ~kind:Token ~value:None with
    | Tree.Leaf i -> E.fetch_and_add t.slots.(i) t.width
    | Tree.Eliminated _ ->
        (* Token-only traffic with elimination disabled never
           eliminates. *)
        assert false

  let as_counter t : Sync.Counter.t =
    { fetch_and_inc = (fun () -> fetch_and_inc t) }

  let stats_by_level t = Tree.stats_by_level t.tree
end
