(** The centralized pool of the paper's Figure 5: a cyclic array
    indexed by two shared counters.  The "MCS", "Ctree-n" and "Dtree"
    produce-consume methods are this pool with different counters. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create :
    ?poll:int ->
    size:int ->
    head:Sync.Counter.t ->
    tail:Sync.Counter.t ->
    unit ->
    'v t
  (** [size] must exceed the maximum enqueue surplus plus concurrent
      operations ("N must be chosen optimally"). *)

  val enqueue : 'v t -> 'v -> unit
  (** Waits (polling) if its slot is still held by a slow dequeuer of a
      previous lap. *)

  val dequeue : ?stop:(unit -> bool) -> 'v t -> 'v option
  (** Waits (polling) for its slot to fill; [stop] bounds the wait. *)

  val residue : 'v t -> int
  (** Occupied slots; exact when quiescent (engine-level reads: call
      inside a simulator run). *)
end
