(* The counting networks of Aspnes, Herlihy & Shavit [4] — the
   structures the paper generalizes ("our tree construction is a novel
   form of a counting network [4] based counter").  Implemented as an
   additional substrate/baseline: depth Theta(log^2 w) versus the
   trees' log w, no prisms, balancers toggled by bare CAS.

   Two constructions:

   Bitonic[w] (AHS):
   - Merger[2]:  one balancer.
   - Merger[2k]: the even-indexed inputs of the first half together
     with the odd-indexed inputs of the second half feed one Merger[k];
     the remaining inputs feed another; a final column of k balancers
     pairs the two mergers' outputs elementwise.
   - Bitonic[2k]: two parallel Bitonic[k] followed by Merger[2k].

   Periodic[w] (AHS): log w identical Block[w] butterflies in series;
   Block[w] layer l pairs the wires whose indices differ exactly in the
   l-th most significant bit.  Same depth as Bitonic[w], simpler
   periodic wiring.

   A balancer's two outputs stay on its two physical wires (first input
   wire = top output).  The wiring itself comes from the netverify IR
   ({!ir}): [Netverify.Ir.counting_plan] turns the canonical network
   value into per-layer (top, bottom) physical-wire pairs plus the
   logical output order (merger order for Bitonic, identity for
   Periodic), and we hang a local counter (value sequence i, i+w, ...)
   on logical output i.  The networks' step property makes the
   assembly an exact quiescently-consistent fetch&increment. *)

let is_power_of_two w = w > 0 && w land (w - 1) = 0

let ir ?(kind = `Bitonic) ~width () =
  if not (is_power_of_two width) then
    invalid_arg "Bitonic_network.create: width must be a power of two";
  let net =
    match kind with
    | `Bitonic -> Netverify.Ir.bitonic ~width
    | `Periodic -> Netverify.Ir.periodic ~width
  in
  Netverify.Passes.assert_well_formed ~what:"Bitonic_network.ir" net;
  net

module Make (E : Engine.S) = struct
  type layer = {
    partner : int array; (* partner wire per wire; -1 = pass-through *)
    is_top : bool array;  (* does this wire hold the balancer's top? *)
    state : bool E.cell array; (* toggle per wire pair (stored at top) *)
  }

  type t = {
    width : int;
    layers : layer array;
    position : int array; (* physical wire -> logical output index *)
    slots : int E.cell array; (* logical output -> local counter *)
  }

  let create ?(kind = `Bitonic) ?(initial = 0) ~width () =
    (* Build (and statically validate) the wiring IR, then instantiate
       the per-layer toggles from its plan. *)
    let net = ir ~kind ~width () in
    let pair_layers, position = Netverify.Ir.counting_plan net in
    let layers =
      Array.map
        (fun pairs ->
          let partner = Array.make width (-1) in
          let is_top = Array.make width false in
          let state = Array.init width (fun _ -> E.cell false) in
          List.iter
            (fun (a, b) ->
              partner.(a) <- b;
              partner.(b) <- a;
              is_top.(a) <- true)
            pairs;
          { partner; is_top; state })
        pair_layers
    in
    {
      width;
      layers;
      position;
      slots = Array.init width (fun i -> E.cell (initial + i));
    }

  let depth t = Array.length t.layers

  (* Atomically flip a toggle; returns its previous value. *)
  let rec toggle cell =
    let v = E.get cell in
    if E.compare_and_set cell v (not v) then v
    else begin
      E.cpu_relax ();
      toggle cell
    end

  (* Route one token from input wire [wire] to its logical output. *)
  let traverse t ~wire =
    if wire < 0 || wire >= t.width then invalid_arg "Bitonic_network.traverse";
    let out =
      Array.fold_left
        (fun w layer ->
          let p = layer.partner.(w) in
          if p < 0 then w
          else begin
            let top, bottom = if layer.is_top.(w) then (w, p) else (p, w) in
            let old = toggle layer.state.(top) in
            (* First token out the top wire, second out the bottom. *)
            if old then bottom else top
          end)
        wire t.layers
    in
    t.position.(out)

  let fetch_and_inc t =
    let wire =
      if t.width = 1 then 0 else E.random_int t.width
    in
    let out = traverse t ~wire in
    E.fetch_and_add t.slots.(out) t.width

  let as_counter t : Sync.Counter.t =
    { fetch_and_inc = (fun () -> fetch_and_inc t) }
end
