(* The counting networks of Aspnes, Herlihy & Shavit [4] — the
   structures the paper generalizes ("our tree construction is a novel
   form of a counting network [4] based counter").  Implemented as an
   additional substrate/baseline: depth Theta(log^2 w) versus the
   trees' log w, no prisms, balancers toggled by bare CAS.

   Two constructions:

   Bitonic[w] (AHS):
   - Merger[2]:  one balancer.
   - Merger[2k]: the even-indexed inputs of the first half together
     with the odd-indexed inputs of the second half feed one Merger[k];
     the remaining inputs feed another; a final column of k balancers
     pairs the two mergers' outputs elementwise.
   - Bitonic[2k]: two parallel Bitonic[k] followed by Merger[2k].

   Periodic[w] (AHS): log w identical Block[w] butterflies in series;
   Block[w] layer l pairs the wires whose indices differ exactly in the
   l-th most significant bit.  Same depth as Bitonic[w], simpler
   periodic wiring.

   A balancer's two outputs stay on its two physical wires (first input
   wire = top output).  We generate the layer-by-layer wiring over
   physical wire ids and keep the logical output order alongside
   (identity for Periodic), then hang a local counter (value sequence
   i, i+w, ...) on logical output i.  The networks' step property makes
   the assembly an exact quiescently-consistent fetch&increment. *)

module Make (E : Engine.S) = struct
  type layer = {
    partner : int array; (* partner wire per wire; -1 = pass-through *)
    is_top : bool array;  (* does this wire hold the balancer's top? *)
    state : bool E.cell array; (* toggle per wire pair (stored at top) *)
  }

  type t = {
    width : int;
    layers : layer array;
    position : int array; (* physical wire -> logical output index *)
    slots : int E.cell array; (* logical output -> local counter *)
  }

  (* Wiring generation over lists of physical wire ids.  Each layer is
     a list of (top_wire, bottom_wire) pairs; parallel sub-networks are
     zipped layerwise (they always have equal depth by symmetry). *)
  let split_even_odd ws =
    let rec go evens odds i = function
      | [] -> (List.rev evens, List.rev odds)
      | w :: rest ->
          if i land 1 = 0 then go (w :: evens) odds (i + 1) rest
          else go evens (w :: odds) (i + 1) rest
    in
    go [] [] 0 ws

  let rec interleave a b =
    match (a, b) with
    | [], [] -> []
    | x :: a, y :: b -> x :: y :: interleave a b
    | _ -> invalid_arg "interleave"

  let parallel_concat la lb =
    if List.length la <> List.length lb then
      invalid_arg "bitonic: sub-network depth mismatch";
    List.map2 ( @ ) la lb

  let rec merger xs ys =
    match (xs, ys) with
    | [ x ], [ y ] -> ([ [ (x, y) ] ], [ x; y ])
    | _ ->
        let xe, xo = split_even_odd xs in
        let ye, yo = split_even_odd ys in
        let layers_a, za = merger xe yo in
        let layers_b, zb = merger xo ye in
        let final = List.map2 (fun a b -> (a, b)) za zb in
        (parallel_concat layers_a layers_b @ [ final ], interleave za zb)

  let rec bitonic ws =
    match ws with
    | [ _ ] -> ([], ws)
    | _ ->
        let n = List.length ws in
        let h1 = List.filteri (fun i _ -> i < n / 2) ws in
        let h2 = List.filteri (fun i _ -> i >= n / 2) ws in
        let l1, z1 = bitonic h1 in
        let l2, z2 = bitonic h2 in
        let lm, z = merger z1 z2 in
        (parallel_concat l1 l2 @ lm, z)

  (* Periodic[w]: log w repetitions of the Block[w] network of the
     Dowd-Perl-Rudolph-Saks balanced sorter, as used by AHS.  Block
     layer l splits the wires into chunks of size w >> l and pairs the
     mirror images within each chunk (i with chunk_size-1-i); outputs
     in natural wire order. *)
  let periodic width =
    let log2 =
      let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
      go 0 width
    in
    let block =
      List.init log2 (fun l ->
          let chunk = width lsr l in
          List.concat
            (List.init (width / chunk) (fun c ->
                 let base = c * chunk in
                 List.init (chunk / 2) (fun i ->
                     (base + i, base + chunk - 1 - i)))))
    in
    let layers = List.concat (List.init log2 (fun _ -> block)) in
    (layers, List.init width Fun.id)

  let is_power_of_two w = w > 0 && w land (w - 1) = 0

  let create ?(kind = `Bitonic) ?(initial = 0) ~width () =
    if not (is_power_of_two width) then
      invalid_arg "Bitonic_network.create: width must be a power of two";
    let pair_layers, order =
      match kind with
      | `Bitonic -> bitonic (List.init width Fun.id)
      | `Periodic -> periodic width
    in
    let layers =
      List.map
        (fun pairs ->
          let partner = Array.make width (-1) in
          let is_top = Array.make width false in
          let state = Array.init width (fun _ -> E.cell false) in
          List.iter
            (fun (a, b) ->
              partner.(a) <- b;
              partner.(b) <- a;
              is_top.(a) <- true)
            pairs;
          { partner; is_top; state })
        pair_layers
      |> Array.of_list
    in
    let position = Array.make width (-1) in
    List.iteri (fun logical wire -> position.(wire) <- logical) order;
    {
      width;
      layers;
      position;
      slots = Array.init width (fun i -> E.cell (initial + i));
    }

  let depth t = Array.length t.layers

  (* Atomically flip a toggle; returns its previous value. *)
  let rec toggle cell =
    let v = E.get cell in
    if E.compare_and_set cell v (not v) then v
    else begin
      E.cpu_relax ();
      toggle cell
    end

  (* Route one token from input wire [wire] to its logical output. *)
  let traverse t ~wire =
    if wire < 0 || wire >= t.width then invalid_arg "Bitonic_network.traverse";
    let out =
      Array.fold_left
        (fun w layer ->
          let p = layer.partner.(w) in
          if p < 0 then w
          else begin
            let top, bottom = if layer.is_top.(w) then (w, p) else (p, w) in
            let old = toggle layer.state.(top) in
            (* First token out the top wire, second out the bottom. *)
            if old then bottom else top
          end)
        wire t.layers
    in
    t.position.(out)

  let fetch_and_inc t =
    let wire =
      if t.width = 1 then 0 else E.random_int t.width
    in
    let out = traverse t ~wire in
    E.fetch_and_add t.slots.(out) t.width

  let as_counter t : Sync.Counter.t =
    { fetch_and_inc = (fun () -> fetch_and_inc t) }
end
