(** Diffracting trees [Shavit & Zemach, 24] as shared counters — the
    paper's "Dtree" baselines.  A diffracting balancer is an
    elimination balancer with elimination off and a single toggle;
    counting-tree output numbering plus per-leaf local counters give an
    exact fetch&increment.  [`Single_prism] is the original
    construction with the optimized parameters of [24]; [`Multi_prism]
    is this paper's multi-layered-prism balancer (§2.5.2, Fig. 9). *)

val ir :
  ?prisms:[ `Single_prism | `Multi_prism ] ->
  width:int ->
  unit ->
  Netverify.Ir.network
(** The wiring IR of the diffracting-tree counter (named
    ["dtree-<width>"] / ["dtree-<width>-multiprism"]) — the shape
    {!Make.create} instantiates. *)

module Make (E : Engine.S) : sig
  type t

  val create :
    ?prisms:[ `Single_prism | `Multi_prism ] ->
    ?initial:int ->
    capacity:int ->
    width:int ->
    unit ->
    t

  val fetch_and_inc : t -> int

  val as_counter : t -> Sync.Counter.t

  val stats_by_level : t -> Core.Elim_stats.t list
end
