(** Semantic certification over the wiring IR: quiescent output
    numbering and the step property (paper Lemmas 3.1/3.2), verified
    by exhaustive memoized enumeration of toggle-state reachability
    over sequential token executions — exact for every shipped shape.
    Violations come with a concrete operation-sequence counterexample
    that replays through the model checker's schedule format. *)

type op = Op_token | Op_anti

type counterexample = {
  ops : (op * int) list;
      (** (kind, input index) per operation; trees always use input 0 *)
  detail : string;
}

type failure = {
  pass : string;
  code : string;
  detail : string;
  cex : counterexample option;
}

type pass_ok = { pass : string; summary : string }

type report = {
  net_name : string;
  net_kind : string;
  width : int;
  passed : pass_ok list;
  failures : failure list;
}

val verify : Ir.network -> report
(** Run every applicable pass: well-formedness, conservation, depth
    bounds, then (on sound structure) numbering and step
    certification. *)

val ok : report -> bool
val op_name : op -> string
val format_ops : (op * int) list -> string
val format_report : report -> string
