(* Structural verification over the wiring IR.

   Three passes, each returning either a one-line certificate summary
   or a list of coded errors:

   - {!well_formed}: power-of-two width, node arities, dense unique
     ids, every wire written exactly once (network input or node
     output) and read exactly once (node input or network output),
     strict layering (every in-wire of a layer-d node leaves layer
     d-1), prism/spin sanity.  Acyclicity follows: a strictly layered
     graph has no cycles.
   - {!conservation}: the in/out-degree accounting that makes token
     conservation structural — each balancer's out-degree minus
     in-degree, summed, must equal network outputs minus inputs, and
     the wire census must balance writers against readers.
   - {!depth_bounds}: the paper's depth claims — log w for trees,
     log w (log w + 1)/2 for Bitonic[w], (log w)^2 for Periodic[w] —
     plus uniformity (every input-to-output path has that length).

   {!assert_well_formed} adapts the first pass into the unified
   [Invalid_argument] diagnostics the runtime constructors raise. *)

type error = { code : string; detail : string }

let errf code fmt = Printf.ksprintf (fun detail -> { code; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

let expected_io (net : Ir.network) =
  match net.kind with
  | Ir.Tree _ -> (1, net.width)
  | Ir.Counting _ -> (net.width, net.width)

let node_arity = function
  | Ir.Toggle -> (2, 2)
  | Ir.Elim _ -> (1, 2)

let well_formed (net : Ir.network) : (string, error list) result =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  if not (Ir.is_power_of_two net.width) then
    err (errf "width" "width %d is not a power of two" net.width);
  let nin, nout = expected_io net in
  if Array.length net.inputs <> nin then
    err (errf "arity" "%d network inputs, expected %d" (Array.length net.inputs) nin);
  if Array.length net.outputs <> nout then
    err
      (errf "arity" "%d network outputs, expected %d" (Array.length net.outputs)
         nout);
  (* Unique node ids. *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (n : Ir.node) ->
      if Hashtbl.mem seen n.id then
        err (errf "node-id" "duplicate node id %d" n.id)
      else Hashtbl.add seen n.id ())
    net.nodes;
  (* Node arities and attribute sanity. *)
  Array.iter
    (fun (n : Ir.node) ->
      let ni, no = node_arity n.attrs in
      if Array.length n.ins <> ni || Array.length n.outs <> no then
        err
          (errf "node-arity" "node %d has %d-in/%d-out, expected %d-in/%d-out"
             n.id (Array.length n.ins) (Array.length n.outs) ni no);
      if n.layer < 0 then err (errf "layering" "node %d has negative layer" n.id);
      match n.attrs with
      | Ir.Toggle -> ()
      | Ir.Elim { prism_widths; spin; _ } ->
          if prism_widths = [] then
            err (errf "prism" "node %d has no prism layers" n.id);
          List.iter
            (fun w ->
              if w < 1 then err (errf "prism" "node %d has prism width %d" n.id w))
            prism_widths;
          if spin < 0 then err (errf "prism" "node %d has negative spin" n.id))
    net.nodes;
  (* Wire census: every wire written once and read once. *)
  let writers = Array.make net.nwires 0 in
  let readers = Array.make net.nwires 0 in
  let touch what counts w =
    if w < 0 || w >= net.nwires then
      err (errf "wire-range" "%s references wire %d outside [0,%d)" what w net.nwires)
    else counts.(w) <- counts.(w) + 1
  in
  Array.iter (fun w -> touch "network input" writers w) net.inputs;
  Array.iter (fun w -> touch "network output" readers w) net.outputs;
  Array.iter
    (fun (n : Ir.node) ->
      let what = Printf.sprintf "node %d" n.id in
      Array.iter (fun w -> touch what readers w) n.ins;
      Array.iter (fun w -> touch what writers w) n.outs)
    net.nodes;
  Array.iteri
    (fun w c ->
      if c = 0 then err (errf "wire-unwritten" "wire %d has no writer" w)
      else if c > 1 then err (errf "wire-multi-writer" "wire %d has %d writers" w c))
    writers;
  Array.iteri
    (fun w c ->
      if c = 0 then err (errf "wire-unread" "wire %d has no reader" w)
      else if c > 1 then err (errf "wire-multi-reader" "wire %d has %d readers" w c))
    readers;
  (* Strict layering (hence acyclicity): the producer of every in-wire
     of a layer-d node sits at layer d-1 (or the wire is a network
     input and d = 0).  Only meaningful once the census is clean. *)
  if !errs = [] then begin
    let depth = Array.make net.nwires (-1) in
    Array.iter (fun w -> depth.(w) <- 0) net.inputs;
    let nodes = Array.copy net.nodes in
    Array.sort (fun (a : Ir.node) b -> compare a.layer b.layer) nodes;
    Array.iter
      (fun (n : Ir.node) ->
        Array.iter
          (fun w ->
            if depth.(w) <> n.layer then
              err
                (errf "layering"
                   "node %d at layer %d consumes wire %d at depth %d" n.id
                   n.layer w depth.(w)))
          n.ins;
        Array.iter (fun w -> depth.(w) <- n.layer + 1) n.outs)
      nodes
  end;
  match List.rev !errs with
  | [] ->
      Ok
        (Printf.sprintf
           "%d wires single-writer/single-reader, %d balancers strictly \
            layered, width %d"
           net.nwires (Array.length net.nodes) net.width)
  | errs -> Error errs

(* ------------------------------------------------------------------ *)
(* Conservation accounting                                             *)
(* ------------------------------------------------------------------ *)

let conservation (net : Ir.network) : (string, error list) result =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  let sum f = Array.fold_left (fun acc n -> acc + f n) 0 net.nodes in
  let total_outs = sum (fun (n : Ir.node) -> Array.length n.outs) in
  let total_ins = sum (fun (n : Ir.node) -> Array.length n.ins) in
  let written = Array.length net.inputs + total_outs in
  let read = Array.length net.outputs + total_ins in
  if written <> net.nwires then
    err (errf "conservation" "%d wire writes for %d wires" written net.nwires);
  if read <> net.nwires then
    err (errf "conservation" "%d wire reads for %d wires" read net.nwires);
  (* Each balancer forwards every entering token to exactly one output
     wire, so the network-level token surplus capacity is fixed by
     degrees alone: sum (out-in) per node = outputs - inputs. *)
  let surplus = total_outs - total_ins in
  let expected = Array.length net.outputs - Array.length net.inputs in
  if surplus <> expected then
    err
      (errf "conservation" "node degree surplus %d, network surplus %d" surplus
         expected);
  match List.rev !errs with
  | [] ->
      Ok
        (Printf.sprintf
           "wire census balances (%d written = %d read = %d wires); degree \
            surplus %d matches %d outputs - %d inputs"
           written read net.nwires surplus
           (Array.length net.outputs)
           (Array.length net.inputs))
  | errs -> Error errs

(* ------------------------------------------------------------------ *)
(* Depth bounds                                                        *)
(* ------------------------------------------------------------------ *)

let expected_depth (net : Ir.network) =
  let d = Ir.log2 net.width in
  match net.kind with
  | Ir.Tree _ -> d
  | Ir.Counting { flavor = `Bitonic } -> d * (d + 1) / 2
  | Ir.Counting { flavor = `Periodic } -> d * d

let depth_bounds (net : Ir.network) : (string, error list) result =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  let expected = expected_depth net in
  let max_layer =
    Array.fold_left (fun m (n : Ir.node) -> max m (n.layer + 1)) 0 net.nodes
  in
  if max_layer <> expected then
    err (errf "depth" "network depth %d, expected %d" max_layer expected);
  (* Uniformity: every output wire sits at depth [expected].  With
     strict layering, a wire leaving a layer-d node has depth d+1, so
     it suffices to look at the producers of the output wires. *)
  let depth = Array.make net.nwires 0 in
  Array.iter
    (fun (n : Ir.node) -> Array.iter (fun w -> depth.(w) <- n.layer + 1) n.outs)
    net.nodes;
  Array.iteri
    (fun l w ->
      if depth.(w) <> expected then
        err
          (errf "depth" "output %d exits at depth %d, expected %d" l depth.(w)
             expected))
    net.outputs;
  match List.rev !errs with
  | [] ->
      Ok
        (Printf.sprintf "every input-to-output path crosses exactly %d %s"
           expected
           (match net.kind with
           | Ir.Tree _ -> "balancers (log w)"
           | Ir.Counting { flavor = `Bitonic } ->
               "balancer layers (log w (log w + 1)/2)"
           | Ir.Counting { flavor = `Periodic } -> "balancer layers ((log w)^2)"))
  | errs -> Error errs

(* ------------------------------------------------------------------ *)
(* Constructor adapter                                                 *)
(* ------------------------------------------------------------------ *)

(* Unified construction-time diagnostics: the runtime constructors
   validate their freshly built IR and surface the first defect as an
   [Invalid_argument], one format for every network family. *)
let assert_well_formed ~what (net : Ir.network) =
  match well_formed net with
  | Ok _ -> ()
  | Error ({ code; detail } :: _) ->
      invalid_arg (Printf.sprintf "%s: %s [%s]" what detail code)
  | Error [] -> ()
