(** Structural verification over the wiring IR: well-formedness
    (single-writer/single-reader wires, arities, strict layering hence
    acyclicity), conservation-by-construction degree accounting, and
    the paper's depth bounds.  Each pass returns a certificate summary
    or a list of coded errors. *)

type error = { code : string; detail : string }

val well_formed : Ir.network -> (string, error list) result
val conservation : Ir.network -> (string, error list) result
val depth_bounds : Ir.network -> (string, error list) result

val assert_well_formed : what:string -> Ir.network -> unit
(** Raise [Invalid_argument "<what>: <detail> [<code>]"] on the first
    well-formedness error — the unified construction-time diagnostics
    of the runtime network constructors. *)
