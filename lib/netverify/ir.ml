(* The wiring IR: a balancing network as a layered DAG of balancer
   nodes connected by single-writer/single-reader wires.

   Every network shape the repo ships is *built* here — the runtime
   structures (Elim_tree, Bitonic_network, Diff_tree) instantiate
   their balancers from an [network] value instead of ad-hoc index
   arithmetic, so this IR is the single source of truth for wiring and
   the static passes in {!Passes}/{!Certify} verify exactly what runs.

   Conventions:
   - Wires are dense ids [0 .. nwires-1].  Network inputs come first
     ([inputs.(i) = i]); node output wires are allocated fresh.
   - A node's [outs.(0)] is its wire-0 ("top") output and [outs.(1)]
     its wire-1 ("bottom") output, matching the balancer protocol's
     [Location.Exit wire].
   - [outputs.(l)] is the wire of *logical* output [l]; for trees the
     logical numbering encodes [`Natural] or [`Interleaved] order, for
     counting networks it is the merger output order ([Bitonic]) or
     the identity ([Periodic]).
   - [layer] is the node's depth: the length of any input-to-node wire
     path.  All shipped networks are uniformly layered (every in-wire
     of a layer-d node leaves a layer-(d-1) node or a network input). *)

type mode = [ `Pool | `Stack ]
type leaf_order = [ `Natural | `Interleaved ]
type defect = [ `Skip_toggle_on_miss ]
type flavor = [ `Bitonic | `Periodic ]

type attrs =
  | Toggle
      (* bare-CAS toggle balancer (counting networks): 2-in/2-out, no
         prisms, tokens only *)
  | Elim of {
      mode : mode;
      eliminate : bool;
      prism_widths : int list; (* outermost (largest) prism first *)
      spin : int;
      bug : defect option; (* test-only seeded defect, never shipped *)
    }
      (* elimination/diffracting balancer (trees): 1-in/2-out *)

type node = {
  id : int; (* unique; tree nodes use heap order *)
  layer : int;
  attrs : attrs;
  ins : int array;
  outs : int array;
}

type net_kind =
  | Tree of { leaf_order : leaf_order }
  | Counting of { flavor : flavor }

type network = {
  name : string;
  kind : net_kind;
  width : int; (* logical outputs; trees have 1 input, counting w *)
  inputs : int array;
  outputs : int array; (* outputs.(logical index) = wire id *)
  nodes : node array;
  nwires : int;
}

let is_power_of_two w = w > 0 && w land (w - 1) = 0

(* floor(log2 w) for w >= 1. *)
let log2 w =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 w

(* Reverse the low [bits] bits of [i] — the [`Natural]/[`Interleaved]
   change of numbering (wire choices read root-first vs root-last). *)
let bit_reverse ~bits i =
  let rec go acc k i =
    if k = 0 then acc else go ((acc lsl 1) lor (i land 1)) (k - 1) (i lsr 1)
  in
  go 0 bits i

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(* Elimination/diffracting tree of [width] outputs (paper §2.1, §3.1).
   Balancer i sits at heap position i and consumes wire i; wire 0 is
   the network input and balancer i's outputs are wires 2i+1/2i+2, so
   the wire id of a heap slot is the slot itself and the leaf at
   natural position p is wire (width-1)+p.  [levels.(d)] supplies the
   (prism_widths, spin) pair for every depth-d balancer. *)
let elim_tree ~name ~mode ~eliminate ~leaf_order ?bug ~levels ~width () =
  if not (is_power_of_two width) then
    invalid_arg
      (Printf.sprintf "%s: width %d is not a power of two" name width);
  let depth = log2 width in
  let levels = Array.of_list levels in
  if Array.length levels <> depth then
    invalid_arg
      (Printf.sprintf "%s: %d level entries for depth-%d tree" name
         (Array.length levels) depth);
  let kind = Tree { leaf_order } in
  if width = 1 then
    {
      name;
      kind;
      width;
      inputs = [| 0 |];
      outputs = [| 0 |];
      nodes = [||];
      nwires = 1;
    }
  else begin
    let depth_of_index i =
      let rec go d n = if n <= 1 then d else go (d + 1) (n / 2) in
      go 0 (i + 1)
    in
    let nodes =
      Array.init (width - 1) (fun i ->
          let d = depth_of_index i in
          let prism_widths, spin = levels.(d) in
          {
            id = i;
            layer = d;
            attrs = Elim { mode; eliminate; prism_widths; spin; bug };
            ins = [| i |];
            outs = [| (2 * i) + 1; (2 * i) + 2 |];
          })
    in
    let outputs =
      Array.init width (fun l ->
          let natural =
            match leaf_order with
            | `Natural -> l
            | `Interleaved -> bit_reverse ~bits:depth l
          in
          width - 1 + natural)
    in
    { name; kind; width; inputs = [| 0 |]; outputs; nodes; nwires = (2 * width) - 1 }
  end

(* --- Counting networks (AHS [4]) ------------------------------------

   Generated directly in the wire domain: a small builder state hands
   out fresh wire ids and records each balancer with its ASAP layer
   (1 + the depth of its deepest input; both constructions are
   uniformly layered, so this is the column index). *)

type builder = {
  mutable next_wire : int;
  mutable next_node : int;
  mutable acc : node list; (* reverse creation order *)
  wire_depth : (int, int) Hashtbl.t;
}

let new_builder ~width =
  let b =
    { next_wire = width; next_node = 0; acc = []; wire_depth = Hashtbl.create 64 }
  in
  for i = 0 to width - 1 do
    Hashtbl.replace b.wire_depth i 0
  done;
  b

let fresh_wire b ~depth =
  let w = b.next_wire in
  b.next_wire <- w + 1;
  Hashtbl.replace b.wire_depth w depth;
  w

(* One toggle balancer taking wires [a] (top) and [bo] (bottom);
   returns its (top, bottom) output wires. *)
let mk_balancer b a bo =
  let layer =
    max (Hashtbl.find b.wire_depth a) (Hashtbl.find b.wire_depth bo)
  in
  let o0 = fresh_wire b ~depth:(layer + 1) in
  let o1 = fresh_wire b ~depth:(layer + 1) in
  let id = b.next_node in
  b.next_node <- id + 1;
  b.acc <- { id; layer; attrs = Toggle; ins = [| a; bo |]; outs = [| o0; o1 |] } :: b.acc;
  (o0, o1)

let split_even_odd ws =
  let rec go evens odds i = function
    | [] -> (List.rev evens, List.rev odds)
    | w :: rest ->
        if i land 1 = 0 then go (w :: evens) odds (i + 1) rest
        else go evens (w :: odds) (i + 1) rest
  in
  go [] [] 0 ws

let rec interleave a b =
  match (a, b) with
  | [], [] -> []
  | x :: a, y :: b -> x :: y :: interleave a b
  | _ -> invalid_arg "Ir.interleave: unequal halves"

(* One Merger[2k] instance: its two input wire lists, its output wires
   in logical order, and k (so half the merger's width).  {!Certify}
   discharges the AHS merger lemma numerically on every recorded
   instance, including the nested ones. *)
type merger_rec = {
  half : int;
  ins_a : int array;
  ins_b : int array;
  m_outs : int array;
}

(* Merger[2k] (AHS): even inputs of the first half with odd inputs of
   the second feed one Merger[k], the remaining inputs the other; a
   final column pairs the sub-mergers' outputs elementwise.  Returns
   the output wires in logical order. *)
let rec merger b recs xs ys =
  let zs =
    match (xs, ys) with
    | [ x ], [ y ] ->
        let t, bo = mk_balancer b x y in
        [ t; bo ]
    | _ ->
        let xe, xo = split_even_odd xs in
        let ye, yo = split_even_odd ys in
        let za = merger b recs xe yo in
        let zb = merger b recs xo ye in
        let pairs = List.map2 (fun u v -> mk_balancer b u v) za zb in
        interleave (List.map fst pairs) (List.map snd pairs)
  in
  recs :=
    {
      half = List.length xs;
      ins_a = Array.of_list xs;
      ins_b = Array.of_list ys;
      m_outs = Array.of_list zs;
    }
    :: !recs;
  zs

(* Bitonic[2k]: two parallel Bitonic[k] followed by Merger[2k]. *)
let rec bitonic_wires b recs ws =
  match ws with
  | [ _ ] -> ws
  | _ ->
      let n = List.length ws in
      let h1 = List.filteri (fun i _ -> i < n / 2) ws in
      let h2 = List.filteri (fun i _ -> i >= n / 2) ws in
      let z1 = bitonic_wires b recs h1 in
      let z2 = bitonic_wires b recs h2 in
      merger b recs z1 z2

let finish_counting ~name ~flavor ~width b outs =
  {
    name;
    kind = Counting { flavor };
    width;
    inputs = Array.init width Fun.id;
    outputs = Array.of_list outs;
    nodes = Array.of_list (List.rev b.acc);
    nwires = b.next_wire;
  }

let bitonic_mergers ~width =
  if not (is_power_of_two width) then
    invalid_arg
      (Printf.sprintf "bitonic: width %d is not a power of two" width);
  let b = new_builder ~width in
  let recs = ref [] in
  let outs = bitonic_wires b recs (List.init width Fun.id) in
  (finish_counting ~name:"bitonic" ~flavor:`Bitonic ~width b outs, List.rev !recs)

let bitonic ~width = fst (bitonic_mergers ~width)

(* Periodic[w]: log w identical Block[w] butterflies in series; Block
   layer l splits the wires into chunks of size w >> l and pairs the
   mirror images within each chunk; outputs in natural wire order. *)
let periodic ~width =
  if not (is_power_of_two width) then
    invalid_arg
      (Printf.sprintf "periodic: width %d is not a power of two" width);
  let b = new_builder ~width in
  let d = log2 width in
  let block =
    List.init d (fun l ->
        let chunk = width lsr l in
        List.concat
          (List.init (width / chunk) (fun c ->
               let base = c * chunk in
               List.init (chunk / 2) (fun i ->
                   (base + i, base + chunk - 1 - i)))))
  in
  let layers = List.concat (List.init d (fun _ -> block)) in
  (* Thread the current wire of each physical position through the
     pair layers (the mirror pairs within a layer are disjoint, so
     updating in place is safe). *)
  let cur = Array.init width Fun.id in
  List.iter
    (fun pairs ->
      List.iter
        (fun (pa, pb) ->
          let t, bo = mk_balancer b cur.(pa) cur.(pb) in
          cur.(pa) <- t;
          cur.(pb) <- bo)
        pairs)
    layers;
  finish_counting ~name:"periodic" ~flavor:`Periodic ~width b
    (Array.to_list cur)

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)
(* ------------------------------------------------------------------ *)

(* Who reads each wire.  [None] marks an unread wire (a well-formedness
   violation; the passes report it rather than raising here). *)
type target = To_node of int * int (* node array index, input port *)
            | To_output of int (* logical output index *)

let consumers net : target option array =
  let t = Array.make net.nwires None in
  Array.iteri
    (fun n node ->
      Array.iteri (fun port w -> if w >= 0 && w < net.nwires then t.(w) <- Some (To_node (n, port))) node.ins)
    net.nodes;
  Array.iteri
    (fun l w -> if w >= 0 && w < net.nwires then t.(w) <- Some (To_output l))
    net.outputs;
  t

(* Runtime plan for a tree: the heap-ordered balancer attributes plus
   the natural-position -> logical-output map, reconstructed by walking
   the wires from the root (never by trusting node ids).  Call only on
   a well-formed tree. *)
let tree_plan net =
  match net.kind with
  | Counting _ -> invalid_arg "Ir.tree_plan: not a tree network"
  | Tree _ ->
      if net.width = 1 then ([||], [| 0 |])
      else begin
        let cons = consumers net in
        let attrs = Array.make (net.width - 1) Toggle in
        let leaf_index = Array.make net.width (-1) in
        let node_of wire =
          match cons.(wire) with
          | Some (To_node (n, _)) -> Some net.nodes.(n)
          | _ -> None
        in
        let rec assign hpos wire =
          if hpos >= net.width - 1 then begin
            (* Leaf position: the wire must be a network output. *)
            match cons.(wire) with
            | Some (To_output l) -> leaf_index.(hpos - (net.width - 1)) <- l
            | _ -> invalid_arg "Ir.tree_plan: leaf wire is not an output"
          end
          else
            match node_of wire with
            | Some node ->
                attrs.(hpos) <- node.attrs;
                assign ((2 * hpos) + 1) node.outs.(0);
                assign ((2 * hpos) + 2) node.outs.(1)
            | None -> invalid_arg "Ir.tree_plan: missing interior balancer"
        in
        assign 0 net.inputs.(0);
        (attrs, leaf_index)
      end

(* Runtime plan for a counting network: per-layer (top, bottom)
   physical-wire pairs plus the physical-wire -> logical-output map,
   reconstructed by threading physical positions through the nodes in
   layer order.  Call only on a well-formed counting network. *)
let counting_plan net =
  match net.kind with
  | Tree _ -> invalid_arg "Ir.counting_plan: not a counting network"
  | Counting _ ->
      let nlayers =
        Array.fold_left (fun m n -> max m (n.layer + 1)) 0 net.nodes
      in
      let phys = Hashtbl.create (2 * net.nwires) in
      Array.iteri (fun p w -> Hashtbl.replace phys w p) net.inputs;
      let layers = Array.make nlayers [] in
      let by_layer = Array.make nlayers [] in
      Array.iter
        (fun node -> by_layer.(node.layer) <- node :: by_layer.(node.layer))
        net.nodes;
      for l = 0 to nlayers - 1 do
        layers.(l) <-
          List.rev_map
            (fun node ->
              let pa = Hashtbl.find phys node.ins.(0) in
              let pb = Hashtbl.find phys node.ins.(1) in
              Hashtbl.replace phys node.outs.(0) pa;
              Hashtbl.replace phys node.outs.(1) pb;
              (pa, pb))
            by_layer.(l)
      done;
      let position = Array.make net.width (-1) in
      Array.iteri
        (fun logical w -> position.(Hashtbl.find phys w) <- logical)
        net.outputs;
      (layers, position)

(* Literal structural equality up to the name: every shipped network
   is produced by the deterministic builders above, so a candidate is
   canonical iff it matches the regenerated reference field for
   field. *)
let same_structure a b =
  a.kind = b.kind && a.width = b.width && a.nwires = b.nwires
  && a.inputs = b.inputs && a.outputs = b.outputs && a.nodes = b.nodes

let describe_kind = function
  | Tree { leaf_order } ->
      Printf.sprintf "tree(%s)"
        (match leaf_order with `Natural -> "natural" | `Interleaved -> "interleaved")
  | Counting { flavor } -> (
      match flavor with `Bitonic -> "bitonic" | `Periodic -> "periodic")
