(** The wiring IR: a balancing network as a layered DAG of balancer
    nodes connected by single-writer/single-reader wires.  The
    canonical builders here are the single source of truth for every
    network shape the repo ships; the runtime structures instantiate
    themselves from these values and the passes in {!Passes} /
    {!Certify} verify them statically. *)

type mode = [ `Pool | `Stack ]
type leaf_order = [ `Natural | `Interleaved ]
type defect = [ `Skip_toggle_on_miss ]
type flavor = [ `Bitonic | `Periodic ]

type attrs =
  | Toggle
      (** bare-CAS toggle balancer (counting networks): 2-in/2-out *)
  | Elim of {
      mode : mode;
      eliminate : bool;
      prism_widths : int list;
      spin : int;
      bug : defect option;
    }  (** elimination/diffracting balancer (trees): 1-in/2-out *)

type node = {
  id : int;
  layer : int;
  attrs : attrs;
  ins : int array;
  outs : int array;  (** index = physical output wire 0 (top) / 1 *)
}

type net_kind =
  | Tree of { leaf_order : leaf_order }
  | Counting of { flavor : flavor }

type network = {
  name : string;
  kind : net_kind;
  width : int;
  inputs : int array;
  outputs : int array;  (** [outputs.(logical)] is a wire id *)
  nodes : node array;
  nwires : int;
}

val is_power_of_two : int -> bool
val log2 : int -> int
(** [floor(log2 w)] for [w >= 1]. *)

val bit_reverse : bits:int -> int -> int
(** Reverse the low [bits] bits — the [`Natural] / [`Interleaved]
    change of numbering. *)

val elim_tree :
  name:string ->
  mode:mode ->
  eliminate:bool ->
  leaf_order:leaf_order ->
  ?bug:defect ->
  levels:(int list * int) list ->
  width:int ->
  unit ->
  network
(** Elimination/diffracting tree: heap-ordered balancers, wire id =
    heap slot, [levels.(d)] = (prism_widths, spin) for depth [d].
    Raises [Invalid_argument] when [width] is not a power of two or
    [levels] does not cover every depth. *)

val bitonic : width:int -> network
val periodic : width:int -> network

type merger_rec = {
  half : int;  (** k: each input side of this Merger[2k] has k wires *)
  ins_a : int array;
  ins_b : int array;
  m_outs : int array;  (** output wires in logical order *)
}

val bitonic_mergers : width:int -> network * merger_rec list
(** The bitonic network together with every Merger instance of its
    recursive construction (nested ones included), for the numeric
    merger-lemma certification in {!Certify}. *)

type target = To_node of int * int | To_output of int

val consumers : network -> target option array
(** Who reads each wire; [None] marks an unread wire (reported by the
    well-formedness pass, not raised here). *)

val tree_plan : network -> attrs array * int array
(** Runtime plan for a well-formed tree: heap-ordered balancer
    attributes and the natural-position -> logical-output map, both
    reconstructed by walking the wires. *)

val counting_plan : network -> (int * int) list array * int array
(** Runtime plan for a well-formed counting network: per-layer
    (top, bottom) physical-wire pairs and the physical-wire ->
    logical-output map. *)

val same_structure : network -> network -> bool
(** Literal structural equality up to the name. *)

val describe_kind : net_kind -> string
