(* etrees.netverify: the static balancing-network certifier.

   - {!Ir}: the wiring IR (balancers as nodes, wires as edges, layered
     DAG) and the canonical builders for every network family the repo
     ships: elimination/diffracting trees, Bitonic[w], Periodic[w].
   - {!Passes}: structural verification — well-formedness,
     conservation accounting, depth bounds.
   - {!Certify}: semantic verification — output numbering and the
     exhaustive quiescent-state step-property certification, with
     concrete token-sequence counterexamples on failure.

   See docs/NETVERIFY.md for the verification strategy and its
   exactness boundaries. *)

module Ir = Ir
module Passes = Passes
module Certify = Certify
