(* Semantic verification over the wiring IR: output numbering and the
   quiescent-state step property (paper Lemmas 3.1/3.2), certified by
   exhaustive memoized enumeration of toggle-state reachability over
   sequential token executions.

   The sequential abstraction.  Between operations the network is
   quiescent, so it suffices to certify every *sequential* execution:
   one token or anti-token at a time, each run to completion.  For the
   elimination balancer the exact sequential semantics is small:

   - No collision can complete: every other traversal has either not
     announced or already emptied its Location entry, so a prism slot
     holding another processor's stale pid yields a *failed* collision
     — an elimination miss (the condition the seeded
     [`Skip_toggle_on_miss] defect keys on).
   - Each prism layer therefore contributes one binary choice: land on
     a free/own slot (no miss; the layer's stale-occupancy grows by
     one, saturating at the prism width) or on another pid's stale
     slot (a miss; possible once the layer has been entered before,
     *forced* once every slot is stale — in particular always forced
     at a width-1 prism after the first traversal).
   - The toggle phase is deterministic given the miss bit: flip unless
     the seeded bug is present and the traversal missed; exit by the
     old value (pool balancers and stack-mode tokens) or the new one
     (stack-mode anti-tokens).

   Per-balancer state is then (toggle bits, per-layer stale occupancy,
   per-kind output imbalance), a finite space enumerated to a fixed
   point — *exact* over all sequential executions of that balancer,
   at every shipped width, in milliseconds.  Tree-level certification
   composes per-balancer certificates: any operation sequence can be
   driven into any subtree (prepend filler operations that route off
   it), so a tree satisfies the quiescent step property at every level
   iff every balancer configuration it contains does.  For small
   widths (<= 4) the joint tree state space is additionally exhausted
   outright, and failures are lifted to a concrete root-entry token
   sequence that replays through the model checker.

   Counting networks (toggle balancers, token-only) get: literal
   structural equality against the regenerated canonical IR; the
   counting-tree numbering smoke over 2w round-robin tokens with
   toggle-state periodicity; for Bitonic[w] the AHS merger lemma
   discharged *numerically* on every recorded Merger instance (in a
   quiescent state a balancer with s tokens through it has emitted
   ceil(s/2) on top and floor(s/2) below, regardless of order, so
   output counts are a function of input counts; step inputs are
   enumerated over the (2k)^2 residue grid, which is exhaustive
   because adding 2k tokens to one input side adds exactly +2 to every
   wire downstream and preserves step-ness); and for width <= 4 an
   outright exhaustive enumeration of (toggle state, output residue)
   reachability.  Periodic[w] above width 4 rests on the regenerated
   structure plus the Dowd-Perl-Rudolph-Saks balanced-sorter theorem
   (AHS Theorem: Block^log w is a counting network); the summary says
   so explicitly. *)

type op = Op_token | Op_anti

type counterexample = {
  ops : (op * int) list; (* (kind, input index); trees use input 0 *)
  detail : string;
}

type failure = {
  pass : string;
  code : string;
  detail : string;
  cex : counterexample option;
}

type pass_ok = { pass : string; summary : string }

type report = {
  net_name : string;
  net_kind : string;
  width : int;
  passed : pass_ok list;
  failures : failure list;
}

let ok r = r.failures = []

let op_name = function Op_token -> "Token" | Op_anti -> "Anti"

let format_ops ops =
  String.concat " "
    (List.map
       (fun (o, input) ->
         if input = 0 then op_name o else Printf.sprintf "%s@in%d" (op_name o) input)
       ops)

(* ------------------------------------------------------------------ *)
(* Shared sequential balancer semantics                                *)
(* ------------------------------------------------------------------ *)

let toggle_slot mode (kind : op) =
  match (mode, kind) with
  | `Pool, Op_token -> 0
  | `Pool, Op_anti -> 1
  | `Stack, _ -> 0

let exit_bit mode (kind : op) ~old =
  match (mode, kind) with
  | `Pool, _ | `Stack, Op_token -> old
  | `Stack, Op_anti -> not old

(* Output-imbalance bookkeeping.  Pool mode tracks the per-kind
   excesses (t0-t1, a0-a1) of Lemma 3.1/Thm 2.6; stack mode tracks the
   gap (t0-a0)-(t1-a1) of Lemma 3.2.  Both must stay in {0,1} in every
   quiescent state. *)
let d_update mode (kind : op) ~wire (d0, d1) =
  let sign = if wire = 0 then 1 else -1 in
  match (mode, kind) with
  | `Pool, Op_token -> (d0 + sign, d1)
  | `Pool, Op_anti -> (d0, d1 + sign)
  | `Stack, Op_token -> (d0 + sign, d1)
  | `Stack, Op_anti -> (d0 - sign, d1)

let d_ok mode (d0, d1) =
  match mode with
  | `Pool -> (d0 = 0 || d0 = 1) && (d1 = 0 || d1 = 1)
  | `Stack -> d0 = 0 || d0 = 1

(* The per-layer prism choices available to a sequential traversal
   given the current stale occupancies: [go] enumerates every
   (new occupancies, missed) pair. *)
let prism_choices (pws : int array) (occ : int array) =
  let n = Array.length pws in
  let rec go l acc missed =
    if l = n then [ (Array.of_list (List.rev acc), missed) ]
    else begin
      let o = occ.(l) in
      let fresh = if o < pws.(l) then go (l + 1) ((o + 1) :: acc) missed else [] in
      let stale = if o >= 1 then go (l + 1) (o :: acc) true else [] in
      fresh @ stale
    end
  in
  go 0 [] false

(* ------------------------------------------------------------------ *)
(* Canonical deterministic interpreter (numbering pass)                *)
(* ------------------------------------------------------------------ *)

(* A canonical whole-network run: one operation at a time, each
   traversal taking a fresh prism slot whenever one is free (a full
   prism forces a miss).  For defect-free balancers the miss bit never
   affects routing, so this single run is representative of every
   sequential execution; seeded defects surface as numbering failures
   here and as step violations in the exhaustive pass. *)
type sim = {
  s_net : Ir.network;
  s_cons : Ir.target option array;
  s_tog : int array; (* per node (array index): toggle bitmask *)
  s_occ : int array array; (* per node: stale occupancy per prism layer *)
}

let make_sim (net : Ir.network) =
  {
    s_net = net;
    s_cons = Ir.consumers net;
    s_tog = Array.make (Array.length net.nodes) 0;
    s_occ =
      Array.map
        (fun (n : Ir.node) ->
          match n.attrs with
          | Ir.Toggle -> [||]
          | Ir.Elim { prism_widths; _ } ->
              Array.make (List.length prism_widths) 0)
        net.nodes;
  }

let sim_step sim ~(kind : op) ~wire =
  let rec go wire =
    match sim.s_cons.(wire) with
    | Some (Ir.To_output l) -> l
    | None -> invalid_arg "Certify: traversal fell off an unread wire"
    | Some (Ir.To_node (n, _)) -> (
        let node = sim.s_net.nodes.(n) in
        match node.attrs with
        | Ir.Toggle ->
            let old = sim.s_tog.(n) = 1 in
            sim.s_tog.(n) <- (if old then 0 else 1);
            go node.outs.(if old then 1 else 0)
        | Ir.Elim { mode; prism_widths; bug; _ } ->
            let missed =
              List.fold_left
                (fun (missed, l) pw ->
                  if sim.s_occ.(n).(l) < pw then begin
                    sim.s_occ.(n).(l) <- sim.s_occ.(n).(l) + 1;
                    (missed, l + 1)
                  end
                  else (true, l + 1))
                (false, 0) prism_widths
              |> fst
            in
            let slot = toggle_slot mode kind in
            let old = sim.s_tog.(n) land (1 lsl slot) <> 0 in
            (match bug with
            | Some `Skip_toggle_on_miss when missed -> ()
            | _ -> sim.s_tog.(n) <- sim.s_tog.(n) lxor (1 lsl slot));
            let bit = exit_bit mode kind ~old in
            go node.outs.(if bit then 1 else 0))
  in
  go wire

(* ------------------------------------------------------------------ *)
(* Tree numbering                                                      *)
(* ------------------------------------------------------------------ *)

(* Expected quiescent output sequences (derived from the balancer exit
   rules; see docs/NETVERIFY.md):

   - tokens: the i-th token exits logical output [i mod w] under
     [`Interleaved] (the counting-tree numbering) and its bit-reversal
     under [`Natural];
   - pool-mode anti-tokens use their own toggles and follow the same
     pattern;
   - stack-mode anti-tokens exit by the *new* toggle value, retracing
     the last token: the i-th anti-token exits interleaved output
     [(w - 1 - i) mod w]. *)
let tree_numbering (net : Ir.network) =
  let w = net.width in
  if w = 1 then Ok "trivial at width 1"
  else begin
    let leaf_order =
      match net.kind with
      | Ir.Tree { leaf_order } -> leaf_order
      | Ir.Counting _ -> assert false
    in
    let mode =
      (* All interior balancers of a shipped tree share a mode; read
         the root's.  (A mixed tree would fail step-certify anyway.) *)
      match (Ir.tree_plan net |> fst).(0) with
      | Ir.Elim { mode; _ } -> mode
      | Ir.Toggle -> `Pool
    in
    let bits = Ir.log2 w in
    let logical_of_interleaved i =
      match leaf_order with
      | `Interleaved -> i
      | `Natural -> Ir.bit_reverse ~bits i
    in
    let expected kind i =
      let i = i mod w in
      match (kind, mode) with
      | Op_token, _ | Op_anti, `Pool -> logical_of_interleaved i
      | Op_anti, `Stack -> logical_of_interleaved ((w - 1 - i + w) mod w)
    in
    let errs = ref [] in
    let run kind =
      let sim = make_sim net in
      for i = 0 to (2 * w) - 1 do
        let got = sim_step sim ~kind ~wire:net.inputs.(0) in
        if got <> expected kind i && List.length !errs < 4 then
          errs :=
            Printf.sprintf
              "%s %d exits logical output %d, expected %d (%s order)"
              (op_name kind) i got (expected kind i)
              (match leaf_order with
              | `Natural -> "natural"
              | `Interleaved -> "interleaved")
            :: !errs;
        (* Toggle-state periodicity: after w operations of one kind
           every toggle is back to its initial value, so the observed
           prefix extends to all n by induction. *)
        if i = w - 1 && Array.exists (fun t -> t <> 0) sim.s_tog
           && List.length !errs < 4
        then
          errs :=
            Printf.sprintf
              "toggle state not periodic: not back to initial after %d %ss" w
              (op_name kind)
            :: !errs
      done
    in
    run Op_token;
    run Op_anti;
    match List.rev !errs with
    | [] ->
        Ok
          (Printf.sprintf
             "%d tokens and %d anti-tokens exit in counting order; toggle \
              state periodic with period %d, extending to all n"
             (2 * w) (2 * w) w)
    | errs -> Error errs
  end

(* ------------------------------------------------------------------ *)
(* Per-balancer exhaustive certification                               *)
(* ------------------------------------------------------------------ *)

type bresult =
  | B_ok of int (* reachable states *)
  | B_violation of op list * string

(* Exhaust the reachable (toggle, occupancy, imbalance) space of one
   balancer configuration over all sequential executions — every
   operation sequence and every feasible prism-slot choice — to a
   fixed point, checking the step invariant in every state.  The space
   is finite: occupancies saturate at the prism widths and exploration
   stops at the first invariant escape. *)
let certify_balancer ~mode ~prism_widths ~bug =
  let pws = Array.of_list prism_widths in
  let key tog occ (d0, d1) = (tog, Array.to_list occ, d0, d1) in
  let seen = Hashtbl.create 256 in
  let parent = Hashtbl.create 256 in
  let q = Queue.create () in
  let init = (0, Array.make (Array.length pws) 0, (0, 0)) in
  let init_key = let t, o, d = init in key t o d in
  Hashtbl.replace seen init_key ();
  Queue.push init q;
  let rec ops_to k acc =
    match Hashtbl.find_opt parent k with
    | None -> acc
    | Some (pk, o) -> ops_to pk (o :: acc)
  in
  let violation = ref None in
  while !violation = None && not (Queue.is_empty q) do
    let tog, occ, d = Queue.pop q in
    let k = key tog occ d in
    List.iter
      (fun kind ->
        if !violation = None then
          List.iter
            (fun (occ', missed) ->
              if !violation = None then begin
                let slot = toggle_slot mode kind in
                let old = tog land (1 lsl slot) <> 0 in
                let tog' =
                  match bug with
                  | Some `Skip_toggle_on_miss when missed -> tog
                  | _ -> tog lxor (1 lsl slot)
                in
                let wire = if exit_bit mode kind ~old then 1 else 0 in
                let d' = d_update mode kind ~wire d in
                let k' = key tog' occ' d' in
                if not (Hashtbl.mem seen k') then begin
                  Hashtbl.replace seen k' ();
                  Hashtbl.replace parent k' (k, kind);
                  if not (d_ok mode d') then begin
                    let d0, d1 = d' in
                    violation :=
                      Some
                        ( ops_to k' [],
                          match mode with
                          | `Pool ->
                              Printf.sprintf
                                "quiescent imbalance (t0-t1, a0-a1) = (%d, %d) \
                                 escapes {0,1}"
                                d0 d1
                          | `Stack ->
                              Printf.sprintf
                                "quiescent gap (t0-a0)-(t1-a1) = %d escapes \
                                 {0,1}"
                                d0 )
                  end
                  else Queue.push (tog', occ', d') q
                end
              end)
            (prism_choices pws occ))
      [ Op_token; Op_anti ]
  done;
  match !violation with
  | Some (ops, detail) -> B_violation (ops, detail)
  | None -> B_ok (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Joint tree enumeration                                              *)
(* ------------------------------------------------------------------ *)

type jresult =
  | J_ok of int
  | J_violation of op list * string
  | J_capped

(* Exhaust (or boundedly search, with [max_ops]) the joint state space
   of a whole tree: all sequential root-entry sequences, all feasible
   prism choices at every balancer on the path.  Exact for the small
   widths where the joint space is tractable; the bounded variant
   lifts per-balancer violations to concrete root sequences. *)
let enumerate_tree ?max_ops ~max_states (net : Ir.network) =
  let attrs, _leaf_index = Ir.tree_plan net in
  let nnodes = Array.length attrs in
  let conf =
    Array.map
      (fun a ->
        match a with
        | Ir.Elim { mode; prism_widths; bug; _ } ->
            (mode, Array.of_list prism_widths, bug)
        | Ir.Toggle -> (`Pool, [||], None))
      attrs
  in
  (* Flattened state: per node [toggle; occ...; d0; d1]. *)
  let offsets = Array.make (nnodes + 1) 0 in
  for i = 0 to nnodes - 1 do
    let _, pws, _ = conf.(i) in
    offsets.(i + 1) <- offsets.(i) + 1 + Array.length pws + 2
  done;
  let size = offsets.(nnodes) in
  let get_d st i = (st.(offsets.(i + 1) - 2), st.(offsets.(i + 1) - 1)) in
  (* Apply one balancer transition in place; returns the exit wire. *)
  let apply st i kind occ' missed =
    let mode, _, bug = conf.(i) in
    let base = offsets.(i) in
    let tog = st.(base) in
    let slot = toggle_slot mode kind in
    let old = tog land (1 lsl slot) <> 0 in
    (match bug with
    | Some `Skip_toggle_on_miss when missed -> ()
    | _ -> st.(base) <- tog lxor (1 lsl slot));
    Array.iteri (fun l o -> st.(base + 1 + l) <- o) occ';
    let wire = if exit_bit mode kind ~old then 1 else 0 in
    let d0, d1 = d_update mode kind ~wire (get_d st i) in
    st.(offsets.(i + 1) - 2) <- d0;
    st.(offsets.(i + 1) - 1) <- d1;
    wire
  in
  (* All successor states of [st] under one operation of [kind]. *)
  let successors st kind =
    let rec go st i =
      let _, pws, _ = conf.(i) in
      let occ = Array.sub st (offsets.(i) + 1) (Array.length pws) in
      List.concat_map
        (fun (occ', missed) ->
          let st' = Array.copy st in
          let wire = apply st' i kind occ' missed in
          let child = (2 * i) + 1 + wire in
          if child >= nnodes then [ st' ] else go st' child)
        (prism_choices pws occ)
    in
    go st 0
  in
  let key st = Array.to_list st in
  let seen = Hashtbl.create 1024 in
  let parent = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init = Array.make size 0 in
  Hashtbl.replace seen (key init) ();
  Queue.push (init, 0) q;
  let rec ops_to k acc =
    match Hashtbl.find_opt parent k with
    | None -> acc
    | Some (pk, o) -> ops_to pk (o :: acc)
  in
  let check st =
    let rec bad i =
      if i >= nnodes then None
      else
        let mode, _, _ = conf.(i) in
        if d_ok mode (get_d st i) then bad (i + 1) else Some i
    in
    bad 0
  in
  let violation = ref None in
  let capped = ref false in
  while (not !capped) && !violation = None && not (Queue.is_empty q) do
    let st, depth = Queue.pop q in
    if Hashtbl.length seen > max_states then capped := true
    else if (match max_ops with Some m -> depth >= m | None -> false) then ()
    else
      List.iter
        (fun kind ->
          if !violation = None then
            List.iter
              (fun st' ->
                if !violation = None then begin
                  let k' = key st' in
                  if not (Hashtbl.mem seen k') then begin
                    Hashtbl.replace seen k' ();
                    Hashtbl.replace parent k' (key st, kind);
                    match check st' with
                    | Some i ->
                        let mode, _, _ = conf.(i) in
                        let d0, d1 = get_d st' i in
                        violation :=
                          Some
                            ( ops_to k' [],
                              Printf.sprintf
                                "balancer at heap position %d: %s" i
                                (match mode with
                                | `Pool ->
                                    Printf.sprintf
                                      "(t0-t1, a0-a1) = (%d, %d) escapes {0,1}"
                                      d0 d1
                                | `Stack ->
                                    Printf.sprintf
                                      "gap (t0-a0)-(t1-a1) = %d escapes {0,1}"
                                      d0) )
                    | None -> Queue.push (st', depth + 1) q
                  end
                end)
              (successors st kind))
        [ Op_token; Op_anti ]
  done;
  match !violation with
  | Some (ops, detail) -> J_violation (ops, detail)
  | None -> if !capped then J_capped else J_ok (Hashtbl.length seen)

(* Small enough that the joint (whole-tree) space is exhausted outright
   on top of the per-balancer certificates. *)
let joint_width_limit = 4

let describe_config ~depth = function
  | Ir.Toggle -> Printf.sprintf "toggle balancer at depth %d" depth
  | Ir.Elim { mode; prism_widths; bug; _ } ->
      Printf.sprintf "balancer config at depth %d (mode %s, prisms [%s]%s)"
        depth
        (match mode with `Pool -> "pool" | `Stack -> "stack")
        (String.concat ";" (List.map string_of_int prism_widths))
        (match bug with
        | Some `Skip_toggle_on_miss -> ", seeded skip-toggle-on-miss"
        | None -> "")

let tree_step_certify (net : Ir.network) =
  let w = net.width in
  if w = 1 then Ok "trivial at width 1"
  else begin
    let attrs, _ = Ir.tree_plan net in
    let depth_of_index i =
      let rec go d n = if n <= 1 then d else go (d + 1) (n / 2) in
      go 0 (i + 1)
    in
    (* Distinct balancer configurations with a representative node. *)
    let configs =
      Array.to_seqi attrs |> List.of_seq
      |> List.fold_left
           (fun acc (i, a) -> if List.mem_assoc a acc then acc else (a, i) :: acc)
           []
      |> List.rev
    in
    let results =
      List.map
        (fun (a, i) ->
          match a with
          | Ir.Elim { mode; prism_widths; bug; _ } ->
              (a, i, certify_balancer ~mode ~prism_widths ~bug)
          | Ir.Toggle ->
              (a, i, certify_balancer ~mode:`Pool ~prism_widths:[] ~bug:None))
        configs
    in
    let failed =
      List.filter_map
        (fun (a, i, r) ->
          match r with B_ok _ -> None | B_violation (ops, d) -> Some (a, i, ops, d))
        results
    in
    match failed with
    | [] -> begin
        let states =
          List.fold_left
            (fun acc (_, _, r) -> match r with B_ok n -> acc + n | _ -> acc)
            0 results
        in
        let per_config =
          Printf.sprintf
            "%d balancer config(s) certified to a fixed point (%d reachable \
             states, all sequential executions)"
            (List.length results) states
        in
        if w <= joint_width_limit then
          match enumerate_tree ~max_states:2_000_000 net with
          | J_ok n ->
              Ok
                (Printf.sprintf
                   "%s; joint tree space exhausted (%d states)" per_config n)
          | J_capped -> Ok (Printf.sprintf "%s; joint enumeration capped" per_config)
          | J_violation (ops, detail) ->
              Error
                ( "step-violation",
                  Printf.sprintf "joint enumeration: %s" detail,
                  Some
                    {
                      ops = List.map (fun o -> (o, 0)) ops;
                      detail;
                    } )
        else Ok per_config
      end
    | (a, i, ops, detail) :: _ -> begin
        let where = describe_config ~depth:(depth_of_index i) a in
        (* Lift to a concrete root-entry sequence.  The root sees the
           network input directly, so a failing root configuration is
           its own witness; otherwise search the joint space for a
           bounded whole-tree counterexample. *)
        let cex =
          if i = 0 then Some { ops = List.map (fun o -> (o, 0)) ops; detail }
          else
            match
              enumerate_tree ~max_ops:10 ~max_states:500_000 net
            with
            | J_violation (ops, d) ->
                Some { ops = List.map (fun o -> (o, 0)) ops; detail = d }
            | J_ok _ | J_capped -> None
        in
        Error
          ( "step-violation",
            Printf.sprintf "%s: %s (after %s)" where detail
              (String.concat " " (List.map op_name ops)),
            cex )
      end
  end

(* ------------------------------------------------------------------ *)
(* Counting networks                                                   *)
(* ------------------------------------------------------------------ *)

let counting_reference (net : Ir.network) =
  match net.kind with
  | Ir.Counting { flavor = `Bitonic } -> Ir.bitonic ~width:net.width
  | Ir.Counting { flavor = `Periodic } -> Ir.periodic ~width:net.width
  | Ir.Tree _ -> assert false

let counting_structure (net : Ir.network) =
  let reference = counting_reference net in
  if Ir.same_structure net reference then
    Ok
      (Printf.sprintf
         "wiring is literally the regenerated canonical %s[%d] (%d balancers, \
          %d wires)"
         (match net.kind with
         | Ir.Counting { flavor = `Bitonic } -> "Bitonic"
         | _ -> "Periodic")
         net.width
         (Array.length net.nodes)
         net.nwires)
  else
    Error
      [
        Printf.sprintf
          "wiring differs from the regenerated canonical construction (%d vs \
           %d balancers, %d vs %d wires, or rewired)"
          (Array.length net.nodes)
          (Array.length reference.nodes)
          net.nwires reference.nwires;
      ]

(* 2w round-robin tokens must exit logical outputs 0,1,...,w-1,0,...;
   after w of them (one per input) every toggle is back to initial, so
   the prefix extends to all n. *)
let counting_numbering (net : Ir.network) =
  let w = net.width in
  let sim = make_sim net in
  let errs = ref [] in
  for i = 0 to (2 * w) - 1 do
    let got = sim_step sim ~kind:Op_token ~wire:net.inputs.(i mod w) in
    if got <> i mod w && List.length !errs < 4 then
      errs :=
        Printf.sprintf "token %d (input %d) exits logical output %d, expected %d"
          i (i mod w) got (i mod w)
        :: !errs;
    if i = w - 1 && Array.exists (fun t -> t <> 0) sim.s_tog
       && List.length !errs < 4
    then
      errs :=
        Printf.sprintf
          "toggle state not periodic: not back to initial after %d round-robin \
           tokens"
          w
        :: !errs
  done;
  match List.rev !errs with
  | [] ->
      Ok
        (Printf.sprintf
           "%d round-robin tokens count in order; toggle state periodic with \
            period %d, extending to all n"
           (2 * w) w)
  | errs -> Error errs

(* The number of tokens on wire [i] of a step sequence of [total]
   tokens over [wires] wires: ceil((total - i) / wires), clamped at 0. *)
let step_count ~wires ~total i =
  if total <= i then 0 else (total - i + wires - 1) / wires

let is_step counts =
  let n = Array.length counts in
  let rec go i =
    if i >= n - 1 then true
    else
      let d = counts.(i) - counts.(i + 1) in
      (d = 0 || d = 1) && go (i + 1)
  in
  go 0

(* Discharge the AHS merger lemma numerically on one recorded Merger
   instance: for every pair of step input totals on the (2k)^2 residue
   grid, propagate quiescent token counts through the instance's cone
   (each balancer emits ceil(s/2) on top, floor(s/2) below) and check
   the outputs form a step sequence of the combined total.  The grid
   is exhaustive: +2k tokens on one side is +2 on each of its wires,
   which every balancer maps to +2 on both outputs, so it shifts every
   downstream count by +2 and preserves step-ness. *)
let check_merger (net : Ir.network) (m : Ir.merger_rec) =
  let k = m.half in
  let counts = Array.make net.nwires (-1) in
  (* The instance's cone, in layer order: the nodes that become
     evaluable starting from its input wires. *)
  let nodes = Array.copy net.nodes in
  Array.sort (fun (a : Ir.node) b -> compare a.layer b.layer) nodes;
  Array.iter (fun w -> counts.(w) <- 0) m.ins_a;
  Array.iter (fun w -> counts.(w) <- 0) m.ins_b;
  let cone =
    Array.to_list nodes
    |> List.filter (fun (n : Ir.node) ->
           if counts.(n.ins.(0)) >= 0 && counts.(n.ins.(1)) >= 0 then begin
             counts.(n.outs.(0)) <- 0;
             counts.(n.outs.(1)) <- 0;
             true
           end
           else false)
  in
  (* Reset the scratch for the real grid sweep. *)
  let touched =
    Array.to_list m.ins_a @ Array.to_list m.ins_b
    @ List.concat_map
        (fun (n : Ir.node) -> [ n.outs.(0); n.outs.(1) ])
        cone
  in
  List.iter (fun w -> counts.(w) <- -1) touched;
  let bad = ref None in
  for sx = 0 to (2 * k) - 1 do
    for sy = 0 to (2 * k) - 1 do
      if !bad = None then begin
        Array.iteri
          (fun i w -> counts.(w) <- step_count ~wires:k ~total:sx i)
          m.ins_a;
        Array.iteri
          (fun i w -> counts.(w) <- step_count ~wires:k ~total:sy i)
          m.ins_b;
        List.iter
          (fun (n : Ir.node) ->
            let s = counts.(n.ins.(0)) + counts.(n.ins.(1)) in
            counts.(n.outs.(0)) <- (s + 1) / 2;
            counts.(n.outs.(1)) <- s / 2)
          cone;
        let outs = Array.map (fun w -> counts.(w)) m.m_outs in
        let expected =
          Array.init (2 * k) (fun i -> step_count ~wires:(2 * k) ~total:(sx + sy) i)
        in
        if outs <> expected then
          bad :=
            Some
              (Printf.sprintf
                 "Merger[%d] with step inputs (%d, %d) emits [%s], expected \
                  step [%s]"
                 (2 * k) sx sy
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int outs)))
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int expected))));
        List.iter (fun w -> counts.(w) <- -1) touched
      end
    done
  done;
  !bad

let bitonic_merger_lemma (net : Ir.network) =
  let reference, mergers = Ir.bitonic_mergers ~width:net.width in
  (* Structural equality (checked by the structure pass) lets the
     lemma run on the regenerated reference wiring. *)
  let rec first_bad = function
    | [] -> None
    | m :: rest -> (
        match check_merger reference m with
        | Some e -> Some e
        | None -> first_bad rest)
  in
  match first_bad mergers with
  | None ->
      Ok
        (Printf.sprintf
           "AHS merger lemma discharged on all %d Merger instances over their \
            full step-input residue grids (+2k shift argument covers all \
            totals); with the parallel sub-Bitonic induction this certifies \
            the step property at width %d exactly"
           (List.length mergers) net.width)
  | Some e -> Error [ e ]

(* Outright exhaustive certification of a small counting network:
   enumerate reachable (toggle state, output residue) pairs under
   tokens on every input, to a fixed point.  Output counts are kept as
   residues above their minimum, which the step property bounds. *)
let counting_exhaustive (net : Ir.network) =
  let w = net.width in
  let cons = Ir.consumers net in
  let nnodes = Array.length net.nodes in
  let route togs wire =
    let rec go wire =
      match cons.(wire) with
      | Some (Ir.To_output l) -> l
      | Some (Ir.To_node (n, _)) ->
          let node = net.nodes.(n) in
          let old = togs.(n) = 1 in
          togs.(n) <- (if old then 0 else 1);
          go node.outs.(if old then 1 else 0)
      | None -> invalid_arg "Certify: counting traversal fell off a wire"
    in
    go wire
  in
  let normalize c =
    let m = Array.fold_left min max_int c in
    Array.map (fun x -> x - m) c
  in
  let key togs c = (Array.to_list togs, Array.to_list c) in
  let seen = Hashtbl.create 1024 in
  let parent = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init = (Array.make nnodes 0, Array.make w 0) in
  Hashtbl.replace seen (key (fst init) (snd init)) ();
  Queue.push init q;
  let rec inputs_to k acc =
    match Hashtbl.find_opt parent k with
    | None -> acc
    | Some (pk, j) -> inputs_to pk (j :: acc)
  in
  let violation = ref None in
  while !violation = None && not (Queue.is_empty q) do
    let togs, c = Queue.pop q in
    let k = key togs c in
    for j = 0 to w - 1 do
      if !violation = None then begin
        let togs' = Array.copy togs in
        let out = route togs' net.inputs.(j) in
        let c' = Array.copy c in
        c'.(out) <- c'.(out) + 1;
        let c' = normalize c' in
        let k' = key togs' c' in
        if not (Hashtbl.mem seen k') then begin
          Hashtbl.replace seen k' ();
          Hashtbl.replace parent k' (k, j);
          if not (is_step c') then
            violation :=
              Some
                ( inputs_to k' [],
                  Printf.sprintf
                    "quiescent output counts [%s] are not a step sequence"
                    (String.concat ";"
                       (Array.to_list (Array.map string_of_int c'))) )
          else Queue.push (togs', c') q
        end
      end
    done
  done;
  match !violation with
  | Some (inputs, detail) ->
      Error
        ( "step-violation",
          detail,
          Some
            {
              ops = List.map (fun j -> (Op_token, j)) inputs;
              detail;
            } )
  | None ->
      Ok
        (Printf.sprintf
           "joint (toggle, output-residue) space exhausted (%d states) under \
            tokens on every input"
           (Hashtbl.length seen))

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

let structural_passes net =
  List.map
    (fun (pass, run) ->
      match run net with
      | Ok summary -> Ok { pass; summary }
      | Error errs ->
          Error
            (List.map
               (fun (e : Passes.error) ->
                 { pass; code = e.code; detail = e.detail; cex = None })
               errs))
    [
      ("well-formed", Passes.well_formed);
      ("conservation", Passes.conservation);
      ("depth-bounds", Passes.depth_bounds);
    ]

let verify (net : Ir.network) : report =
  let passed = ref [] in
  let failures = ref [] in
  let record = function
    | Ok p -> passed := !passed @ [ p ]
    | Error fs -> failures := !failures @ fs
  in
  let structural = structural_passes net in
  List.iter record structural;
  let well_formed_ok =
    match structural with Ok _ :: _ -> true | _ -> false
  in
  (* Semantic passes interpret the wiring, so they only run once the
     structure is sound. *)
  if well_formed_ok then begin
    match net.kind with
    | Ir.Tree _ -> begin
        (match tree_numbering net with
        | Ok summary -> record (Ok { pass = "numbering"; summary })
        | Error errs ->
            record
              (Error
                 (List.map
                    (fun detail ->
                      { pass = "numbering"; code = "numbering"; detail; cex = None })
                    errs)));
        match tree_step_certify net with
        | Ok summary -> record (Ok { pass = "step-certify"; summary })
        | Error (code, detail, cex) ->
            record (Error [ { pass = "step-certify"; code; detail; cex } ])
      end
    | Ir.Counting { flavor } -> begin
        (match counting_structure net with
        | Ok summary -> record (Ok { pass = "structure"; summary })
        | Error errs ->
            record
              (Error
                 (List.map
                    (fun detail ->
                      {
                        pass = "structure";
                        code = "structure-mismatch";
                        detail;
                        cex = None;
                      })
                    errs)));
        (match counting_numbering net with
        | Ok summary -> record (Ok { pass = "numbering"; summary })
        | Error errs ->
            record
              (Error
                 (List.map
                    (fun detail ->
                      { pass = "numbering"; code = "numbering"; detail; cex = None })
                    errs)));
        if net.width <= joint_width_limit then
          match counting_exhaustive net with
          | Ok summary -> record (Ok { pass = "step-certify"; summary })
          | Error (code, detail, cex) ->
              record (Error [ { pass = "step-certify"; code; detail; cex } ])
        else
          match flavor with
          | `Bitonic -> (
              match bitonic_merger_lemma net with
              | Ok summary -> record (Ok { pass = "step-certify"; summary })
              | Error errs ->
                  record
                    (Error
                       (List.map
                          (fun detail ->
                            {
                              pass = "step-certify";
                              code = "merger-lemma";
                              detail;
                              cex = None;
                            })
                          errs)))
          | `Periodic ->
              record
                (Ok
                   {
                     pass = "step-certify";
                     summary =
                       Printf.sprintf
                         "structure is the canonical Periodic[%d]; step \
                          property by the Dowd-Perl-Rudolph-Saks balanced \
                          sorter theorem (AHS), exhaustively re-verified here \
                          for widths <= %d"
                         net.width joint_width_limit;
                   })
      end
  end;
  {
    net_name = net.name;
    net_kind = Ir.describe_kind net.kind;
    width = net.width;
    passed = !passed;
    failures = !failures;
  }

let format_report r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %s: %s width=%d\n"
       (if r.failures = [] then "ok" else "FAIL")
       r.net_name r.net_kind r.width);
  List.iter
    (fun (p : pass_ok) ->
      Buffer.add_string b (Printf.sprintf "  ok %s: %s\n" p.pass p.summary))
    r.passed;
  List.iter
    (fun (f : failure) ->
      Buffer.add_string b
        (Printf.sprintf "  FAIL %s [%s]: %s\n" f.pass f.code f.detail);
      match f.cex with
      | None -> ()
      | Some c ->
          Buffer.add_string b
            (Printf.sprintf "    counterexample (%d ops): %s\n"
               (List.length c.ops) (format_ops c.ops)))
    r.failures;
  Buffer.contents b
