(** The elimination balancer (paper §2.2–§2.4, Figures 2 and 4): a
    one-input two-output routing element for tokens and anti-tokens.

    A traversal tries to collide on a cascade of prisms: same-kind
    pairs are {e diffracted} one to each wire; opposite-kind pairs are
    {e eliminated}, exchanging the enqueued value and leaving the tree.
    Non-colliding traversals fall through to MCS-locked toggle bit(s).

    [`Pool] mode uses separate token/anti-token toggles (pool
    balancing, Thm 2.6); [`Stack] mode shares one toggle, anti-tokens
    exiting by its {e new} value so they retrace the last token (the
    gap balancer of §3.1).  With [~eliminate:false] opposite-kind prism
    meetings are ignored, yielding a plain (multi-prism) diffracting
    balancer. *)

module Make (E : Engine.S) : sig
  type 'v location
  (** The tree-wide announcement array, one entry per processor. *)

  val make_location : capacity:int -> 'v location

  val location_capacity : 'v location -> int
  (** Number of processors the announcement array accommodates. *)

  type 'v t

  val create :
    ?mode:[ `Pool | `Stack ] ->
    ?eliminate:bool ->
    ?depth:int ->
    ?bug:[ `Skip_toggle_on_miss ] ->
    ?policy:Adapt.policy ->
    id:int ->
    prism_widths:int list ->
    spin:int ->
    location:'v location ->
    unit ->
    'v t
  (** [id] must be unique among balancers sharing [location];
      [prism_widths] lists the prism cascade outermost first (at least
      one); [spin] is the per-prism collision wait.  [depth] (default 0)
      only annotates this balancer's trace events with its tree
      layer.  [policy] (default [`Static]) selects the reactive
      controller of docs/ADAPTIVE.md: under [`Reactive], [spin] and
      [prism_widths] become the static anchors the controller adapts
      around (prisms are allocated at their clamp ceilings), and the
      controller's decisions are emitted as [Adapt_spin]/[Adapt_width]
      trace events.  [bug] seeds a test-only defect for the model
      checker — a traversal that saw a potential prism partner but
      failed to collide skips the toggle flip, breaking the step
      property on some interleavings.  Never set it outside tests. *)

  val trace_kind : Location.kind -> Etrace.Event.token_kind

  val traverse :
    'v t -> kind:Location.kind -> value:'v option -> 'v Location.outcome
  (** Shepherd one token ([value = Some _]) or anti-token
      ([value = None]) through the balancer. *)

  val stats : 'v t -> Elim_stats.t

  val adapt_state : 'v t -> (int * int list) option
  (** Current reactive [(spin, prism widths)]; [None] under [`Static]. *)

  val controller : 'v t -> Adapt.Controller.t option
end
