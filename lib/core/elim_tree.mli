(** Binary trees of elimination balancers ([Pool[w]] of §2.1 and the
    counting-tree layout of §3.1).

    Balancers are stored in heap order; the [w] outputs are numbered
    [`Natural] (left-to-right, for the pool) or [`Interleaved]
    (counting-tree order: the wire-0 subtree yields the even outputs —
    required by [IncDecCounter[w]] and the stack-like pool).

    All construction goes through the wiring IR: {!ir} is the single
    source of truth for the tree's shape, and {!Make.create}
    instantiates balancers and leaf numbering from it. *)

val ir :
  ?mode:[ `Pool | `Stack ] ->
  ?eliminate:bool ->
  ?leaf_order:[ `Natural | `Interleaved ] ->
  ?bug:[ `Skip_toggle_on_miss ] ->
  ?name:string ->
  Tree_config.t ->
  Netverify.Ir.network
(** Lower a tree configuration to its wiring IR (default name
    ["etree-<mode>-<width>"]), validated by the netverify
    well-formedness pass — raises [Invalid_argument] with a coded
    diagnostic on a malformed shape. *)

module Make (E : Engine.S) : sig
  module Balancer : module type of Elim_balancer.Make (E)

  type 'v result = Leaf of int | Eliminated of 'v option

  type 'v t

  val create :
    ?mode:[ `Pool | `Stack ] ->
    ?eliminate:bool ->
    ?leaf_order:[ `Natural | `Interleaved ] ->
    ?bug:[ `Skip_toggle_on_miss ] ->
    capacity:int ->
    Tree_config.t ->
    'v t
  (** [capacity] bounds participating processors (it sizes the shared
      Location array and the toggle locks).  Defaults: [`Pool] mode,
      elimination on, [`Natural] order.  [bug] seeds the test-only
      balancer defect of {!Elim_balancer.Make.create} in every
      balancer — model-checker tests only. *)

  val width : 'v t -> int

  val traverse : 'v t -> kind:Location.kind -> value:'v option -> 'v result
  (** Shepherd one token or anti-token from the root to a leaf index or
      an elimination.  At most [log2 width] balancers are visited. *)

  val stats_by_level : 'v t -> Elim_stats.t list
  (** Merged statistics per depth, root first (Table 1). *)

  val balancer_stats_by_level : 'v t -> Elim_stats.t list list
  (** The live per-balancer statistics records grouped by depth, root
      first (the flattening of each group under [Elim_stats.merge]
      equals the corresponding {!stats_by_level} entry).  Used to join
      balancer outcomes against trace-derived cycle budgets. *)

  val reset_stats : 'v t -> unit

  val adapt_by_level : 'v t -> (int * int list) list list
  (** Current reactive [(spin, prism widths)] per balancer, grouped by
      depth, root first; empty inner lists under [`Static]. *)

  val expected_nodes_traversed : 'v t -> float
  (** Average balancers (plus one leaf visit for survivors) per request
      since the last reset — §2.5.1's "expected number of nodes". *)

  val leaf_access_fraction : 'v t -> float
  (** Fraction of requests that reached a leaf pool. *)
end
