(* Per-level tuning of a tree of balancers: prism widths and spin times.

   The paper (§2.5) reports the parameters found best on the simulated
   Alewife machine; the defaults here follow them:

   - Elimination tree of width 32: two prisms at the top two levels
     (root 32 then 8; its children 16 then 4) and a single small prism
     below (2, 1, 1), spin halving by depth.  The top-level sizes
     follow the stated rule "optimal prism width = width of the subtree
     below the balancer"; the deeper levels are small because most
     traffic has already been eliminated (Table 1).
   - Original diffracting tree of width 32: single prisms 8/4/2/2/1,
     spin 32/16/8/4/2 (the optimized parameters of [24] quoted in §2.5).

   For other widths the defaults extrapolate the same schedules. *)

type level = {
  prism_widths : int list; (* outermost (largest) prism first *)
  spin : int;              (* cycles to wait for a collision per prism *)
}

type t = {
  width : int;        (* number of tree outputs; a power of two *)
  levels : level array; (* levels.(d) configures all depth-d balancers *)
  policy : Adapt.policy; (* `Static = the schedules below, as tuned;
                            `Reactive = adapt spin/width around them *)
}

let is_power_of_two w = w > 0 && w land (w - 1) = 0

let depth_of_width width =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
  go 0 width

let validate t =
  if not (is_power_of_two t.width) then
    invalid_arg "Tree_config: width must be a power of two";
  if Array.length t.levels <> depth_of_width t.width then
    invalid_arg "Tree_config: one level entry per tree depth required";
  Array.iter
    (fun l ->
      if l.spin < 0 then invalid_arg "Tree_config: negative spin";
      List.iter
        (fun w -> if w < 1 then invalid_arg "Tree_config: prism width < 1")
        l.prism_widths)
    t.levels;
  (match t.policy with
  | `Static -> ()
  | `Reactive c -> ignore (Adapt.validate_config c));
  t

let with_policy t policy = validate { t with policy }

(* The paper quotes spin 32/16/8/4/2 (by depth) in Proteus time units,
   where globally visible operations cost only a few units.  Our cost
   model charges 6-12 cycles per shared access, so the equivalent
   collision window is about twice as long; 64/32/16/8/4 reproduces the
   paper's elimination rates and keeps latency falling through 256
   processors (see EXPERIMENTS.md).  *)
let spin_for ?(base = 64) ~depth () = max 2 (base lsr depth)

(* The paper's elimination-tree schedule.  Depth 0 and 1 get two prisms
   of decreasing size; deeper levels one small prism. *)
let etree ?spin_base ?(policy = `Static) width =
  let depth = depth_of_width width in
  let levels =
    Array.init depth (fun d ->
        let subtree = width lsr d in
        let prism_widths =
          if d <= 1 then [ subtree; max 1 (subtree / 4) ]
          else [ max 1 (width lsr (d + 2)) ]
        in
        { prism_widths; spin = spin_for ?base:spin_base ~depth:d () })
  in
  validate { width; levels; policy }

(* The original single-prism diffracting-tree schedule of [24]. *)
let dtree ?spin_base ?(policy = `Static) width =
  let depth = depth_of_width width in
  let paper_32 = [| 8; 4; 2; 2; 1 |] in
  let levels =
    Array.init depth (fun d ->
        let prism =
          if width = 32 && d < Array.length paper_32 then paper_32.(d)
          else max 1 (width lsr (d + 2))
        in
        { prism_widths = [ prism ]; spin = spin_for ?base:spin_base ~depth:d () })
  in
  validate { width; levels; policy }

(* The multi-layered-prism diffracting balancer of §2.5.2 ("Dtree-32 +
   MulPri"): the elimination tree's prism schedule applied to a plain
   diffracting tree. *)
let dtree_multiprism ?spin_base ?policy width = etree ?spin_base ?policy width
