(** Per-level tuning of a tree of balancers: prism widths and spin
    times, defaulting to the parameters the paper reports in §2.5. *)

type level = {
  prism_widths : int list;  (** outermost (largest) prism first *)
  spin : int;               (** cycles to wait for a collision per prism *)
}

type t = {
  width : int;          (** number of tree outputs; a power of two *)
  levels : level array; (** [levels.(d)] configures all depth-d balancers *)
  policy : Adapt.policy;
      (** [`Static]: the per-level settings as given.  [`Reactive c]:
          every balancer runs an {!Adapt.Controller} that adapts its
          spin window and effective prism widths around them
          (docs/ADAPTIVE.md). *)
}

val validate : t -> t
(** Returns its argument; raises [Invalid_argument] on a non-power-of-
    two width, a wrong number of levels, nonsensical entries, or an
    invalid reactive config. *)

val with_policy : t -> Adapt.policy -> t
(** The same schedule under a different adaptation policy. *)

val depth_of_width : int -> int
(** log2 of the width: balancer levels in the tree. *)

val etree : ?spin_base:int -> ?policy:Adapt.policy -> int -> t
(** The paper's elimination-tree schedule: two prisms at the top two
    levels (root: subtree width then width/4), one small prism below;
    spin halving by depth from [spin_base] (default 64, twice the
    paper's quoted numbers — see DESIGN.md §6; native deployments with
    cheap atomics may prefer a smaller base). *)

val dtree : ?spin_base:int -> ?policy:Adapt.policy -> int -> t
(** The original single-prism diffracting-tree schedule of [24]
    (widths 8/4/2/2/1 and spin 32/16/8/4/2 for width 32). *)

val dtree_multiprism : ?spin_base:int -> ?policy:Adapt.policy -> int -> t
(** The multi-layered-prism diffracting balancer of §2.5.2 — the
    elimination tree's prism schedule on a plain diffracting tree. *)
