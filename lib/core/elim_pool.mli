(** The elimination-tree pool (paper §2.1, Theorem 2.2): a [Pool[w]]
    tree whose output wires feed [w] MCS-locked FIFO local pools.

    Properties (tested): P1 — enqueues always succeed; P2 — dequeues
    succeed whenever #enqueues ≥ #dequeues; the dequeued multiset
    equals the enqueued one; every request visits at most [log2 w]
    balancers. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create :
    ?config:Tree_config.t ->
    ?policy:Adapt.policy ->
    ?eliminate:bool ->
    ?leaf_size:int ->
    capacity:int ->
    width:int ->
    unit ->
    'v t
  (** [capacity] bounds participating processors; [leaf_size] bounds
      each local pool; [config] defaults to [Tree_config.etree width];
      [policy] overrides the config's adaptation policy (reactive spin
      windows and prism widths, docs/ADAPTIVE.md);
      [~eliminate:false] keeps diffraction but disables elimination
      (ablation). *)

  val width : 'v t -> int

  val enqueue : 'v t -> 'v -> unit
  (** Never blocks indefinitely (P1); may complete by handing the value
      directly to a concurrent dequeuer. *)

  val dequeue : ?stop:(unit -> bool) -> 'v t -> 'v option
  (** Waits at its leaf pool while empty; [stop] bounds the wait
      (returns [None] once it fires).  Without [stop], returns [None]
      never — under P2 conditions the wait is bounded. *)

  val residue : 'v t -> int
  (** Elements currently buffered in the leaves (exact when
      quiescent). *)

  val stats_by_level : 'v t -> Elim_stats.t list

  val balancer_stats_by_level : 'v t -> Elim_stats.t list list
  (** Live per-balancer records grouped by depth, root first (see
      {!Elim_tree.Make.balancer_stats_by_level}); the model checker's
      step-property monitor reads the per-wire exit counters here. *)

  val reset_stats : 'v t -> unit

  val adapt_by_level : 'v t -> (int * int list) list list
  (** Current reactive [(spin, widths)] per balancer by depth; empty
      inner lists under [`Static] (see {!Elim_tree.Make.adapt_by_level}). *)

  val expected_nodes_traversed : 'v t -> float
  val leaf_access_fraction : 'v t -> float
end
