(* A binary tree of elimination balancers (paper §2.1, Fig. 3).

   [Pool[w]] is built inductively: a root balancer whose two output
   wires feed two [Pool[w/2]] subtrees.  We store the balancers in heap
   order (root at 0, children of i at 2i+1 / 2i+2) and number the [w]
   outputs according to [leaf_order]:

   - [`Natural]: left-to-right, as in the pool construction (§2) where
     any leaf assignment satisfying per-subtree balance works;
   - [`Interleaved]: outputs of the wire-0 subtree are the even outputs
     and those of the wire-1 subtree the odd ones — the counting-tree
     numbering required by [IncDecCounter[w]] (§3.1), obtained by
     reading the wire choices as bits from the root (LSB) down.

   A traversal shepherds one token or anti-token from the root to either
   a leaf index or an elimination.

   Construction goes through the wiring IR: {!ir} lowers a
   [Tree_config.t] to a [Netverify.Ir.network] — the single source of
   truth for the tree's shape, statically checkable by the netverify
   passes — and {!Make.create} instantiates its balancers and leaf
   numbering from that value rather than from ad-hoc index
   arithmetic. *)

let ir ?(mode = `Pool) ?(eliminate = true) ?(leaf_order = `Natural) ?bug
    ?name (config : Tree_config.t) =
  let config = Tree_config.validate config in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "etree-%s-%d"
          (match mode with `Pool -> "pool" | `Stack -> "stack")
          config.width
  in
  let levels =
    Array.to_list
      (Array.map
         (fun (l : Tree_config.level) -> (l.prism_widths, l.spin))
         config.levels)
  in
  let net =
    Netverify.Ir.elim_tree ~name ~mode ~eliminate ~leaf_order ?bug ~levels
      ~width:config.width ()
  in
  Netverify.Passes.assert_well_formed ~what:"Elim_tree.ir" net;
  net

module Make (E : Engine.S) = struct
  module Balancer = Elim_balancer.Make (E)

  type 'v result = Leaf of int | Eliminated of 'v option

  type 'v t = {
    width : int;
    depth : int;
    leaf_index : int array; (* natural leaf position -> logical output *)
    balancers : 'v Balancer.t array; (* heap order; width-1 of them *)
    location : 'v Balancer.location;
  }

  let depth_of_index i =
    (* floor(log2 (i+1)): balancer i sits at this depth. *)
    let rec go d n = if n <= 1 then d else go (d + 1) (n / 2) in
    go 0 (i + 1)

  let create ?(mode = `Pool) ?(eliminate = true) ?(leaf_order = `Natural)
      ?bug ~capacity (config : Tree_config.t) =
    let config = Tree_config.validate config in
    if capacity < 1 then
      invalid_arg "Elim_tree.create: capacity must be positive";
    (* When created inside an engine context (a [Sim.run] body or a
       capacity-configured native engine), the announcement array must
       cover every processor that can traverse: [E.pid ()] indexes it
       directly.  Outside any context [E.nprocs] raises and the check
       is deferred to {!traverse}. *)
    (match try Some (E.nprocs ()) with Failure _ -> None with
    | Some nprocs when capacity < nprocs ->
        invalid_arg
          (Printf.sprintf
             "Elim_tree.create: capacity %d < %d participating processors \
              (raise ~capacity)"
             capacity nprocs)
    | _ -> ());
    (* Lower the configuration to the wiring IR (validated by the
       netverify well-formedness pass) and instantiate the runtime
       balancers and leaf numbering from its plan. *)
    let net = ir ~mode ~eliminate ~leaf_order ?bug config in
    let attrs, leaf_index = Netverify.Ir.tree_plan net in
    let width = net.Netverify.Ir.width in
    let location = Balancer.make_location ~capacity in
    let balancers =
      Array.init (Array.length attrs) (fun i ->
          match attrs.(i) with
          | Netverify.Ir.Elim { mode; eliminate; prism_widths; spin; bug } ->
              Balancer.create ~mode ~eliminate ~depth:(depth_of_index i) ?bug
                ~policy:config.policy ~id:i ~prism_widths ~spin ~location ()
          | Netverify.Ir.Toggle ->
              (* The tree builder never emits toggle balancers. *)
              assert false)
    in
    {
      width;
      depth = Tree_config.depth_of_width width;
      leaf_index;
      balancers;
      location;
    }

  let width t = t.width

  let traverse t ~(kind : Location.kind) ~(value : 'v option) : 'v result =
    let p = E.pid () in
    if p >= Balancer.location_capacity t.location then
      invalid_arg
        (Printf.sprintf
           "Elim_tree.traverse: processor %d exceeds tree capacity %d \
            (create with a larger ~capacity)"
           p
           (Balancer.location_capacity t.location));
    if Etrace.on Etrace.lv_ops then
      Etrace.emit
        (Etrace.Event.Op_begin
           { pid = p; time = E.now (); kind = Balancer.trace_kind kind });
    let result =
      if t.width = 1 then Leaf 0
      else begin
        (* Accumulate the natural (left-to-right) leaf position; the
           IR-derived [leaf_index] carries the `Natural/`Interleaved
           numbering. *)
        let rec go idx acc =
          match Balancer.traverse t.balancers.(idx) ~kind ~value with
          | Location.Eliminated v -> Eliminated v
          | Location.Exit wire ->
              let acc = (acc lsl 1) lor wire in
              let child = (2 * idx) + 1 + wire in
              if child >= t.width - 1 then Leaf t.leaf_index.(acc)
              else go child acc
        in
        go 0 0
      end
    in
    if Etrace.on Etrace.lv_ops then
      Etrace.emit
        (Etrace.Event.Op_end
           {
             pid = p;
             time = E.now ();
             kind = Balancer.trace_kind kind;
             leaf = (match result with Leaf i -> Some i | Eliminated _ -> None);
           });
    result

  (* The live per-balancer stats records grouped by depth, root level
     first — the attribution table joins these against trace-derived
     cycle budgets.  The inner lists alias the balancers' own records;
     [Elim_stats.merge] de-duplicates by physical identity, so passing
     overlapping groups (or the same record twice) cannot double-count. *)
  let balancer_stats_by_level t =
    let balancers = Array.to_list t.balancers in
    List.init t.depth (fun d ->
        balancers
        |> List.filteri (fun i _ -> depth_of_index i = d)
        |> List.map Balancer.stats)

  (* Statistics for Table 1: merged per depth, root first. *)
  let stats_by_level t =
    List.map Elim_stats.merge (balancer_stats_by_level t)

  let reset_stats t =
    Array.iter (fun b -> Elim_stats.reset (Balancer.stats b)) t.balancers

  (* Per-depth reactive state, root level first: each balancer's
     current [(spin, widths)].  Empty inner lists under `Static. *)
  let adapt_by_level t =
    let balancers = Array.to_list t.balancers in
    List.init t.depth (fun d ->
        balancers
        |> List.filteri (fun i _ -> depth_of_index i = d)
        |> List.filter_map Balancer.adapt_state)

  (* Expected number of balancers traversed per token (plus one leaf
     visit for non-eliminated ones), §2.5's "expected number of nodes". *)
  let expected_nodes_traversed t =
    let levels = stats_by_level t in
    let entered_root =
      match levels with [] -> 0 | s :: _ -> Elim_stats.entries s
    in
    if entered_root = 0 then 0.0
    else begin
      let visits =
        List.fold_left (fun acc s -> acc + Elim_stats.entries s) 0 levels
      in
      (* Tokens that exit the bottom level visit their leaf pool too. *)
      let reached_leaves =
        match List.rev levels with
        | [] -> 0
        | last :: _ ->
            Elim_stats.entries last - last.Elim_stats.eliminated
      in
      float_of_int (visits + reached_leaves) /. float_of_int entered_root
    end

  (* Fraction of root entries that eventually accessed a leaf pool. *)
  let leaf_access_fraction t =
    let levels = stats_by_level t in
    match (levels, List.rev levels) with
    | s :: _, last :: _ ->
        let entered = Elim_stats.entries s in
        if entered = 0 then 0.0
        else
          float_of_int (Elim_stats.entries last - last.Elim_stats.eliminated)
          /. float_of_int entered
    | _ -> 0.0
end
