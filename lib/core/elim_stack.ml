(* The stack-like pool (paper §3, Theorems 3.4/3.5).

   An [IncDecCounter[w]] tree of *gap* elimination balancers (one shared
   toggle bit; anti-tokens retrace token paths) with sequential local
   stacks at the leaves, numbered in counting-tree (interleaved) order.
   The gap step property (Lemma 3.2) keeps the surplus of pushes over
   pops spread across the leaves with gaps of at most one, so the
   structure behaves like a stack globally: in any sequential execution
   it is exactly LIFO (Thm 3.5), and under concurrency it is a correct
   pool (Thm 3.4) with LIFO-ish ordering. *)

module Make (E : Engine.S) = struct
  module Tree = Elim_tree.Make (E)
  module Local = Pools.Local_pool.Make (E)

  type 'v t = { tree : 'v Tree.t; leaves : 'v Local.t array }

  let create ?config ?policy ?(eliminate = true) ?(leaf_size = 4096) ~capacity
      ~width () =
    let config =
      match config with Some c -> c | None -> Tree_config.etree width
    in
    let config =
      match policy with
      | None -> config
      | Some p -> Tree_config.with_policy config p
    in
    if config.Tree_config.width <> width then
      invalid_arg "Elim_stack.create: config width mismatch";
    let tree =
      Tree.create ~mode:`Stack ~leaf_order:`Interleaved ~eliminate ~capacity config
    in
    let leaves =
      Array.init width (fun _ ->
          Local.create ~discipline:`Lifo ~size:leaf_size
            ~lock_capacity:capacity ())
    in
    { tree; leaves }

  let width t = Tree.width t.tree

  let push t v =
    match Tree.traverse t.tree ~kind:Token ~value:(Some v) with
    | Tree.Eliminated _ -> () (* handed straight to a popper *)
    | Tree.Leaf i -> Local.enqueue t.leaves.(i) v

  let pop ?stop t =
    match Tree.traverse t.tree ~kind:Anti ~value:None with
    | Tree.Eliminated (Some v) -> Some v
    | Tree.Eliminated None -> assert false
    | Tree.Leaf i -> Local.dequeue_blocking ?stop t.leaves.(i)

  let residue t =
    Array.fold_left (fun acc l -> acc + Local.size l) 0 t.leaves

  let stats_by_level t = Tree.stats_by_level t.tree
  let balancer_stats_by_level t = Tree.balancer_stats_by_level t.tree
  let reset_stats t = Tree.reset_stats t.tree
  let adapt_by_level t = Tree.adapt_by_level t.tree
end
