(** Per-balancer traversal statistics (for the paper's Table 1 and the
    derived §2.5.1 numbers).  Plain mutable counters: exact and free
    under the single-threaded simulator; racy (hence approximate) under
    native parallelism and not used in native assertions. *)

type t = {
  mutable token_entries : int;
  mutable anti_entries : int;
  mutable eliminated : int;  (** individuals eliminated here (2/pair) *)
  mutable diffracted : int;  (** individuals diffracted here (2/pair) *)
  mutable toggled : int;
  mutable token_out0 : int;  (** tokens that left on wire 0 *)
  mutable token_out1 : int;  (** tokens that left on wire 1 *)
  mutable anti_out0 : int;   (** anti-tokens that left on wire 0 *)
  mutable anti_out1 : int;   (** anti-tokens that left on wire 1 *)
}

val create : unit -> t
val reset : t -> unit

val entered : t -> Location.kind -> unit
val note_eliminated : t -> int -> unit
val note_diffracted : t -> int -> unit
val note_toggled : t -> unit

val note_exit : t -> Location.kind -> wire:int -> unit
(** Record a traversal leaving on an output wire — the per-balancer
    observable the step property (Lemma 3.1) constrains.  Eliminated
    pairs leave on no wire and are not recorded here. *)

val entries : t -> int
(** Tokens plus anti-tokens that entered. *)

val merge : t list -> t
(** Sum (e.g. all balancers of one tree level). *)

val elimination_fraction : t -> float
(** Table 1's metric: eliminated here / entered here (0 if idle). *)
