(** Per-balancer traversal statistics (for the paper's Table 1 and the
    derived §2.5.1 numbers).  Plain mutable counters: exact and free
    under the single-threaded simulator; racy (hence approximate) under
    native parallelism and not used in native assertions. *)

type t = {
  mutable token_entries : int;
  mutable anti_entries : int;
  mutable eliminated : int;  (** individuals eliminated here (2/pair) *)
  mutable diffracted : int;  (** individuals diffracted here (2/pair) *)
  mutable misses : int;      (** prism candidate seen, no collision *)
  mutable toggled : int;
  mutable token_out0 : int;  (** tokens that left on wire 0 *)
  mutable token_out1 : int;  (** tokens that left on wire 1 *)
  mutable anti_out0 : int;   (** anti-tokens that left on wire 0 *)
  mutable anti_out1 : int;   (** anti-tokens that left on wire 1 *)
  mutable w_entries : int;   (** {!take_window} cursor, not a counter *)
  mutable w_hits : int;
  mutable w_misses : int;
  mutable w_toggled : int;
}

val create : unit -> t
val reset : t -> unit

val entered : t -> Location.kind -> unit
val note_eliminated : t -> int -> unit
val note_diffracted : t -> int -> unit

val note_miss : t -> unit
(** A prism exchange surfaced a collision candidate but no collision
    came of it (lost CAS race or kind mismatch) — the "busy but not
    absorbing" signal the adaptive controller reacts to. *)

val note_toggled : t -> unit

val note_exit : t -> Location.kind -> wire:int -> unit
(** Record a traversal leaving on an output wire — the per-balancer
    observable the step property (Lemma 3.1) constrains.  Eliminated
    pairs leave on no wire and are not recorded here. *)

val entries : t -> int
(** Tokens plus anti-tokens that entered. *)

type window = {
  w_entries : int;
  w_hits : int;  (** eliminated + diffracted *)
  w_misses : int;
  w_toggled : int;
}

val take_window : t -> window
(** Counter deltas since the previous [take_window] (cursor-based: one
    subtraction per field, no extra work on the hot path).  Cumulative
    reads ({!merge}, {!elimination_fraction}) are unaffected.  Intended
    for the single per-balancer adaptive controller; windows from
    concurrent readers would race exactly like the counters do. *)

val merge : t list -> t
(** Sum (e.g. all balancers of one tree level). *)

val elimination_fraction : t -> float
(** Table 1's metric: eliminated here / entered here (0 if idle). *)
