(* The elimination-tree pool (paper §2.1, Theorem 2.2).

   A [Pool[w]] elimination tree whose output wires feed [w] sequential
   local pools.  An enqueue shepherds a token carrying the value down
   the tree; if it reaches a wire, the value goes into that wire's
   local pool.  A dequeue shepherds an anti-token; if it collides with
   a token it returns the token's value directly, otherwise it dequeues
   from the local pool at its output wire, waiting there if the pool is
   momentarily empty (pool balancing, Lemma 2.1, guarantees the wait is
   bounded whenever #enqueues >= #dequeues).

   Properties: P1 — enqueues always succeed; P2 — dequeues succeed on a
   non-empty pool; every request visits at most log w balancers. *)

module Make (E : Engine.S) = struct
  module Tree = Elim_tree.Make (E)
  module Local = Pools.Local_pool.Make (E)

  type 'v t = { tree : 'v Tree.t; leaves : 'v Local.t array }

  (* [capacity] bounds the number of participating processors;
     [leaf_size] bounds each local pool. *)
  let create ?config ?policy ?(eliminate = true) ?(leaf_size = 4096) ~capacity
      ~width () =
    let config =
      match config with Some c -> c | None -> Tree_config.etree width
    in
    (* [?policy] overrides whatever the config carries: callers select
       reactive adaptation without re-deriving the level schedule. *)
    let config =
      match policy with
      | None -> config
      | Some p -> Tree_config.with_policy config p
    in
    if config.Tree_config.width <> width then
      invalid_arg "Elim_pool.create: config width mismatch";
    let tree = Tree.create ~mode:`Pool ~leaf_order:`Natural ~eliminate ~capacity config in
    let leaves =
      Array.init width (fun _ ->
          Local.create ~discipline:`Fifo ~size:leaf_size
            ~lock_capacity:capacity ())
    in
    { tree; leaves }

  let width t = Tree.width t.tree

  let enqueue t v =
    match Tree.traverse t.tree ~kind:Token ~value:(Some v) with
    | Tree.Eliminated _ ->
        (* Our value was handed to a concurrent dequeuer: done. *)
        ()
    | Tree.Leaf i -> Local.enqueue t.leaves.(i) v

  (* Dequeue, waiting if necessary; [stop] bounds the wait (used by
     benchmarks to drain at the end of a run). *)
  let dequeue ?stop t =
    match Tree.traverse t.tree ~kind:Anti ~value:None with
    | Tree.Eliminated (Some v) -> Some v
    | Tree.Eliminated None ->
        (* An eliminating partner is always a Token and always carries a
           value (Lemma 2.8). *)
        assert false
    | Tree.Leaf i -> Local.dequeue_blocking ?stop t.leaves.(i)

  (* Total elements currently buffered in the leaves (quiescent-state
     snapshot; elements in flight inside the tree are not counted). *)
  let residue t =
    Array.fold_left (fun acc l -> acc + Local.size l) 0 t.leaves

  let stats_by_level t = Tree.stats_by_level t.tree
  let balancer_stats_by_level t = Tree.balancer_stats_by_level t.tree
  let reset_stats t = Tree.reset_stats t.tree
  let adapt_by_level t = Tree.adapt_by_level t.tree
  let expected_nodes_traversed t = Tree.expected_nodes_traversed t.tree
  let leaf_access_fraction t = Tree.leaf_access_fraction t.tree
end
