(* IncDecCounter[w] (paper §3.1): a counting tree of gap elimination
   balancers supporting concurrent increments (tokens) and decrements
   (anti-tokens), with the gap step property (Lemma 3.2) on its outputs:
   in any quiescent state the surplus of increments over decrements on
   output i exceeds that on output j>i by at most one, and never by a
   negative amount.

   As a *counter*, leaf i carries the value sequence i, i+w, i+2w, ...:
   an increment that exits on leaf i receives the leaf's next value; a
   decrement receives the previous one.  An increment/decrement pair
   that eliminates inside the tree cancels without touching any leaf —
   both return [Paired], which is the linearization "inc immediately
   followed by dec" (the decrement hands back exactly the increment's
   contribution).  Callers that need every operation to receive a
   concrete slot number (e.g. an exact fetch&inc/fetch&dec) should
   create the counter with [~eliminate:false], keeping diffraction but
   forcing every token to a leaf. *)

module Make (E : Engine.S) = struct
  module Tree = Elim_tree.Make (E)

  type outcome =
    | Slot of int (* the value fetched at a leaf *)
    | Paired      (* cancelled against a concurrent opposite operation *)

  type t = {
    tree : unit Tree.t;
    slots : int E.cell array; (* leaf i holds its next increment value *)
    width : int;
  }

  let create ?config ?policy ?(eliminate = true) ~capacity ~width () =
    let config =
      match config with Some c -> c | None -> Tree_config.etree width
    in
    let config =
      match policy with
      | None -> config
      | Some p -> Tree_config.with_policy config p
    in
    if config.Tree_config.width <> width then
      invalid_arg "Inc_dec_counter.create: config width mismatch";
    let tree =
      Tree.create ~mode:`Stack ~eliminate ~leaf_order:`Interleaved ~capacity
        config
    in
    { tree; slots = Array.init width (fun i -> E.cell i); width }

  let increment t =
    match Tree.traverse t.tree ~kind:Token ~value:None with
    | Tree.Eliminated _ -> Paired
    | Tree.Leaf i -> Slot (E.fetch_and_add t.slots.(i) t.width)

  let decrement t =
    match Tree.traverse t.tree ~kind:Anti ~value:None with
    | Tree.Eliminated _ -> Paired
    | Tree.Leaf i -> Slot (E.fetch_and_add t.slots.(i) (-t.width) - t.width)

  (* Direct tree access for property tests (gap step property). *)
  let traverse t ~kind = Tree.traverse t.tree ~kind ~value:None
  let stats_by_level t = Tree.stats_by_level t.tree
  let balancer_stats_by_level t = Tree.balancer_stats_by_level t.tree
  let adapt_by_level t = Tree.adapt_by_level t.tree
end
