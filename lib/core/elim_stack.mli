(** The stack-like pool (paper §3, Theorems 3.4/3.5): an
    [IncDecCounter[w]] tree of gap elimination balancers with LIFO
    local stacks at its (counting-tree-ordered) leaves.

    The gap step property (Lemma 3.2) keeps the push-over-pop surplus
    spread within one across the leaves, so the structure is a correct
    pool that is exactly LIFO in sequential executions and LIFO-ish
    under concurrency. *)

module Make (E : Engine.S) : sig
  type 'v t

  val create :
    ?config:Tree_config.t ->
    ?policy:Adapt.policy ->
    ?eliminate:bool ->
    ?leaf_size:int ->
    capacity:int ->
    width:int ->
    unit ->
    'v t
  (** [policy] overrides the config's adaptation policy (see
      {!Elim_pool.Make.create}). *)

  val width : 'v t -> int

  val push : 'v t -> 'v -> unit

  val pop : ?stop:(unit -> bool) -> 'v t -> 'v option
  (** See {!Elim_pool.Make.dequeue} for the [stop] contract. *)

  val residue : 'v t -> int

  val stats_by_level : 'v t -> Elim_stats.t list

  val balancer_stats_by_level : 'v t -> Elim_stats.t list list
  (** Live per-balancer records grouped by depth (see
      {!Elim_tree.Make.balancer_stats_by_level}). *)

  val reset_stats : 'v t -> unit

  val adapt_by_level : 'v t -> (int * int list) list list
  (** Current reactive [(spin, widths)] per balancer by depth; empty
      inner lists under [`Static]. *)
end
