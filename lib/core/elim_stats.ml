(* Per-balancer traversal statistics, aggregated per tree level to
   reproduce the paper's Table 1 (fraction of tokens eliminated per
   level) and the expected-depth numbers quoted in §2.5.

   Counters are plain mutable ints: under the (single-threaded)
   simulator they are exact and cost no simulated cycles, so collecting
   them never perturbs an experiment.  Under the native engine they are
   racy and therefore approximate; they remain useful as indicators but
   are not used by any native test assertion. *)

type t = {
  mutable token_entries : int; (* tokens entering this balancer *)
  mutable anti_entries : int;  (* anti-tokens entering this balancer *)
  mutable eliminated : int;    (* individuals eliminated here (2/pair) *)
  mutable diffracted : int;    (* individuals diffracted here (2/pair) *)
  mutable misses : int;        (* prism candidate seen, no collision *)
  mutable toggled : int;       (* individuals that used the toggle bit *)
  (* per-output-wire exits, the observable the step property (Lemma
     3.1) speaks about: tokens/anti-tokens that left on wire 0 / 1
     (eliminated pairs leave on no wire and are counted above) *)
  mutable token_out0 : int;
  mutable token_out1 : int;
  mutable anti_out0 : int;
  mutable anti_out1 : int;
  (* windowed read cursors (Adapt controller): where the last
     [take_window] left off.  Cumulative counters above never rewind,
     so a window is a cheap pair of subtractions — no second counter
     set on the hot path, and reporting reads stay unaffected. *)
  mutable w_entries : int;
  mutable w_hits : int;
  mutable w_misses : int;
  mutable w_toggled : int;
}

let create () =
  {
    token_entries = 0;
    anti_entries = 0;
    eliminated = 0;
    diffracted = 0;
    misses = 0;
    toggled = 0;
    token_out0 = 0;
    token_out1 = 0;
    anti_out0 = 0;
    anti_out1 = 0;
    w_entries = 0;
    w_hits = 0;
    w_misses = 0;
    w_toggled = 0;
  }

let reset t =
  t.token_entries <- 0;
  t.anti_entries <- 0;
  t.eliminated <- 0;
  t.diffracted <- 0;
  t.misses <- 0;
  t.toggled <- 0;
  t.token_out0 <- 0;
  t.token_out1 <- 0;
  t.anti_out0 <- 0;
  t.anti_out1 <- 0;
  t.w_entries <- 0;
  t.w_hits <- 0;
  t.w_misses <- 0;
  t.w_toggled <- 0

let entered t (kind : Location.kind) =
  match kind with
  | Token -> t.token_entries <- t.token_entries + 1
  | Anti -> t.anti_entries <- t.anti_entries + 1

let note_eliminated t n = t.eliminated <- t.eliminated + n
let note_diffracted t n = t.diffracted <- t.diffracted + n
let note_miss t = t.misses <- t.misses + 1
let note_toggled t = t.toggled <- t.toggled + 1

let note_exit t (kind : Location.kind) ~wire =
  match (kind, wire) with
  | Token, 0 -> t.token_out0 <- t.token_out0 + 1
  | Token, _ -> t.token_out1 <- t.token_out1 + 1
  | Anti, 0 -> t.anti_out0 <- t.anti_out0 + 1
  | Anti, _ -> t.anti_out1 <- t.anti_out1 + 1

let entries t = t.token_entries + t.anti_entries

(* Windowed read path for the Adapt controller: the delta since the
   previous [take_window], then advance the cursors.  The cumulative
   counters are monotone, so the delta is exact under the simulator; the
   controller is this record's only window reader (one balancer, one
   controller), so the cursors have a single writer there too. *)
type window = {
  w_entries : int;
  w_hits : int;    (* eliminated + diffracted *)
  w_misses : int;
  w_toggled : int;
}

let take_window t =
  let entries = entries t and hits = t.eliminated + t.diffracted in
  let w =
    {
      w_entries = entries - t.w_entries;
      w_hits = hits - t.w_hits;
      w_misses = t.misses - t.w_misses;
      w_toggled = t.toggled - t.w_toggled;
    }
  in
  t.w_entries <- entries;
  t.w_hits <- hits;
  t.w_misses <- t.misses;
  t.w_toggled <- t.toggled;
  w

(* Sum a list of per-balancer stats (e.g. all balancers on one level).
   Each distinct record is counted once no matter how often it appears:
   callers assembling overlapping groups (per-layer *and* whole-tree
   views of the same live records, as the attribution table does) would
   otherwise double-count.  Identity is physical — two balancers'
   records are distinct objects even when their counters are equal. *)
let merge stats =
  let acc = create () in
  let rec go seen = function
    | [] -> ()
    | s :: rest ->
        if List.memq s seen then go seen rest
        else begin
          acc.token_entries <- acc.token_entries + s.token_entries;
          acc.anti_entries <- acc.anti_entries + s.anti_entries;
          acc.eliminated <- acc.eliminated + s.eliminated;
          acc.diffracted <- acc.diffracted + s.diffracted;
          acc.misses <- acc.misses + s.misses;
          acc.toggled <- acc.toggled + s.toggled;
          acc.token_out0 <- acc.token_out0 + s.token_out0;
          acc.token_out1 <- acc.token_out1 + s.token_out1;
          acc.anti_out0 <- acc.anti_out0 + s.anti_out0;
          acc.anti_out1 <- acc.anti_out1 + s.anti_out1;
          go (s :: seen) rest
        end
  in
  go [] stats;
  acc

(* Table 1's metric: of the tokens that entered this level, the fraction
   that were eliminated here. *)
let elimination_fraction t =
  let e = entries t in
  if e = 0 then 0.0 else float_of_int t.eliminated /. float_of_int e
