(* The elimination balancer (paper §2.2–§2.4, Figures 2 and 4).

   A one-input two-output routing element for tokens (enqueues) and
   anti-tokens (dequeues).  A traversal tries, on a cascade of prism
   arrays of decreasing width, to collide with another traversal of the
   same balancer:

   - same kind: the pair is *diffracted*, one to each output wire,
     sparing the toggle bit two operations that would have cancelled;
   - opposite kinds: the pair is *eliminated* — they exchange the
     enqueued value through the Location array and leave the tree.

   A traversal that never collides falls through to the toggle bit(s),
   each protected by an MCS queue lock, and leaves on the wire the
   toggle dictates.

   Two modes:
   - [Pool]: separate token and anti-token toggle bits (Fig. 2 left),
     giving the pool-balancing property (Thm 2.6);
   - [Stack]: one shared toggle bit (Fig. 2 right); tokens exit by its
     old value, anti-tokens toggle and exit by its *new* value, so an
     anti-token retraces the path of the last token — the gap
     elimination balancer of §3.1.

   [eliminate] can be turned off to obtain a plain (multi-prism)
   diffracting balancer: opposite-kind prism meetings are then ignored.
   With a single prism, [Stack] mode and token-only traffic this is
   exactly the original diffracting balancer of [24]. *)

module Make (E : Engine.S) = struct
  module Lock = Sync.Mcs_lock.Make (E)

  type 'v location = 'v Location.entry E.cell array

  type 'v t = {
    id : int; (* unique within the tree; announcements carry it *)
    depth : int; (* tree layer, for the trace timeline; 0 standalone *)
    mode : [ `Pool | `Stack ];
    eliminate : bool;
    prisms : int E.cell array array; (* pid slots; -1 = empty *)
    spin : int;
    ctl : Adapt.Controller.t option;
        (* reactive policy (docs/ADAPTIVE.md): when set, the effective
           spin window and prism widths come from the controller rather
           than [spin] / the full array lengths.  The controller's
           state is host-level (like [stats]) and its decisions come
           off a private splitmix stream, so it performs no
           engine-visible operations: clamped to the static values it
           leaves a simulated run byte-identical to [ctl = None]. *)
    toggles : bool E.cell array; (* Pool: [|token; anti|]; Stack: one *)
    locks : Lock.t array;        (* parallel to [toggles] *)
    location : 'v location;     (* shared by the whole tree *)
    stats : Elim_stats.t;
    bug : [ `Skip_toggle_on_miss ] option;
        (* test-only seeded defect for the model checker: a traversal
           that saw a potential prism partner but failed to collide
           (an elimination miss) reads the toggle without flipping it,
           breaking the step property on interleavings where misses
           and toggle passes mix.  Never set outside tests. *)
  }

  let make_location ~capacity : 'v location =
    Array.init capacity (fun _ -> E.cell Location.Empty)

  (* Number of processors the announcement array can accommodate. *)
  let location_capacity (location : 'v location) = Array.length location

  let create ?(mode = `Pool) ?(eliminate = true) ?(depth = 0) ?bug
      ?(policy = `Static) ~id ~prism_widths ~spin ~location () =
    if prism_widths = [] then
      invalid_arg "Elim_balancer.create: at least one prism required";
    let capacity = Array.length location in
    let ntoggles = match mode with `Pool -> 2 | `Stack -> 1 in
    let ctl =
      match (policy : Adapt.policy) with
      | `Static -> None
      | `Reactive config ->
          Some (Adapt.Controller.create ~config ~id ~spin0:spin
                  ~widths0:prism_widths)
    in
    (* Elastic widths never reallocate shared arrays: each prism is
       sized at its clamp ceiling and [traverse] draws slots from the
       current effective width only. *)
    let alloc_widths =
      match ctl with
      | None -> prism_widths
      | Some c -> Adapt.Controller.alloc_widths c
    in
    {
      id;
      depth;
      mode;
      eliminate;
      prisms =
        Array.of_list
          (List.map
             (fun w -> Array.init (max 1 w) (fun _ -> E.cell (-1)))
             alloc_widths);
      spin;
      ctl;
      toggles = Array.init ntoggles (fun _ -> E.cell false);
      locks = Array.init ntoggles (fun _ -> Lock.create ~capacity ());
      location;
      stats = Elim_stats.create ();
      bug;
    }

  let toggle_index t (kind : Location.kind) =
    match (t.mode, kind) with
    | `Pool, Token -> 0
    | `Pool, Anti -> 1
    | `Stack, _ -> 0

  (* Which wire a toggling traversal leaves on.  Pool balancers and
     stack-mode tokens go by the toggle's old value; stack-mode
     anti-tokens go by its new value, retracing the last token. *)
  let toggle_wire t (kind : Location.kind) ~old =
    let bit =
      match (t.mode, kind) with
      | `Pool, _ | `Stack, Token -> old
      | `Stack, Anti -> not old
    in
    if bit then 1 else 0

  (* One fresh announcement record; its physical identity is the claim
     ticket (see {!Location}). *)
  let announce t ~kind ~value =
    let box = Location.Announced { balancer = t.id; kind; value } in
    E.set t.location.(E.pid ()) box;
    box

  (* After our entry was claimed, read our fate out of it.  The trace
     records the collision from the victim's side too ([initiator =
     false]); the claimer's identity is not recoverable from the entry,
     hence [partner = -1]. *)
  let claimed_outcome t ~kind my_cell : 'v Location.outcome =
    match E.get my_cell with
    | Location.Diffracted ->
        Elim_stats.note_diffracted t.stats 1;
        Elim_stats.note_exit t.stats kind ~wire:0;
        if Etrace.on Etrace.lv_events then
          Etrace.emit
            (Etrace.Event.Prism_cas
               {
                 pid = E.pid ();
                 time = E.now ();
                 balancer = t.id;
                 partner = -1;
                 initiator = false;
                 result = Etrace.Event.Diffracted;
               });
        Location.Exit 0
    | Location.Eliminated_slot v ->
        Elim_stats.note_eliminated t.stats 1;
        if Etrace.on Etrace.lv_events then
          Etrace.emit
            (Etrace.Event.Prism_cas
               {
                 pid = E.pid ();
                 time = E.now ();
                 balancer = t.id;
                 partner = -1;
                 initiator = false;
                 result = Etrace.Event.Eliminated;
               });
        Location.Eliminated v
    | Location.Empty | Location.Announced _ ->
        (* Our claim ticket was CASed away, so the claimer has already
           (atomically) written our fate; nothing else writes here. *)
        assert false

  (* The state of a traversal after a collision attempt: either it is
     over, or it continues carrying its current announcement box (which
     changes whenever a failed claim forces a re-announce, per Fig. 4).
     Threading the box through the traversal keeps the whole protocol
     inside the engine discipline — no host-level ref cells. *)
  type 'v attempt = Done of 'v Location.outcome | Keep of 'v Location.entry

  (* Attempt to collide with processor [him].  [Done] if this traversal
     is over (either because we claimed [him] or because somebody
     claimed us while we tried); [Keep] to keep going. *)
  let try_collide t ~kind ~value ~my_cell ~my_box him =
    match E.get t.location.(him) with
    | Location.Announced { balancer; kind = his_kind; value = his_value }
      as his_box
      when balancer = t.id && (t.eliminate || his_kind = kind) ->
        if E.compare_and_set my_cell my_box Location.Empty then
          if his_kind = kind then
            if
              E.compare_and_set t.location.(him) his_box Location.Diffracted
            then begin
              (* Diffracting collision: we take wire 1, partner wire 0. *)
              Elim_stats.note_diffracted t.stats 1;
              Elim_stats.note_exit t.stats kind ~wire:1;
              if Etrace.on Etrace.lv_events then
                Etrace.emit
                  (Etrace.Event.Prism_cas
                     {
                       pid = E.pid ();
                       time = E.now ();
                       balancer = t.id;
                       partner = him;
                       initiator = true;
                       result = Etrace.Event.Diffracted;
                     });
              Done (Location.Exit 1)
            end
            else begin
              if Etrace.on Etrace.lv_events then
                Etrace.emit
                  (Etrace.Event.Prism_cas
                     {
                       pid = E.pid ();
                       time = E.now ();
                       balancer = t.id;
                       partner = him;
                       initiator = true;
                       result = Etrace.Event.Lost;
                     });
              Keep (announce t ~kind ~value)
            end
          else if
            E.compare_and_set t.location.(him) his_box
              (Location.Eliminated_slot value)
          then begin
            (* Eliminating collision: our value is now in the partner's
               entry; an Anti initiator walks away with the Token's. *)
            Elim_stats.note_eliminated t.stats 1;
            if Etrace.on Etrace.lv_events then
              Etrace.emit
                (Etrace.Event.Prism_cas
                   {
                     pid = E.pid ();
                     time = E.now ();
                     balancer = t.id;
                     partner = him;
                     initiator = true;
                     result = Etrace.Event.Eliminated;
                   });
            Done (Location.Eliminated his_value)
          end
          else begin
            if Etrace.on Etrace.lv_events then
              Etrace.emit
                (Etrace.Event.Prism_cas
                   {
                     pid = E.pid ();
                     time = E.now ();
                     balancer = t.id;
                     partner = him;
                     initiator = true;
                     result = Etrace.Event.Lost;
                   });
            Keep (announce t ~kind ~value)
          end
        else
          (* Our own claim failed: someone claimed us first. *)
          Done (claimed_outcome t ~kind my_cell)
    | _ -> Keep my_box (* stale prism slot: not (or no longer) here *)

  (* Fall through to the toggle bit (Fig. 4 part 2).  [missed] says
     whether this traversal saw a potential prism partner but failed to
     collide — only the seeded {!t.bug} consults it. *)
  let toggle_phase t ~kind ~missed ~my_cell ~my_box : 'v Location.outcome =
    let i = toggle_index t kind in
    if Etrace.on Etrace.lv_events then
      Etrace.emit
        (Etrace.Event.Toggle_wait
           { pid = E.pid (); time = E.now (); balancer = t.id });
    Lock.acquire t.locks.(i);
    if E.compare_and_set my_cell my_box Location.Empty then begin
      let old = E.get t.toggles.(i) in
      (match t.bug with
      | Some `Skip_toggle_on_miss when missed ->
          () (* seeded defect: leave the toggle unflipped *)
      | _ -> E.set t.toggles.(i) (not old));
      Lock.release t.locks.(i);
      Elim_stats.note_toggled t.stats;
      let wire = toggle_wire t kind ~old in
      Elim_stats.note_exit t.stats kind ~wire;
      if Etrace.on Etrace.lv_events then
        Etrace.emit
          (Etrace.Event.Toggle_pass
             { pid = E.pid (); time = E.now (); balancer = t.id; toggled = true });
      Location.Exit wire
    end
    else begin
      Lock.release t.locks.(i);
      if Etrace.on Etrace.lv_events then
        Etrace.emit
          (Etrace.Event.Toggle_pass
             {
               pid = E.pid ();
               time = E.now ();
               balancer = t.id;
               toggled = false;
             });
      claimed_outcome t ~kind my_cell
    end

  let trace_kind : Location.kind -> Etrace.Event.token_kind = function
    | Location.Token -> Etrace.Event.Token
    | Location.Anti -> Etrace.Event.Anti

  (* Reactive entry hook: count this entry towards the adaptation
     epoch; on epoch close, feed the stats window to the controller and
     announce whatever changed on the trace.  Pure host-level work —
     zero engine operations, zero simulated cycles. *)
  let adapt_on_entry t ~pid =
    match t.ctl with
    | None -> ()
    | Some c ->
        if Adapt.Controller.tick c then begin
          let w = Elim_stats.take_window t.stats in
          let d =
            Adapt.Controller.decide c
              {
                Adapt.entries = w.w_entries;
                hits = w.w_hits;
                misses = w.w_misses;
                toggled = w.w_toggled;
              }
          in
          if Etrace.on Etrace.lv_events && Adapt.Controller.changed d then begin
            if d.spin_changed then
              Etrace.emit
                (Etrace.Event.Adapt_spin
                   { pid; time = E.now (); balancer = t.id; spin = d.spin });
            List.iteri
              (fun layer width ->
                if List.nth d.width_changed layer then
                  Etrace.emit
                    (Etrace.Event.Adapt_width
                       { pid; time = E.now (); balancer = t.id; layer; width }))
              d.widths
          end
        end

  (* Shepherd one token or anti-token through this balancer. *)
  let traverse t ~(kind : Location.kind) ~(value : 'v option) :
      'v Location.outcome =
    Elim_stats.entered t.stats kind;
    let p = E.pid () in
    adapt_on_entry t ~pid:p;
    if Etrace.on Etrace.lv_events then
      Etrace.emit
        (Etrace.Event.Balancer_enter
           {
             pid = p;
             time = E.now ();
             balancer = t.id;
             depth = t.depth;
             kind = trace_kind kind;
           });
    let my_cell = t.location.(p) in
    let nprisms = Array.length t.prisms in
    let rec prism_phase i my_box ~missed =
      if i >= nprisms then toggle_phase t ~kind ~missed ~my_cell ~my_box
      else begin
        if Etrace.on Etrace.lv_events then
          Etrace.emit
            (Etrace.Event.Prism_enter
               { pid = p; time = E.now (); balancer = t.id; layer = i });
        let layer_result =
          let prism = t.prisms.(i) in
          (* Effective width: the whole allocation when static, the
             controller's current (clamped) width when reactive. *)
          let limit =
            match t.ctl with
            | None -> Array.length prism
            | Some c -> Adapt.Controller.width c ~layer:i
          in
          let slot = E.random_int limit in
          let him = E.exchange prism.(slot) p in
          let candidate = him >= 0 && him <> p in
          let attempt =
            if candidate then try_collide t ~kind ~value ~my_cell ~my_box him
            else Keep my_box
          in
          (* An elimination miss: a potential partner was there, yet no
             collision came of it (lost claim or stale entry). *)
          let miss_here =
            candidate && match attempt with Keep _ -> true | Done _ -> false
          in
          if miss_here then Elim_stats.note_miss t.stats;
          let missed = missed || miss_here in
          match attempt with
          | Done o -> (`Done o, missed)
          | Keep my_box -> (
              (* Wait in hope of being collided with, then check. *)
              if Etrace.on Etrace.lv_events then
                Etrace.emit (Etrace.Event.Spin_begin { pid = p; time = E.now () });
              E.delay
                (match t.ctl with
                | None -> t.spin
                | Some c -> Adapt.Controller.spin c);
              if Etrace.on Etrace.lv_events then
                Etrace.emit (Etrace.Event.Spin_end { pid = p; time = E.now () });
              match E.get my_cell with
              | Location.Diffracted | Location.Eliminated_slot _ ->
                  (`Done (claimed_outcome t ~kind my_cell), missed)
              | Location.Announced _ | Location.Empty -> (`Keep my_box, missed))
        in
        if Etrace.on Etrace.lv_events then
          Etrace.emit
            (Etrace.Event.Prism_exit
               { pid = p; time = E.now (); balancer = t.id; layer = i });
        match layer_result with
        | `Done outcome, _ -> outcome
        | `Keep my_box, missed -> prism_phase (i + 1) my_box ~missed
      end
    in
    let outcome = prism_phase 0 (announce t ~kind ~value) ~missed:false in
    if Etrace.on Etrace.lv_events then
      Etrace.emit
        (Etrace.Event.Balancer_exit
           {
             pid = p;
             time = E.now ();
             balancer = t.id;
             depth = t.depth;
             wire =
               (match outcome with
               | Location.Exit w -> Some w
               | Location.Eliminated _ -> None);
           });
    outcome

  let stats t = t.stats

  (* Current reactive state, [(spin, widths)]; [None] under `Static. *)
  let adapt_state t = Option.map Adapt.Controller.snapshot t.ctl
  let controller t = t.ctl
end
