(** [IncDecCounter[w]] (paper §3.1): a counting tree of gap elimination
    balancers supporting concurrent increments (tokens) and decrements
    (anti-tokens) with the gap step property (Lemma 3.2) on its
    outputs.

    As a counter, leaf [i] carries the value sequence [i, i+w, ...].
    An increment/decrement pair that eliminates inside the tree
    cancels without touching a leaf and both return {!Make.Paired}
    (linearized as adjacent operations); create with
    [~eliminate:false] when every operation must fetch a concrete
    value. *)

module Make (E : Engine.S) : sig
  module Tree : module type of Elim_tree.Make (E)

  type outcome =
    | Slot of int  (** the value fetched at a leaf *)
    | Paired       (** cancelled against a concurrent opposite op *)

  type t

  val create :
    ?config:Tree_config.t ->
    ?policy:Adapt.policy ->
    ?eliminate:bool ->
    capacity:int ->
    width:int ->
    unit ->
    t
  (** [policy] overrides the config's adaptation policy (see
      {!Elim_pool.Make.create}). *)

  val increment : t -> outcome
  val decrement : t -> outcome

  val traverse : t -> kind:Location.kind -> unit Tree.result
  (** Raw tree access, for property tests of the gap step property. *)

  val stats_by_level : t -> Elim_stats.t list

  val balancer_stats_by_level : t -> Elim_stats.t list list
  (** Live per-balancer records grouped by depth (see
      {!Elim_tree.Make.balancer_stats_by_level}). *)

  val adapt_by_level : t -> (int * int list) list list
  (** Current reactive [(spin, widths)] per balancer by depth; empty
      inner lists under [`Static]. *)
end
