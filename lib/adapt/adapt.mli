(** Reactive elimination: per-balancer adaptive spin windows and
    elastic prism widths (docs/ADAPTIVE.md).

    A {!Controller} applies a multiplicative-increase /
    multiplicative-decrease rule with a hysteresis dead band to a
    balancer's spin window and per-layer effective prism widths, driven
    by the balancer's own windowed counters.  Decisions are
    seed-deterministic (a private {!Engine.Splitmix} stream, no wall
    clock, no engine-visible state) so simulated runs stay
    byte-replayable. *)

type config = {
  period : int;   (** balancer entries per adaptation epoch (>= 1) *)
  hi_pct : int;   (** grow when hit%% >= [hi_pct] *)
  lo_pct : int;   (** shrink when hit%% <= [lo_pct]; <= [hi_pct] *)
  up_num : int;
  up_den : int;   (** increase factor [up_num/up_den] >= 1 *)
  down_num : int;
  down_den : int; (** decrease factor [down_num/down_den] <= 1 *)
  min_pct : int;  (** clamp floor, percent of the static value *)
  max_pct : int;  (** clamp ceiling, percent of the static value *)
  seed : int;     (** derives every controller's private stream *)
}

val default : config

val validate_config : config -> config
(** Returns its argument; raises [Invalid_argument] on nonsense
    (period < 1, inverted thresholds, factors on the wrong side of 1,
    empty clamp band). *)

type policy = [ `Static | `Reactive of config ]
(** [`Static] is the paper's hand tuning; [`Reactive c] runs a
    controller per balancer.  With [c.min_pct = c.max_pct = 100] the
    controller is clamped to the static values and a simulated run is
    byte-identical to [`Static]. *)

val policy_name : policy -> string

val clamp_bounds : config -> base:int -> int * int
(** [(lo, hi)] band for a knob whose static value is [base]; both ends
    at least 1. *)

type window = {
  entries : int;
  hits : int;    (** eliminated + diffracted individuals *)
  misses : int;  (** candidate seen but no collision came of it *)
  toggled : int; (** fell through to the serialized toggle *)
}
(** One observation window of a balancer's counters, as plain counts. *)

type direction = Grow | Shrink | Hold

val direction_name : direction -> string

module Controller : sig
  type t

  val create : config:config -> id:int -> spin0:int -> widths0:int list -> t
  (** [spin0] and [widths0] are the balancer's static settings; they
      seed the current values and define the clamp bands.  [id] (the
      balancer's tree index) splits the private decision stream. *)

  val spin : t -> int
  val width : t -> layer:int -> int
  val widths : t -> int list
  val spin_bounds : t -> int * int
  val width_bounds : t -> layer:int -> int * int

  val alloc_widths : t -> int list
  (** Prism array sizes to allocate: the clamp ceilings, so widths can
      grow without reallocating shared arrays mid-run. *)

  val tick : t -> bool
  (** Count one balancer entry; [true] when this entry closes an
      adaptation epoch and the caller should {!decide} on the window. *)

  type decision = {
    dir : direction;
    spin : int;
    widths : int list;
    spin_changed : bool;
    width_changed : bool list;  (** per layer, outermost first *)
  }

  val changed : decision -> bool

  val decide : t -> window -> decision
  (** Apply the MIMD rule to one window and update the current values.
      Deterministic given the controller's construction and the
      sequence of windows fed to it. *)

  val epochs : t -> int
  val grows : t -> int
  val shrinks : t -> int
  val last_direction : t -> direction

  val snapshot : t -> int * int list
  (** Current [(spin, widths)]. *)
end
