(* Reactive elimination (etrees.adapt): adaptive spin windows and
   elastic prism widths.

   The paper tunes every balancer by hand — spin halving with depth,
   prism widths fixed per level (§2.5, DESIGN.md §6).  Those settings
   win at saturation but pay the whole collision window as pure latency
   when the tree is lightly loaded: a traversal that will never meet a
   partner still spins [spin] cycles per prism layer before it may fall
   through to the toggle.  Later work (dynamic elimination-combining,
   Bar-Nissan/Hendler/Suissa 2011; the adaptive elimination priority
   queue, Calciu/Mendes/Herlihy 2014) showed the knobs should react to
   observed contention.  This module is that policy layer.

   One {!Controller} per balancer watches the balancer's own cheap
   window counters ({!Core.Elim_stats.take_window}: entries, hits =
   eliminations + diffractions, elimination misses, toggle falls) and
   every [period] entries applies a multiplicative-increase /
   multiplicative-decrease (MIMD) rule with a hysteresis dead band:

   - hit% = 100 * hits / entries — the fraction of window entries whose
     collision window earned its keep (the complement, up to in-flight
     slack, of the toggle-fall rate).  Misses are recorded in the
     window and exported, but they are per-attempt (one entry can miss
     several times across prism layers) and stay high even when the
     tree is nearly idle, so they make a poor direction signal; the
     measured hit rate is the one that separates a saturated level from
     a lightly loaded one;
   - hit% >= hi: grow the spin window and the effective prism widths by
     [up], back toward the static tuning (the window is earning
     collisions — the ceiling, [max_pct] of static, caps how far);
   - hit% <= lo: shrink both by [down] (entries are falling through to
     the serialized toggle without colliding — stop paying the window
     and concentrate the few announcements on a narrower prism);
   - lo < hit% < hi: hold (the dead band is the hysteresis — a value
     that just moved will not bounce back on a marginal window).

   Every adapted value is clamped to a band derived from its static
   (paper-tuned) setting: [min_pct]/[max_pct] percent of the static
   value.  The default ceiling is the static value itself
   ([max_pct = 100]): the bench sweep shows over-long windows lose at
   saturation *and* at low load, so reactive only ever gives back what
   shrinking took.  With [min_pct = max_pct = 100] the controller still
   runs but every decision lands back on the static value — the
   differential tests use this to prove the plumbing is behaviourally
   invisible.

   Determinism: decisions are a pure function of the window counters
   plus a private {!Engine.Splitmix} stream seeded from
   [(config.seed, balancer id)] (used only for randomized rounding of
   the multiplicative steps).  No wall clock, no engine state: a
   simulated run with a reactive tree is byte-replayable, and the
   controller itself performs no engine-visible shared-memory
   operations — its state is host-level, like {!Core.Elim_stats}
   (single-writer-at-a-time under the simulator; racy-but-approximate
   under the native engine, exactly like the stats it reads). *)

type config = {
  period : int;  (* balancer entries per adaptation epoch (>= 1) *)
  hi_pct : int;  (* grow when hit% >= hi_pct *)
  lo_pct : int;  (* shrink when hit% <= lo_pct; lo_pct <= hi_pct *)
  up_num : int;
  up_den : int;  (* multiplicative increase factor up_num/up_den > 1 *)
  down_num : int;
  down_den : int;  (* multiplicative decrease factor < 1 *)
  min_pct : int;  (* clamp floor, percent of the static value *)
  max_pct : int;  (* clamp ceiling, percent of the static value *)
  seed : int;  (* derives every controller's private stream *)
}

(* Defaults picked by the A1 sweep (EXPERIMENTS.md): decide every 128
   entries (a window small enough to react within a few thousand cycles
   but big enough that a saturated level's hit rate — ~94% and up, with
   a binomial std of ~2 points — cannot wander into the shrink region
   by noise), shrink gently (x3/4) and regrow fast (x3/2), allow an
   ~8x shrink, and cap growth at the static tuning itself
   (max_pct = 100: the sweep shows longer-than-paper windows lose at
   both ends of the load axis). *)
let default =
  {
    period = 128;
    hi_pct = 92;
    lo_pct = 80;
    up_num = 3;
    up_den = 2;
    down_num = 3;
    down_den = 4;
    min_pct = 12;
    max_pct = 100;
    seed = 0x5EED;
  }

let validate_config c =
  if c.period < 1 then invalid_arg "Adapt: period must be >= 1";
  if not (0 <= c.lo_pct && c.lo_pct <= c.hi_pct && c.hi_pct <= 100) then
    invalid_arg "Adapt: need 0 <= lo_pct <= hi_pct <= 100";
  if c.up_den < 1 || c.up_num < c.up_den then
    invalid_arg "Adapt: up factor must be >= 1";
  if c.down_num < 0 || c.down_den < 1 || c.down_num > c.down_den then
    invalid_arg "Adapt: down factor must be <= 1";
  if c.min_pct < 1 || c.max_pct < c.min_pct then
    invalid_arg "Adapt: need 1 <= min_pct <= max_pct";
  c

type policy = [ `Static | `Reactive of config ]

let policy_name = function `Static -> "static" | `Reactive _ -> "reactive"

(* The clamp band for one knob whose static (paper) value is [base]:
   never below 1 either way. *)
let clamp_bounds config ~base =
  let lo = max 1 (base * config.min_pct / 100) in
  let hi = max lo (base * config.max_pct / 100) in
  (lo, hi)

(* One observation window, as plain counts (the balancer converts its
   {!Core.Elim_stats} window into this; [adapt] must not depend on
   [core], which depends back on it through {!Core.Tree_config}). *)
type window = {
  entries : int;
  hits : int;  (* eliminated + diffracted individuals *)
  misses : int;  (* candidate seen, no collision came of it *)
  toggled : int;  (* fell through to the serialized toggle *)
}

type direction = Grow | Shrink | Hold

let direction_name = function
  | Grow -> "grow"
  | Shrink -> "shrink"
  | Hold -> "hold"

module Controller = struct
  type t = {
    config : config;
    rng : Engine.Splitmix.t;  (* private stream: randomized rounding *)
    spin_base : int;
    spin_lo : int;
    spin_hi : int;
    width_base : int array;  (* static prism widths, outermost first *)
    width_lo : int array;
    width_hi : int array;
    mutable spin : int;
    widths : int array;  (* current effective widths *)
    mutable since_epoch : int;  (* entries since the last decision *)
    mutable epochs : int;
    mutable grows : int;
    mutable shrinks : int;
    mutable last : direction;
  }

  let clamp ~lo ~hi v = min hi (max lo v)

  let create ~config ~id ~spin0 ~widths0 =
    let config = validate_config config in
    let widths0 = Array.of_list widths0 in
    let bounds base = Array.map (fun b -> clamp_bounds config ~base:b) base in
    let wb = bounds widths0 in
    let spin_lo, spin_hi = clamp_bounds config ~base:(max 1 spin0) in
    {
      config;
      rng = Engine.Splitmix.stream ~seed:config.seed ~index:id;
      spin_base = max 1 spin0;
      spin_lo;
      spin_hi;
      width_base = widths0;
      width_lo = Array.map fst wb;
      width_hi = Array.map snd wb;
      (* Start clamped: a band that excludes the static value (e.g.
         min_pct > 100) must bind from the first entry, not only after
         the first Grow/Shrink epoch. *)
      spin = clamp ~lo:spin_lo ~hi:spin_hi (max 1 spin0);
      widths = Array.mapi (fun i b -> clamp ~lo:(fst wb.(i)) ~hi:(snd wb.(i)) b) widths0;
      since_epoch = 0;
      epochs = 0;
      grows = 0;
      shrinks = 0;
      last = Hold;
    }

  let spin t = t.spin
  let width t ~layer = t.widths.(layer)
  let widths t = Array.to_list t.widths
  let spin_bounds t = (t.spin_lo, t.spin_hi)
  let width_bounds t ~layer = (t.width_lo.(layer), t.width_hi.(layer))

  (* Prism allocation sizes: the clamp ceilings, so an elastic width can
     grow without reallocating shared arrays mid-run. *)
  let alloc_widths t = Array.to_list t.width_hi

  let epochs t = t.epochs
  let grows t = t.grows
  let shrinks t = t.shrinks
  let last_direction t = t.last

  (* Count one balancer entry; [true] when this entry closes an
     adaptation epoch and the caller should feed the window to
     {!decide}. *)
  let tick t =
    t.since_epoch <- t.since_epoch + 1;
    if t.since_epoch >= t.config.period then begin
      t.since_epoch <- 0;
      true
    end
    else false

  type decision = {
    dir : direction;
    spin : int;
    widths : int list;
    spin_changed : bool;
    width_changed : bool list;  (* per layer, outermost first *)
  }

  let changed d = d.spin_changed || List.exists Fun.id d.width_changed

  (* Randomized-rounding multiplicative step, drawn from the private
     stream so equal counters always round the same way per seed. *)
  let scale t ~num ~den v = ((v * num) + Engine.Splitmix.int t.rng den) / den

  let decide t (w : window) =
    t.epochs <- t.epochs + 1;
    let dir =
      if w.entries <= 0 then Hold
      else
        let hit_pct = 100 * w.hits / w.entries in
        if hit_pct >= t.config.hi_pct then Grow
        else if hit_pct <= t.config.lo_pct then Shrink
        else Hold
    in
    (* Consume the stream uniformly across directions: a Hold epoch
       must leave the rounding stream where a Grow/Shrink epoch would,
       so later decisions do not depend on the dead band's history. *)
    let step ~lo ~hi v =
      match dir with
      | Grow ->
          clamp ~lo ~hi
            (max (v + 1) (scale t ~num:t.config.up_num ~den:t.config.up_den v))
      | Shrink ->
          clamp ~lo ~hi
            (min (v - 1)
               (scale t ~num:t.config.down_num ~den:t.config.down_den v))
      | Hold ->
          let (_ : int) = Engine.Splitmix.int t.rng 2 in
          v
    in
    let spin' = step ~lo:t.spin_lo ~hi:t.spin_hi t.spin in
    let spin_changed = spin' <> t.spin in
    t.spin <- spin';
    let width_changed =
      List.init (Array.length t.widths) (fun i ->
          let w' = step ~lo:t.width_lo.(i) ~hi:t.width_hi.(i) t.widths.(i) in
          let c = w' <> t.widths.(i) in
          t.widths.(i) <- w';
          c)
    in
    (match dir with
    | Grow -> t.grows <- t.grows + 1
    | Shrink -> t.shrinks <- t.shrinks + 1
    | Hold -> ());
    t.last <- dir;
    { dir; spin = spin'; widths = Array.to_list t.widths; spin_changed;
      width_changed }

  (* Everything a report needs about one controller's current state. *)
  let snapshot (t : t) = (t.spin, Array.to_list t.widths)
end
