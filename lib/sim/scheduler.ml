(* The discrete-event scheduler at the heart of the simulator.

   Each simulated processor is an OCaml 5 effect-handler coroutine.  A
   processor runs its OCaml code instantaneously (local computation is
   charged explicitly through [Delay]) until it performs a shared-memory
   effect; the handler then computes the operation's completion time —
   including any queueing behind earlier operations on the same location
   — and parks the continuation in the event heap.  The main loop pops
   events in (time, insertion) order, so the whole machine is a
   deterministic function of the seed.

   An operation's side effect ([run]) executes when its event fires, not
   when it is issued: operations therefore linearize in completion-time
   order, and per-location serialization (see {!Memory}) guarantees that
   two operations on one location never reorder. *)

exception Aborted
(* Raised inside a simulated processor when the run hits [abort_after]. *)

type _ Effect.t +=
  | Serialized : {
      loc : Memory.loc;
      latency : int;
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (* A write or read-modify-write: queues behind [loc.busy_until]. *)
  | Immediate : { latency : int; run : unit -> 'r } -> 'r Effect.t
        (* A read: fixed latency, no serialization. *)
  | Delay : int -> unit Effect.t  (* local computation / spin-waiting *)

type event = { fire : unit -> unit; abort : unit -> unit }

type t = {
  nprocs : int;
  config : Memory.config;
  heap : event Event_heap.t;
  rngs : Engine.Splitmix.t array;
  mutable clock : int;
  mutable seq : int;
  mutable live : int;
  mutable current : int;
  mutable events_fired : int;
  mutable aborted : int;
  mutable op_reads : int;  (* engine-level operation counters *)
  mutable op_writes : int;
  mutable op_rmws : int;
}

type stats = {
  end_clock : int;
  events_fired : int;
  aborted_procs : int;
  reads : int;
  writes : int;
  rmws : int;
}

(* The running scheduler.  The simulator is strictly single-threaded (one
   OS thread multiplexes all simulated processors), so a plain ref is
   safe; it is saved and restored across nested runs. *)
let active : t option ref = ref None

let the_sched () =
  match !active with
  | Some t -> t
  | None ->
      failwith
        "Sim: a simulated-engine operation was performed outside Sim.run"

let schedule t time ev =
  Event_heap.push t.heap ~time ~seq:t.seq ev;
  t.seq <- t.seq + 1

let start t p body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Aborted -> t.aborted <- t.aborted + 1
          | e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Delay n ->
              Some
                (fun (k : (b, _) continuation) ->
                  let n = if n < 1 then 1 else n in
                  schedule t (t.clock + n)
                    {
                      fire =
                        (fun () ->
                          t.current <- p;
                          continue k ());
                      abort = (fun () -> discontinue k Aborted);
                    })
          | Immediate { latency; run } ->
              Some
                (fun (k : (b, _) continuation) ->
                  schedule t (t.clock + latency)
                    {
                      fire =
                        (fun () ->
                          t.current <- p;
                          continue k (run ()));
                      abort = (fun () -> discontinue k Aborted);
                    })
          | Serialized { loc; latency; run } ->
              Some
                (fun (k : (b, _) continuation) ->
                  let begins =
                    if loc.Memory.busy_until > t.clock then
                      loc.Memory.busy_until
                    else t.clock
                  in
                  let finish = begins + latency in
                  (* Analysis hook: observe the new service window while
                     [loc]'s pending stamp still describes the previous
                     one (overlap would mean a broken busy-until chain),
                     then stamp. *)
                  (match !Memory.tracer with
                  | Some tr ->
                      tr.Memory.on_issue loc ~pid:t.current ~now:t.clock
                        ~begins ~finish
                  | None -> ());
                  Memory.issue_stamp loc ~pid:t.current ~begins ~finish;
                  loc.Memory.busy_until <- finish;
                  schedule t finish
                    {
                      fire =
                        (fun () ->
                          t.current <- p;
                          continue k (run ()));
                      abort = (fun () -> discontinue k Aborted);
                    })
          | _ -> None);
    }
  in
  t.current <- p;
  match_with body p handler

(* Run [procs] simulated processors, each executing [body pid], until
   every processor terminates or the clock passes [abort_after] (at which
   point the remaining processors are unwound with {!Aborted}). *)
let run ?(seed = 0x5eed) ?(config = Memory.default_config) ?abort_after
    ~procs body =
  if procs <= 0 then invalid_arg "Sim.run: procs must be positive";
  let base = Engine.Splitmix.of_int seed in
  let t =
    {
      nprocs = procs;
      config;
      heap = Event_heap.create ();
      rngs = Array.init procs (fun i -> Engine.Splitmix.split base ~index:i);
      clock = 0;
      seq = 0;
      live = procs;
      current = 0;
      events_fired = 0;
      aborted = 0;
      op_reads = 0;
      op_writes = 0;
      op_rmws = 0;
    }
  in
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) @@ fun () ->
  for p = 0 to procs - 1 do
    schedule t 0
      {
        fire = (fun () -> start t p body);
        abort = (fun () -> t.live <- t.live - 1);
      }
  done;
  let horizon = match abort_after with Some h -> h | None -> max_int in
  let rec loop () =
    match Event_heap.pop t.heap with
    | None -> ()
    | Some (time, _seq, ev) ->
        if time > horizon then begin
          ev.abort ();
          Event_heap.drain t.heap (fun _ _ ev -> ev.abort ())
        end
        else begin
          t.clock <- time;
          t.events_fired <- t.events_fired + 1;
          ev.fire ();
          loop ()
        end
  in
  loop ();
  assert (t.live = 0);
  {
    end_clock = t.clock;
    events_fired = t.events_fired;
    aborted_procs = t.aborted;
    reads = t.op_reads;
    writes = t.op_writes;
    rmws = t.op_rmws;
  }
