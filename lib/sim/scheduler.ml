(* The discrete-event scheduler at the heart of the simulator.

   Each simulated processor is an OCaml 5 effect-handler coroutine.  A
   processor runs its OCaml code instantaneously (local computation is
   charged explicitly through [Delay]) until it performs a shared-memory
   effect; the handler then computes the operation's completion time —
   including any queueing behind earlier operations on the same location
   — and parks the continuation in the event heap.  The main loop pops
   events in (time, insertion) order, so the whole machine is a
   deterministic function of the seed.

   An operation's side effect ([run]) executes when its event fires, not
   when it is issued: operations therefore linearize in completion-time
   order, and per-location serialization (see {!Memory}) guarantees that
   two operations on one location never reorder. *)

exception Aborted
(* Raised inside a simulated processor when the run hits [abort_after]. *)

type _ Effect.t +=
  | Serialized : {
      loc : Memory.loc;
      latency : int;
      kind : Etrace.Event.mem_kind; (* for the trace timeline only *)
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (* A write or read-modify-write: queues behind [loc.busy_until]. *)
  | Immediate : {
      loc : Memory.loc option;
      latency : int;
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (* A read: fixed latency, no serialization. *)
  | Delay : int -> unit Effect.t  (* local computation / spin-waiting *)

type event = { pid : int; fire : unit -> unit; abort : unit -> unit }

(* Controlled scheduling (etrees.check).  A controller takes over every
   scheduling decision: instead of firing events in (time, seq) order,
   each processor's single pending event is parked in a per-pid slot,
   local steps (proc starts, delays, pure pauses) are fired eagerly,
   and whenever every live processor is parked on a shared-memory
   access the controller picks which one commits next.  Each decision
   commits exactly one access, so the chosen pid sequence fully
   determines the interleaving — the substrate for the stateless model
   checker in lib/check. *)

type access_kind = Acc_read | Acc_write | Acc_rmw

type access = { acc_loc : Memory.loc; acc_kind : access_kind }

type choice = Fire of int | Quit

type controller = (int * access) list -> choice

(* Fault injection (etrees.faults).  The injector is consulted at three
   points: before any processor event fires (stall/crash), when a
   memory operation's service cost is computed (hot spots), and when a
   [Delay] is issued (jitter).  All hooks must be pure, so that a run
   remains a deterministic function of (seed, plan). *)

type fault_action = Fault_proceed | Fault_defer of int | Fault_drop

type injector = {
  on_event : pid:int -> time:int -> fault_action;
  mem_latency : loc:Memory.loc -> pid:int -> now:int -> base:int -> int;
  delay_jitter : pid:int -> now:int -> base:int -> int;
}

let no_injector =
  {
    on_event = (fun ~pid:_ ~time:_ -> Fault_proceed);
    mem_latency = (fun ~loc:_ ~pid:_ ~now:_ ~base -> base);
    delay_jitter = (fun ~pid:_ ~now:_ ~base:_ -> 0);
  }

type t = {
  nprocs : int;
  config : Memory.config;
  heap : event Event_heap.t;
  rngs : Engine.Splitmix.t array;
  injector : injector option;
  controller : controller option;
  pending : (int * event * access option) option array;
  (* controller mode only: per-pid parked (time, event, access) *)
  mutable clock : int;
  mutable seq : int;
  mutable live : int;
  mutable current : int;
  mutable events_fired : int;
  mutable aborted : int;
  mutable crashed : int;
  mutable fault_defers : int;
  mutable op_reads : int;  (* engine-level operation counters *)
  mutable op_writes : int;
  mutable op_rmws : int;
  mutable queue_wait : int; (* cycles serialized ops spent queueing *)
}

type stats = {
  end_clock : int;
  events_fired : int;
  aborted_procs : int;
  crashed_procs : int;
  fault_defers : int;
  reads : int;
  writes : int;
  rmws : int;
  queue_wait_cycles : int;
}

(* The running scheduler.  The simulator is strictly single-threaded (one
   OS thread multiplexes all simulated processors), so a plain ref is
   safe; it is saved and restored across nested runs. *)
let active : t option ref = ref None

let the_sched () =
  match !active with
  | Some t -> t
  | None ->
      failwith
        "Sim: a simulated-engine operation was performed outside Sim.run"

(* Park an event: into the heap normally, into the per-pid slot under a
   controller.  [access] describes the shared-memory access the event
   will commit (None for local steps), and is what the controller sees. *)
let park t ~access time ev =
  (match t.controller with
  | None -> Event_heap.push t.heap ~time ~seq:t.seq ev
  | Some _ ->
      assert (t.pending.(ev.pid) = None);
      t.pending.(ev.pid) <- Some (time, ev, access));
  t.seq <- t.seq + 1

let schedule t time ev = park t ~access:None time ev

(* Fault-adjusted service cost of a memory operation on [loc] issued
   now by the current processor. *)
let faulted_latency t ~loc ~base =
  match t.injector with
  | None -> base
  | Some inj ->
      let l = inj.mem_latency ~loc ~pid:t.current ~now:t.clock ~base in
      if l < 1 then 1 else l

let start t p body =
  let open Effect.Deep in
  let handler =
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          if Etrace.on Etrace.lv_ops then
            Etrace.emit
              (Etrace.Event.Proc_end
                 { pid = p; time = t.clock; reason = Etrace.Event.Finished }));
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Aborted ->
              t.aborted <- t.aborted + 1;
              if Etrace.on Etrace.lv_ops then
                Etrace.emit
                  (Etrace.Event.Proc_end
                     { pid = p; time = t.clock; reason = Etrace.Event.Aborted })
          | e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Delay n ->
              Some
                (fun (k : (b, _) continuation) ->
                  let n = if n < 1 then 1 else n in
                  let n =
                    match t.injector with
                    | None -> n
                    | Some inj ->
                        let j =
                          inj.delay_jitter ~pid:t.current ~now:t.clock ~base:n
                        in
                        if j > 0 then n + j else n
                  in
                  let issued = t.clock in
                  park t ~access:None (t.clock + n)
                    {
                      pid = p;
                      fire =
                        (fun () ->
                          t.current <- p;
                          if Etrace.on Etrace.lv_full then
                            Etrace.emit
                              (Etrace.Event.Delay_done
                                 { pid = p; issued; planned = n; fired = t.clock });
                          continue k ());
                      abort = (fun () -> discontinue k Aborted);
                    })
          | Immediate { loc; latency; run } ->
              Some
                (fun (k : (b, _) continuation) ->
                  let latency =
                    match loc with
                    | Some loc -> faulted_latency t ~loc ~base:latency
                    | None -> latency
                  in
                  let issued = t.clock in
                  let loc_id =
                    match loc with Some l -> l.Memory.id | None -> -1
                  in
                  (* The access descriptor only feeds the controller's
                     scheduling decision; skip the per-read record and
                     option allocation on ordinary runs. *)
                  let access =
                    match t.controller with
                    | None -> None
                    | Some _ -> (
                        match loc with
                        | Some l -> Some { acc_loc = l; acc_kind = Acc_read }
                        | None -> None)
                  in
                  park t ~access (t.clock + latency)
                    {
                      pid = p;
                      fire =
                        (fun () ->
                          t.current <- p;
                          if Etrace.on Etrace.lv_full then
                            Etrace.emit
                              (Etrace.Event.Mem_op
                                 {
                                   pid = p;
                                   kind = Etrace.Event.Read;
                                   loc = loc_id;
                                   issued;
                                   begins = issued;
                                   finish = issued + latency;
                                   fired = t.clock;
                                 });
                          continue k (run ()));
                      abort = (fun () -> discontinue k Aborted);
                    })
          | Serialized { loc; latency; kind; run } ->
              Some
                (fun (k : (b, _) continuation) ->
                  let latency = faulted_latency t ~loc ~base:latency in
                  let begins =
                    if loc.Memory.busy_until > t.clock then
                      loc.Memory.busy_until
                    else t.clock
                  in
                  let finish = begins + latency in
                  t.queue_wait <- t.queue_wait + (begins - t.clock);
                  (* Analysis hook: observe the new service window while
                     [loc]'s pending stamp still describes the previous
                     one (overlap would mean a broken busy-until chain),
                     then stamp. *)
                  (match !Memory.tracer with
                  | Some tr ->
                      tr.Memory.on_issue loc ~pid:t.current ~now:t.clock
                        ~begins ~finish
                  | None -> ());
                  Memory.issue_stamp loc ~pid:t.current ~begins ~finish;
                  loc.Memory.busy_until <- finish;
                  let issued = t.clock in
                  (* Controller-only, as above: ordinary runs never read
                     the descriptor, so don't allocate it per op. *)
                  let access =
                    match t.controller with
                    | None -> None
                    | Some _ ->
                        Some
                          {
                            acc_loc = loc;
                            acc_kind =
                              (match kind with
                              | Etrace.Event.Read -> Acc_read
                              | Etrace.Event.Write -> Acc_write
                              | Etrace.Event.Rmw -> Acc_rmw);
                          }
                  in
                  park t ~access finish
                    {
                      pid = p;
                      fire =
                        (fun () ->
                          t.current <- p;
                          if Etrace.on Etrace.lv_full then
                            Etrace.emit
                              (Etrace.Event.Mem_op
                                 {
                                   pid = p;
                                   kind;
                                   loc = loc.Memory.id;
                                   issued;
                                   begins;
                                   finish;
                                   fired = t.clock;
                                 });
                          continue k (run ()));
                      abort = (fun () -> discontinue k Aborted);
                    })
          | _ -> None);
    }
  in
  t.current <- p;
  if Etrace.on Etrace.lv_ops then
    Etrace.emit (Etrace.Event.Proc_start { pid = p; time = t.clock });
  match_with body p handler

(* Process-cumulative counters across every completed [run] — the
   deterministic odometer the benchmark meta probe (Report.Meta) reads
   around each experiment.  Updated once per run, on the normal return
   path, so the hot loop pays nothing. *)
type totals = { t_events : int; t_reads : int; t_writes : int; t_rmws : int }

let grand = ref { t_events = 0; t_reads = 0; t_writes = 0; t_rmws = 0 }
let totals () = !grand

(* Run [procs] simulated processors, each executing [body pid], until
   every processor terminates or the clock passes [abort_after] (at which
   point the remaining processors are unwound with {!Aborted}).  With an
   [injector], every processor event is submitted to it first: deferred
   events are re-queued at the stall's end, and dropped events
   crash-stop their processor — the parked continuation is discarded
   without unwinding, so cleanup code never runs and any held lock
   stays held, which is exactly crash-stop semantics. *)
let run ?(seed = 0x5eed) ?(config = Memory.default_config) ?abort_after
    ?injector ?controller ~procs body =
  if procs <= 0 then invalid_arg "Sim.run: procs must be positive";
  if Option.is_some injector && Option.is_some controller then
    invalid_arg "Sim.run: a controller cannot be combined with an injector";
  let base = Engine.Splitmix.of_int seed in
  let t =
    {
      nprocs = procs;
      config;
      heap = Event_heap.create ();
      rngs = Array.init procs (fun i -> Engine.Splitmix.split base ~index:i);
      injector;
      controller;
      pending = Array.make procs None;
      clock = 0;
      seq = 0;
      live = procs;
      current = 0;
      events_fired = 0;
      aborted = 0;
      crashed = 0;
      fault_defers = 0;
      op_reads = 0;
      op_writes = 0;
      op_rmws = 0;
      queue_wait = 0;
    }
  in
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) @@ fun () ->
  for p = 0 to procs - 1 do
    schedule t 0
      {
        pid = p;
        fire = (fun () -> start t p body);
        abort = (fun () -> t.live <- t.live - 1);
      }
  done;
  let horizon = match abort_after with Some h -> h | None -> max_int in
  (* Controlled mode: the controller, not the clock, decides firing
     order.  Local steps (access None) are not scheduling decisions and
     fire eagerly in pid order; once every live processor is parked on
     a shared-memory access, the controller picks the one that commits
     next.  [Quit] (or the horizon) unwinds every parked processor. *)
  let ctl_loop choose =
    let overran = ref false in
    let fire time ev =
      if time > horizon then begin
        overran := true;
        ev.abort ()
      end
      else begin
        if time > t.clock then t.clock <- time;
        t.events_fired <- t.events_fired + 1;
        ev.fire ()
      end
    in
    let rec settle () =
      let progressed = ref false in
      for p = 0 to t.nprocs - 1 do
        match t.pending.(p) with
        | Some (time, ev, None) when not !overran ->
            t.pending.(p) <- None;
            progressed := true;
            fire time ev
        | _ -> ()
      done;
      if !progressed then settle ()
    in
    let rec drain () =
      (* Unwinding a processor can park (then require unwinding) new
         events, so iterate to a fixpoint. *)
      let any = ref false in
      for p = 0 to t.nprocs - 1 do
        match t.pending.(p) with
        | Some (_, ev, _) ->
            t.pending.(p) <- None;
            any := true;
            ev.abort ()
        | None -> ()
      done;
      if !any then drain ()
    in
    let rec step () =
      settle ();
      if !overran then drain ()
      else begin
        let runnable = ref [] in
        for p = t.nprocs - 1 downto 0 do
          match t.pending.(p) with
          | Some (_, _, Some a) -> runnable := (p, a) :: !runnable
          | Some (_, _, None) -> assert false
          | None -> ()
        done;
        match !runnable with
        | [] -> () (* every processor finished *)
        | rs -> (
            match choose rs with
            | Quit -> drain ()
            | Fire p ->
                (match t.pending.(p) with
                | Some (time, ev, Some _) ->
                    t.pending.(p) <- None;
                    fire time ev
                | _ ->
                    invalid_arg
                      "Sim controller: chose a processor with no pending \
                       access");
                step ())
      end
    in
    step ()
  in
  (* The step loop pairs [min_time] with [pop_min] instead of [pop]:
     no option, no tuple, zero allocation per event (@allocheck). *)
  let rec loop () =
    if not (Event_heap.is_empty t.heap) then begin
      let time = Event_heap.min_time t.heap in
      let ev = Event_heap.pop_min t.heap in
      if time > horizon then begin
        ev.abort ();
        Event_heap.drain t.heap (fun _ _ ev -> ev.abort ())
      end
      else begin
        let action =
          match t.injector with
          | None -> Fault_proceed
          | Some inj -> inj.on_event ~pid:ev.pid ~time
        in
        (match action with
        | Fault_proceed ->
            t.clock <- time;
            t.events_fired <- t.events_fired + 1;
            ev.fire ()
        | Fault_defer until ->
            t.fault_defers <- t.fault_defers + 1;
            let until = if until <= time then time + 1 else until in
            if Etrace.on Etrace.lv_ops then
              Etrace.emit
                (Etrace.Event.Fault_stall { pid = ev.pid; time; until });
            schedule t until ev
        | Fault_drop ->
            (* Crash-stop: the processor's sole pending event dies and
               with it the processor; the continuation is dropped
               unresumed, so no cleanup handlers run. *)
            t.clock <- time;
            t.live <- t.live - 1;
            t.crashed <- t.crashed + 1;
            if Etrace.on Etrace.lv_ops then begin
              Etrace.emit (Etrace.Event.Fault_crash { pid = ev.pid; time });
              Etrace.emit
                (Etrace.Event.Proc_end
                   { pid = ev.pid; time; reason = Etrace.Event.Crashed })
            end);
        loop ()
      end
    end
  in
  (match controller with Some c -> ctl_loop c | None -> loop ());
  assert (t.live = 0);
  grand :=
    {
      t_events = !grand.t_events + t.events_fired;
      t_reads = !grand.t_reads + t.op_reads;
      t_writes = !grand.t_writes + t.op_writes;
      t_rmws = !grand.t_rmws + t.op_rmws;
    };
  {
    end_clock = t.clock;
    events_fired = t.events_fired;
    aborted_procs = t.aborted;
    crashed_procs = t.crashed;
    fault_defers = t.fault_defers;
    reads = t.op_reads;
    writes = t.op_writes;
    rmws = t.op_rmws;
    queue_wait_cycles = t.queue_wait;
  }
