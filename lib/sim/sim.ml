(** A deterministic discrete-event shared-memory multiprocessor simulator.

    This is the repository's stand-in for the Proteus simulator running a
    256-node Alewife-like machine, on which the paper's experiments were
    performed.  Like Proteus, it is not cycle-accurate hardware
    simulation: local computation is charged to the local clock in bulk,
    and only globally visible operations are ordered by timestamps.
    Contention is modeled by serializing writes and read-modify-writes
    per memory location (see {!Memory}), which reproduces the hot-spot
    behaviour the paper's constructions are designed around.

    Usage:
    {[
      let stats =
        Sim.run ~procs:256 ~seed:1 (fun pid ->
            (* runs as simulated processor [pid]; use Sim.Engine ops *)
            ...)
    ]}

    Processor bodies use {!Engine}, the simulator's implementation of
    [Engine.S]; data structures functorized over [Engine.S] are
    instantiated with it to run under simulation. *)

module Memory = Memory
module Event_heap = Event_heap
module Scheduler = Scheduler

module Engine : Engine.S with type 'a cell = 'a Memory.cell = Engine_impl
(** The simulated shared-memory engine.  Its operations may only be
    called from inside a processor body passed to {!run}. *)

type stats = Scheduler.stats = {
  end_clock : int;       (** simulated cycle at which the run ended *)
  events_fired : int;    (** total discrete events processed *)
  aborted_procs : int;   (** processors cut off by [abort_after] *)
  crashed_procs : int;   (** crash-stopped by a fault injector *)
  fault_defers : int;    (** events postponed by injected stalls *)
  reads : int;           (** atomic reads issued *)
  writes : int;          (** atomic writes issued *)
  rmws : int;            (** swaps / CASes / fetch&adds issued *)
  queue_wait_cycles : int;
      (** cycles serialized ops spent queueing behind busy locations *)
}

type totals = Scheduler.totals = {
  t_events : int;  (** events fired, summed over completed runs *)
  t_reads : int;
  t_writes : int;
  t_rmws : int;
}

let totals = Scheduler.totals
(** Process-cumulative {!stats} counters over every completed {!run} —
    the deterministic odometer benchmark meta probes snapshot around
    each experiment (docs/BENCHDB.md). *)

exception Aborted = Scheduler.Aborted

let run = Scheduler.run
(** [run ?seed ?config ?abort_after ?injector ~procs body] simulates
    [procs] processors each executing [body pid] from cycle 0, and
    returns aggregate statistics.  The simulation is a deterministic
    function of [seed] and [config] — and of the [injector]'s plan, when
    one is installed (see [Faults.Fault_plan]).  If [abort_after] is
    given, processors still running past that cycle are unwound with
    {!Aborted} (their effects already applied to shared memory remain
    applied; in-flight operations are dropped). *)
