(** The discrete-event scheduler at the heart of the simulator.

    Each simulated processor is an effect-handler coroutine; a
    shared-memory effect parks its continuation in the event heap at
    its completion time (queueing behind earlier operations on the same
    location, see {!Memory}), and the main loop fires events in
    (time, insertion) order — making runs deterministic functions of
    the seed.  An operation's side effect runs when its event fires, so
    operations linearize in completion-time order.

    This module is the simulator's engine room; user code should go
    through [Sim.run] and [Sim.Engine]. *)

exception Aborted
(** Raised inside a simulated processor cut off by [abort_after]. *)

type _ Effect.t +=
  | Serialized : {
      loc : Memory.loc;
      latency : int;
      kind : Etrace.Event.mem_kind;  (** rendered on the trace timeline *)
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (** a write or RMW: queues behind [loc.busy_until] *)
  | Immediate : {
      loc : Memory.loc option;
      latency : int;
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (** a read: fixed latency, no serialization; [loc] identifies
            the location for fault injection (None = pure pause) *)
  | Delay : int -> unit Effect.t  (** local computation / spin-waiting *)

type event = { pid : int; fire : unit -> unit; abort : unit -> unit }
(** Every event belongs to one simulated processor — [pid] is consulted
    by the fault injector before the event fires. *)

(** {1 Controlled scheduling (etrees.check)}

    A {!controller} takes over every scheduling decision, turning the
    simulator into the substrate for a stateless model checker: each
    processor's single pending event is parked per-pid instead of in
    the time heap, local steps (proc starts, delays, pure pauses) fire
    eagerly in pid order, and whenever every live processor is parked
    on a shared-memory access the controller picks which one commits
    next.  Each decision commits exactly one access, so the chosen pid
    sequence fully determines the interleaving — runs are replayable
    from the pid sequence alone. *)

type access_kind = Acc_read | Acc_write | Acc_rmw

type access = { acc_loc : Memory.loc; acc_kind : access_kind }
(** The shared-memory access a parked processor will commit next.  The
    location's epoch stamps (see {!Memory.loc}) let a controller detect
    unchanged-location polling. *)

type choice =
  | Fire of int  (** commit this processor's pending access *)
  | Quit         (** stop: unwind every parked processor with {!Aborted} *)

type controller = (int * access) list -> choice
(** Called with the runnable processors (increasing pid order), each
    with its pending access; never called with an empty list.  Must be
    a pure host-level function: it runs outside any processor and may
    not perform engine effects. *)

(** {1 Fault injection (etrees.faults)}

    An {!injector} is the scheduler-side surface of a fault plan (see
    [Faults.Fault_plan]).  All three hooks must be pure functions of
    their arguments so that a run under an injector remains a
    deterministic function of [(seed, plan)]. *)

type fault_action =
  | Fault_proceed            (** no fault: fire the event now *)
  | Fault_defer of int       (** processor stalled: refire at this time *)
  | Fault_drop               (** crash-stop: the event (and with it the
                                 processor) is silently discarded *)

type injector = {
  on_event : pid:int -> time:int -> fault_action;
      (** consulted every time one of [pid]'s events is about to fire *)
  mem_latency : loc:Memory.loc -> pid:int -> now:int -> base:int -> int;
      (** service-cost multiplier hook (hot spots, latency spikes);
          must return [>= base >= 1]'s spirit — values [< 1] are
          clamped to 1 *)
  delay_jitter : pid:int -> now:int -> base:int -> int;
      (** extra cycles added to a [Delay base] issued at [now] *)
}

val no_injector : injector
(** The identity injector: proceeds, never scales, never jitters. *)

type t = {
  nprocs : int;
  config : Memory.config;
  heap : event Event_heap.t;
  rngs : Engine.Splitmix.t array;
  injector : injector option;
  controller : controller option;
  pending : (int * event * access option) option array;
      (** controller mode only: per-pid parked (time, event, access) *)
  mutable clock : int;
  mutable seq : int;
  mutable live : int;
  mutable current : int; (** pid of the processor now executing *)
  mutable events_fired : int;
  mutable aborted : int;
  mutable crashed : int;      (** processors crash-stopped by the injector *)
  mutable fault_defers : int; (** events postponed by stalls *)
  mutable op_reads : int;  (** engine-level operation counters *)
  mutable op_writes : int;
  mutable op_rmws : int;
  mutable queue_wait : int;
      (** cycles serialized operations spent queueing behind busy
          locations — the simulator's aggregate hot-spot cost *)
}

type stats = {
  end_clock : int;
  events_fired : int;
  aborted_procs : int;
  crashed_procs : int;  (** crash-stopped by the fault injector *)
  fault_defers : int;   (** events postponed by injected stalls *)
  reads : int;   (** atomic reads issued *)
  writes : int;  (** atomic writes issued *)
  rmws : int;    (** swaps / CASes / fetch&adds issued *)
  queue_wait_cycles : int;
      (** total cycles serialized operations queued behind busy
          locations *)
}

val the_sched : unit -> t
(** The running scheduler; raises [Failure] outside a run. *)

type totals = { t_events : int; t_reads : int; t_writes : int; t_rmws : int }
(** Process-cumulative counters summed over every completed {!run} in
    this process — the deterministic odometer the benchmark meta probe
    snapshots around each experiment (docs/BENCHDB.md).  Runs that end
    abnormally (an escaping exception) are not counted. *)

val totals : unit -> totals

val run :
  ?seed:int ->
  ?config:Memory.config ->
  ?abort_after:int ->
  ?injector:injector ->
  ?controller:controller ->
  procs:int ->
  (int -> unit) ->
  stats
(** See [Sim.run].  [controller] and [injector] are mutually
    exclusive. *)
