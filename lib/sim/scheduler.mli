(** The discrete-event scheduler at the heart of the simulator.

    Each simulated processor is an effect-handler coroutine; a
    shared-memory effect parks its continuation in the event heap at
    its completion time (queueing behind earlier operations on the same
    location, see {!Memory}), and the main loop fires events in
    (time, insertion) order — making runs deterministic functions of
    the seed.  An operation's side effect runs when its event fires, so
    operations linearize in completion-time order.

    This module is the simulator's engine room; user code should go
    through [Sim.run] and [Sim.Engine]. *)

exception Aborted
(** Raised inside a simulated processor cut off by [abort_after]. *)

type _ Effect.t +=
  | Serialized : {
      loc : Memory.loc;
      latency : int;
      kind : Etrace.Event.mem_kind;  (** rendered on the trace timeline *)
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (** a write or RMW: queues behind [loc.busy_until] *)
  | Immediate : {
      loc : Memory.loc option;
      latency : int;
      run : unit -> 'r;
    }
      -> 'r Effect.t
        (** a read: fixed latency, no serialization; [loc] identifies
            the location for fault injection (None = pure pause) *)
  | Delay : int -> unit Effect.t  (** local computation / spin-waiting *)

type event = { pid : int; fire : unit -> unit; abort : unit -> unit }
(** Every event belongs to one simulated processor — [pid] is consulted
    by the fault injector before the event fires. *)

(** {1 Fault injection (etrees.faults)}

    An {!injector} is the scheduler-side surface of a fault plan (see
    [Faults.Fault_plan]).  All three hooks must be pure functions of
    their arguments so that a run under an injector remains a
    deterministic function of [(seed, plan)]. *)

type fault_action =
  | Fault_proceed            (** no fault: fire the event now *)
  | Fault_defer of int       (** processor stalled: refire at this time *)
  | Fault_drop               (** crash-stop: the event (and with it the
                                 processor) is silently discarded *)

type injector = {
  on_event : pid:int -> time:int -> fault_action;
      (** consulted every time one of [pid]'s events is about to fire *)
  mem_latency : loc:Memory.loc -> pid:int -> now:int -> base:int -> int;
      (** service-cost multiplier hook (hot spots, latency spikes);
          must return [>= base >= 1]'s spirit — values [< 1] are
          clamped to 1 *)
  delay_jitter : pid:int -> now:int -> base:int -> int;
      (** extra cycles added to a [Delay base] issued at [now] *)
}

val no_injector : injector
(** The identity injector: proceeds, never scales, never jitters. *)

type t = {
  nprocs : int;
  config : Memory.config;
  heap : event Event_heap.t;
  rngs : Engine.Splitmix.t array;
  injector : injector option;
  mutable clock : int;
  mutable seq : int;
  mutable live : int;
  mutable current : int; (** pid of the processor now executing *)
  mutable events_fired : int;
  mutable aborted : int;
  mutable crashed : int;      (** processors crash-stopped by the injector *)
  mutable fault_defers : int; (** events postponed by stalls *)
  mutable op_reads : int;  (** engine-level operation counters *)
  mutable op_writes : int;
  mutable op_rmws : int;
  mutable queue_wait : int;
      (** cycles serialized operations spent queueing behind busy
          locations — the simulator's aggregate hot-spot cost *)
}

type stats = {
  end_clock : int;
  events_fired : int;
  aborted_procs : int;
  crashed_procs : int;  (** crash-stopped by the fault injector *)
  fault_defers : int;   (** events postponed by injected stalls *)
  reads : int;   (** atomic reads issued *)
  writes : int;  (** atomic writes issued *)
  rmws : int;    (** swaps / CASes / fetch&adds issued *)
  queue_wait_cycles : int;
      (** total cycles serialized operations queued behind busy
          locations *)
}

val the_sched : unit -> t
(** The running scheduler; raises [Failure] outside a run. *)

val run :
  ?seed:int ->
  ?config:Memory.config ->
  ?abort_after:int ->
  ?injector:injector ->
  procs:int ->
  (int -> unit) ->
  stats
(** See [Sim.run]. *)
