(** Simulated shared memory with per-location contention.

    Writes and read-modify-writes issued at time [t] are serviced
    starting at [max t busy_until] of their location and advance it by
    their latency — so k simultaneous RMWs on one location cost
    Θ(k·latency), the hot-spot queueing the paper's constructions are
    designed around.  Reads are charged a fixed latency but do not
    serialize (they model cached / read-shared lines, the assumption
    behind local-spinning locks).

    Each location also carries analysis stamps — a last-writer epoch
    [(time, pid, seq)], the most recent serialized service window, and
    a shadow of the engine-installed value — kept up to date
    unconditionally so [Analysis.Race_detector] can hook a {!tracer} in
    at any time.  See docs/ANALYSIS.md. *)

type loc = {
  id : int;                   (** dense allocation index, for reports *)
  mutable busy_until : int;   (** serialization chain state *)
  mutable epoch_time : int;   (** last engine write: completion time *)
  mutable epoch_pid : int;    (** last engine write: pid (-1 = none) *)
  mutable epoch_seq : int;    (** last engine write: scheduler seq *)
  mutable pend_begins : int;  (** latest serialized window start *)
  mutable pend_finish : int;  (** latest serialized window end *)
  mutable pend_pid : int;     (** latest serialized issuer *)
  mutable shadow : Obj.t;     (** engine-installed value (physical) *)
}
(** Serialization and analysis state of one location. *)

type 'a cell = { mutable v : 'a; loc : loc }
(** A shared location.  Mutated only by the scheduler, at event-fire
    time; any other mutation breaks the effect discipline and is what
    the race detector exists to catch. *)

type config = {
  read_latency : int;  (** cycles for an atomic read *)
  write_latency : int; (** cycles for an atomic write (serializing) *)
  rmw_latency : int;   (** cycles for swap / CAS / fetch&add (serializing) *)
  reads_serialize : bool;
      (** if true, reads also queue on the location (no read sharing) *)
}

val default_config : config
(** 6 / 8 / 12 cycles — the Alewife-like defaults of DESIGN.md §6. *)

val uniform_config : config
(** Every operation one cycle, still serialized per location: for tests
    that care about ordering rather than timing. *)

val serialized_reads_config : config
(** The defaults but with reads queueing like writes — a machine with
    no read sharing of hot lines (model-sensitivity ablation). *)

val cell : 'a -> 'a cell
(** Allocate a fresh location (free of simulated cost). *)

val loc_count : unit -> int
(** The allocation watermark: locations ever allocated in this
    process.  Ids grow monotonically across runs, so consumers wanting
    run-stable identities (e.g. the fault injector's hot-spot hashing)
    subtract a watermark taken at setup time. *)

(** {1 Analysis hooks (etrees.analysis)} *)

type tracer = {
  on_read :
    loc -> pid:int -> issued:int -> fired:int -> serialized:bool ->
    clean:bool -> unit;
      (** a read completed; [clean] is the {!shadow_clean} verdict *)
  on_issue : loc -> pid:int -> now:int -> begins:int -> finish:int -> unit;
      (** a serialized op was issued — fires {e before} the pending
          window is overwritten, so [loc.pend_finish] still describes
          the previous operation *)
  on_commit : loc -> pid:int -> time:int -> clean:bool -> unit;
      (** a serialized op completed; [clean] as above, checked before
          the op's own mutation *)
}

val tracer : tracer option ref
(** The installed observer, if any.  Install/restore via
    [Analysis.Race_detector]; the simulator is single-threaded, so a
    plain ref is safe. *)

val shadow_clean : 'a cell -> bool
(** Whether the cell's value is (physically) the engine-installed one.
    [false] means a raw [c.v <- x] bypassed the effect discipline. *)

val commit_stamp : 'a cell -> pid:int -> time:int -> seq:int -> unit
(** Record a committed engine-level mutation (shadow + epoch). *)

val issue_stamp : loc -> pid:int -> begins:int -> finish:int -> unit
(** Record a serialized op's service window at issue time. *)
