(* Simulated shared memory with per-location contention.

   Every location carries a [busy_until] timestamp.  Writes and
   read-modify-writes issued at time [t] are serviced starting at
   [max t busy_until] and advance [busy_until] by their latency, so [k]
   simultaneous RMWs on one location cost Theta(k * latency) — the
   hot-spot queueing at a directory home node that the paper's toggle
   bits suffer from and its prisms avoid.

   Reads are charged a fixed latency but do not serialize: they model
   cached / read-shared lines, which is the standard assumption behind
   local-spinning locks such as MCS.  The algorithms in this repository
   only spin on locations they own or on such cached reads.

   Analysis instrumentation (etrees.analysis, dynamic prong): each
   location additionally carries

   - a last-writer {e epoch} [(time, pid, seq)], stamped by every
     engine-level mutation;
   - the service window and issuer of the most recently issued
     serialized operation;
   - a {e shadow} of the value the engine last installed (physical
     identity), so a raw [c.v <- x] that bypasses the effect discipline
     is caught by the next engine operation on the cell.

   All stamps are flat mutable ints (plus one [Obj.t] store), kept
   up to date unconditionally — a handful of host-level stores per
   simulated operation, costing zero simulated cycles — so a
   {!tracer} can be installed at any point of a run.  The checks
   themselves run only while a tracer is installed (see
   [Analysis.Race_detector]). *)

type loc = {
  id : int; (* dense allocation index, for race reports *)
  mutable busy_until : int;
  (* last committed engine-level write: the cell's epoch stamp *)
  mutable epoch_time : int;
  mutable epoch_pid : int; (* -1 until the first engine write *)
  mutable epoch_seq : int;
  (* most recently issued serialized op's service window [begins, finish) *)
  mutable pend_begins : int;
  mutable pend_finish : int;
  mutable pend_pid : int;
  (* physical identity of the engine-installed value (raw-write check) *)
  mutable shadow : Obj.t;
}

type 'a cell = { mutable v : 'a; loc : loc }

(* Locations are allocated during (single-threaded) structure setup or
   inside the (single-threaded) simulator, so a plain counter is safe —
   this is engine-internal state, exempt from the effect discipline. *)
let next_loc_id = ref 0

type config = {
  read_latency : int;  (** cycles for an atomic read *)
  write_latency : int; (** cycles for an atomic write (serializing) *)
  rmw_latency : int;   (** cycles for swap / CAS / fetch&add (serializing) *)
  reads_serialize : bool;
      (** if true, reads also queue on the location (no read sharing) *)
}

let default_config =
  { read_latency = 6; write_latency = 8; rmw_latency = 12;
    reads_serialize = false }

(* Model-sensitivity variant: reads queue like writes, as on a machine
   with no caching of shared lines.  Used by the `model` benchmark to
   show the reported shapes do not hinge on the read-sharing
   assumption. *)
let serialized_reads_config = { default_config with reads_serialize = true }

(* A near-zero-cost configuration: every operation takes one cycle
   (writes/RMWs still serialize per location).  Used by tests that care
   about ordering and algorithmic correctness rather than timing. *)
let uniform_config =
  { read_latency = 1; write_latency = 1; rmw_latency = 1;
    reads_serialize = false }

let cell v =
  let id = !next_loc_id in
  incr next_loc_id;
  {
    v;
    loc =
      {
        id;
        busy_until = 0;
        epoch_time = min_int;
        epoch_pid = -1;
        epoch_seq = -1;
        pend_begins = min_int;
        pend_finish = min_int;
        pend_pid = -1;
        shadow = Obj.repr v;
      };
  }

(* The allocation watermark.  Ids are process-global, so anything that
   wants run-stable location identities (the fault injector's hot-spot
   hashing) must work relative to this. *)
let loc_count () = !next_loc_id

(* ------------------------------------------------------------------ *)
(* Analysis hooks                                                      *)
(* ------------------------------------------------------------------ *)

(* Callbacks observing engine-level operations.  [on_issue] fires when
   a serialized op is issued, BEFORE the location's pending-window
   stamp is overwritten, so the observer can compare the new window
   against the previous one (the scheduler self-check).  [on_read] and
   [on_commit] fire at the operation's completion event, after the
   [clean] raw-write check but before (commit) stamps are refreshed. *)
type tracer = {
  on_read :
    loc -> pid:int -> issued:int -> fired:int -> serialized:bool ->
    clean:bool -> unit;
  on_issue : loc -> pid:int -> now:int -> begins:int -> finish:int -> unit;
  on_commit : loc -> pid:int -> time:int -> clean:bool -> unit;
}

let tracer : tracer option ref = ref None

(* True iff the cell's current value is (physically) the one the engine
   last installed: a mismatch means a raw [c.v <- x] bypassed the
   effect discipline.  Physical identity is the same criterion the
   engines' CAS uses; a raw write that reinstalls the identical value
   is invisible, which is the usual soundness/completeness trade of a
   dynamic detector (no false positives, idempotent raw writes are
   missed). *)
let shadow_clean c = Obj.repr c.v == c.loc.shadow

(* Stamp a committed engine-level mutation: refresh the shadow and the
   last-writer epoch. *)
let commit_stamp c ~pid ~time ~seq =
  c.loc.shadow <- Obj.repr c.v;
  c.loc.epoch_time <- time;
  c.loc.epoch_pid <- pid;
  c.loc.epoch_seq <- seq

(* Stamp a serialized operation's service window at issue time (called
   by the scheduler after [on_issue]). *)
let issue_stamp loc ~pid ~begins ~finish =
  loc.pend_begins <- begins;
  loc.pend_finish <- finish;
  loc.pend_pid <- pid
