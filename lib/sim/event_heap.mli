(** A binary min-heap of timestamped events, keyed by [(time, seq)]
    compared lexicographically.  [seq] is a strictly increasing
    insertion counter, so same-instant events fire in insertion order —
    this tie-break is what makes whole simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert an event. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the least [(time, seq, payload)]. *)

val min_time : 'a t -> int
(** The least entry's [time], without removing it.  No allocation; the
    scheduler's step loop pairs it with {!pop_min} instead of paying
    {!pop}'s option-and-tuple per event.  Raises [Invalid_argument] on
    an empty heap. *)

val pop_min : 'a t -> 'a
(** Remove the least entry and return its payload alone (no
    allocation).  Raises [Invalid_argument] on an empty heap. *)

val drain : 'a t -> (int -> int -> 'a -> unit) -> unit
(** [drain t f] pops every remaining event in key order, applying [f];
    events pushed by [f] itself are drained too. *)
