(* The simulator's implementation of [Engine.S].

   Every primitive maps to one scheduler effect, charged according to the
   run's {!Memory.config}.  All of these must be called from inside a
   processor body passed to [Sim.run]; calling them elsewhere raises.

   Each operation also maintains the analysis stamps of {!Memory}: a
   [clean] check (is the cell's value still the engine-installed one?)
   runs before the operation's own side effect, committed mutations
   refresh the cell's shadow and last-writer epoch, and an installed
   {!Memory.tracer} observes every completion.  The stamps cost a few
   host-level stores and zero simulated cycles; the tracer is [None]
   outside [Analysis.Race_detector] runs. *)

type 'a cell = 'a Memory.cell

let cell = Memory.cell

let trace_read c ~pid ~issued ~serialized =
  match !Memory.tracer with
  | Some tr ->
      let t = Scheduler.the_sched () in
      tr.Memory.on_read c.Memory.loc ~pid ~issued ~fired:t.clock ~serialized
        ~clean:(Memory.shadow_clean c)
  | None -> ()

let trace_commit c ~pid ~clean =
  match !Memory.tracer with
  | Some tr ->
      let t = Scheduler.the_sched () in
      tr.Memory.on_commit c.Memory.loc ~pid ~time:t.clock ~clean
  | None -> ()

let get c =
  let t = Scheduler.the_sched () in
  t.op_reads <- t.op_reads + 1;
  let pid = t.current and issued = t.clock in
  if t.config.reads_serialize then
    Effect.perform
      (Scheduler.Serialized
         {
           loc = c.Memory.loc;
           latency = t.config.read_latency;
           kind = Etrace.Event.Read;
           run =
             (fun () ->
               trace_read c ~pid ~issued ~serialized:true;
               c.Memory.v);
         })
  else
    Effect.perform
      (Scheduler.Immediate
         {
           loc = Some c.Memory.loc;
           latency = t.config.read_latency;
           run =
             (fun () ->
               trace_read c ~pid ~issued ~serialized:false;
               c.Memory.v);
         })

let set c x =
  let t = Scheduler.the_sched () in
  t.op_writes <- t.op_writes + 1;
  let pid = t.current and seq = t.seq in
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.write_latency;
         kind = Etrace.Event.Write;
         run =
           (fun () ->
             let clean = Memory.shadow_clean c in
             c.Memory.v <- x;
             Memory.commit_stamp c ~pid ~time:(Scheduler.the_sched ()).clock
               ~seq;
             trace_commit c ~pid ~clean);
       })

let exchange c x =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  let pid = t.current and seq = t.seq in
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         kind = Etrace.Event.Rmw;
         run =
           (fun () ->
             let clean = Memory.shadow_clean c in
             let old = c.Memory.v in
             c.Memory.v <- x;
             Memory.commit_stamp c ~pid ~time:(Scheduler.the_sched ()).clock
               ~seq;
             trace_commit c ~pid ~clean;
             old);
       })

let compare_and_set c expected desired =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  let pid = t.current and seq = t.seq in
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         kind = Etrace.Event.Rmw;
         run =
           (fun () ->
             let clean = Memory.shadow_clean c in
             let won =
               if c.Memory.v == expected then begin
                 c.Memory.v <- desired;
                 Memory.commit_stamp c ~pid
                   ~time:(Scheduler.the_sched ()).clock ~seq;
                 true
               end
               else false
             in
             trace_commit c ~pid ~clean;
             won);
       })

let fetch_and_add c k =
  let t = Scheduler.the_sched () in
  t.op_rmws <- t.op_rmws + 1;
  let pid = t.current and seq = t.seq in
  Effect.perform
    (Scheduler.Serialized
       {
         loc = c.Memory.loc;
         latency = t.config.rmw_latency;
         kind = Etrace.Event.Rmw;
         run =
           (fun () ->
             let clean = Memory.shadow_clean c in
             let old = c.Memory.v in
             c.Memory.v <- old + k;
             Memory.commit_stamp c ~pid ~time:(Scheduler.the_sched ()).clock
               ~seq;
             trace_commit c ~pid ~clean;
             old);
       })

let pid () = (Scheduler.the_sched ()).current
let nprocs () = (Scheduler.the_sched ()).nprocs

let delay n = if n > 0 then Effect.perform (Scheduler.Delay n)
let cpu_relax () = Effect.perform (Scheduler.Delay 1)

let random_int n =
  let t = Scheduler.the_sched () in
  Engine.Splitmix.int t.rngs.(t.current) n

let random_bernoulli ~num ~den =
  let t = Scheduler.the_sched () in
  Engine.Splitmix.bernoulli t.rngs.(t.current) ~num ~den

let now () = (Scheduler.the_sched ()).clock
