(* A binary min-heap of timestamped events.

   Keys are [(time, seq)] pairs compared lexicographically: [seq] is a
   strictly increasing insertion counter, so events scheduled for the
   same simulated instant fire in insertion order.  That tie-break makes
   whole simulations deterministic functions of the seed.

   This module is on the per-event hot path of every simulation, so it
   is written to allocate nothing beyond the entry record itself (one
   block per push): the sift loops are top-level functions rather than
   closures, and the main scheduler loop reads [min_time]/[pop_min]
   instead of the option-and-tuple [pop] (kept for drain and tests).
   The @allocheck census certifies this — see
   lib/analysis/alloc_budget.txt. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = { mutable a : 'a entry array; mutable n : int }

let create () = { a = [||]; n = 0 }

let length t = t.n

let is_empty t = t.n = 0

let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

let grow t entry =
  let cap = Array.length t.a in
  if t.n = cap then begin
    let cap' = if cap = 0 then 64 else cap * 2 in
    let a' = Array.make cap' entry in
    Array.blit t.a 0 a' 0 t.n;
    t.a <- a'
  end

let rec sift_up a i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt a.(i) a.(parent) then begin
      let tmp = a.(i) in
      a.(i) <- a.(parent);
      a.(parent) <- tmp;
      sift_up a parent
    end
  end

let rec sift_down a n i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < n && lt a.(l) a.(i) then l else i in
  let s = if r < n && lt a.(r) a.(s) then r else s in
  if s <> i then begin
    let tmp = a.(i) in
    a.(i) <- a.(s);
    a.(s) <- tmp;
    sift_down a n s
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t entry;
  t.a.(t.n) <- entry;
  t.n <- t.n + 1;
  sift_up t.a (t.n - 1)

(* Remove the root entry.  The popped record is returned as-is (it was
   allocated at push time), so neither zero-alloc accessor below
   allocates. *)
let remove_top t =
  let top = t.a.(0) in
  t.n <- t.n - 1;
  if t.n > 0 then begin
    t.a.(0) <- t.a.(t.n);
    sift_down t.a t.n 0
  end;
  top

let min_time t =
  if t.n = 0 then invalid_arg "Event_heap.min_time: empty heap";
  t.a.(0).time

let pop_min t =
  if t.n = 0 then invalid_arg "Event_heap.pop_min: empty heap";
  (remove_top t).payload

let pop t =
  if t.n = 0 then None
  else
    let top = remove_top t in
    Some (top.time, top.seq, top.payload)

(* Drain remaining events in key order (used when aborting a run). *)
let drain t f =
  let rec loop () =
    match pop t with
    | None -> ()
    | Some (time, seq, payload) ->
        f time seq payload;
        loop ()
  in
  loop ()
