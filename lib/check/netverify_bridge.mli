(** The shipped-shapes manifest for the static network certifier and
    the counterexample bridge into the model checker
    (docs/NETVERIFY.md).  `etrees_run netverify` and the build-time
    [@netverify] gate certify every shape listed here. *)

type shape = { shape_name : string; build : unit -> Netverify.Ir.network }

val shapes : shape list
(** Every network shape the repo ships: elimination-tree pools and
    stacks (widths 2-64), diffracting-tree counters (single- and
    multi-prism), bitonic and periodic counting networks. *)

val find : string -> shape option
val names : string list

val seeded_defect_width : int

val seeded_defect : unit -> Netverify.Ir.network
(** The width-2 pool tree with the test-only [`Skip_toggle_on_miss]
    defect seeded in every balancer — the shape the certifier must
    reject (teeth check for the [@netverify] gate). *)

val replay_command : width:int -> Netverify.Certify.counterexample -> string
(** The `etrees_run check` invocation that replays a static
    counterexample through the model checker's schedule machinery. *)

val confirm_replay :
  width:int -> Netverify.Certify.counterexample -> Monitor.violation option
(** Re-execute a token-only counterexample through the tree_buggy
    scenario under {!Explore.replay} (one processor per operation,
    sequential slices, seed 1) and return the step-property violation
    it produces, if any. *)
