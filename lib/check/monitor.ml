(* Property monitors for the model checker (etrees.check).

   A monitor inspects the final (quiescent) state of a controlled
   execution — plus whatever the scenario's own ledger recorded at
   operation exit points — and renders a verdict.  Monitors are pure
   host-level code: they read statistics records and ledgers, never
   simulated memory (structure residues are probed by the scenario
   under a single-processor [Sim.run] and passed in as plain ints). *)

type verdict = { property : string; ok : bool; detail : string }
type violation = { property : string; detail : string }

let violations_of verdicts =
  List.filter_map
    (fun v ->
      if v.ok then None else Some { property = v.property; detail = v.detail })
    verdicts

let fail property detail = { property; ok = false; detail }

(* --- Step property (Lemmas 3.1 / 3.2) --------------------------------

   Evaluated per balancer from the live per-wire exit counters.  In a
   quiescent state an elimination balancer (`Pool) must satisfy the
   step property independently for tokens and anti-tokens:
   out0 - out1 in {0,1}.  A gap balancer (`Gap, one shared toggle;
   stacks and IncDecCounter) must satisfy it on the surplus:
   (token_out0 - anti_out0) - (token_out1 - anti_out1) in {0,1}. *)

let step_property ~mode levels =
  let bad = ref [] in
  List.iteri
    (fun depth group ->
      List.iteri
        (fun j (s : Core.Elim_stats.t) ->
          let t0 = s.token_out0 and t1 = s.token_out1 in
          let a0 = s.anti_out0 and a1 = s.anti_out1 in
          let note msg =
            bad :=
              Printf.sprintf "balancer %d at depth %d: %s (t0=%d t1=%d a0=%d a1=%d)"
                j depth msg t0 t1 a0 a1
              :: !bad
          in
          match mode with
          | `Pool ->
              let dt = t0 - t1 and da = a0 - a1 in
              if dt < 0 || dt > 1 then note "token step property violated";
              if da < 0 || da > 1 then note "anti-token step property violated"
          | `Gap ->
              let d = (t0 - a0) - (t1 - a1) in
              if d < 0 || d > 1 then note "gap step property violated")
        group)
    levels;
  let bad = List.rev !bad in
  {
    property = "step-property";
    ok = bad = [];
    detail =
      (if bad = [] then "every balancer within step bounds"
       else String.concat "; " bad);
  }

(* --- Conservation ----------------------------------------------------

   Thin wrapper over [Analysis.Conservation]: the scenario ledger
   (which values were enqueued / dequeued) plus the quiescently probed
   residue must balance exactly — complete runs have no in-flight
   processors. *)

let conservation ~enqueued ~dequeued ~residue =
  let duplicates, phantoms =
    Analysis.Conservation.check_values
      ~enq_started:(fun v -> List.mem v enqueued)
      dequeued
  in
  let n = List.length enqueued in
  let report =
    Analysis.Conservation.audit
      {
        Analysis.Conservation.enq_started = n;
        enq_completed = n;
        dequeued = List.length dequeued;
        duplicates;
        phantoms;
        residue = Some residue;
        in_flight = 0;
      }
  in
  {
    property = "conservation";
    ok = report.Analysis.Conservation.ok;
    detail = report.Analysis.Conservation.detail;
  }

(* --- Quiescent consistency (IncDecCounter) ---------------------------

   A completed run's multiset of outcomes must be realizable by SOME
   sequential execution of a counter starting at 0: an increment
   returning [Slot v] is valid exactly when the counter reads [v]
   (then becomes [v+1]); a decrement returning [Slot v] when it reads
   [v+1] (then becomes [v]).  [Paired] outcomes are an increment
   linearized immediately before its cancelling decrement, so they
   drop out — provided they arrive in equal numbers. *)

type counter_op = { is_inc : bool; result : int option (* None = Paired *) }

let format_counter_ops ops =
  String.concat " "
    (List.map
       (fun o ->
         Printf.sprintf "%s->%s"
           (if o.is_inc then "inc" else "dec")
           (match o.result with Some v -> string_of_int v | None -> "paired"))
       ops)

let realizable incs decs =
  let module M = Map.Make (Int) in
  let add m v =
    M.update v (function None -> Some 1 | Some n -> Some (n + 1)) m
  in
  let remove m v =
    M.update v (function Some 1 -> None | Some n -> Some (n - 1) | None -> None) m
  in
  let inc0 = List.fold_left add M.empty incs in
  let dec0 = List.fold_left add M.empty decs in
  let memo = Hashtbl.create 64 in
  let key mi md =
    let b = Buffer.create 32 in
    M.iter (fun v n -> Buffer.add_string b (Printf.sprintf "i%d:%d;" v n)) mi;
    M.iter (fun v n -> Buffer.add_string b (Printf.sprintf "d%d:%d;" v n)) md;
    Buffer.contents b
  in
  let rec go c mi md =
    if M.is_empty mi && M.is_empty md then true
    else
      let k = key mi md in
      match Hashtbl.find_opt memo k with
      | Some r -> r
      | None ->
          let r =
            (M.mem c mi && go (c + 1) (remove mi c) md)
            || M.mem (c - 1) md
               && go (c - 1) mi (remove md (c - 1))
          in
          Hashtbl.add memo k r;
          r
  in
  go 0 inc0 dec0

let paired_balance ops =
  let paired p =
    List.length (List.filter (fun o -> o.is_inc = p && o.result = None) ops)
  in
  let pi = paired true and pd = paired false in
  if pi = pd then
    {
      property = "paired-balance";
      ok = true;
      detail = Printf.sprintf "%d eliminated inc/dec pairs" pi;
    }
  else
    fail "paired-balance"
      (Printf.sprintf "unmatched eliminations: %d paired incs, %d paired decs [%s]"
         pi pd (format_counter_ops ops))

let quiescent_consistency ops =
  let paired_incs =
    List.length (List.filter (fun o -> o.is_inc && o.result = None) ops)
  in
  let paired_decs =
    List.length (List.filter (fun o -> (not o.is_inc) && o.result = None) ops)
  in
  let slots p = List.filter_map (fun o -> if o.is_inc = p then o.result else None) in
  let incs = slots true ops and decs = slots false ops in
  if paired_incs <> paired_decs then
    fail "quiescent-consistency"
      (Printf.sprintf "unmatched eliminations: %d paired incs, %d paired decs [%s]"
         paired_incs paired_decs (format_counter_ops ops))
  else if realizable incs decs then
    {
      property = "quiescent-consistency";
      ok = true;
      detail =
        Printf.sprintf "history realizable sequentially (%d ops, %d paired)"
          (List.length ops) (2 * paired_incs);
    }
  else
    fail "quiescent-consistency"
      (Printf.sprintf "no sequential counter order matches [%s]"
         (format_counter_ops ops))
