(** Property monitors for the model checker: pluggable checks evaluated
    against the quiescent state of one controlled execution (plus the
    scenario's exit-point ledger), rendering verdicts. *)

type verdict = { property : string; ok : bool; detail : string }
type violation = { property : string; detail : string }

val violations_of : verdict list -> violation list
(** The failed verdicts, in order. *)

val fail : string -> string -> verdict
(** [fail property detail]: a ready-made failed verdict, for scenario
    ledgers that detect a violation at an operation's exit point. *)

val step_property :
  mode:[ `Pool | `Gap ] -> Core.Elim_stats.t list list -> verdict
(** Per-balancer step property from the live per-wire exit counters
    ([balancer_stats_by_level]).  [`Pool] checks tokens and anti-tokens
    independently (Lemma 3.1: out0 - out1 in [{0,1}] for each kind);
    [`Gap] checks the token-over-anti surplus (Lemma 3.2). *)

val conservation :
  enqueued:int list -> dequeued:int list -> residue:int -> verdict
(** No value lost, duplicated, or invented: wraps
    {!Analysis.Conservation.audit} over the scenario ledger and the
    quiescently probed residue, with zero in-flight slack. *)

type counter_op = { is_inc : bool; result : int option (* [None] = Paired *) }

val format_counter_ops : counter_op list -> string

val paired_balance : counter_op list -> verdict
(** Eliminated increments and decrements must pair up exactly — the
    quiescent guarantee that survives mixed concurrent inc/dec bursts
    (whose return values may legally undershoot). *)

val quiescent_consistency : counter_op list -> verdict
(** Is the completed run's outcome multiset realizable by some
    sequential execution of a counter starting at 0?  Increments
    return the value read (then add 1); decrements subtract 1 and
    return the new value; [Paired] outcomes must arrive in equal
    numbers and drop out (inc linearized immediately before its
    cancelling dec). *)
