(* The manifest of every network shape the repo ships, lowered to the
   netverify wiring IR, plus the bridge that turns a static
   step-property counterexample into a model-checker schedule
   (docs/NETVERIFY.md).

   [shapes] is what `etrees_run netverify` / `dune build @netverify`
   certifies: the elimination-tree pools and stacks at every benched
   width, the diffracting-tree counters (single- and multi-prism), and
   the bitonic/periodic counting networks.  [seeded_defect] is the
   deliberately broken tree the gate must reject — the same
   [`Skip_toggle_on_miss] defect the tree_buggy model-checking
   scenario hunts dynamically through 19k+ DPOR executions; here the
   certifier finds it statically in milliseconds and emits a token
   sequence that [confirm_replay] re-executes through
   {!Explore.replay} for an end-to-end dynamic confirmation. *)

module Ir = Netverify.Ir
module Certify = Netverify.Certify

type shape = { shape_name : string; build : unit -> Ir.network }

let tree_widths = [ 2; 4; 8; 16; 32; 64 ]
let counting_widths = [ 2; 4; 8; 16; 32 ]

let shapes : shape list =
  List.map
    (fun w ->
      {
        shape_name = Printf.sprintf "etree-pool-%d" w;
        build =
          (fun () ->
            Core.Elim_tree.ir ~mode:`Pool ~leaf_order:`Natural
              (Core.Tree_config.etree w));
      })
    tree_widths
  @ List.map
      (fun w ->
        {
          shape_name = Printf.sprintf "etree-stack-%d" w;
          build =
            (fun () ->
              Core.Elim_tree.ir ~mode:`Stack ~leaf_order:`Interleaved
                (Core.Tree_config.etree w));
        })
      tree_widths
  @ [
      {
        shape_name = "dtree-32";
        build = (fun () -> Baselines.Diff_tree.ir ~prisms:`Single_prism ~width:32 ());
      };
      {
        shape_name = "dtree-64";
        build = (fun () -> Baselines.Diff_tree.ir ~prisms:`Single_prism ~width:64 ());
      };
      {
        shape_name = "dtree-32-multiprism";
        build = (fun () -> Baselines.Diff_tree.ir ~prisms:`Multi_prism ~width:32 ());
      };
    ]
  @ List.map
      (fun w ->
        {
          shape_name = Printf.sprintf "bitonic-%d" w;
          build = (fun () -> Baselines.Bitonic_network.ir ~kind:`Bitonic ~width:w ());
        })
      counting_widths
  @ List.map
      (fun w ->
        {
          shape_name = Printf.sprintf "periodic-%d" w;
          build = (fun () -> Baselines.Bitonic_network.ir ~kind:`Periodic ~width:w ());
        })
      counting_widths

let find name = List.find_opt (fun s -> s.shape_name = name) shapes
let names = List.map (fun s -> s.shape_name) shapes

(* The seeded-defect shape: the width-2 pool tree with the
   skip-toggle-on-miss bug in every balancer — exactly what
   [Scenario.tree_buggy] builds. *)
let seeded_defect_width = 2

let seeded_defect () =
  Core.Elim_tree.ir ~mode:`Pool ~leaf_order:`Natural ~bug:`Skip_toggle_on_miss
    ~name:(Printf.sprintf "etree-pool-%d-seeded" seeded_defect_width)
    (Core.Tree_config.etree seeded_defect_width)

(* ------------------------------------------------------------------ *)
(* Counterexample -> model-checker schedule                            *)
(* ------------------------------------------------------------------ *)

(* One processor per operation, run to completion in counterexample
   order.  [Explore.replay] substitutes the smallest enabled pid when
   the forced one is not enabled, so granting each pid a generous
   uninterrupted slice executes the operations sequentially in pid
   order — precisely the sequential semantics the certifier reasoned
   over. *)
let slice_per_op = 400

let schedule_of_ops nops =
  Array.concat (List.init nops (fun pid -> Array.make slice_per_op pid))

let replay_command ~width (cex : Certify.counterexample) =
  let nops = List.length cex.ops in
  Printf.sprintf
    "etrees_run check --method tree_buggy --procs %d --width %d --ops 1 \
     --seed 1 --schedule %s --expect-violation step-property"
    nops width
    (Explore.format_schedule (schedule_of_ops nops))

(* Token-only counterexamples replay through the tree_buggy scenario
   (its processors all send tokens).  Returns the violation the replay
   produced, if any. *)
let confirm_replay ~width (cex : Certify.counterexample) =
  if List.exists (fun (k, _) -> k <> Certify.Op_token) cex.ops then None
  else begin
    match Scenario.find "tree_buggy" with
    | None -> None
    | Some scenario ->
        let nops = List.length cex.ops in
        let program = scenario.make ~procs:nops ~width ~ops:1 in
        let run = Explore.replay ~seed:1 program (schedule_of_ops nops) in
        List.find_opt
          (fun (v : Monitor.violation) -> v.property = "step-property")
          run.violations
  end
