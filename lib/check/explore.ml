(* Stateless exhaustive-interleaving explorer (etrees.check).

   Replaces the simulator's time-ordered scheduler with a controlled
   one (Sim.Scheduler's [controller] hook): every shared-memory access
   parks until the explorer picks which processor commits next, so a
   pid sequence fully determines an interleaving.  The explorer
   re-executes the scenario from scratch under systematically chosen
   schedules — classic stateless model checking — with two reduction
   modes:

   - [Naive]: every enabled processor is a backtrack point at every
     state (full enumeration of the interleaving tree).
   - [Dpor]: Flanagan–Godefroid dynamic partial-order reduction with
     sleep sets.  Backtrack points are added only where a race is
     observed (two accesses to the same location, at least one a
     write/rmw, unordered by happens-before); sleep sets prune
     re-exploration of independent siblings.

   Happens-before is tracked with vector clocks: one clock per
   processor, plus per-location writer and (accumulated) reader
   clocks.  Dependent accesses to a single location are totally
   ordered amongst themselves in any one execution, so the "latest
   dependent transition" is the first dependent entry of the
   location's newest-first access log.

   Blocking (spin loops re-reading an unchanged location) is detected
   with the location epoch fingerprint that [Memory.commit_stamp]
   maintains: a processor whose last [spin_threshold] accesses hit one
   location without its epoch changing — and whose pending access is
   again a read/rmw of that still-unchanged location — is *disabled*.
   A state where every unfinished processor is disabled is a deadlock
   (for the paper's structures: livelock by spinning, e.g. the
   centralized pool of Figure 5 polling an empty slot). *)

module S = Sim.Scheduler

(* Minimal growable array (no Dynarray dependency). *)
module Vec = struct
  type 'a t = { mutable a : 'a array; mutable len : int }

  let create () = { a = [||]; len = 0 }
  let length t = t.len
  let get t i = t.a.(i)

  let push t x =
    if t.len = Array.length t.a then begin
      let a = Array.make (max 8 (2 * Array.length t.a)) x in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1

  let truncate t n = if n < t.len then t.len <- n
  let to_array t = Array.sub t.a 0 t.len
end

type instance = {
  body : int -> unit;  (** per-processor program *)
  at_quiescence : unit -> Monitor.verdict list;
      (** monitors over the final state of a completed execution *)
}

type program = { name : string; procs : int; prepare : unit -> instance }
(** [prepare] must build a fresh structure (and ledger) per execution —
    stateless re-execution replays the program from scratch. *)

type status =
  | Complete
  | Deadlocked of (int * int) list
      (** every unfinished processor spin-blocked: (pid, location id) *)
  | Sleep_blocked  (** pruned by the sleep set: a redundant execution *)
  | Step_budget  (** per-run step cap hit (unbounded spinning) *)

type run = {
  schedule : int array;  (** committed accesses, as chosen pids in order *)
  status : status;
  violations : Monitor.violation list;
}

type frame = {
  f_enabled : int list;
  f_sleep : int list;
  mutable f_backtrack : int list;
  mutable f_done : int list;
  mutable f_chosen : int;
}

type mode = Dpor | Naive | Replay of int array

let is_write = function S.Acc_write | S.Acc_rmw -> true | S.Acc_read -> false

let dependent (k1, (l1 : Sim.Memory.loc)) (k2, (l2 : Sim.Memory.loc)) =
  l1.id = l2.id && (is_write k1 || is_write k2)

let run_once ?(seed = 0x5eed) ~spin_threshold ~max_steps ~mode ~frames
    (program : program) =
  let n = program.procs in
  let inst = program.prepare () in
  let sched = Vec.create () in
  let status = ref Complete in
  (* Vector clocks: per-processor, per-location writer, per-location
     accumulated readers.  Step indices are 1-based. *)
  let proc_cv = Array.init n (fun _ -> Array.make n 0) in
  let w_cv : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let r_cv : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  (* Per-location access log, newest first: (step, is_write, pid). *)
  let log : (int, (int * bool * int) list) Hashtbl.t = Hashtbl.create 64 in
  let join dst src = Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src in
  (* Spin-block detection state. *)
  let spin_loc = Array.make n (-1) in
  let spin_fp = Array.make n min_int in
  let spin_run = Array.make n 0 in
  let last_fired = ref None in
  let note_spin () =
    match !last_fired with
    | None -> ()
    | Some (p, (l : Sim.Memory.loc)) ->
        last_fired := None;
        (* The fingerprint is read *after* the access committed: an
           access that left the location's epoch exactly where this
           processor last saw it made no progress. *)
        if l.id = spin_loc.(p) && l.epoch_seq = spin_fp.(p) then
          spin_run.(p) <- spin_run.(p) + 1
        else begin
          spin_loc.(p) <- l.id;
          spin_fp.(p) <- l.epoch_seq;
          spin_run.(p) <- 1
        end
  in
  let blocked p (a : S.access) =
    a.S.acc_kind <> S.Acc_write
    && spin_run.(p) >= spin_threshold
    && a.S.acc_loc.Sim.Memory.id = spin_loc.(p)
    && a.S.acc_loc.Sim.Memory.epoch_seq = spin_fp.(p)
  in
  let cur_sleep = ref [] in
  let add_backtrack i p =
    if i >= 0 && i < Vec.length frames then begin
      let f = Vec.get frames i in
      if List.mem p f.f_enabled then begin
        if not (List.mem p f.f_backtrack) then f.f_backtrack <- p :: f.f_backtrack
      end
      else
        List.iter
          (fun q ->
            if not (List.mem q f.f_backtrack) then f.f_backtrack <- q :: f.f_backtrack)
          f.f_enabled
    end
  in
  (* Is there a race between an executed access and [p]'s pending one?
     Scan the location's log newest-first for the latest dependent
     transition; it races iff by another processor and not ordered
     before [p]'s next transition by happens-before. *)
  let race_check p (a : S.access) =
    let wr = is_write a.S.acc_kind in
    let rec scan = function
      | [] -> ()
      | (step, w, q) :: rest ->
          if w || wr then begin
            if q <> p && proc_cv.(p).(q) < step then add_backtrack (step - 1) p
          end
          else scan rest
    in
    scan (Option.value ~default:[] (Hashtbl.find_opt log a.S.acc_loc.Sim.Memory.id))
  in
  let record p (a : S.access) =
    let id = a.S.acc_loc.Sim.Memory.id in
    let step = Vec.length sched + 1 in
    let wr = is_write a.S.acc_kind in
    let cv = proc_cv.(p) in
    (match Hashtbl.find_opt w_cv id with Some w -> join cv w | None -> ());
    if wr then (match Hashtbl.find_opt r_cv id with Some r -> join cv r | None -> ());
    cv.(p) <- step;
    if wr then Hashtbl.replace w_cv id (Array.copy cv)
    else begin
      let r =
        match Hashtbl.find_opt r_cv id with
        | Some r -> r
        | None ->
            let r = Array.make n 0 in
            Hashtbl.replace r_cv id r;
            r
      in
      join r cv
    end;
    Hashtbl.replace log id
      ((step, wr, p) :: Option.value ~default:[] (Hashtbl.find_opt log id));
    Vec.push sched p;
    last_fired := Some (p, a.S.acc_loc)
  in
  let choose (runnable : (int * S.access) list) : S.choice =
    note_spin ();
    let d = Vec.length sched in
    if d >= max_steps then begin
      status := Step_budget;
      S.Quit
    end
    else begin
      (match mode with
      | Dpor -> List.iter (fun (p, a) -> race_check p a) runnable
      | Naive | Replay _ -> ());
      let enabled =
        List.filter_map
          (fun (p, a) -> if blocked p a then None else Some p)
          runnable
      in
      if enabled = [] then begin
        status :=
          Deadlocked
            (List.map (fun (p, a) -> (p, a.S.acc_loc.Sim.Memory.id)) runnable);
        S.Quit
      end
      else
        let pick =
          match mode with
          | Replay forced ->
              if d < Array.length forced && List.mem forced.(d) enabled then
                Some forced.(d)
              else Some (List.hd enabled)
          | Dpor | Naive ->
              if d < Vec.length frames then begin
                (* Replaying the committed prefix of the exploration. *)
                let f = Vec.get frames d in
                assert (List.mem f.f_chosen enabled);
                Some f.f_chosen
              end
              else begin
                match
                  List.filter (fun p -> not (List.mem p !cur_sleep)) enabled
                with
                | [] -> None
                | p :: _ ->
                    Vec.push frames
                      {
                        f_enabled = enabled;
                        f_sleep = !cur_sleep;
                        f_backtrack =
                          (match mode with Naive -> enabled | _ -> [ p ]);
                        f_done = [ p ];
                        f_chosen = p;
                      };
                    Some p
              end
        in
        match pick with
        | None ->
            status := Sleep_blocked;
            S.Quit
        | Some p ->
            let a = List.assoc p runnable in
            (match mode with
            | Dpor ->
                (* Sleep set of the successor: explored siblings join,
                   anything dependent on the chosen access wakes. *)
                let f = Vec.get frames d in
                let base =
                  f.f_sleep
                  @ List.filter
                      (fun q -> q <> p && not (List.mem q f.f_sleep))
                      f.f_done
                in
                cur_sleep :=
                  List.filter
                    (fun q ->
                      match List.assoc_opt q runnable with
                      | Some aq ->
                          not
                            (dependent
                               (aq.S.acc_kind, aq.S.acc_loc)
                               (a.S.acc_kind, a.S.acc_loc))
                      | None -> false)
                    base
            | Naive | Replay _ -> ());
            record p a;
            S.Fire p
    end
  in
  let result =
    match
      Sim.run ~seed ~config:Sim.Memory.uniform_config ~controller:choose
        ~procs:n inst.body
    with
    | (_ : Sim.stats) -> Ok ()
    | exception e -> Error e
  in
  let violations =
    match result with
    | Error e ->
        [ { Monitor.property = "no-crash"; detail = Printexc.to_string e } ]
    | Ok () -> (
        match !status with
        | Complete -> Monitor.violations_of (inst.at_quiescence ())
        | Deadlocked procs ->
            [
              {
                Monitor.property = "deadlock";
                detail =
                  Printf.sprintf
                    "every unfinished processor is spin-blocked: %s"
                    (String.concat ", "
                       (List.map
                          (fun (p, l) -> Printf.sprintf "p%d on loc %d" p l)
                          procs));
              };
            ]
        | Sleep_blocked | Step_budget -> [])
  in
  { schedule = Vec.to_array sched; status = !status; violations }

type outcome = {
  runs : int;  (** executions performed (sleep-blocked ones included) *)
  complete : int;
  deadlocks : int;
  sleep_blocked : int;
  budget_hits : int;
  max_depth : int;
  capped : bool;  (** stopped at [max_interleavings] before exhausting *)
  counterexample : (Monitor.violation * run) option;
}

let explore ?(dpor = true) ?(max_interleavings = 100_000) ?(max_steps = 20_000)
    ?(spin_threshold = 3) ?(seed = 0x5eed) ?(stop_on_violation = true) program =
  let frames = Vec.create () in
  let mode = if dpor then Dpor else Naive in
  let runs = ref 0
  and complete = ref 0
  and deadlocks = ref 0
  and sleep_blocked = ref 0
  and budget_hits = ref 0
  and max_depth = ref 0 in
  let capped = ref false in
  let cex = ref None in
  (try
     let exhausted = ref false in
     while not !exhausted do
       if !runs >= max_interleavings then begin
         capped := true;
         raise Exit
       end;
       let r = run_once ~seed ~spin_threshold ~max_steps ~mode ~frames program in
       incr runs;
       if Array.length r.schedule > !max_depth then
         max_depth := Array.length r.schedule;
       (match r.status with
       | Complete -> incr complete
       | Deadlocked _ -> incr deadlocks
       | Sleep_blocked -> incr sleep_blocked
       | Step_budget -> incr budget_hits);
       (match r.violations with
       | v :: _ when !cex = None ->
           cex := Some (v, r);
           if stop_on_violation then raise Exit
       | _ -> ());
       (* Backtrack: deepest frame with an unexplored candidate. *)
       let rec pop () =
         if Vec.length frames = 0 then exhausted := true
         else begin
           let f = Vec.get frames (Vec.length frames - 1) in
           match
             List.filter
               (fun p ->
                 (not (List.mem p f.f_done)) && not (List.mem p f.f_sleep))
               f.f_backtrack
           with
           | [] ->
               Vec.truncate frames (Vec.length frames - 1);
               pop ()
           | c :: cs ->
               let p = List.fold_left min c cs in
               f.f_chosen <- p;
               f.f_done <- p :: f.f_done
         end
       in
       pop ()
     done
   with Exit -> ());
  {
    runs = !runs;
    complete = !complete;
    deadlocks = !deadlocks;
    sleep_blocked = !sleep_blocked;
    budget_hits = !budget_hits;
    max_depth = !max_depth;
    capped = !capped;
    counterexample = !cex;
  }

let replay ?(seed = 0x5eed) ?(spin_threshold = 3) ?(max_steps = 20_000) program
    schedule =
  run_once ~seed ~spin_threshold ~max_steps ~mode:(Replay schedule)
    ~frames:(Vec.create ()) program

(* --- Counterexample minimization and rendering ----------------------- *)

let switches a =
  let s = ref 0 in
  Array.iteri (fun i p -> if i > 0 && a.(i - 1) <> p then incr s) a;
  !s

(* Greedy schedule minimization: try adjacent transpositions that
   reduce the context-switch count, keeping a candidate only if its
   replay still exhibits the same property violation.  Replay is
   tolerant (an infeasible forced pid falls back to the smallest
   enabled one), so we re-read the schedule the replay actually
   executed. *)
let minimize ?seed ?spin_threshold ?max_steps program
    (v : Monitor.violation) schedule =
  let still_violates r =
    List.exists
      (fun (v' : Monitor.violation) -> v'.property = v.property)
      r.violations
  in
  let best = ref schedule in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 32 do
    improved := false;
    incr passes;
    let i = ref 0 in
    while !i < Array.length !best - 1 do
      let b = !best in
      if b.(!i) <> b.(!i + 1) then begin
        let cand = Array.copy b in
        let t = cand.(!i) in
        cand.(!i) <- cand.(!i + 1);
        cand.(!i + 1) <- t;
        if switches cand < switches b then begin
          let r = replay ?seed ?spin_threshold ?max_steps program cand in
          if still_violates r && switches r.schedule < switches b then begin
            best := r.schedule;
            improved := true
          end
        end
      end;
      incr i
    done
  done;
  !best

(* Run-length rendering: "0x5,1x3" = five steps of p0 then three of
   p1.  [parse_schedule] also accepts bare pids ("0,1,0"). *)
let format_schedule a =
  let b = Buffer.create 64 in
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    let p = a.(!i) in
    let j = ref !i in
    while !j < n && a.(!j) = p do incr j done;
    if Buffer.length b > 0 then Buffer.add_char b ',';
    Buffer.add_string b (string_of_int p);
    Buffer.add_char b 'x';
    Buffer.add_string b (string_of_int (!j - !i));
    i := !j
  done;
  Buffer.contents b

let parse_schedule s =
  let s = String.trim s in
  if s = "" then [||]
  else
    String.split_on_char ',' s
    |> List.concat_map (fun seg ->
           let seg = String.trim seg in
           match String.index_opt seg 'x' with
           | Some k ->
               let p = int_of_string (String.sub seg 0 k) in
               let c =
                 int_of_string (String.sub seg (k + 1) (String.length seg - k - 1))
               in
               if c < 0 then invalid_arg "parse_schedule: negative count";
               List.init c (fun _ -> p)
           | None -> [ int_of_string seg ])
    |> Array.of_list
